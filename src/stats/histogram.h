// Measurement containers for the plug-in statistics objects (paper §4):
// counters, linear histograms (disk queue lengths, rotational delays) and
// geometric latency histograms that yield the cumulative-distribution curves
// of Figures 2-4.
#ifndef PFS_STATS_HISTOGRAM_H_
#define PFS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/time.h"

namespace pfs {

class Counter {
 public:
  void Inc(uint64_t k = 1) { value_ += k; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Linear-bucket histogram over doubles, with underflow/overflow buckets.
// Used for queue depths, rotational delays, segment utilizations.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Record(double v);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Linear interpolation within the containing bucket; p in [0,1].
  double Percentile(double p) const;

  // "count=12 mean=3.4 p50=3 p95=8 max=11"
  std::string Summary() const;

  // Multi-line bucket dump (the paper's "with histograms" reporting mode).
  std::string BucketDump() const;

  void Reset();
  void Merge(const Histogram& other);

 private:
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> buckets_;  // [0]=underflow, [n+1]=overflow
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Geometric-bucket histogram over Durations: constant relative resolution
// from 1 µs to ~100 s, so both a 300 µs cache hit and a 170 ms queueing delay
// land in well-sized buckets. Produces the CDF series for Figures 2-4.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(Duration d);

  uint64_t count() const { return count_; }
  Duration mean() const;
  Duration min() const { return count_ == 0 ? Duration() : min_; }
  Duration max() const { return count_ == 0 ? Duration() : max_; }
  Duration Percentile(double p) const;

  // Fraction of samples <= d.
  double FractionBelow(Duration d) const;

  struct CdfPoint {
    double millis;    // bucket upper bound
    double fraction;  // cumulative fraction of samples <= bound
  };
  // Monotone CDF curve; empty buckets between occupied ones are skipped.
  std::vector<CdfPoint> Cdf() const;

  std::string Summary() const;

  void Reset();
  void Merge(const LatencyHistogram& other);

 private:
  size_t BucketFor(Duration d) const;
  Duration BucketHigh(size_t i) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_ns_ = 0;
  Duration min_;
  Duration max_;
};

}  // namespace pfs

#endif  // PFS_STATS_HISTOGRAM_H_
