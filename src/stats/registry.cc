#include "stats/registry.h"

namespace pfs {

std::string StatsRegistry::ReportAll(bool with_histograms) const {
  std::string out;
  for (const StatSource* source : sources_) {
    out += "== ";
    out += source->stat_name();
    out += " ==\n";
    out += source->StatReport(with_histograms);
    if (!out.empty() && out.back() != '\n') {
      out += '\n';
    }
  }
  return out;
}

std::string StatsRegistry::ReportJson() const {
  std::string out = "{";
  for (const StatSource* source : sources_) {
    if (out.size() > 1) {
      out += ",";
    }
    out += "\"" + source->stat_name() + "\":" + source->StatJson();
  }
  out += "}";
  return out;
}

std::string StatsRegistry::ReportJsonOwned(const Scheduler* owner,
                                           bool include_unowned) const {
  std::string out;
  for (size_t i = 0; i < sources_.size(); ++i) {
    const Scheduler* src_owner = owners_[i];
    if (src_owner != owner && !(include_unowned && src_owner == nullptr)) {
      continue;
    }
    if (!out.empty()) {
      out += ",";
    }
    out += "\"" + sources_[i]->stat_name() + "\":" + sources_[i]->StatJson();
  }
  return out;
}

void StatsRegistry::ResetIntervalAll() {
  for (StatSource* source : sources_) {
    source->StatResetInterval();
  }
}

}  // namespace pfs
