#include "stats/registry.h"

namespace pfs {

std::string StatsRegistry::ReportAll(bool with_histograms) const {
  std::string out;
  for (const StatSource* source : sources_) {
    out += "== ";
    out += source->stat_name();
    out += " ==\n";
    out += source->StatReport(with_histograms);
    if (!out.empty() && out.back() != '\n') {
      out += '\n';
    }
  }
  return out;
}

std::string StatsRegistry::ReportJson() const {
  std::string out = "{";
  for (const StatSource* source : sources_) {
    if (out.size() > 1) {
      out += ",";
    }
    out += "\"" + source->stat_name() + "\":" + source->StatJson();
  }
  out += "}";
  return out;
}

void StatsRegistry::ResetIntervalAll() {
  for (StatSource* source : sources_) {
    source->StatResetInterval();
  }
}

}  // namespace pfs
