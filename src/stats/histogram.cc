#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace pfs {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), buckets_(buckets + 2, 0) {
  PFS_CHECK(hi > lo);
  PFS_CHECK(buckets > 0);
}

void Histogram::Record(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  size_t idx;
  if (v < lo_) {
    idx = 0;
  } else if (v >= hi_) {
    idx = buckets_.size() - 1;
  } else {
    idx = 1 + static_cast<size_t>((v - lo_) / width_);
    idx = std::min(idx, buckets_.size() - 2);
  }
  ++buckets_[idx];
}

double Histogram::BucketLow(size_t i) const {
  if (i == 0) {
    return min_;
  }
  return lo_ + static_cast<double>(i - 1) * width_;
}

double Histogram::BucketHigh(size_t i) const {
  if (i == 0) {
    return lo_;
  }
  if (i == buckets_.size() - 1) {
    return max_;
  }
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return BucketLow(i) + within * (BucketHigh(i) - BucketLow(i));
    }
    seen = next;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "count=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(), Percentile(0.50),
                Percentile(0.95), Percentile(0.99), max());
  return buf;
}

std::string Histogram::BucketDump() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  [%10.3f, %10.3f): %llu\n", BucketLow(i), BucketHigh(i),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  PFS_CHECK(buckets_.size() == other.buckets_.size());
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

namespace {

// Geometric buckets: 1 µs lower bound, ratio 2^(1/8) (~9% per step). 8 steps
// per octave * ~27 octaves (1 µs .. ~134 s) = 216 buckets + overflow.
constexpr int kStepsPerOctave = 8;
constexpr int kOctaves = 27;
constexpr size_t kLatencyBuckets = kStepsPerOctave * kOctaves + 1;
constexpr double kBaseNs = 1000.0;  // 1 µs

double LatencyBucketBoundNs(size_t i) {
  return kBaseNs * std::exp2(static_cast<double>(i + 1) / kStepsPerOctave);
}

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kLatencyBuckets, 0) {}

size_t LatencyHistogram::BucketFor(Duration d) const {
  const double ns = static_cast<double>(std::max<int64_t>(d.nanos(), 0));
  if (ns < kBaseNs) {
    return 0;
  }
  const double octaves = std::log2(ns / kBaseNs);
  const auto idx = static_cast<size_t>(octaves * kStepsPerOctave);
  return std::min(idx, buckets_.size() - 1);
}

Duration LatencyHistogram::BucketHigh(size_t i) const {
  if (i == buckets_.size() - 1) {
    return max_;
  }
  return Duration::Nanos(static_cast<int64_t>(LatencyBucketBoundNs(i)));
}

void LatencyHistogram::Record(Duration d) {
  if (count_ == 0) {
    min_ = max_ = d;
  } else {
    min_ = std::min(min_, d);
    max_ = std::max(max_, d);
  }
  ++count_;
  sum_ns_ += d.nanos();
  ++buckets_[BucketFor(d)];
}

Duration LatencyHistogram::mean() const {
  if (count_ == 0) {
    return Duration();
  }
  return Duration::Nanos(sum_ns_ / static_cast<int64_t>(count_));
}

Duration LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return Duration();
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min(BucketHigh(i), max_);
    }
  }
  return max_;
}

double LatencyHistogram::FractionBelow(Duration d) const {
  if (count_ == 0) {
    return 0.0;
  }
  const size_t limit = BucketFor(d);
  uint64_t seen = 0;
  for (size_t i = 0; i <= limit && i < buckets_.size(); ++i) {
    seen += buckets_[i];
  }
  return static_cast<double>(seen) / static_cast<double>(count_);
}

std::vector<LatencyHistogram::CdfPoint> LatencyHistogram::Cdf() const {
  std::vector<CdfPoint> points;
  if (count_ == 0) {
    return points;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    seen += buckets_[i];
    points.push_back(CdfPoint{BucketHigh(i).ToMillisF(),
                              static_cast<double>(seen) / static_cast<double>(count_)});
  }
  return points;
}

std::string LatencyHistogram::Summary() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_), mean().ToMillisF(),
                Percentile(0.50).ToMillisF(), Percentile(0.95).ToMillisF(),
                Percentile(0.99).ToMillisF(), max().ToMillisF());
  return buf;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = Duration();
  max_ = Duration();
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

}  // namespace pfs
