// StatsRegistry: the paper's plug-in statistics architecture (§4). Framework
// components register named StatSources; the simulator activates the ones an
// experiment asks for and prints their reports every 15 simulated minutes and
// at the end of the run.
#ifndef PFS_STATS_REGISTRY_H_
#define PFS_STATS_REGISTRY_H_

#include <string>
#include <vector>

namespace pfs {

class Scheduler;

class StatSource {
 public:
  virtual ~StatSource() = default;

  virtual std::string stat_name() const = 0;

  // One-paragraph report. `with_histograms` switches on the detailed bucket
  // dumps (the paper's "standard statistics output with or without
  // histograms").
  virtual std::string StatReport(bool with_histograms) const = 0;

  // Clears per-interval state after an interval report. Cumulative state may
  // be kept; default is no-op.
  virtual void StatResetInterval() {}

  // One JSON object with the source's machine-readable numbers (the text
  // report is for humans). Sources without one report an empty object.
  virtual std::string StatJson() const { return "{}"; }
};

class StatsRegistry {
 public:
  // Registration is non-owning; sources must outlive the registry user.
  // `owner` names the scheduler shard whose loop the source's counters are
  // written from (nullptr = not shard-affine, safe to read from anywhere);
  // the sharded StatsSampler uses it to read each source from its own shard.
  void Register(StatSource* source, Scheduler* owner = nullptr) {
    sources_.push_back(source);
    owners_.push_back(owner);
  }

  std::string ReportAll(bool with_histograms) const;

  // `{"<stat_name>": <StatJson()>, ...}` — one JSON object over every
  // registered source, so bench runs can append results to a BENCH_*.json
  // file instead of scraping the text reports.
  std::string ReportJson() const;

  // The `"<stat_name>":<StatJson()>` fragments (comma-joined, no outer
  // braces) of the sources owned by `owner` — plus the unowned ones when
  // `include_unowned` is set. The sharded sampler collects one fragment
  // string per shard and splices them into a single object.
  std::string ReportJsonOwned(const Scheduler* owner, bool include_unowned) const;

  void ResetIntervalAll();

  const std::vector<StatSource*>& sources() const { return sources_; }

 private:
  std::vector<StatSource*> sources_;
  std::vector<Scheduler*> owners_;  // parallel to sources_
};

}  // namespace pfs

#endif  // PFS_STATS_REGISTRY_H_
