#include "nfs/xdr.h"

#include "core/units.h"

namespace pfs {

void XdrEncoder::PutU32(uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out_->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void XdrEncoder::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v));
}

void XdrEncoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  for (char c : s) {
    out_->push_back(static_cast<std::byte>(c));
  }
  const size_t pad = (4 - s.size() % 4) % 4;
  for (size_t i = 0; i < pad; ++i) {
    out_->push_back(std::byte{0});
  }
}

Status XdrDecoder::Need(size_t n) const {
  if (remaining() < n) {
    return Status(ErrorCode::kCorrupt, "short XDR buffer");
  }
  return OkStatus();
}

Result<uint32_t> XdrDecoder::TakeU32() {
  PFS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(in_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> XdrDecoder::TakeU64() {
  PFS_ASSIGN_OR_RETURN(const uint32_t hi, TakeU32());
  PFS_ASSIGN_OR_RETURN(const uint32_t lo, TakeU32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<int64_t> XdrDecoder::TakeI64() {
  PFS_ASSIGN_OR_RETURN(const uint64_t v, TakeU64());
  return static_cast<int64_t>(v);
}

Result<bool> XdrDecoder::TakeBool() {
  PFS_ASSIGN_OR_RETURN(const uint32_t v, TakeU32());
  return v != 0;
}

Result<std::string> XdrDecoder::TakeString() {
  PFS_ASSIGN_OR_RETURN(const uint32_t len, TakeU32());
  PFS_RETURN_IF_ERROR(Need(RoundUp(len, 4)));
  std::string s(reinterpret_cast<const char*>(in_.data() + pos_), len);
  pos_ += RoundUp(len, 4);
  return s;
}

}  // namespace pfs
