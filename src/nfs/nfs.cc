#include "nfs/nfs.h"

namespace pfs {
namespace {

void EncodeAttrs(XdrEncoder* enc, const FileAttrs& attrs) {
  enc->PutU64(attrs.ino);
  enc->PutU32(static_cast<uint32_t>(attrs.type));
  enc->PutU64(attrs.size);
  enc->PutU32(attrs.nlink);
  enc->PutI64(attrs.mtime_ns);
}

Result<FileAttrs> DecodeAttrs(XdrDecoder* dec) {
  FileAttrs attrs;
  PFS_ASSIGN_OR_RETURN(attrs.ino, dec->TakeU64());
  PFS_ASSIGN_OR_RETURN(const uint32_t type, dec->TakeU32());
  attrs.type = static_cast<FileType>(type);
  PFS_ASSIGN_OR_RETURN(attrs.size, dec->TakeU64());
  PFS_ASSIGN_OR_RETURN(attrs.nlink, dec->TakeU32());
  PFS_ASSIGN_OR_RETURN(attrs.mtime_ns, dec->TakeI64());
  return attrs;
}

}  // namespace

NfsServer::NfsServer(Scheduler* sched, ClientInterface* backend, NfsLoopback* transport,
                     int worker_threads)
    : sched_(sched), backend_(backend), transport_(transport),
      worker_threads_(worker_threads) {}

void NfsServer::Start() {
  for (int i = 0; i < worker_threads_; ++i) {
    sched_->SpawnDaemon("nfs.worker." + std::to_string(i), Worker(i));
  }
}

Task<> NfsServer::Worker(int id) {
  (void)id;
  for (;;) {
    auto request = co_await transport_->requests.Recv();
    if (!request.has_value()) {
      co_return;  // transport closed
    }
    NfsMessage response = co_await HandleRequest(*request);
    (void)co_await transport_->responses.Send(std::move(response));
    ++served_;
  }
}

Task<NfsMessage> NfsServer::HandleRequest(const NfsMessage& request) {
  NfsMessage out;
  XdrEncoder enc(&out);
  XdrDecoder dec(request);

  auto xid_or = dec.TakeU32();
  auto proc_or = dec.TakeU32();
  if (!xid_or.ok() || !proc_or.ok()) {
    enc.PutU32(0);
    enc.PutU32(static_cast<uint32_t>(ErrorCode::kCorrupt));
    co_return out;
  }
  enc.PutU32(*xid_or);

  Status status;
  NfsMessage body;
  XdrEncoder body_enc(&body);

  switch (static_cast<NfsProc>(*proc_or)) {
    case NfsProc::kNull:
      break;
    case NfsProc::kOpen:
    case NfsProc::kCreate: {
      auto path = dec.TakeString();
      auto create = dec.TakeBool();
      auto type = dec.TakeU32();
      if (!path.ok() || !create.ok() || !type.ok()) {
        status = Status(ErrorCode::kCorrupt, "bad open args");
        break;
      }
      OpenOptions options;
      options.create = *create;
      options.create_type = static_cast<FileType>(*type);
      auto fd = co_await backend_->Open(*path, options);
      status = fd.status();
      if (fd.ok()) {
        body_enc.PutU32(static_cast<uint32_t>(*fd));
      }
      break;
    }
    case NfsProc::kClose: {
      auto fd = dec.TakeU32();
      if (!fd.ok()) {
        status = fd.status();
        break;
      }
      status = co_await backend_->Close(static_cast<Fd>(*fd));
      break;
    }
    case NfsProc::kRead: {
      auto fd = dec.TakeU32();
      auto offset = dec.TakeU64();
      auto len = dec.TakeU64();
      if (!fd.ok() || !offset.ok() || !len.ok()) {
        status = Status(ErrorCode::kCorrupt, "bad read args");
        break;
      }
      auto n = co_await backend_->Read(static_cast<Fd>(*fd), *offset, *len, {});
      status = n.status();
      if (n.ok()) {
        body_enc.PutU64(*n);
      }
      break;
    }
    case NfsProc::kWrite: {
      auto fd = dec.TakeU32();
      auto offset = dec.TakeU64();
      auto len = dec.TakeU64();
      if (!fd.ok() || !offset.ok() || !len.ok()) {
        status = Status(ErrorCode::kCorrupt, "bad write args");
        break;
      }
      auto n = co_await backend_->Write(static_cast<Fd>(*fd), *offset, *len, {});
      status = n.status();
      if (n.ok()) {
        body_enc.PutU64(*n);
      }
      break;
    }
    case NfsProc::kTruncate: {
      auto fd = dec.TakeU32();
      auto size = dec.TakeU64();
      if (!fd.ok() || !size.ok()) {
        status = Status(ErrorCode::kCorrupt, "bad truncate args");
        break;
      }
      status = co_await backend_->Truncate(static_cast<Fd>(*fd), *size);
      break;
    }
    case NfsProc::kFsync: {
      auto fd = dec.TakeU32();
      if (!fd.ok()) {
        status = fd.status();
        break;
      }
      status = co_await backend_->Fsync(static_cast<Fd>(*fd));
      break;
    }
    case NfsProc::kGetAttr: {
      auto fd = dec.TakeU32();
      if (!fd.ok()) {
        status = fd.status();
        break;
      }
      auto attrs = co_await backend_->FStat(static_cast<Fd>(*fd));
      status = attrs.status();
      if (attrs.ok()) {
        EncodeAttrs(&body_enc, *attrs);
      }
      break;
    }
    case NfsProc::kLookup: {
      auto path = dec.TakeString();
      if (!path.ok()) {
        status = path.status();
        break;
      }
      auto attrs = co_await backend_->Stat(*path);
      status = attrs.status();
      if (attrs.ok()) {
        EncodeAttrs(&body_enc, *attrs);
      }
      break;
    }
    case NfsProc::kRemove: {
      auto path = dec.TakeString();
      if (!path.ok()) {
        status = path.status();
        break;
      }
      status = co_await backend_->Unlink(*path);
      break;
    }
    case NfsProc::kMkdir: {
      auto path = dec.TakeString();
      if (!path.ok()) {
        status = path.status();
        break;
      }
      status = co_await backend_->Mkdir(*path);
      break;
    }
    case NfsProc::kRmdir: {
      auto path = dec.TakeString();
      if (!path.ok()) {
        status = path.status();
        break;
      }
      status = co_await backend_->Rmdir(*path);
      break;
    }
    case NfsProc::kRename: {
      auto from = dec.TakeString();
      auto to = dec.TakeString();
      if (!from.ok() || !to.ok()) {
        status = Status(ErrorCode::kCorrupt, "bad rename args");
        break;
      }
      status = co_await backend_->Rename(*from, *to);
      break;
    }
    case NfsProc::kReadDir: {
      auto path = dec.TakeString();
      if (!path.ok()) {
        status = path.status();
        break;
      }
      auto entries = co_await backend_->ReadDir(*path);
      status = entries.status();
      if (entries.ok()) {
        body_enc.PutU32(static_cast<uint32_t>(entries->size()));
        for (const DirEntry& e : *entries) {
          body_enc.PutString(e.name);
          body_enc.PutU64(e.ino);
          body_enc.PutU32(static_cast<uint32_t>(e.type));
        }
      }
      break;
    }
    case NfsProc::kSync:
      status = co_await backend_->SyncAll();
      break;
    default:
      status = Status(ErrorCode::kUnsupported, "unknown proc");
      break;
  }

  enc.PutU32(static_cast<uint32_t>(status.code()));
  out.insert(out.end(), body.begin(), body.end());
  co_return out;
}

NfsClient::NfsClient(Scheduler* sched, NfsLoopback* transport)
    : sched_(sched), transport_(transport) {}

Task<> NfsClient::ResponseDispatcher() {
  for (;;) {
    auto response = co_await transport_->responses.Recv();
    if (!response.has_value()) {
      co_return;
    }
    XdrDecoder dec(*response);
    auto xid = dec.TakeU32();
    auto code = dec.TakeU32();
    if (!xid.ok() || !code.ok()) {
      continue;  // malformed response; drop
    }
    auto it = pending_.find(*xid);
    if (it == pending_.end()) {
      continue;
    }
    PendingCall* call = it->second.get();
    call->status = Status(static_cast<ErrorCode>(*code));
    call->body.assign(response->begin() + 8, response->end());
    call->ready.Notify();
  }
}

Task<Result<NfsMessage>> NfsClient::Call(NfsProc proc, const NfsMessage& args) {
  if (!dispatcher_started_) {
    dispatcher_started_ = true;
    sched_->SpawnDaemon("nfs.client.dispatch", ResponseDispatcher());
  }
  const uint32_t xid = next_xid_++;
  NfsMessage request;
  XdrEncoder enc(&request);
  enc.PutU32(xid);
  enc.PutU32(static_cast<uint32_t>(proc));
  request.insert(request.end(), args.begin(), args.end());

  auto pending = std::make_unique<PendingCall>(sched_);
  PendingCall* call = pending.get();
  pending_.emplace(xid, std::move(pending));

  const bool sent = co_await transport_->requests.Send(std::move(request));
  if (!sent) {
    pending_.erase(xid);
    co_return Status(ErrorCode::kAborted, "transport closed");
  }
  co_await call->ready.Wait();
  const Status status = call->status;
  NfsMessage body = std::move(call->body);
  pending_.erase(xid);
  if (!status.ok()) {
    co_return status;
  }
  co_return body;
}

Task<Result<Fd>> NfsClient::Open(const std::string& path, OpenOptions options) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(path);
  enc.PutBool(options.create);
  enc.PutU32(static_cast<uint32_t>(options.create_type));
  PFS_CO_ASSIGN_OR_RETURN(const NfsMessage body, co_await Call(NfsProc::kOpen, args));
  XdrDecoder dec(body);
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t fd, dec.TakeU32());
  co_return static_cast<Fd>(fd);
}

Task<Status> NfsClient::Close(Fd fd) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutU32(static_cast<uint32_t>(fd));
  auto r = co_await Call(NfsProc::kClose, args);
  co_return r.status();
}

Task<Result<uint64_t>> NfsClient::Read(Fd fd, uint64_t offset, uint64_t len,
                                       std::span<std::byte> out) {
  (void)out;  // loopback carries no payload bytes; lengths drive the system
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutU32(static_cast<uint32_t>(fd));
  enc.PutU64(offset);
  enc.PutU64(len);
  PFS_CO_ASSIGN_OR_RETURN(const NfsMessage body, co_await Call(NfsProc::kRead, args));
  XdrDecoder dec(body);
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t n, dec.TakeU64());
  co_return n;
}

Task<Result<uint64_t>> NfsClient::Write(Fd fd, uint64_t offset, uint64_t len,
                                        std::span<const std::byte> in) {
  (void)in;
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutU32(static_cast<uint32_t>(fd));
  enc.PutU64(offset);
  enc.PutU64(len);
  PFS_CO_ASSIGN_OR_RETURN(const NfsMessage body, co_await Call(NfsProc::kWrite, args));
  XdrDecoder dec(body);
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t n, dec.TakeU64());
  co_return n;
}

Task<Status> NfsClient::Truncate(Fd fd, uint64_t new_size) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutU32(static_cast<uint32_t>(fd));
  enc.PutU64(new_size);
  auto r = co_await Call(NfsProc::kTruncate, args);
  co_return r.status();
}

Task<Status> NfsClient::Fsync(Fd fd) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutU32(static_cast<uint32_t>(fd));
  auto r = co_await Call(NfsProc::kFsync, args);
  co_return r.status();
}

Task<Result<FileAttrs>> NfsClient::FStat(Fd fd) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutU32(static_cast<uint32_t>(fd));
  PFS_CO_ASSIGN_OR_RETURN(const NfsMessage body, co_await Call(NfsProc::kGetAttr, args));
  XdrDecoder dec(body);
  co_return DecodeAttrs(&dec);
}

Task<Result<FileAttrs>> NfsClient::Stat(const std::string& path) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(path);
  PFS_CO_ASSIGN_OR_RETURN(const NfsMessage body, co_await Call(NfsProc::kLookup, args));
  XdrDecoder dec(body);
  co_return DecodeAttrs(&dec);
}

Task<Status> NfsClient::Unlink(const std::string& path) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(path);
  auto r = co_await Call(NfsProc::kRemove, args);
  co_return r.status();
}

Task<Status> NfsClient::Mkdir(const std::string& path) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(path);
  auto r = co_await Call(NfsProc::kMkdir, args);
  co_return r.status();
}

Task<Status> NfsClient::Rmdir(const std::string& path) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(path);
  auto r = co_await Call(NfsProc::kRmdir, args);
  co_return r.status();
}

Task<Status> NfsClient::Rename(const std::string& from, const std::string& to) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(from);
  enc.PutString(to);
  auto r = co_await Call(NfsProc::kRename, args);
  co_return r.status();
}

Task<Result<std::vector<DirEntry>>> NfsClient::ReadDir(const std::string& path) {
  NfsMessage args;
  XdrEncoder enc(&args);
  enc.PutString(path);
  PFS_CO_ASSIGN_OR_RETURN(const NfsMessage body, co_await Call(NfsProc::kReadDir, args));
  XdrDecoder dec(body);
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t count, dec.TakeU32());
  std::vector<DirEntry> entries;
  for (uint32_t i = 0; i < count; ++i) {
    DirEntry e;
    PFS_CO_ASSIGN_OR_RETURN(e.name, dec.TakeString());
    PFS_CO_ASSIGN_OR_RETURN(e.ino, dec.TakeU64());
    PFS_CO_ASSIGN_OR_RETURN(const uint32_t type, dec.TakeU32());
    e.type = static_cast<FileType>(type);
    entries.push_back(std::move(e));
  }
  co_return entries;
}

Task<Status> NfsClient::SymlinkAt(const std::string& path, const std::string& target) {
  (void)path;
  (void)target;
  co_return Status(ErrorCode::kUnsupported, "symlink not in the RPC surface");
}

Task<Result<std::string>> NfsClient::ReadLink(const std::string& path) {
  (void)path;
  co_return Status(ErrorCode::kUnsupported, "readlink not in the RPC surface");
}

Task<Status> NfsClient::SyncAll() {
  auto r = co_await Call(NfsProc::kSync, {});
  co_return r.status();
}

}  // namespace pfs
