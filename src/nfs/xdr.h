// XDR-style encoding (RFC 1014 flavour): big-endian 4-byte-aligned scalars
// and length-prefixed padded opaques — the wire format of the PFS NFS-style
// client interface (paper §3).
#ifndef PFS_NFS_XDR_H_
#define PFS_NFS_XDR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/result.h"

namespace pfs {

class XdrEncoder {
 public:
  explicit XdrEncoder(std::vector<std::byte>* out) : out_(out) {}

  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  // Length-prefixed, zero-padded to a 4-byte boundary.
  void PutString(std::string_view s);

 private:
  std::vector<std::byte>* out_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::byte> in) : in_(in) {}

  Result<uint32_t> TakeU32();
  Result<uint64_t> TakeU64();
  Result<int64_t> TakeI64();
  Result<bool> TakeBool();
  Result<std::string> TakeString();

  size_t remaining() const { return in_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  std::span<const std::byte> in_;
  size_t pos_ = 0;
};

}  // namespace pfs

#endif  // PFS_NFS_XDR_H_
