// The PFS client interface (paper §3): an NFS-style RPC front-end derived
// from the abstract client interface. "The NFS class spawns a number of
// threads that wait for incoming ... requests. Whenever a request is
// received, the call is dispatched to one (or more) calls in the abstract
// client interface. Each thread ... acts as a representative of a client
// while the request is in progress."
//
// The wire is an in-process loopback channel carrying XDR-encoded messages
// (the sandboxed build has no network; the codec, procedure numbers, and
// server thread-pool structure are the real interface shape).
//
// Message framing: request  = [xid u32][proc u32][args...]
//                  response = [xid u32][status u32][results...]
#ifndef PFS_NFS_NFS_H_
#define PFS_NFS_NFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client_interface.h"
#include "nfs/xdr.h"
#include "sched/channel.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"

namespace pfs {

enum class NfsProc : uint32_t {
  kNull = 0,
  kGetAttr = 1,
  kLookup = 4,   // via Stat on a path
  kRead = 6,
  kWrite = 8,
  kCreate = 9,   // open with create
  kRemove = 10,
  kRename = 11,
  kMkdir = 14,
  kRmdir = 15,
  kReadDir = 16,
  kOpen = 100,   // PFS extension: stateful open/close
  kClose = 101,
  kFsync = 102,
  kTruncate = 103,
  kSync = 104,
};

using NfsMessage = std::vector<std::byte>;

// Bidirectional in-process transport: client -> server requests, server ->
// client responses. One per connected client.
struct NfsLoopback {
  NfsLoopback(Scheduler* sched, size_t depth)
      : requests(sched, depth), responses(sched, depth) {}
  Channel<NfsMessage> requests;
  Channel<NfsMessage> responses;
};

// Server: a pool of worker threads decoding requests and dispatching into
// the abstract client interface.
class NfsServer {
 public:
  NfsServer(Scheduler* sched, ClientInterface* backend, NfsLoopback* transport,
            int worker_threads = 4);

  // Spawns the worker pool (daemons).
  void Start();

  uint64_t requests_served() const { return served_; }

 private:
  Task<> Worker(int id);
  Task<NfsMessage> HandleRequest(const NfsMessage& request);

  Scheduler* sched_;
  ClientInterface* backend_;
  NfsLoopback* transport_;
  int worker_threads_;
  uint64_t served_ = 0;
};

// Client-side stub: encodes calls, sends them over the loopback, matches
// responses by xid. Implements ClientInterface so applications (and the
// trace replayer) can run over the RPC boundary unchanged.
class NfsClient final : public ClientInterface {
 public:
  NfsClient(Scheduler* sched, NfsLoopback* transport);

  Task<Result<Fd>> Open(const std::string& path, OpenOptions options) override;
  Task<Status> Close(Fd fd) override;
  Task<Result<uint64_t>> Read(Fd fd, uint64_t offset, uint64_t len,
                              std::span<std::byte> out) override;
  Task<Result<uint64_t>> Write(Fd fd, uint64_t offset, uint64_t len,
                               std::span<const std::byte> in) override;
  Task<Status> Truncate(Fd fd, uint64_t new_size) override;
  Task<Status> Fsync(Fd fd) override;
  Task<Result<FileAttrs>> FStat(Fd fd) override;
  Task<Result<FileAttrs>> Stat(const std::string& path) override;
  Task<Status> Unlink(const std::string& path) override;
  Task<Status> Mkdir(const std::string& path) override;
  Task<Status> Rmdir(const std::string& path) override;
  Task<Status> Rename(const std::string& from, const std::string& to) override;
  Task<Result<std::vector<DirEntry>>> ReadDir(const std::string& path) override;
  Task<Status> SymlinkAt(const std::string& path, const std::string& target) override;
  Task<Result<std::string>> ReadLink(const std::string& path) override;
  Task<Status> SyncAll() override;

 private:
  // Sends [xid][proc][args] and waits for the matching response body.
  Task<Result<NfsMessage>> Call(NfsProc proc, const NfsMessage& args);
  Task<> ResponseDispatcher();  // routes responses to waiting callers by xid

  Scheduler* sched_;
  NfsLoopback* transport_;
  uint32_t next_xid_ = 1;
  bool dispatcher_started_ = false;

  struct PendingCall {
    explicit PendingCall(Scheduler* sched) : ready(sched) {}
    Notification ready;
    NfsMessage body;
    Status status;
  };
  std::map<uint32_t, std::unique_ptr<PendingCall>> pending_;
};

}  // namespace pfs

#endif  // PFS_NFS_NFS_H_
