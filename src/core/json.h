// A small strict JSON parser for validating the hand-assembled StatJson()
// strings and the bench/observability outputs (core/serializer is the
// *binary* wire format; it cannot check JSON). Strictness is the point:
// trailing commas, duplicate object keys, bare values after the document,
// NaN/Infinity — anything snprintf-assembled JSON can get wrong — are
// errors that name the byte offset.
#ifndef PFS_CORE_JSON_H_
#define PFS_CORE_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "core/result.h"

namespace pfs {

class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // source order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Dotted-path lookup through nested objects: "driver.latency_ms.p99".
  const JsonValue* FindPath(const std::string& dotted) const;
};

// Parses exactly one JSON document (surrounding whitespace allowed).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace pfs

#endif  // PFS_CORE_JSON_H_
