#include "core/log.h"

#include <cstdio>

namespace pfs {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogAt(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s %s] ", LevelName(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace pfs
