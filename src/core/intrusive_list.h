// Intrusive doubly-linked list.
//
// The block cache keeps every cache block on exactly one of its LRU lists
// (free / clean / dirty) and moves blocks between lists on every access, so
// membership changes must be O(1) with zero allocation. This was one of the
// paper's §5.2 lessons: naive list maintenance dominated simulator run time.
// bench/ablation_lru_maintenance measures the difference.
//
// Usage:
//   struct Block { IntrusiveListNode node; ... };
//   IntrusiveList<Block, &Block::node> lru;
//   lru.PushBack(*b); lru.Remove(*b); Block* victim = lru.Front();
#ifndef PFS_CORE_INTRUSIVE_LIST_H_
#define PFS_CORE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "core/check.h"

namespace pfs {

struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;
  void* owner = nullptr;  // the containing object; set on first insert

  bool linked() const { return prev != nullptr; }
};

template <typename T, IntrusiveListNode T::* NodeMember>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  size_t size() const { return size_; }

  void PushBack(T& item) { InsertBefore(&head_, item); }
  void PushFront(T& item) {
    IntrusiveListNode* first = head_.next;
    IntrusiveListNode* n = Node(item);
    PFS_CHECK_MSG(!n->linked(), "Insert of already-linked node");
    n->owner = &item;
    n->prev = first->prev;
    n->next = first;
    first->prev->next = n;
    first->prev = n;
    ++size_;
  }

  // Removes `item`; it must be on this list.
  void Remove(T& item) {
    IntrusiveListNode* n = Node(item);
    PFS_CHECK_MSG(n->linked(), "Remove of unlinked node");
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    --size_;
  }

  // Moves `item` (already on this list) to the back; the MRU operation.
  void MoveToBack(T& item) {
    Remove(item);
    PushBack(item);
  }

  T* Front() { return empty() ? nullptr : FromNode(head_.next); }
  T* Back() { return empty() ? nullptr : FromNode(head_.prev); }

  T* PopFront() {
    T* item = Front();
    if (item != nullptr) {
      Remove(*item);
    }
    return item;
  }

  // Forward iteration, front (LRU) to back (MRU). Do not remove the element
  // the iterator currently points at; collect victims first.
  class Iterator {
   public:
    explicit Iterator(IntrusiveListNode* at) : at_(at) {}
    T& operator*() const { return *FromNode(at_); }
    T* operator->() const { return FromNode(at_); }
    Iterator& operator++() {
      at_ = at_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return at_ != other.at_; }

   private:
    IntrusiveListNode* at_;
  };

  Iterator begin() { return Iterator(head_.next); }
  Iterator end() { return Iterator(&head_); }

 private:
  static IntrusiveListNode* Node(T& item) { return &(item.*NodeMember); }
  static T* FromNode(IntrusiveListNode* n) { return static_cast<T*>(n->owner); }

  void InsertBefore(IntrusiveListNode* pos, T& item) {
    IntrusiveListNode* n = Node(item);
    PFS_CHECK_MSG(!n->linked(), "Insert of already-linked node");
    n->owner = &item;
    n->prev = pos->prev;
    n->next = pos;
    pos->prev->next = n;
    pos->prev = n;
    ++size_;
  }

  IntrusiveListNode head_;  // sentinel
  size_t size_ = 0;
};

}  // namespace pfs

#endif  // PFS_CORE_INTRUSIVE_LIST_H_
