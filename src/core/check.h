// Invariant-checking macros used throughout the framework.
//
// PFS_CHECK fires in all build types: a failed check is a programming error
// (broken invariant), not an environmental condition, and the file-system
// state can no longer be trusted once one fires.
#ifndef PFS_CORE_CHECK_H_
#define PFS_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define PFS_CHECK(cond)                                                                  \
  do {                                                                                   \
    if (!(cond)) [[unlikely]] {                                                          \
      ::std::fprintf(stderr, "PFS_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,      \
                     #cond);                                                             \
      ::std::abort();                                                                    \
    }                                                                                    \
  } while (0)

#define PFS_CHECK_MSG(cond, msg)                                                         \
  do {                                                                                   \
    if (!(cond)) [[unlikely]] {                                                          \
      ::std::fprintf(stderr, "PFS_CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__, \
                     #cond, msg);                                                        \
      ::std::abort();                                                                    \
    }                                                                                    \
  } while (0)

// Marks code paths that are structurally unreachable.
#define PFS_UNREACHABLE()                                                                \
  do {                                                                                   \
    ::std::fprintf(stderr, "PFS_UNREACHABLE hit at %s:%d\n", __FILE__, __LINE__);        \
    ::std::abort();                                                                      \
  } while (0)

#endif  // PFS_CORE_CHECK_H_
