#include "core/random.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace pfs {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PFS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PFS_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  PFS_CHECK(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u >= 1.0) {
    u = 0x1.fffffffffffffp-1;
  }
  return -mean * std::log1p(-u);
}

double Rng::NextLogNormal(double mu, double sigma) {
  // Box-Muller.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu + sigma * z);
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfDistribution::ZipfDistribution(uint64_t n, double theta) : n_(n) {
  PFS_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = sum;
  }
  for (auto& c : cdf_) {
    c /= sum;
  }
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return n_ - 1;
  }
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace pfs
