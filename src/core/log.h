// Minimal leveled logger.
//
// Default level is kWarn so simulations stay quiet; tests and examples raise
// it when tracing behaviour. Not thread-safe by design: the framework is
// cooperatively scheduled on one OS thread, and the on-line server logs only
// from the scheduler thread.
#ifndef PFS_CORE_LOG_H_
#define PFS_CORE_LOG_H_

#include <cstdarg>

namespace pfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style. `tag` identifies the component ("cache", "lfs", "disk0").
void LogAt(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace pfs

#define PFS_LOG_DEBUG(tag, ...) ::pfs::LogAt(::pfs::LogLevel::kDebug, tag, __VA_ARGS__)
#define PFS_LOG_INFO(tag, ...) ::pfs::LogAt(::pfs::LogLevel::kInfo, tag, __VA_ARGS__)
#define PFS_LOG_WARN(tag, ...) ::pfs::LogAt(::pfs::LogLevel::kWarn, tag, __VA_ARGS__)
#define PFS_LOG_ERROR(tag, ...) ::pfs::LogAt(::pfs::LogLevel::kError, tag, __VA_ARGS__)

#endif  // PFS_CORE_LOG_H_
