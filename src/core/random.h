// Deterministic pseudo-random numbers and the distributions the framework
// needs (uniform, exponential, lognormal, Zipf).
//
// Everything random in the framework — the scheduler's random pick policy,
// the guessing storage layout, the synthetic workload generator — draws from
// an explicitly seeded Rng so that every experiment run is replayable. That
// replayability is the paper's core methodological point (§1: a work load can
// repeatedly be replayed on the same off-line simulator).
#ifndef PFS_CORE_RANDOM_H_
#define PFS_CORE_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pfs {

// xoshiro256** seeded via splitmix64. Small, fast, reproducible across
// platforms (unlike std::mt19937 + std:: distributions, whose outputs are not
// specified identically everywhere).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Lognormal: exp(N(mu, sigma^2)).
  double NextLogNormal(double mu, double sigma);

  // Forks an independent stream; used to give each simulated client its own
  // deterministic sequence regardless of sibling activity.
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n). Popularity rank r has probability
// proportional to 1/(r+1)^theta. Used for file-popularity skew in the
// synthetic workloads (a small set of hot files absorbs most operations,
// matching the trace characteristics the paper's experiments depend on).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace pfs

#endif  // PFS_CORE_RANDOM_H_
