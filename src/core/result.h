// Result<T>: value-or-Status, the return type of every fallible framework
// operation that produces a value.
#ifndef PFS_CORE_RESULT_H_
#define PFS_CORE_RESULT_H_

#include <utility>
#include <variant>

#include "core/check.h"
#include "core/status.h"

namespace pfs {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value or from a non-ok Status, so call sites read
  // naturally: `return inode;` / `return Status(ErrorCode::kNotFound);`.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {
    PFS_CHECK_MSG(!std::get<Status>(rep_).ok(), "Result constructed from ok Status");
  }
  Result(ErrorCode code) : rep_(Status(code)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Status of the result; Ok when a value is present.
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  ErrorCode code() const { return ok() ? ErrorCode::kOk : std::get<Status>(rep_).code(); }

  // Value accessors. Checked: calling value() on an error aborts.
  T& value() & {
    PFS_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(rep_);
  }
  const T& value() const& {
    PFS_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(rep_);
  }
  T&& value() && {
    PFS_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(rep_);
    }
    return fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace pfs

// Assigns the value of a Result-returning expression or propagates its error.
// Usage: PFS_ASSIGN_OR_RETURN(auto inode, layout.ReadInode(ino));
//
// These expand to multiple statements (not a do-while) so that `expr` may be
// a co_await expression in the coroutine flavor — GCC cannot compile
// co_await inside a statement expression. Use only at statement scope.
#define PFS_RESULT_CONCAT_INNER(a, b) a##b
#define PFS_RESULT_CONCAT(a, b) PFS_RESULT_CONCAT_INNER(a, b)

#define PFS_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr, ret) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) ret tmp.status();                      \
  decl = std::move(tmp).value()

// Regular-function flavor.
#define PFS_ASSIGN_OR_RETURN(decl, expr) \
  PFS_ASSIGN_OR_RETURN_IMPL(PFS_RESULT_CONCAT(pfs_result_, __LINE__), decl, expr, return)

// Coroutine flavor: co_returns the error; `expr` may contain co_await.
#define PFS_CO_ASSIGN_OR_RETURN(decl, expr) \
  PFS_ASSIGN_OR_RETURN_IMPL(PFS_RESULT_CONCAT(pfs_result_, __LINE__), decl, expr, co_return)

#endif  // PFS_CORE_RESULT_H_
