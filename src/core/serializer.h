// Little-endian byte (de)serialization for on-disk structures.
//
// Every persistent structure in layout/ (superblock, checkpoint, inode,
// directory entry, segment summary) encodes itself through these so that PFS
// images are portable across hosts. Decoding is fully bounds-checked: a short
// or corrupt buffer produces ErrorCode::kCorrupt, never UB.
#ifndef PFS_CORE_SERIALIZER_H_
#define PFS_CORE_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace pfs {

// Appends fixed-width little-endian fields to a growing buffer.
class Serializer {
 public:
  explicit Serializer(std::vector<std::byte>* out) : out_(out) {}

  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  // Length-prefixed (u16) byte string.
  void PutString(std::string_view s);

  void PutBytes(std::span<const std::byte> bytes) { Append(bytes.data(), bytes.size()); }

  size_t size() const { return out_->size(); }

 private:
  void Append(const void* data, size_t n);

  std::vector<std::byte>* out_;
};

// Consumes fields from a fixed buffer; all reads are bounds-checked.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::byte> in) : in_(in) {}

  Result<uint8_t> TakeU8();
  Result<uint16_t> TakeU16();
  Result<uint32_t> TakeU32();
  Result<uint64_t> TakeU64();
  Result<int64_t> TakeI64();
  Result<std::string> TakeString();
  Status TakeBytes(std::span<std::byte> out);

  // Skips n bytes (e.g. reserved fields).
  Status Skip(size_t n);

  size_t remaining() const { return in_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status Need(size_t n) const;

  std::span<const std::byte> in_;
  size_t pos_ = 0;
};

}  // namespace pfs

#endif  // PFS_CORE_SERIALIZER_H_
