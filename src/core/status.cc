#include "core/status.h"

namespace pfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kExists:
      return "exists";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kNoSpace:
      return "no-space";
    case ErrorCode::kNotDirectory:
      return "not-directory";
    case ErrorCode::kIsDirectory:
      return "is-directory";
    case ErrorCode::kNotEmpty:
      return "not-empty";
    case ErrorCode::kCorrupt:
      return "corrupt";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kOutOfRange:
      return "out-of-range";
    case ErrorCode::kNameTooLong:
      return "name-too-long";
    case ErrorCode::kAborted:
      return "aborted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pfs
