#include "core/json.h"

#include <cmath>
#include <cstdlib>

namespace pfs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr) {
    const size_t dot = dotted.find('.', start);
    if (dot == std::string::npos) {
      return cur->Find(dotted.substr(start));
    }
    cur = cur->Find(dotted.substr(start, dot - start));
    start = dot + 1;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    PFS_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status(ErrorCode::kInvalidArgument,
                  "JSON error at offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber(out);
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseKeyword(const std::string& word, JsonValue* out) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    if (word == "null") {
      out->kind = JsonValue::Kind::kNull;
    } else {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = (word == "true");
    }
    return OkStatus();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("malformed number: digits required after '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("malformed number: digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return OkStatus();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // BMP-only UTF-8 encoding; surrogate pairs don't occur in our
          // stat output and are rejected.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return OkStatus();
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      PFS_RETURN_IF_ERROR(ParseString(&key));
      for (const auto& [existing, unused] : out->object) {
        if (existing == key) {
          return Error("duplicate object key \"" + key + "\"");
        }
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      JsonValue value;
      PFS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return OkStatus();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return OkStatus();
    }
    for (;;) {
      JsonValue value;
      PFS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return OkStatus();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace pfs
