#include "core/serializer.h"

namespace pfs {

void Serializer::Append(const void* data, size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  out_->insert(out_->end(), p, p + n);
}

void Serializer::PutU16(uint16_t v) {
  uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
  Append(b, sizeof(b));
}

void Serializer::PutU32(uint32_t v) {
  uint8_t b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  Append(b, sizeof(b));
}

void Serializer::PutU64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  Append(b, sizeof(b));
}

void Serializer::PutString(std::string_view s) {
  PFS_CHECK_MSG(s.size() <= UINT16_MAX, "string too long to serialize");
  PutU16(static_cast<uint16_t>(s.size()));
  Append(s.data(), s.size());
}

Status Deserializer::Need(size_t n) const {
  if (remaining() < n) {
    return Status(ErrorCode::kCorrupt, "short buffer");
  }
  return OkStatus();
}

Result<uint8_t> Deserializer::TakeU8() {
  PFS_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(in_[pos_++]);
}

Result<uint16_t> Deserializer::TakeU16() {
  PFS_RETURN_IF_ERROR(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(in_[pos_ + i])) << (8 * i);
  }
  pos_ += 2;
  return v;
}

Result<uint32_t> Deserializer::TakeU32() {
  PFS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Deserializer::TakeU64() {
  PFS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Deserializer::TakeI64() {
  PFS_ASSIGN_OR_RETURN(uint64_t v, TakeU64());
  return static_cast<int64_t>(v);
}

Result<std::string> Deserializer::TakeString() {
  PFS_ASSIGN_OR_RETURN(uint16_t len, TakeU16());
  PFS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(in_.data() + pos_), len);
  pos_ += len;
  return s;
}

Status Deserializer::TakeBytes(std::span<std::byte> out) {
  PFS_RETURN_IF_ERROR(Need(out.size()));
  std::memcpy(out.data(), in_.data() + pos_, out.size());
  pos_ += out.size();
  return OkStatus();
}

Status Deserializer::Skip(size_t n) {
  PFS_RETURN_IF_ERROR(Need(n));
  pos_ += n;
  return OkStatus();
}

}  // namespace pfs
