// Error propagation for the framework: Status (code + message) and the
// PFS_RETURN_IF_ERROR / PFS_CO_RETURN_IF_ERROR macro family.
//
// Library code does not throw; every fallible operation returns Status or
// Result<T> (see result.h). Coroutine variants of the macros use co_return,
// matching the Task<> coroutines in sched/.
#ifndef PFS_CORE_STATUS_H_
#define PFS_CORE_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace pfs {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,          // no such file, directory entry, or object
  kExists,            // object already exists
  kInvalidArgument,   // caller passed something nonsensical
  kIoError,           // device-level failure
  kNoSpace,           // device or segment space exhausted
  kNotDirectory,      // path component is not a directory
  kIsDirectory,       // operation not valid on a directory
  kNotEmpty,          // directory not empty on remove
  kCorrupt,           // on-disk structure failed validation
  kUnsupported,       // operation not implemented by this component
  kBusy,              // resource temporarily unavailable
  kOutOfRange,        // offset beyond end of object
  kNameTooLong,       // path component exceeds the on-disk limit
  kAborted,           // operation cancelled (e.g. shutdown)
};

// Human-readable name for an error code ("kNotFound" -> "not-found").
std::string_view ErrorCodeName(ErrorCode code);

// Value-type status. Ok status carries no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "not-found: /a/b missing".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

}  // namespace pfs

// Propagates a non-ok Status from a regular function.
#define PFS_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::pfs::Status pfs_status_ = (expr);        \
    if (!pfs_status_.ok()) return pfs_status_; \
  } while (0)

// Propagates a non-ok Status from a coroutine (Task<Status> / Task<Result<T>>).
#define PFS_CO_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::pfs::Status pfs_status_ = (expr);           \
    if (!pfs_status_.ok()) co_return pfs_status_; \
  } while (0)

#endif  // PFS_CORE_STATUS_H_
