// Size units and small common aliases.
#ifndef PFS_CORE_UNITS_H_
#define PFS_CORE_UNITS_H_

#include <cstdint>

namespace pfs {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Framework-wide defaults. Both are configurable per instantiation; these are
// the values used by the paper's experiments (4 KB file-system blocks on
// 512-byte-sector disks).
inline constexpr uint32_t kDefaultBlockSize = 4 * kKiB;
inline constexpr uint32_t kSectorSize = 512;

// Integer ceiling division for sizing calculations.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Rounds `a` up to a multiple of `b`.
constexpr uint64_t RoundUp(uint64_t a, uint64_t b) { return CeilDiv(a, b) * b; }

}  // namespace pfs

#endif  // PFS_CORE_UNITS_H_
