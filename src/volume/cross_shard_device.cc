#include "volume/cross_shard_device.h"

namespace pfs {

CrossShardDevice::CrossShardDevice(Scheduler* home, Scheduler* target, BlockDevice* inner)
    : home_(home),
      target_(target),
      inner_(inner),
      total_sectors_(inner->total_sectors()),
      sector_bytes_(inner->sector_bytes()) {
  BindHomeShard(home_, "cross_shard_device");
}

Task<Status> CrossShardDevice::Read(uint64_t sector, uint32_t count, std::span<std::byte> out) {
  PFS_ASSERT_SHARD();
  // The span stays valid for the whole round trip: the caller is suspended on
  // the home shard until the target's completion post lands, and only the
  // target-side coroutine touches the bytes in between.
  BlockDevice* inner = inner_;
  // Named thunk, not a temporary: GCC 12 double-destroys non-trivial
  // temporaries passed as coroutine arguments in an await full-expression.
  auto body = [inner, sector, count, out]() { return inner->Read(sector, count, out); };
  co_return co_await CallOn<Status>(home_, target_, body);
}

Task<Status> CrossShardDevice::Write(uint64_t sector, uint32_t count,
                                     std::span<const std::byte> in) {
  PFS_ASSERT_SHARD();
  BlockDevice* inner = inner_;
  auto body = [inner, sector, count, in]() { return inner->Write(sector, count, in); };
  co_return co_await CallOn<Status>(home_, target_, body);
}

}  // namespace pfs
