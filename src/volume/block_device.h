// The abstract block device the storage layouts are written against (the
// volume layer's contract). A BlockDevice is a flat array of sectors with
// asynchronous read/write; a DiskDriver partition slice satisfies it
// (SingleDiskVolume), and so do multi-disk compositions (ConcatVolume,
// StripedVolume, MirrorVolume). Because volumes sit below the buffer cache
// and above the drivers, the same volume code serves the simulator and the
// on-line file server — the cut-and-paste property one layer down.
#ifndef PFS_VOLUME_BLOCK_DEVICE_H_
#define PFS_VOLUME_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/status.h"
#include "sched/task.h"

namespace pfs {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Spans may be empty: the simulated backend accounts transfer time from
  // the sector count alone (the paper's "no real data is moved" rule).
  virtual Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) = 0;
  virtual Task<Status> Write(uint64_t sector, uint32_t count,
                             std::span<const std::byte> in) = 0;

  virtual uint64_t total_sectors() const = 0;
  virtual uint32_t sector_bytes() const = 0;

  // Scheduling hint: outstanding requests queued below this device. Mirrors
  // read from the member with the shortest queue; 0 when unknown.
  virtual size_t QueueDepthHint() const { return 0; }
};

}  // namespace pfs

#endif  // PFS_VOLUME_BLOCK_DEVICE_H_
