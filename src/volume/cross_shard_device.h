// A BlockDevice proxy that carries requests to the shard owning the backing
// device. SystemBuilder swaps one of these into a volume slice whenever a
// filesystem is pinned to a different shard than the physical disk backing
// that slice (e.g. a striped volume whose members were first claimed by a
// filesystem on another shard). The volume layer stays shard-oblivious: it
// awaits Read/Write as usual, and the proxy does the CallOn round trip.
#ifndef PFS_VOLUME_CROSS_SHARD_DEVICE_H_
#define PFS_VOLUME_CROSS_SHARD_DEVICE_H_

#include "sched/affinity.h"
#include "sched/shard.h"
#include "volume/block_device.h"

namespace pfs {

// Shard-affine on the *home* side: the proxy belongs to the calling
// filesystem's shard (it is that shard's doorway to the foreign device), so
// Read/Write assert the caller runs on `home` before hopping to `target`.
class CrossShardDevice final : public BlockDevice, public ShardAffine {
 public:
  // `home` is the shard the calling volume/filesystem runs on; `target` owns
  // `inner`. Geometry is captured at construction (it is immutable below the
  // volume layer) so the hot accessors never cross shards.
  CrossShardDevice(Scheduler* home, Scheduler* target, BlockDevice* inner);

  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override;
  Task<Status> Write(uint64_t sector, uint32_t count, std::span<const std::byte> in) override;

  uint64_t total_sectors() const override { return total_sectors_; }
  uint32_t sector_bytes() const override { return sector_bytes_; }
  // Queue depth lives on the owning shard; reading it here would race. Report
  // "unknown" — mirror steering across shards falls back to round-robin.
  size_t QueueDepthHint() const override { return 0; }

  BlockDevice* inner() { return inner_; }
  Scheduler* target() { return target_; }

 private:
  Scheduler* home_;
  Scheduler* target_;
  BlockDevice* inner_;
  uint64_t total_sectors_;
  uint32_t sector_bytes_;
};

}  // namespace pfs

#endif  // PFS_VOLUME_CROSS_SHARD_DEVICE_H_
