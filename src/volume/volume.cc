#include "volume/volume.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "system/component_registry.h"

namespace pfs {
namespace {

std::span<std::byte> SubSpan(std::span<std::byte> s, uint64_t off, uint64_t len) {
  return s.empty() ? s : s.subspan(static_cast<size_t>(off), static_cast<size_t>(len));
}

std::span<const std::byte> SubSpan(std::span<const std::byte> s, uint64_t off, uint64_t len) {
  return s.empty() ? s : s.subspan(static_cast<size_t>(off), static_cast<size_t>(len));
}

// Countdown join for a fan-out: lives in the issuing coroutine's frame, so
// the workers need no joinable Thread records (they are spawned transient
// and reclaimed on finish).
struct FanoutJoin {
  FanoutJoin(Scheduler* sched, size_t n) : remaining(n), done(sched) {}
  size_t remaining;
  Event done;
};

// One member's share of a split request, run as its own scheduler thread so
// the members seek and transfer concurrently. The worker inherits the
// issuer's TraceContext at spawn, so its fragment span carries the right id.
Task<> FragmentIo(Scheduler* sched, Volume* volume, bool is_write, const Volume::Fragment* f,
                  std::span<std::byte> out, std::span<const std::byte> in, Status* result,
                  FanoutJoin* join) {
  Thread* self = sched->current_thread();
  const bool traced = self != nullptr && self->trace.active();
  const TimePoint begin = sched->Now();
  *result = co_await volume->IoFragment(is_write, *f, out, in);
  volume->NoteFragmentDone(f->member, begin);
  if (traced) {
    RecordSpan(self->trace, TraceStage::kFragment, self->id(), begin, sched->Now(), f->count);
  }
  if (--join->remaining == 0) {
    join->done.Signal();
  }
}

}  // namespace

Volume::Volume(Scheduler* sched, std::string name, std::vector<BlockDevice*> members)
    : sched_(sched), name_(std::move(name)), members_(std::move(members)) {
  PFS_CHECK_MSG(!members_.empty(), "volume needs at least one member");
  BindHomeShard(sched_);  // all entry paths assert via OpBegin()
  sector_bytes_ = members_[0]->sector_bytes();
  for (const BlockDevice* m : members_) {
    PFS_CHECK_MSG(m->sector_bytes() == sector_bytes_, "volume members disagree on sector size");
  }
  member_reads_.resize(members_.size());
  member_writes_.resize(members_.size());
}

Task<Status> Volume::IoFragment(bool is_write, const Fragment& f, std::span<std::byte> out,
                                std::span<const std::byte> in) {
  BlockDevice* member = members_[f.member];
  const uint64_t bytes = static_cast<uint64_t>(f.count) * sector_bytes_;
  if (f.segments.empty()) {
    if (is_write) {
      co_return co_await member->Write(f.sector, f.count, SubSpan(in, f.byte_offset, bytes));
    }
    co_return co_await member->Read(f.sector, f.count, SubSpan(out, f.byte_offset, bytes));
  }
  // Scattered caller-buffer segments (striping interleaves members in the
  // logical address space). With no data to move — the simulated backend —
  // the merged request just goes down with an empty span.
  if (is_write ? in.empty() : out.empty()) {
    if (is_write) {
      co_return co_await member->Write(f.sector, f.count, {});
    }
    co_return co_await member->Read(f.sector, f.count, {});
  }
  std::vector<std::byte> bounce(static_cast<size_t>(bytes));
  bounce_bytes_.Inc(bytes);
  if (is_write) {
    uint64_t off = 0;
    for (const FragmentSegment& seg : f.segments) {
      const uint64_t len = static_cast<uint64_t>(seg.count) * sector_bytes_;
      std::memcpy(bounce.data() + off, in.data() + seg.byte_offset, len);
      off += len;
    }
    co_return co_await member->Write(f.sector, f.count, bounce);
  }
  const Status status = co_await member->Read(f.sector, f.count, bounce);
  if (status.ok()) {
    uint64_t off = 0;
    for (const FragmentSegment& seg : f.segments) {
      const uint64_t len = static_cast<uint64_t>(seg.count) * sector_bytes_;
      std::memcpy(out.data() + seg.byte_offset, bounce.data() + off, len);
      off += len;
    }
  }
  co_return status;
}

std::vector<Volume::Fragment> Volume::CoalesceFragments(std::vector<Fragment> fragments) {
  if (!coalesce_ || fragments.size() < 2) {
    return fragments;
  }
  std::vector<Fragment> out;
  out.reserve(fragments.size());
  // Where each member's growing fragment sits in `out`; merging only with
  // the member's latest fragment keeps device order within the member.
  std::vector<ptrdiff_t> last(members_.size(), -1);
  for (Fragment& piece : fragments) {
    const ptrdiff_t idx = last[piece.member];
    if (idx >= 0 && out[static_cast<size_t>(idx)].sector +
                            out[static_cast<size_t>(idx)].count == piece.sector) {
      Fragment& f = out[static_cast<size_t>(idx)];
      if (f.segments.empty() &&
          f.byte_offset + static_cast<uint64_t>(f.count) * sector_bytes_ ==
              piece.byte_offset) {
        f.count += piece.count;  // contiguous in the caller's buffer too
      } else {
        if (f.segments.empty()) {
          f.segments.push_back({f.byte_offset, f.count});
        }
        FragmentSegment& back = f.segments.back();
        if (back.byte_offset + static_cast<uint64_t>(back.count) * sector_bytes_ ==
            piece.byte_offset) {
          back.count += piece.count;
        } else {
          f.segments.push_back({piece.byte_offset, piece.count});
        }
        f.count += piece.count;
      }
      coalesced_.Inc();
      continue;
    }
    last[piece.member] = static_cast<ptrdiff_t>(out.size());
    out.push_back(std::move(piece));
  }
  return out;
}

Task<Status> Volume::RunFragments(bool is_write, std::span<std::byte> out,
                                  std::span<const std::byte> in,
                                  const std::vector<Fragment>& fragments,
                                  std::vector<Status>* per_fragment) {
  const TimePoint op_begin = OpBegin();
  requests_.Inc();
  // Alloc-free fan-out tracking; members beyond 64 share the last bit (the
  // histogram clamps far earlier anyway).
  uint64_t seen = 0;
  int distinct = 0;
  uint64_t total_count = 0;
  for (const Fragment& f : fragments) {
    const uint64_t bit = uint64_t{1} << std::min<size_t>(f.member, 63);
    if ((seen & bit) == 0) {
      seen |= bit;
      ++distinct;
    }
    total_count += f.count;
    (is_write ? member_writes_ : member_reads_)[f.member].Inc();
  }
  fanout_.Record(static_cast<double>(distinct));
  if (fragments.empty()) {
    OpFinish(op_begin, 0);
    co_return OkStatus();
  }
  if (fragments.size() == 1) {
    const Status status = co_await IoFragment(is_write, fragments[0], out, in);
    NoteFragmentDone(fragments[0].member, op_begin);
    if (per_fragment != nullptr) {
      per_fragment->assign(1, status);
    }
    const Thread* self = sched_->current_thread();
    if (self != nullptr && self->trace.active()) {
      // The lone fragment ran inline; give it its span here so single- and
      // multi-fragment requests look alike in the trace.
      RecordSpan(self->trace, TraceStage::kFragment, self->id(), op_begin, sched_->Now(),
                 fragments[0].count);
    }
    OpFinish(op_begin, total_count);
    co_return status;
  }
  // "Split" means partitioned into distinct address pieces — a mirror's
  // whole-range replica writes fan out without splitting anything. A
  // coalesced striped fragment can carry the same member-local sector and
  // count as its siblings, but its segment list marks it as a partition.
  for (size_t i = 0; i < fragments.size(); ++i) {
    if (!fragments[i].segments.empty() ||
        (i > 0 && (fragments[i].sector != fragments[0].sector ||
                   fragments[i].count != fragments[0].count))) {
      split_requests_.Inc();
      break;
    }
  }
  std::vector<Status> results(fragments.size(), Status(ErrorCode::kAborted));
  FanoutJoin join(sched_, fragments.size());
  for (size_t i = 0; i < fragments.size(); ++i) {
    sched_->SpawnTransient(name_ + ".io", FragmentIo(sched_, this, is_write, &fragments[i], out,
                                                     in, &results[i], &join));
  }
  while (join.remaining > 0) {
    co_await join.done.Wait();
  }
  Status first_error = OkStatus();
  for (const Status& s : results) {
    if (!s.ok() && first_error.ok()) {
      first_error = s;
    }
  }
  if (per_fragment != nullptr) {
    *per_fragment = std::move(results);
  }
  OpFinish(op_begin, total_count);
  co_return first_error;
}

void Volume::OpFinish(TimePoint begin, uint64_t count) {
  const TimePoint end = sched_->Now();
  latency_.Record(end - begin);
  if (m_latency_ != nullptr) {
    m_requests_->Inc();
    m_latency_->RecordDuration(end - begin);
  }
  const Thread* self = sched_->current_thread();
  if (self != nullptr && self->trace.active()) {
    RecordSpan(self->trace, TraceStage::kVolume, self->id(), begin, end, count);
  }
}

void Volume::BindMetrics(MetricRegistry* registry) {
  const std::string label = "volume=\"" + name_ + "\"";
  m_requests_ = registry->Counter("volume_requests_total", "Requests entering this volume",
                                  label);
  m_latency_ = registry->Histogram("volume_request_seconds",
                                   "Whole-request latency at the volume layer", label, 1e-9);
  m_member_latency_.resize(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    m_member_latency_[i] = registry->Histogram(
        "volume_fragment_seconds", "Per-member fragment service latency",
        label + ",member=\"" + std::to_string(i) + "\"", 1e-9);
  }
}

void Volume::RecordFragmentLatency(size_t member, TimePoint begin) {
  m_member_latency_[member]->RecordDuration(sched_->Now() - begin);
}

std::string Volume::StatReport(bool with_histograms) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "kind=%s members=%zu sectors=%llu requests=%llu split=%llu "
                "coalesced=%llu bounce=%lluB\nfan-out: %s\nlatency: %s\n",
                kind(), members_.size(), static_cast<unsigned long long>(total_sectors()),
                static_cast<unsigned long long>(requests_.value()),
                static_cast<unsigned long long>(split_requests_.value()),
                static_cast<unsigned long long>(coalesced_.value()),
                static_cast<unsigned long long>(bounce_bytes_.value()),
                fanout_.Summary().c_str(), latency_.Summary().c_str());
  std::string out(buf);
  for (size_t i = 0; i < members_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "member %zu: reads=%llu writes=%llu\n", i,
                  static_cast<unsigned long long>(member_reads_[i].value()),
                  static_cast<unsigned long long>(member_writes_[i].value()));
    out += buf;
  }
  if (with_histograms) {
    out += "fan-out histogram:\n" + fanout_.BucketDump();
  }
  return out;
}

std::string Volume::StatJson() const {
  char buf[256];
  std::string out = "{\"kind\":\"";
  out += kind();
  out += "\",\"members\":[";
  for (size_t i = 0; i < members_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"reads\":%llu,\"writes\":%llu}", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(member_reads_[i].value()),
                  static_cast<unsigned long long>(member_writes_[i].value()));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"requests\":%llu,\"split_requests\":%llu,\"coalesced\":%llu,"
                "\"bounce_bytes\":%llu,\"fanout_mean\":%.3f,",
                static_cast<unsigned long long>(requests_.value()),
                static_cast<unsigned long long>(split_requests_.value()),
                static_cast<unsigned long long>(coalesced_.value()),
                static_cast<unsigned long long>(bounce_bytes_.value()), fanout_.mean());
  out += buf;
  // When bound to the metrics registry, the percentile object comes from the
  // cumulative HDR histogram — the same source a /metrics scrape reads — so
  // the two always agree. Unbound systems keep the legacy interval histogram.
  if (m_latency_ != nullptr) {
    out += m_latency_->LatencyMsJsonObject("latency_ms");
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\"latency_ms\":{\"mean\":%.4f,\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f}",
                  latency_.mean().ToMillisF(), latency_.Percentile(0.5).ToMillisF(),
                  latency_.Percentile(0.95).ToMillisF(),
                  latency_.Percentile(0.99).ToMillisF());
    out += buf;
  }
  out += "}";
  return out;
}

void Volume::StatResetInterval() {
  fanout_.Reset();
  latency_.Reset();
}

// -- SingleDiskVolume --------------------------------------------------------

SingleDiskVolume::SingleDiskVolume(Scheduler* sched, std::string name, BlockDevice* backing,
                                   uint64_t start_sector, uint64_t nsectors)
    : Volume(sched, std::move(name), {backing}), start_(start_sector), nsectors_(nsectors) {
  PFS_CHECK_MSG(start_ + nsectors_ <= backing->total_sectors(),
                "partition slice beyond the end of the backing device");
}

SingleDiskVolume::SingleDiskVolume(Scheduler* sched, std::string name, BlockDevice* backing)
    : SingleDiskVolume(sched, std::move(name), backing, 0, backing->total_sectors()) {}

// The hottest path in the system (every cache miss and flush of the default
// configuration, and every fragment of a composite volume): no allocations,
// just the offset and the counters.
Task<Status> SingleDiskVolume::Read(uint64_t sector, uint32_t count,
                                    std::span<std::byte> out) {
  PFS_CHECK(sector + count <= nsectors_);
  const TimePoint op_begin = OpBegin();
  requests_.Inc();
  member_reads_[0].Inc();
  fanout_.Record(1);
  const Status status = co_await members_[0]->Read(start_ + sector, count, out);
  NoteFragmentDone(0, op_begin);
  OpFinish(op_begin, count);
  co_return status;
}

Task<Status> SingleDiskVolume::Write(uint64_t sector, uint32_t count,
                                     std::span<const std::byte> in) {
  PFS_CHECK(sector + count <= nsectors_);
  const TimePoint op_begin = OpBegin();
  requests_.Inc();
  member_writes_[0].Inc();
  fanout_.Record(1);
  const Status status = co_await members_[0]->Write(start_ + sector, count, in);
  NoteFragmentDone(0, op_begin);
  OpFinish(op_begin, count);
  co_return status;
}

// -- ConcatVolume ------------------------------------------------------------

namespace {
std::vector<uint64_t> MemberSectors(const std::vector<BlockDevice*>& members) {
  std::vector<uint64_t> sizes;
  sizes.reserve(members.size());
  for (const BlockDevice* m : members) {
    sizes.push_back(m->total_sectors());
  }
  return sizes;
}
}  // namespace

uint64_t ConcatVolume::CapacitySectors(const std::vector<uint64_t>& member_sectors) {
  uint64_t total = 0;
  for (uint64_t s : member_sectors) {
    total += s;
  }
  return total;
}

ConcatVolume::ConcatVolume(Scheduler* sched, std::string name,
                           std::vector<BlockDevice*> members)
    : Volume(sched, std::move(name), std::move(members)) {
  for (const BlockDevice* m : members_) {
    member_start_.push_back(total_);
    total_ += m->total_sectors();  // the running sum IS CapacitySectors()
  }
}

std::vector<Volume::Fragment> ConcatVolume::Map(uint64_t sector, uint32_t count) {
  PFS_CHECK(sector + count <= total_);
  std::vector<Fragment> fragments;
  size_t m = 0;
  while (m + 1 < members_.size() && member_start_[m + 1] <= sector) {
    ++m;
  }
  uint64_t byte_offset = 0;
  uint32_t remaining = count;
  while (remaining > 0) {
    const uint64_t local = sector - member_start_[m];
    const uint64_t avail = members_[m]->total_sectors() - local;
    const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(remaining, avail));
    fragments.push_back({m, local, n, byte_offset, {}});
    sector += n;
    remaining -= n;
    byte_offset += static_cast<uint64_t>(n) * sector_bytes_;
    ++m;
  }
  return CoalesceFragments(std::move(fragments));
}

Task<Status> ConcatVolume::Read(uint64_t sector, uint32_t count, std::span<std::byte> out) {
  const std::vector<Fragment> fragments = Map(sector, count);
  co_return co_await RunFragments(false, out, {}, fragments);
}

Task<Status> ConcatVolume::Write(uint64_t sector, uint32_t count,
                                 std::span<const std::byte> in) {
  const std::vector<Fragment> fragments = Map(sector, count);
  co_return co_await RunFragments(true, {}, in, fragments);
}

// -- StripedVolume -----------------------------------------------------------

uint64_t StripedVolume::CapacitySectors(const std::vector<uint64_t>& member_sectors,
                                        uint32_t stripe_unit_sectors) {
  uint64_t min_sectors = member_sectors[0];
  for (uint64_t s : member_sectors) {
    min_sectors = std::min(min_sectors, s);
  }
  const uint64_t units_per_member = min_sectors / stripe_unit_sectors;
  return units_per_member * member_sectors.size() * stripe_unit_sectors;
}

StripedVolume::StripedVolume(Scheduler* sched, std::string name,
                             std::vector<BlockDevice*> members,
                             uint32_t stripe_unit_sectors)
    : Volume(sched, std::move(name), std::move(members)), unit_(stripe_unit_sectors) {
  PFS_CHECK_MSG(unit_ > 0, "stripe unit must be at least one sector");
  total_ = CapacitySectors(MemberSectors(members_), unit_);
  PFS_CHECK_MSG(total_ > 0, "stripe unit larger than the smallest member");
}

std::pair<size_t, uint64_t> StripedVolume::MapSector(uint64_t sector) const {
  const uint64_t unit = sector / unit_;
  const size_t member = static_cast<size_t>(unit % members_.size());
  const uint64_t member_unit = unit / members_.size();
  return {member, member_unit * unit_ + sector % unit_};
}

std::vector<Volume::Fragment> StripedVolume::Map(uint64_t sector, uint32_t count) {
  PFS_CHECK(sector + count <= total_);
  std::vector<Fragment> fragments;
  uint64_t byte_offset = 0;
  uint32_t remaining = count;
  while (remaining > 0) {
    const auto [member, member_sector] = MapSector(sector);
    const uint32_t in_unit = static_cast<uint32_t>(sector % unit_);
    const uint32_t n = std::min(remaining, unit_ - in_unit);
    fragments.push_back({member, member_sector, n, byte_offset, {}});
    sector += n;
    remaining -= n;
    byte_offset += static_cast<uint64_t>(n) * sector_bytes_;
  }
  return CoalesceFragments(std::move(fragments));
}

Task<Status> StripedVolume::Read(uint64_t sector, uint32_t count, std::span<std::byte> out) {
  const std::vector<Fragment> fragments = Map(sector, count);
  co_return co_await RunFragments(false, out, {}, fragments);
}

Task<Status> StripedVolume::Write(uint64_t sector, uint32_t count,
                                  std::span<const std::byte> in) {
  const std::vector<Fragment> fragments = Map(sector, count);
  co_return co_await RunFragments(true, {}, in, fragments);
}

// -- MirrorVolume ------------------------------------------------------------

uint64_t MirrorVolume::CapacitySectors(const std::vector<uint64_t>& member_sectors) {
  uint64_t min_sectors = member_sectors[0];
  for (uint64_t s : member_sectors) {
    min_sectors = std::min(min_sectors, s);
  }
  return min_sectors;
}

MirrorVolume::MirrorVolume(Scheduler* sched, std::string name,
                           std::vector<BlockDevice*> members)
    : Volume(sched, std::move(name), std::move(members)), failed_(members_.size(), false) {
  total_ = CapacitySectors(MemberSectors(members_));
  member_missed_.resize(members_.size());
  debt_.resize(members_.size());
  down_since_.resize(members_.size());
  inflight_missing_.resize(members_.size());
}

void MirrorVolume::MarkMemberFailed(size_t i) {
  if (failed_[i]) {
    return;
  }
  failed_[i] = true;
  down_since_[i] = sched_->Now();
  if (failed_count_++ == 0) {
    degraded_since_ = sched_->Now();
  }
}

Status MirrorVolume::SetMemberFailed(size_t i, bool failed) {
  PFS_CHECK(i < failed_.size());
  if (failed) {
    MarkMemberFailed(i);
    return OkStatus();
  }
  if (!failed_[i]) {
    return OkStatus();
  }
  if (!debt_[i].empty()) {
    reinstate_refusals_.Inc();
    return Status(ErrorCode::kUnsupported,
                  "mirror " + name_ + ": member " + std::to_string(i) + " owes " +
                      std::to_string(debt_sectors(i) * sector_bytes_) +
                      " byte(s) of rebuild debt; reinstating it without a rebuild would "
                      "serve stale data");
  }
  if (inflight_missing_[i] > 0) {
    reinstate_refusals_.Inc();
    return Status(ErrorCode::kUnsupported,
                  "mirror " + name_ + ": " + std::to_string(inflight_missing_[i]) +
                      " in-flight write(s) skipped member " + std::to_string(i) +
                      "; reinstating before their debt is recorded would serve stale "
                      "data");
  }
  failed_[i] = false;
  ++repairs_;
  repair_total_ns_ += (sched_->Now() - down_since_[i]).nanos();
  PFS_CHECK(failed_count_ > 0);
  if (--failed_count_ == 0) {
    degraded_ns_ += (sched_->Now() - degraded_since_).nanos();
  }
  return OkStatus();
}

void MirrorVolume::AddDebt(size_t i, uint64_t sector, uint32_t count) {
  if (count == 0) {
    return;
  }
  std::map<uint64_t, uint64_t>& debt = debt_[i];
  uint64_t start = sector;
  uint64_t end = sector + count;
  auto it = debt.lower_bound(start);
  if (it != debt.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {  // touching counts as mergeable
      start = prev->first;
      end = std::max(end, prev->second);
      debt.erase(prev);
    }
  }
  while (it != debt.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = debt.erase(it);
  }
  debt.emplace(start, end);
  UpdateDebtGauge();
}

void MirrorVolume::UpdateDebtGauge() {
  if (m_debt_bytes_ != nullptr) {
    m_debt_bytes_->Set(static_cast<int64_t>(rebuild_debt_bytes()));
  }
}

void MirrorVolume::BindMetrics(MetricRegistry* registry) {
  Volume::BindMetrics(registry);
  m_debt_bytes_ = registry->Gauge("volume_rebuild_debt_bytes",
                                  "Outstanding mirror rebuild debt in bytes",
                                  "volume=\"" + name_ + "\"");
}

uint64_t MirrorVolume::debt_sectors(size_t i) const {
  uint64_t total = 0;
  for (const auto& [start, end] : debt_[i]) {
    total += end - start;
  }
  return total;
}

uint64_t MirrorVolume::rebuild_debt_bytes() const {
  uint64_t sectors = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    sectors += debt_sectors(i);
  }
  return sectors * sector_bytes_;
}

std::optional<std::pair<uint64_t, uint32_t>> MirrorVolume::PopDebtExtent(
    size_t i, uint32_t max_sectors) {
  PFS_CHECK(i < debt_.size());
  std::map<uint64_t, uint64_t>& debt = debt_[i];
  if (debt.empty() || max_sectors == 0) {
    return std::nullopt;
  }
  auto it = debt.begin();
  const uint64_t start = it->first;
  const uint64_t end = it->second;
  const uint64_t take = std::min<uint64_t>(end - start, max_sectors);
  debt.erase(it);
  if (start + take < end) {
    debt.emplace(start + take, end);
  }
  UpdateDebtGauge();
  return std::make_pair(start, static_cast<uint32_t>(take));
}

void MirrorVolume::PushDebtExtent(size_t i, uint64_t sector, uint32_t count) {
  AddDebt(i, sector, count);
}

Duration MirrorVolume::degraded_time() const {
  int64_t ns = degraded_ns_;
  if (failed_count_ > 0) {
    ns += (sched_->Now() - degraded_since_).nanos();
  }
  return Duration::Nanos(ns);
}

Duration MirrorVolume::mean_time_to_repair() const {
  return repairs_ == 0 ? Duration()
                       : Duration::Nanos(repair_total_ns_ / static_cast<int64_t>(repairs_));
}

size_t MirrorVolume::live_member_count() const {
  size_t live = 0;
  for (bool f : failed_) {
    live += f ? 0 : 1;
  }
  return live;
}

std::vector<size_t> MirrorVolume::ReadOrder() {
  std::vector<size_t> live;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!failed_[i]) {
      live.push_back(i);
    }
  }
  if (live.size() < 2) {
    return live;
  }
  std::stable_sort(live.begin(), live.end(), [this](size_t a, size_t b) {
    return members_[a]->QueueDepthHint() < members_[b]->QueueDepthHint();
  });
  // Rotate the equal-shortest prefix so members with identical queues share
  // the read load instead of member 0 taking everything.
  const size_t d0 = members_[live[0]]->QueueDepthHint();
  size_t ties = 1;
  while (ties < live.size() && members_[live[ties]]->QueueDepthHint() == d0) {
    ++ties;
  }
  if (ties > 1) {
    std::rotate(live.begin(), live.begin() + static_cast<ptrdiff_t>(rr_++ % ties),
                live.begin() + static_cast<ptrdiff_t>(ties));
  }
  return live;
}

Task<Status> MirrorVolume::Read(uint64_t sector, uint32_t count, std::span<std::byte> out) {
  PFS_CHECK(sector + count <= total_);
  const TimePoint op_begin = OpBegin();
  requests_.Inc();
  const std::vector<size_t> order = ReadOrder();
  if (order.empty()) {
    fanout_.Record(0);
    OpFinish(op_begin, count);
    co_return Status(ErrorCode::kIoError, "mirror " + name_ + ": no live members");
  }
  if (order.size() < members_.size()) {
    degraded_reads_.Inc();
  }
  Status last = OkStatus();
  for (size_t i = 0; i < order.size(); ++i) {
    member_reads_[order[i]].Inc();
    last = co_await members_[order[i]]->Read(sector, count, out);
    if (last.ok()) {
      // Members whose attempts errored are failed out now that a survivor
      // proved the data is available — otherwise a dead member's empty
      // queue keeps winning ReadOrder and every read pays a doomed attempt
      // first, forever. (All-members-erroring is left unmarked: that looks
      // transient, and failing everyone would brick the volume.)
      for (size_t j = 0; j < i; ++j) {
        MarkMemberFailed(order[j]);
      }
      fanout_.Record(static_cast<double>(i + 1));  // members actually touched
      OpFinish(op_begin, count);
      co_return last;
    }
  }
  fanout_.Record(static_cast<double>(order.size()));
  OpFinish(op_begin, count);
  co_return last;
}

Task<Status> MirrorVolume::Write(uint64_t sector, uint32_t count,
                                 std::span<const std::byte> in) {
  PFS_CHECK(sector + count <= total_);
  std::vector<Fragment> fragments;
  std::vector<size_t> skipped;  // failed at issue: they will miss this write
  for (size_t m = 0; m < members_.size(); ++m) {
    if (!failed_[m]) {
      fragments.push_back({m, sector, count, 0, {}});
    } else {
      skipped.push_back(m);
    }
  }
  if (fragments.empty()) {
    requests_.Inc();
    fanout_.Record(0);
    co_return Status(ErrorCode::kIoError, "mirror " + name_ + ": no live members");
  }
  // While this write is in flight, the skipped members' debt for it is not
  // yet recorded — block their reinstatement until it is (or until the
  // write turns out to have failed everywhere).
  for (size_t m : skipped) {
    ++inflight_missing_[m];
  }
  // Per-fragment statuses, not just the first error: a member whose write
  // fails while a replica succeeds must leave the mirror degraded — treating
  // it as still live would let later reads return divergent data.
  std::vector<Status> results;
  const Status first_error = co_await RunFragments(true, {}, in, fragments, &results);
  for (size_t m : skipped) {
    --inflight_missing_[m];
  }
  size_t successes = 0;
  for (const Status& s : results) {
    successes += s.ok() ? 1 : 0;
  }
  if (successes == 0) {
    // Every replica refused the write: nothing diverged (the caller sees
    // the error, no member took the data, no debt accrues), and failing
    // everyone out would brick the volume on a transient glitch — same
    // policy as Read.
    co_return first_error;
  }
  // A replica persisted it: every member that did not — skipped at issue,
  // or errored just now — owes this write as rebuild debt. The issue-time
  // set, not the current failed_ flags: a member that took the write and
  // was failed out mid-flight holds the data (no debt), and one skipped at
  // issue owes it even if something reinstated it meanwhile.
  for (size_t m : skipped) {
    missed_writes_.Inc();
    member_missed_[m].Inc();
    AddDebt(m, sector, count);
  }
  for (size_t i = 0; i < fragments.size(); ++i) {
    if (!results[i].ok()) {
      MarkMemberFailed(fragments[i].member);
      missed_writes_.Inc();
      member_missed_[fragments[i].member].Inc();
      AddDebt(fragments[i].member, sector, count);
    }
  }
  co_return OkStatus();
}

std::string MirrorVolume::StatReport(bool with_histograms) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "live=%zu/%zu missed-writes=%llu degraded-reads=%llu\n"
                "degraded=%.3fms repairs=%llu mttr=%.3fms refused-reinstates=%llu "
                "debt=%lluB rebuilt=%lluB\n",
                live_member_count(), members_.size(),
                static_cast<unsigned long long>(missed_writes_.value()),
                static_cast<unsigned long long>(degraded_reads_.value()),
                degraded_time().ToMillisF(), static_cast<unsigned long long>(repairs_),
                mean_time_to_repair().ToMillisF(),
                static_cast<unsigned long long>(reinstate_refusals_.value()),
                static_cast<unsigned long long>(rebuild_debt_bytes()),
                static_cast<unsigned long long>(rebuilt_sectors_.value() * sector_bytes_));
  return Volume::StatReport(with_histograms) + buf;
}

std::string MirrorVolume::StatJson() const {
  std::string out = Volume::StatJson();
  out.pop_back();  // extend the base object in place
  const uint64_t rebuilt_bytes = rebuilt_sectors_.value() * sector_bytes_;
  const double rebuild_s = static_cast<double>(rebuild_ns_) / 1e9;
  const double rebuild_kbps = rebuild_s > 0 ? static_cast<double>(rebuilt_bytes) / rebuild_s / 1024.0 : 0.0;
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                ",\"live_members\":%zu,\"missed_writes\":%llu,\"degraded_reads\":%llu,"
                "\"reinstate_refusals\":%llu,\"rebuild_debt_bytes\":%llu,"
                "\"degraded_ms\":%.3f,\"repairs\":%llu,\"mttr_ms\":%.3f,"
                "\"rebuilt_bytes\":%llu,\"rebuild_ms\":%.3f,\"rebuild_kbps\":%.1f}",
                live_member_count(), static_cast<unsigned long long>(missed_writes_.value()),
                static_cast<unsigned long long>(degraded_reads_.value()),
                static_cast<unsigned long long>(reinstate_refusals_.value()),
                static_cast<unsigned long long>(rebuild_debt_bytes()),
                degraded_time().ToMillisF(), static_cast<unsigned long long>(repairs_),
                mean_time_to_repair().ToMillisF(),
                static_cast<unsigned long long>(rebuilt_bytes),
                static_cast<double>(rebuild_ns_) / 1e6, rebuild_kbps);
  return out + buf;
}

namespace {

// Wraps each slice in a per-member partition volume ("<name>.m<j>"), keeping
// the wrappers alive in `parts` and returning the raw member devices a
// composite volume composes.
std::vector<BlockDevice*> WrapSlices(Scheduler* sched, const std::string& name,
                                     const std::vector<VolumeSliceRef>& slices,
                                     std::vector<std::unique_ptr<Volume>>* parts) {
  std::vector<BlockDevice*> members;
  for (size_t j = 0; j < slices.size(); ++j) {
    auto part = std::make_unique<SingleDiskVolume>(sched, name + ".m" + std::to_string(j),
                                                   slices[j].backing, slices[j].start_sector,
                                                   slices[j].nsectors);
    members.push_back(part.get());
    parts->push_back(std::move(part));
  }
  return members;
}

std::vector<uint64_t> SliceSectors(const std::vector<VolumeSliceRef>& slices) {
  std::vector<uint64_t> sectors;
  for (const VolumeSliceRef& s : slices) {
    sectors.push_back(s.nsectors);
  }
  return sectors;
}

uint32_t StripeUnitSectors(const VolumeSpec& spec, uint32_t sector_bytes) {
  return static_cast<uint32_t>(spec.stripe_unit_kb * kKiB / sector_bytes);
}

}  // namespace

void RegisterBuiltinVolumeKinds() {
  {
    VolumeKindFamily::Value single;
    single.min_members = 1;
    single.max_members = 1;
    single.capacity_sectors = [](const std::vector<uint64_t>& member_sectors,
                                 const VolumeSpec&, uint32_t,
                                 const std::string&) -> Result<uint64_t> {
      return member_sectors[0];
    };
    single.assemble = [](Scheduler* sched, const std::string& name,
                         const std::vector<VolumeSliceRef>& slices, const VolumeSpec&,
                         uint32_t, std::vector<std::unique_ptr<Volume>>*) {
      return std::unique_ptr<Volume>(std::make_unique<SingleDiskVolume>(
          sched, name, slices[0].backing, slices[0].start_sector, slices[0].nsectors));
    };
    VolumeKindRegistry::Register("single", std::move(single));
  }
  {
    VolumeKindFamily::Value concat;
    concat.capacity_sectors = [](const std::vector<uint64_t>& member_sectors,
                                 const VolumeSpec&, uint32_t,
                                 const std::string&) -> Result<uint64_t> {
      return ConcatVolume::CapacitySectors(member_sectors);
    };
    concat.assemble = [](Scheduler* sched, const std::string& name,
                         const std::vector<VolumeSliceRef>& slices, const VolumeSpec&,
                         uint32_t, std::vector<std::unique_ptr<Volume>>* parts) {
      return std::unique_ptr<Volume>(std::make_unique<ConcatVolume>(
          sched, name, WrapSlices(sched, name, slices, parts)));
    };
    VolumeKindRegistry::Register("concat", std::move(concat));
  }
  {
    VolumeKindFamily::Value striped;
    striped.min_members = 2;
    striped.validate = [](const VolumeSpec& spec, uint32_t sector_bytes,
                          const std::string& field) {
      if (spec.stripe_unit_kb == 0) {
        return Status(ErrorCode::kInvalidArgument,
                      field + ".stripe_unit_kb: stripe unit must be positive");
      }
      // Units must be whole sectors, or the unit arithmetic truncates (and a
      // unit smaller than one sector would divide by zero).
      if (spec.stripe_unit_kb * kKiB % sector_bytes != 0) {
        return Status(ErrorCode::kInvalidArgument,
                      field + ".stripe_unit_kb: " + std::to_string(spec.stripe_unit_kb) +
                          " KiB is not a multiple of the " + std::to_string(sector_bytes) +
                          "-byte sector");
      }
      return OkStatus();
    };
    striped.capacity_sectors = [](const std::vector<uint64_t>& member_sectors,
                                  const VolumeSpec& spec, uint32_t sector_bytes,
                                  const std::string& field) -> Result<uint64_t> {
      const uint64_t capacity = StripedVolume::CapacitySectors(
          member_sectors, StripeUnitSectors(spec, sector_bytes));
      if (capacity == 0) {
        return Status(ErrorCode::kInvalidArgument,
                      field +
                          ".stripe_unit_kb: one stripe unit exceeds the smallest member "
                          "slice");
      }
      return capacity;
    };
    striped.assemble = [](Scheduler* sched, const std::string& name,
                          const std::vector<VolumeSliceRef>& slices, const VolumeSpec& spec,
                          uint32_t sector_bytes, std::vector<std::unique_ptr<Volume>>* parts) {
      return std::unique_ptr<Volume>(std::make_unique<StripedVolume>(
          sched, name, WrapSlices(sched, name, slices, parts),
          StripeUnitSectors(spec, sector_bytes)));
    };
    VolumeKindRegistry::Register("striped", std::move(striped));
  }
  {
    VolumeKindFamily::Value mirror;
    mirror.min_members = 2;
    mirror.allows_degraded_start = true;
    mirror.validate = [](const VolumeSpec& spec, uint32_t, const std::string& field) {
      for (size_t i = 0; i < spec.failed_members.size(); ++i) {
        const int m = spec.failed_members[i];
        if (m < 0 || static_cast<size_t>(m) >= spec.members.size()) {
          return Status(ErrorCode::kInvalidArgument,
                        field + ".failed_members: position " + std::to_string(m) +
                            " outside the volume's " + std::to_string(spec.members.size()) +
                            " member(s)");
        }
        for (size_t prev = 0; prev < i; ++prev) {
          if (spec.failed_members[prev] == m) {
            return Status(ErrorCode::kInvalidArgument,
                          field + ".failed_members: position " + std::to_string(m) +
                              " listed twice");
          }
        }
      }
      if (spec.failed_members.size() >= spec.members.size()) {
        return Status(ErrorCode::kInvalidArgument,
                      field + ".failed_members: at least one member must stay live");
      }
      return OkStatus();
    };
    mirror.capacity_sectors = [](const std::vector<uint64_t>& member_sectors,
                                 const VolumeSpec&, uint32_t,
                                 const std::string&) -> Result<uint64_t> {
      return MirrorVolume::CapacitySectors(member_sectors);
    };
    mirror.assemble = [](Scheduler* sched, const std::string& name,
                         const std::vector<VolumeSliceRef>& slices, const VolumeSpec& spec,
                         uint32_t, std::vector<std::unique_ptr<Volume>>* parts) {
      auto volume = std::make_unique<MirrorVolume>(
          sched, name, WrapSlices(sched, name, slices, parts));
      for (int m : spec.failed_members) {
        // Failing a member out (no rebuild debt yet) always succeeds.
        PFS_CHECK(volume->SetMemberFailed(static_cast<size_t>(m), true).ok());
      }
      return std::unique_ptr<Volume>(std::move(volume));
    };
    VolumeKindRegistry::Register("mirror", std::move(mirror));
  }
}

}  // namespace pfs
