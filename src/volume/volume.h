// Volumes: BlockDevice compositions between the storage layouts and the
// disk drivers.
//
//   SingleDiskVolume  one partition slice of one device (the seed behavior)
//   ConcatVolume      member address spaces appended end to end
//   StripedVolume     RAID-0: fixed stripe units round-robin over members;
//                     requests are split at unit boundaries and fanned out
//                     to the members in parallel via the scheduler
//   MirrorVolume      RAID-1: writes go to every live member in parallel,
//                     reads pick the live member with the shortest queue and
//                     fall back to the others when a member is failed
//
// Every volume is a StatSource: per-member request counts, fan-out width
// per request, and (for mirrors) the read balance across members.
#ifndef PFS_VOLUME_VOLUME_H_
#define PFS_VOLUME_VOLUME_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sched/affinity.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"
#include "volume/block_device.h"

namespace pfs {

class MetricRegistry;
class CounterMetric;
class GaugeMetric;
class HistogramMetric;

// Volumes are shard-affine (ShardAffine): the constructor pins them to the
// scheduler they are built on, and every Read/Write entry path asserts the
// caller runs on that loop (foreign shards reach a volume only through a
// CrossShardDevice proxy or CallOn).
class Volume : public BlockDevice, public StatSource, public ShardAffine {
 public:
  Volume(Scheduler* sched, std::string name, std::vector<BlockDevice*> members);

  virtual const char* kind() const = 0;
  const std::string& name() const { return name_; }
  size_t member_count() const { return members_.size(); }
  BlockDevice* member(size_t i) { return members_[i]; }

  uint32_t sector_bytes() const override { return sector_bytes_; }

  // StatSource
  std::string stat_name() const override { return "volume." + name_; }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;
  void StatResetInterval() override;

  uint64_t requests() const { return requests_.value(); }
  const LatencyHistogram& latency() const { return latency_; }
  uint64_t member_reads(size_t i) const { return member_reads_[i].value(); }
  uint64_t member_writes(size_t i) const { return member_writes_[i].value(); }
  const Histogram& fanout_width() const { return fanout_; }
  uint64_t coalesced_fragments() const { return coalesced_.value(); }
  uint64_t bounce_bytes() const { return bounce_bytes_.value(); }

  // Live metrics plane: creates this volume's registry metrics (request
  // counter, request-latency histogram, per-member fragment-latency
  // histograms) and switches the latency_ms object in StatJson to the
  // registry histogram, so scrape output and StatJson agree by construction.
  // Call during assembly, before the run; legacy counters keep recording
  // either way. MirrorVolume adds its rebuild-debt gauge on top.
  virtual void BindMetrics(MetricRegistry* registry);

  // Per-member fragment latency when bound (no-op otherwise). Public because
  // the fan-out workers (free coroutines) call it with their own stamps.
  void NoteFragmentDone(size_t member, TimePoint begin) {
    if (!m_member_latency_.empty()) {
      RecordFragmentLatency(member, begin);
    }
  }

  // Fragment coalescing (on by default): merge adjacent same-member pieces
  // of a mapped request so each member sees at most one contiguous request
  // per call. Off reproduces the historical one-fragment-per-crossing
  // behavior — benches and tests use it to compare the two paths.
  void set_coalesce(bool on) { coalesce_ = on; }
  bool coalesce() const { return coalesce_; }

  // One caller-buffer segment of a coalesced fragment: `count` sectors of
  // device data starting `byte_offset` bytes into the request's span.
  struct FragmentSegment {
    uint64_t byte_offset;
    uint32_t count;
  };

  // One member-local piece of a logical request. `byte_offset` locates the
  // piece in the request's (possibly empty) data span. When coalescing
  // merged pieces whose buffer positions are not contiguous (striping
  // interleaves members), `segments` lists the caller-buffer segments in
  // device order and the I/O goes through a bounce buffer; empty `segments`
  // means the piece is contiguous at `byte_offset`. Public for the
  // address-mapping tests (like StripedVolume::MapSector).
  struct Fragment {
    size_t member;
    uint64_t sector;  // member-local address
    uint32_t count;
    uint64_t byte_offset;
    std::vector<FragmentSegment> segments;
  };

  // One fragment's member I/O: a plain member Read/Write for a contiguous
  // fragment; a segmented one gathers (write) or scatters (read) through a
  // per-request bounce buffer, so the member still sees one contiguous
  // request. Empty caller spans skip the bounce (the simulated backend
  // moves no bytes). Public for the coalescing tests; RunFragments' fan-out
  // workers use it.
  Task<Status> IoFragment(bool is_write, const Fragment& f, std::span<std::byte> out,
                          std::span<const std::byte> in);

 protected:
  // Merges adjacent same-member, member-contiguous pieces of `fragments`
  // (which must be in caller-buffer order) and counts the merges. Pieces
  // whose buffer positions touch merge in place; strided pieces accumulate
  // segments for the bounce path. No-op when set_coalesce(false).
  std::vector<Fragment> CoalesceFragments(std::vector<Fragment> fragments);

  // Performs the fragments and joins: a lone fragment runs inline on the
  // calling thread; several are spawned as transient scheduler threads so
  // members work in parallel. Returns the first non-ok member status;
  // `per_fragment` (optional) receives every fragment's own status, for
  // callers whose policy is not first-error (the mirror fails members out
  // individually). `fragments` must outlive the co_await (a caller local).
  Task<Status> RunFragments(bool is_write, std::span<std::byte> out,
                            std::span<const std::byte> in,
                            const std::vector<Fragment>& fragments,
                            std::vector<Status>* per_fragment = nullptr);

  // Request bracket shared by every entry path (RunFragments and the
  // Read/Write overrides that bypass it): the shard-affinity assertion,
  // per-request latency, and a volume.request span when the calling thread
  // carries a TraceContext. Not RAII on purpose — the end stamp must be
  // taken before co_return, not whenever the coroutine frame happens to be
  // destroyed.
  TimePoint OpBegin() const {
    PFS_ASSERT_SHARD();
    return sched_->Now();
  }
  void OpFinish(TimePoint begin, uint64_t count);

  Scheduler* sched_;
  std::string name_;
  std::vector<BlockDevice*> members_;
  uint32_t sector_bytes_;

  void RecordFragmentLatency(size_t member, TimePoint begin);

  // Registry metrics, null/empty until BindMetrics; written next to the
  // legacy counters so unbound systems lose nothing.
  CounterMetric* m_requests_ = nullptr;
  HistogramMetric* m_latency_ = nullptr;
  std::vector<HistogramMetric*> m_member_latency_;  // one per member

  Counter requests_;
  Counter split_requests_;  // requests split across distinct address ranges
  Counter coalesced_;       // fragments merged away by coalescing
  Counter bounce_bytes_;    // bytes gathered/scattered through bounce buffers
  bool coalesce_ = true;
  std::vector<Counter> member_reads_;
  std::vector<Counter> member_writes_;
  Histogram fanout_{0, 16, 16};  // distinct members touched per request
  LatencyHistogram latency_;     // whole-request latency at this volume
};

// Adapter over a partition slice [start_sector, start_sector + nsectors) of
// one backing device — how today's per-disk partitions enter the volume
// layer. A disk driver is itself a BlockDevice, so the backing may be a
// whole disk or any other volume.
class SingleDiskVolume final : public Volume {
 public:
  SingleDiskVolume(Scheduler* sched, std::string name, BlockDevice* backing,
                   uint64_t start_sector, uint64_t nsectors);
  // The whole backing device.
  SingleDiskVolume(Scheduler* sched, std::string name, BlockDevice* backing);

  const char* kind() const override { return "single"; }
  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override;
  Task<Status> Write(uint64_t sector, uint32_t count, std::span<const std::byte> in) override;
  uint64_t total_sectors() const override { return nsectors_; }
  size_t QueueDepthHint() const override { return members_[0]->QueueDepthHint(); }

 private:
  uint64_t start_;
  uint64_t nsectors_;
};

// Members appended end to end; requests crossing a member boundary are split.
class ConcatVolume final : public Volume {
 public:
  ConcatVolume(Scheduler* sched, std::string name, std::vector<BlockDevice*> members);

  // Capacity of a concat over members of these sizes — the constructor and
  // SystemBuilder's volume planner share this one formula.
  static uint64_t CapacitySectors(const std::vector<uint64_t>& member_sectors);

  const char* kind() const override { return "concat"; }
  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override;
  Task<Status> Write(uint64_t sector, uint32_t count, std::span<const std::byte> in) override;
  uint64_t total_sectors() const override { return total_; }

  // The member-local fragments a request maps (and, with coalescing on,
  // merges) to — exposed for the coalescing tests; Read/Write use it.
  std::vector<Fragment> Map(uint64_t sector, uint32_t count);

 private:
  std::vector<uint64_t> member_start_;  // logical sector where member i begins
  uint64_t total_ = 0;
};

// RAID-0. Logical stripe unit u lives on member u % n at member-local unit
// u / n; capacity is bounded by the smallest member (whole units only).
class StripedVolume final : public Volume {
 public:
  StripedVolume(Scheduler* sched, std::string name, std::vector<BlockDevice*> members,
                uint32_t stripe_unit_sectors);

  // Whole stripes only, bounded by the smallest member; 0 when one stripe
  // unit exceeds the smallest member (the planner rejects, the constructor
  // CHECKs). Shared with SystemBuilder's volume planner.
  static uint64_t CapacitySectors(const std::vector<uint64_t>& member_sectors,
                                  uint32_t stripe_unit_sectors);

  const char* kind() const override { return "striped"; }
  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override;
  Task<Status> Write(uint64_t sector, uint32_t count, std::span<const std::byte> in) override;
  uint64_t total_sectors() const override { return total_; }

  uint32_t stripe_unit_sectors() const { return unit_; }

  // Member-local address of a logical sector (exposed for address-mapping
  // tests; Read/Write use the same arithmetic).
  std::pair<size_t, uint64_t> MapSector(uint64_t sector) const;

  // The member-local fragments a request maps to: one per stripe-unit
  // crossing without coalescing; with it, merged so each member appears at
  // most once (consecutive logical units on a member are member-contiguous,
  // their buffer positions strided — hence Fragment::segments). Exposed for
  // the coalescing tests; Read/Write use it.
  std::vector<Fragment> Map(uint64_t sector, uint32_t count);

 private:
  uint32_t unit_;
  uint64_t total_ = 0;
};

// RAID-1. Writes fan out to every live member; reads pick the live member
// with the shortest queue (rotating on ties, so equal members share load).
// A member marked failed is skipped: degraded reads are served by the
// survivors, and writes it misses are counted as rebuild debt. A live
// member whose write errors is failed out on the spot (a write succeeds if
// any replica persisted) — replicas never diverge silently.
class MirrorVolume final : public Volume {
 public:
  MirrorVolume(Scheduler* sched, std::string name, std::vector<BlockDevice*> members);

  static uint64_t CapacitySectors(const std::vector<uint64_t>& member_sectors);

  const char* kind() const override { return "mirror"; }
  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override;
  Task<Status> Write(uint64_t sector, uint32_t count, std::span<const std::byte> in) override;
  uint64_t total_sectors() const override { return total_; }

  // Failing a member out always succeeds. Reinstating one refuses
  // (kUnsupported) while the member carries rebuild debt — its stale blocks
  // would rotate into reads; the RebuildDaemon (src/fault) drains the debt
  // first and then reinstates. Refusals are counted (reinstate_refusals).
  Status SetMemberFailed(size_t i, bool failed);
  bool member_failed(size_t i) const { return failed_[i]; }
  // Writes member i missed while failed out: its rebuild debt.
  uint64_t member_missed_writes(size_t i) const { return member_missed_[i].value(); }
  size_t live_member_count() const;
  uint64_t missed_writes() const { return missed_writes_.value(); }
  uint64_t degraded_reads() const { return degraded_reads_.value(); }

  // -- rebuild-debt extents (the RebuildDaemon's work queue) ---------------
  // Debt is tracked as merged member-local sector extents, so a rebuild
  // copies exactly the ranges the member missed (mirror members share the
  // volume's address space: member-local sector == volume sector).
  uint64_t debt_sectors(size_t i) const;
  // Outstanding debt over all members, in bytes (also in StatJson).
  uint64_t rebuild_debt_bytes() const;
  // Removes and returns up to `max_sectors` from the front of member i's
  // lowest debt extent; nullopt when the member owes nothing. A foreground
  // write racing the copy simply re-adds its extent (the member is still
  // failed), so the rebuild loop re-copies it before draining dry.
  std::optional<std::pair<uint64_t, uint32_t>> PopDebtExtent(size_t i, uint32_t max_sectors);
  // Returns a popped extent to the debt map (a rebuild copy that failed).
  void PushDebtExtent(size_t i, uint64_t sector, uint32_t count);
  // True when SetMemberFailed(i, false) would be refused right now:
  // outstanding debt, or an in-flight write that skipped the member. The
  // RebuildDaemon polls this before its routine reinstate attempts, so
  // reinstate_refusals counts only genuine premature-reinstate calls.
  bool ReinstateBlocked(size_t i) const {
    return !debt_[i].empty() || inflight_missing_[i] > 0;
  }

  // -- rebuild/availability accounting (hooks for the RebuildDaemon) -------
  void NoteRebuildCopied(uint64_t sectors) { rebuilt_sectors_.Inc(sectors); }
  void NoteRebuildElapsed(Duration d) { rebuild_ns_ += d.nanos(); }
  uint64_t rebuilt_sectors() const { return rebuilt_sectors_.value(); }
  uint64_t reinstate_refusals() const { return reinstate_refusals_.value(); }
  uint64_t repairs() const { return repairs_; }
  // Cumulative wall/sim time with >= 1 member failed, open interval included.
  Duration degraded_time() const;
  // Mean time to repair over completed reinstatements.
  Duration mean_time_to_repair() const;

  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;

  // Base metrics plus the rebuild-debt gauge (updated at every debt
  // mutation, so a scrape sees the outstanding debt live).
  void BindMetrics(MetricRegistry* registry) override;

 private:
  // Live members, shortest queue first; `rr_` rotates equal-depth choices.
  std::vector<size_t> ReadOrder();

  // The one place a member transitions to failed (explicit SetMemberFailed
  // and the Read/Write fail-out paths), so the degraded-time clock and
  // per-member down-since stamps stay consistent. Idempotent.
  void MarkMemberFailed(size_t i);
  // Merges [sector, sector + count) into member i's debt extents.
  void AddDebt(size_t i, uint64_t sector, uint32_t count);
  // Refreshes the live rebuild-debt gauge after a debt mutation (no-op
  // unbound). Runs on the owning shard, like every debt mutation.
  void UpdateDebtGauge();

  GaugeMetric* m_debt_bytes_ = nullptr;

  std::vector<bool> failed_;
  uint64_t total_ = 0;
  size_t rr_ = 0;
  Counter missed_writes_;  // writes a failed member did not see (rebuild debt)
  std::vector<Counter> member_missed_;  // the same debt, per member
  Counter degraded_reads_;

  // Rebuild debt as merged [start, end) sector extents, per member.
  std::vector<std::map<uint64_t, uint64_t>> debt_;
  // Writes currently in flight whose fragment set skipped member i (it was
  // failed at issue). Their debt is recorded at completion, so reinstating
  // while this is non-zero would lose it and silently diverge the mirror —
  // SetMemberFailed(i, false) refuses until they drain.
  std::vector<size_t> inflight_missing_;
  // Availability accounting.
  std::vector<TimePoint> down_since_;  // valid while failed_[i]
  size_t failed_count_ = 0;
  TimePoint degraded_since_;   // valid while failed_count_ > 0
  int64_t degraded_ns_ = 0;    // closed degraded intervals
  uint64_t repairs_ = 0;
  int64_t repair_total_ns_ = 0;
  Counter reinstate_refusals_;
  Counter rebuilt_sectors_;
  int64_t rebuild_ns_ = 0;  // time the RebuildDaemon spent copying for us
};

}  // namespace pfs

#endif  // PFS_VOLUME_VOLUME_H_
