// The abstract client interface (paper §2): "provides the basic file-system
// interface. There are functions to open, close, read, write or delete a
// file and there are functions to manipulate an hierarchical name-space."
//
// Front-ends derive from (or dispatch into) this interface: the NFS-style
// server in nfs/, the trace replayers in trace/, and applications directly.
#ifndef PFS_CLIENT_CLIENT_INTERFACE_H_
#define PFS_CLIENT_CLIENT_INTERFACE_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "fs/directory.h"
#include "sched/task.h"

namespace pfs {

using Fd = int32_t;

struct OpenOptions {
  bool create = false;
  FileType create_type = FileType::kRegular;
  // Per-open cache-policy delegation (paper §2 / Cao et al.): the client may
  // ask the file system to manage this file's blocks differently.
  FileCacheHint cache_hint = FileCacheHint::kNormal;
};

struct FileAttrs {
  uint64_t ino;
  FileType type;
  uint64_t size;
  uint32_t nlink;
  int64_t mtime_ns;
};

class ClientInterface {
 public:
  virtual ~ClientInterface() = default;

  virtual Task<Result<Fd>> Open(const std::string& path, OpenOptions options) = 0;
  virtual Task<Status> Close(Fd fd) = 0;

  virtual Task<Result<uint64_t>> Read(Fd fd, uint64_t offset, uint64_t len,
                                      std::span<std::byte> out) = 0;
  virtual Task<Result<uint64_t>> Write(Fd fd, uint64_t offset, uint64_t len,
                                       std::span<const std::byte> in) = 0;
  virtual Task<Status> Truncate(Fd fd, uint64_t new_size) = 0;
  virtual Task<Status> Fsync(Fd fd) = 0;
  virtual Task<Result<FileAttrs>> FStat(Fd fd) = 0;

  virtual Task<Result<FileAttrs>> Stat(const std::string& path) = 0;
  virtual Task<Status> Unlink(const std::string& path) = 0;
  virtual Task<Status> Mkdir(const std::string& path) = 0;
  virtual Task<Status> Rmdir(const std::string& path) = 0;
  virtual Task<Status> Rename(const std::string& from, const std::string& to) = 0;
  virtual Task<Result<std::vector<DirEntry>>> ReadDir(const std::string& path) = 0;
  virtual Task<Status> SymlinkAt(const std::string& path, const std::string& target) = 0;
  virtual Task<Result<std::string>> ReadLink(const std::string& path) = 0;

  // Flushes all dirty state to stable storage.
  virtual Task<Status> SyncAll() = 0;
};

}  // namespace pfs

#endif  // PFS_CLIENT_CLIENT_INTERFACE_H_
