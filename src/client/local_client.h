// LocalClient: the concrete abstract-client-interface implementation that
// resolves hierarchical names over one or more mounted file systems and
// dispatches operations to instantiated files. Both PFS (via the NFS-style
// front-end) and Patsy (via the trace replayers) drive this class — the same
// code on-line and off-line, which is the point of the framework.
//
// Paths are "/<mount>/dir/.../name"; the first component selects the mounted
// file system (the paper's server exported 14 file systems).
//
// Sharding: every mounted file system is pinned to one scheduler shard. An
// operation invoked from another shard hops to the owner with CallOn and
// runs its *Local body there; same-shard calls collapse to plain inline
// awaits, so a single-shard system behaves exactly as before. The fd table
// is the one piece of genuinely shared state and sits under a mutex.
#ifndef PFS_CLIENT_LOCAL_CLIENT_H_
#define PFS_CLIENT_LOCAL_CLIENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "client/client_interface.h"
#include "fs/file_system.h"
#include "fs/file_table.h"
#include "obs/trace_context.h"
#include "sched/shard.h"

namespace pfs {

class TraceRecorder;
class MetricRegistry;
class CounterMetric;
class HistogramMetric;

class LocalClient final : public ClientInterface {
 public:
  explicit LocalClient(Scheduler* sched) : sched_(sched) {}

  // Mounts `fs` under "/<name>". The file system must be formatted/mounted
  // at the layout level already. Not thread-safe: mount before running.
  void AddMount(const std::string& name, FileSystem* fs);

  // Enables request tracing (obs/): Open/Read/Write/Fsync/SyncAll become
  // trace roots — a fresh trace id rides the calling thread for the life of
  // the operation, so every stage below attributes its spans to it.
  void set_trace_recorder(TraceRecorder* recorder) { tracer_ = recorder; }

  // Registers client_ops_total / client_op_seconds (labelled {op="..."}) with
  // the live metrics plane; the TraceBegin/TraceEnd bracket feeds them.
  void BindMetrics(MetricRegistry* registry);

  // ClientInterface
  Task<Result<Fd>> Open(const std::string& path, OpenOptions options) override;
  Task<Status> Close(Fd fd) override;
  Task<Result<uint64_t>> Read(Fd fd, uint64_t offset, uint64_t len,
                              std::span<std::byte> out) override;
  Task<Result<uint64_t>> Write(Fd fd, uint64_t offset, uint64_t len,
                               std::span<const std::byte> in) override;
  Task<Status> Truncate(Fd fd, uint64_t new_size) override;
  Task<Status> Fsync(Fd fd) override;
  Task<Result<FileAttrs>> FStat(Fd fd) override;
  Task<Result<FileAttrs>> Stat(const std::string& path) override;
  Task<Status> Unlink(const std::string& path) override;
  Task<Status> Mkdir(const std::string& path) override;
  Task<Status> Rmdir(const std::string& path) override;
  Task<Status> Rename(const std::string& from, const std::string& to) override;
  Task<Result<std::vector<DirEntry>>> ReadDir(const std::string& path) override;
  Task<Status> SymlinkAt(const std::string& path, const std::string& target) override;
  Task<Result<std::string>> ReadLink(const std::string& path) override;
  Task<Status> SyncAll() override;

  size_t open_file_count() const {
    std::lock_guard<std::mutex> lk(fd_mu_);
    return open_files_.size();
  }

 private:
  struct Mount {
    FileSystem* fs;
    std::unique_ptr<FileTable> table;
  };

  struct Resolved {
    Mount* mount;
    uint64_t parent_ino;     // directory holding the leaf (0 for fs root)
    std::string leaf;        // final path component ("" for fs root)
  };

  struct OpenFile {
    Mount* mount;
    uint64_t ino;
  };

  // Splits "/mnt/a/b" and walks directories to the parent of the leaf.
  Task<Result<Resolved>> ResolveParent(const std::string& path);
  // Full resolution to an existing object's (mount, ino, type).
  Task<Result<std::pair<Mount*, DirEntry>>> ResolveExisting(const std::string& path);

  static FileAttrs AttrsOf(const File& file);

  // -- cross-shard routing --------------------------------------------------
  // The shard owning the file system the path's mount component names
  // (nullptr for unknown mounts: the local body reports the NotFound).
  // mounts_ is immutable once running, so this reads it lock-free.
  Scheduler* SchedForPath(const std::string& path);
  // Copies the fd's entry out under the fd-table mutex.
  bool LookupFd(Fd fd, OpenFile* out) const;
  // Runs `local` (a copyable thunk returning Task<T>) on `target`, inline
  // when already there (or when there is nowhere sensible to hop).
  template <typename T, typename Fn>
  Task<T> RouteTo(Scheduler* target, Fn local) {
    Scheduler* home = Scheduler::Current();
    if (target == nullptr || home == nullptr || target == home) {
      co_return co_await local();
    }
    co_return co_await CallOn<T>(home, target, std::move(local));
  }

  // -- shard-local op bodies (run on the mount's shard) ---------------------
  Task<Result<Fd>> OpenLocal(const std::string& path, OpenOptions options);
  Task<Result<Fd>> OpenImpl(const std::string& path, OpenOptions options);
  Task<Status> CloseLocal(OpenFile open);
  Task<Result<uint64_t>> ReadLocal(OpenFile open, uint64_t offset, uint64_t len,
                                   std::span<std::byte> out);
  Task<Result<uint64_t>> WriteLocal(OpenFile open, uint64_t offset, uint64_t len,
                                    std::span<const std::byte> in);
  Task<Status> TruncateLocal(OpenFile open, uint64_t new_size);
  Task<Status> FsyncLocal(OpenFile open);
  Task<Result<FileAttrs>> FStatLocal(OpenFile open);
  Task<Result<FileAttrs>> StatLocal(const std::string& path);
  Task<Status> UnlinkLocal(const std::string& path);
  Task<Status> MkdirLocal(const std::string& path);
  Task<Status> RmdirLocal(const std::string& path);
  Task<Status> RenameLocal(const std::string& from, const std::string& to);
  Task<Result<std::vector<DirEntry>>> ReadDirLocal(const std::string& path);
  Task<Status> SymlinkAtLocal(const std::string& path, const std::string& target);
  Task<Result<std::string>> ReadLinkLocal(const std::string& path);
  // Syncs the caches and layouts of the mounts living on `shard` (all
  // mounts when null), in mount order, deduping shared caches.
  Task<Status> SyncShard(Scheduler* shard);
  Task<Status> SyncAllImpl();

  // Root-span bracket, shared by tracing and the live metrics plane.
  // TraceBegin saves the thread's context and installs a fresh trace id;
  // TraceEnd records the client.op span (and, when metrics are bound, the
  // op counter + latency sample) and restores it. Explicit (not RAII) so the
  // end stamp lands before co_return, not at frame destruction. Runs against
  // the *executing* shard's scheduler, so routed ops trace on the shard that
  // does the work. With metrics bound but tracing off, only 1-in-64 ops
  // read the clock for the latency histogram: op counters stay exact while
  // the per-op cost stays at a handful of relaxed stores.
  enum class ClientOp : uint8_t { kOpen = 0, kRead, kWrite, kFsync, kSyncAll };
  static constexpr size_t kClientOpCount = 5;
  static constexpr uint32_t kLatencySampleEvery = 64;  // power of two
  struct OpTrace {
    Thread* self = nullptr;     // null: tracing off for this op
    Scheduler* sched = nullptr; // null: neither tracing nor metrics active
    ClientOp op = ClientOp::kOpen;
    bool timed = false;         // this op's latency lands in the histogram
    TraceContext saved;
    TimePoint begin;
  };
  OpTrace TraceBegin(ClientOp op);
  void TraceEnd(const OpTrace& t, uint64_t arg);

  Scheduler* sched_;  // shard 0: the client's home loop
  TraceRecorder* tracer_ = nullptr;
  // Live metrics plane, indexed by ClientOp (null until BindMetrics).
  CounterMetric* m_ops_[kClientOpCount] = {};
  HistogramMetric* m_latency_[kClientOpCount] = {};
  std::map<std::string, Mount> mounts_;
  // The fd table is shared across shards (any shard may open/close/use fds),
  // so it lives under a mutex; entries are copied out, never held across
  // suspension points.
  mutable std::mutex fd_mu_;
  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_ = 3;
};

}  // namespace pfs

#endif  // PFS_CLIENT_LOCAL_CLIENT_H_
