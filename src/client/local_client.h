// LocalClient: the concrete abstract-client-interface implementation that
// resolves hierarchical names over one or more mounted file systems and
// dispatches operations to instantiated files. Both PFS (via the NFS-style
// front-end) and Patsy (via the trace replayers) drive this class — the same
// code on-line and off-line, which is the point of the framework.
//
// Paths are "/<mount>/dir/.../name"; the first component selects the mounted
// file system (the paper's server exported 14 file systems).
#ifndef PFS_CLIENT_LOCAL_CLIENT_H_
#define PFS_CLIENT_LOCAL_CLIENT_H_

#include <map>
#include <memory>
#include <string>

#include "client/client_interface.h"
#include "fs/file_system.h"
#include "fs/file_table.h"
#include "obs/trace_context.h"

namespace pfs {

class TraceRecorder;

class LocalClient final : public ClientInterface {
 public:
  explicit LocalClient(Scheduler* sched) : sched_(sched) {}

  // Mounts `fs` under "/<name>". The file system must be formatted/mounted
  // at the layout level already.
  void AddMount(const std::string& name, FileSystem* fs);

  // Enables request tracing (obs/): Open/Read/Write/Fsync/SyncAll become
  // trace roots — a fresh trace id rides the calling thread for the life of
  // the operation, so every stage below attributes its spans to it.
  void set_trace_recorder(TraceRecorder* recorder) { tracer_ = recorder; }

  // ClientInterface
  Task<Result<Fd>> Open(const std::string& path, OpenOptions options) override;
  Task<Status> Close(Fd fd) override;
  Task<Result<uint64_t>> Read(Fd fd, uint64_t offset, uint64_t len,
                              std::span<std::byte> out) override;
  Task<Result<uint64_t>> Write(Fd fd, uint64_t offset, uint64_t len,
                               std::span<const std::byte> in) override;
  Task<Status> Truncate(Fd fd, uint64_t new_size) override;
  Task<Status> Fsync(Fd fd) override;
  Task<Result<FileAttrs>> FStat(Fd fd) override;
  Task<Result<FileAttrs>> Stat(const std::string& path) override;
  Task<Status> Unlink(const std::string& path) override;
  Task<Status> Mkdir(const std::string& path) override;
  Task<Status> Rmdir(const std::string& path) override;
  Task<Status> Rename(const std::string& from, const std::string& to) override;
  Task<Result<std::vector<DirEntry>>> ReadDir(const std::string& path) override;
  Task<Status> SymlinkAt(const std::string& path, const std::string& target) override;
  Task<Result<std::string>> ReadLink(const std::string& path) override;
  Task<Status> SyncAll() override;

  size_t open_file_count() const { return open_files_.size(); }

 private:
  struct Mount {
    FileSystem* fs;
    std::unique_ptr<FileTable> table;
  };

  struct Resolved {
    Mount* mount;
    uint64_t parent_ino;     // directory holding the leaf (0 for fs root)
    std::string leaf;        // final path component ("" for fs root)
  };

  struct OpenFile {
    Mount* mount;
    uint64_t ino;
  };

  // Splits "/mnt/a/b" and walks directories to the parent of the leaf.
  Task<Result<Resolved>> ResolveParent(const std::string& path);
  // Full resolution to an existing object's (mount, ino, type).
  Task<Result<std::pair<Mount*, DirEntry>>> ResolveExisting(const std::string& path);

  static FileAttrs AttrsOf(const File& file);

  // Root-span bracket. TraceBegin saves the thread's context and installs a
  // fresh trace id; TraceEnd records the client.op span and restores it.
  // Explicit (not RAII) so the end stamp lands before co_return, not at
  // frame destruction.
  struct OpTrace {
    Thread* self = nullptr;  // null: tracing off for this op
    TraceContext saved;
    TimePoint begin;
  };
  OpTrace TraceBegin();
  void TraceEnd(const OpTrace& t, uint64_t arg);

  Task<Result<Fd>> OpenImpl(const std::string& path, OpenOptions options);
  Task<Status> SyncAllImpl();

  Scheduler* sched_;
  TraceRecorder* tracer_ = nullptr;
  std::map<std::string, Mount> mounts_;
  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_ = 3;
};

}  // namespace pfs

#endif  // PFS_CLIENT_LOCAL_CLIENT_H_
