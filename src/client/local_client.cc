#include "client/local_client.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pfs {
namespace {

// Splits "/mnt/a/b" into {"mnt", "a", "b"}; empty components collapse.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    parts.push_back(std::move(cur));
  }
  return parts;
}

}  // namespace

void LocalClient::AddMount(const std::string& name, FileSystem* fs) {
  PFS_CHECK(fs != nullptr);
  Mount mount;
  mount.fs = fs;
  mount.table = std::make_unique<FileTable>(fs);
  PFS_CHECK_MSG(mounts_.emplace(name, std::move(mount)).second, "duplicate mount");
}

FileAttrs LocalClient::AttrsOf(const File& file) {
  const Inode& inode = file.inode();
  return FileAttrs{inode.ino, inode.type, inode.size, inode.nlink, inode.mtime_ns};
}

Scheduler* LocalClient::SchedForPath(const std::string& path) {
  // Only the mount component matters; skip the full split's leaf work.
  size_t start = 0;
  while (start < path.size() && path[start] == '/') {
    ++start;
  }
  size_t end = start;
  while (end < path.size() && path[end] != '/') {
    ++end;
  }
  if (end == start) {
    return nullptr;
  }
  auto it = mounts_.find(path.substr(start, end - start));
  if (it == mounts_.end()) {
    return nullptr;
  }
  return it->second.fs->scheduler();
}

bool LocalClient::LookupFd(Fd fd, OpenFile* out) const {
  std::lock_guard<std::mutex> lk(fd_mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

Task<Result<LocalClient::Resolved>> LocalClient::ResolveParent(const std::string& path) {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    co_return Status(ErrorCode::kInvalidArgument, "empty path");
  }
  auto mount_it = mounts_.find(parts[0]);
  if (mount_it == mounts_.end()) {
    co_return Status(ErrorCode::kNotFound, "no mount " + parts[0]);
  }
  Mount* mount = &mount_it->second;
  if (parts.size() == 1) {
    co_return Resolved{mount, 0, ""};
  }
  uint64_t dir_ino = mount->fs->layout()->root_ino();
  for (size_t i = 1; i + 1 < parts.size(); ++i) {
    PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(dir_ino));
    if (file->type() != FileType::kDirectory) {
      (void)co_await mount->table->Release(dir_ino);
      co_return Status(ErrorCode::kNotDirectory, parts[i]);
    }
    auto* dir = static_cast<Directory*>(file);
    auto entry_or = co_await dir->Lookup(parts[i]);
    (void)co_await mount->table->Release(dir_ino);
    PFS_CO_RETURN_IF_ERROR(entry_or.status());
    dir_ino = entry_or->ino;
  }
  co_return Resolved{mount, dir_ino, parts.back()};
}

Task<Result<std::pair<LocalClient::Mount*, DirEntry>>> LocalClient::ResolveExisting(
    const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    const uint64_t root = r.mount->fs->layout()->root_ino();
    co_return std::make_pair(r.mount, DirEntry{"", root, FileType::kDirectory});
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  if (parent->type() != FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kNotDirectory, path);
  }
  auto entry_or = co_await static_cast<Directory*>(parent)->Lookup(r.leaf);
  (void)co_await r.mount->table->Release(r.parent_ino);
  PFS_CO_RETURN_IF_ERROR(entry_or.status());
  co_return std::make_pair(r.mount, *entry_or);
}

void LocalClient::BindMetrics(MetricRegistry* registry) {
  static constexpr const char* kOpNames[kClientOpCount] = {"open", "read", "write", "fsync",
                                                           "sync_all"};
  for (size_t i = 0; i < kClientOpCount; ++i) {
    const std::string labels = std::string("op=\"") + kOpNames[i] + "\"";
    m_ops_[i] = registry->Counter("client_ops_total", "Client operations completed", labels);
    m_latency_[i] = registry->Histogram("client_op_seconds",
                                        "Client operation latency (TraceBegin to TraceEnd)",
                                        labels, /*scale=*/1e-9);
  }
}

LocalClient::OpTrace LocalClient::TraceBegin(ClientOp op) {
  OpTrace t;
  t.op = op;
  if (tracer_ == nullptr && m_ops_[0] == nullptr) {
    return t;  // neither tracing nor metrics: the bracket stays inert
  }
  Scheduler* sched = Scheduler::Current();
  if (sched == nullptr) {
    sched = sched_;
  }
  t.sched = sched;
  if (tracer_ == nullptr) {
    // Metrics only: the op counter stays exact, but latency timestamps are
    // sampled 1-in-64 — two real-clock reads (~30 ns each) per op would
    // otherwise dominate a ~350 ns cache-hit read.
    static thread_local uint32_t lat_tick = 0;
    t.timed = (lat_tick++ & (kLatencySampleEvery - 1)) == 0;
    if (t.timed) {
      t.begin = sched->Now();
    }
    return t;
  }
  t.timed = true;
  t.begin = sched->Now();
  Thread* self = sched->current_thread();
  if (self == nullptr) {
    return t;
  }
  t.self = self;
  t.saved = self->trace;
  self->trace = tracer_->StartTrace();
  return t;
}

void LocalClient::TraceEnd(const OpTrace& t, uint64_t arg) {
  if (t.sched == nullptr) {
    return;
  }
  const size_t op = static_cast<size_t>(t.op);
  if (m_ops_[op] != nullptr) {
    m_ops_[op]->Inc();
    if (t.timed) {
      m_latency_[op]->RecordDuration(t.sched->Now() - t.begin);
    }
  }
  if (t.self != nullptr) {
    RecordSpan(t.self->trace, TraceStage::kClient, t.self->id(), t.begin, t.sched->Now(), arg);
    t.self->trace = t.saved;
  }
}

// ---------------------------------------------------------------------------
// Routers: hop to the owning shard, then run the *Local body.
//
// Every thunk is a *named local*, never a temporary in the co_await
// expression: GCC 12 mishandles non-trivial temporaries passed as coroutine
// arguments inside an await full-expression (the capture copies end up
// double-destroyed, corrupting the frame).
// ---------------------------------------------------------------------------

Task<Result<Fd>> LocalClient::Open(const std::string& path, OpenOptions options) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p, options]() { return self->OpenLocal(p, options); };
  co_return co_await RouteTo<Result<Fd>>(SchedForPath(p), body);
}

Task<Status> LocalClient::Close(Fd fd) {
  OpenFile open;
  {
    std::lock_guard<std::mutex> lk(fd_mu_);
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) {
      co_return Status(ErrorCode::kInvalidArgument, "bad fd");
    }
    open = it->second;
    open_files_.erase(it);
  }
  LocalClient* self = this;
  auto body = [self, open]() { return self->CloseLocal(open); };
  co_return co_await RouteTo<Status>(open.mount->fs->scheduler(), body);
}

Task<Result<uint64_t>> LocalClient::Read(Fd fd, uint64_t offset, uint64_t len,
                                         std::span<std::byte> out) {
  OpenFile open;
  if (!LookupFd(fd, &open)) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  // The span stays valid across the hop: this coroutine suspends on its home
  // shard until the remote body finishes with the buffer.
  LocalClient* self = this;
  auto body = [self, open, offset, len, out]() { return self->ReadLocal(open, offset, len, out); };
  co_return co_await RouteTo<Result<uint64_t>>(open.mount->fs->scheduler(), body);
}

Task<Result<uint64_t>> LocalClient::Write(Fd fd, uint64_t offset, uint64_t len,
                                          std::span<const std::byte> in) {
  OpenFile open;
  if (!LookupFd(fd, &open)) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  LocalClient* self = this;
  auto body = [self, open, offset, len, in]() { return self->WriteLocal(open, offset, len, in); };
  co_return co_await RouteTo<Result<uint64_t>>(open.mount->fs->scheduler(), body);
}

Task<Status> LocalClient::Truncate(Fd fd, uint64_t new_size) {
  OpenFile open;
  if (!LookupFd(fd, &open)) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  LocalClient* self = this;
  auto body = [self, open, new_size]() { return self->TruncateLocal(open, new_size); };
  co_return co_await RouteTo<Status>(open.mount->fs->scheduler(), body);
}

Task<Status> LocalClient::Fsync(Fd fd) {
  OpenFile open;
  if (!LookupFd(fd, &open)) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  LocalClient* self = this;
  auto body = [self, open]() { return self->FsyncLocal(open); };
  co_return co_await RouteTo<Status>(open.mount->fs->scheduler(), body);
}

Task<Result<FileAttrs>> LocalClient::FStat(Fd fd) {
  OpenFile open;
  if (!LookupFd(fd, &open)) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  LocalClient* self = this;
  auto body = [self, open]() { return self->FStatLocal(open); };
  co_return co_await RouteTo<Result<FileAttrs>>(open.mount->fs->scheduler(), body);
}

Task<Result<FileAttrs>> LocalClient::Stat(const std::string& path) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p]() { return self->StatLocal(p); };
  co_return co_await RouteTo<Result<FileAttrs>>(SchedForPath(p), body);
}

Task<Status> LocalClient::Unlink(const std::string& path) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p]() { return self->UnlinkLocal(p); };
  co_return co_await RouteTo<Status>(SchedForPath(p), body);
}

Task<Status> LocalClient::Mkdir(const std::string& path) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p]() { return self->MkdirLocal(p); };
  co_return co_await RouteTo<Status>(SchedForPath(p), body);
}

Task<Status> LocalClient::Rmdir(const std::string& path) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p]() { return self->RmdirLocal(p); };
  co_return co_await RouteTo<Status>(SchedForPath(p), body);
}

Task<Status> LocalClient::Rename(const std::string& from, const std::string& to) {
  Scheduler* from_shard = SchedForPath(from);
  Scheduler* to_shard = SchedForPath(to);
  if (from_shard != nullptr && to_shard != nullptr && from_shard != to_shard) {
    // Cross-mount renames are already rejected; cross-shard ones must be, or
    // the two directory updates would race on different loops.
    co_return Status(ErrorCode::kInvalidArgument, "bad rename");
  }
  LocalClient* self = this;
  std::string f = from;
  std::string t = to;
  auto body = [self, f, t]() { return self->RenameLocal(f, t); };
  co_return co_await RouteTo<Status>(from_shard != nullptr ? from_shard : to_shard, body);
}

Task<Result<std::vector<DirEntry>>> LocalClient::ReadDir(const std::string& path) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p]() { return self->ReadDirLocal(p); };
  co_return co_await RouteTo<Result<std::vector<DirEntry>>>(SchedForPath(p), body);
}

Task<Status> LocalClient::SymlinkAt(const std::string& path, const std::string& target) {
  LocalClient* self = this;
  std::string p = path;
  std::string t = target;
  auto body = [self, p, t]() { return self->SymlinkAtLocal(p, t); };
  co_return co_await RouteTo<Status>(SchedForPath(p), body);
}

Task<Result<std::string>> LocalClient::ReadLink(const std::string& path) {
  LocalClient* self = this;
  std::string p = path;
  auto body = [self, p]() { return self->ReadLinkLocal(p); };
  co_return co_await RouteTo<Result<std::string>>(SchedForPath(p), body);
}

// ---------------------------------------------------------------------------
// Shard-local bodies.
// ---------------------------------------------------------------------------

Task<Result<Fd>> LocalClient::OpenLocal(const std::string& path, OpenOptions options) {
  const OpTrace t = TraceBegin(ClientOp::kOpen);
  Result<Fd> result = co_await OpenImpl(path, options);
  TraceEnd(t, 0);
  co_return result;
}

Task<Result<Fd>> LocalClient::OpenImpl(const std::string& path, OpenOptions options) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  uint64_t ino = 0;
  if (r.leaf.empty()) {
    ino = r.mount->fs->layout()->root_ino();
  } else {
    PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
    if (parent->type() != FileType::kDirectory) {
      (void)co_await r.mount->table->Release(r.parent_ino);
      co_return Status(ErrorCode::kNotDirectory, path);
    }
    auto* dir = static_cast<Directory*>(parent);
    auto entry_or = co_await dir->Lookup(r.leaf);
    if (entry_or.ok()) {
      ino = entry_or->ino;
    } else if (entry_or.code() == ErrorCode::kNotFound && options.create) {
      auto ino_or = co_await r.mount->fs->layout()->AllocInode(options.create_type);
      if (!ino_or.ok()) {
        (void)co_await r.mount->table->Release(r.parent_ino);
        co_return ino_or.status();
      }
      ino = *ino_or;
      const Status add = co_await dir->Add(r.leaf, ino, options.create_type);
      if (!add.ok()) {
        (void)co_await r.mount->table->Release(r.parent_ino);
        co_return add;
      }
    } else {
      (void)co_await r.mount->table->Release(r.parent_ino);
      co_return entry_or.status();
    }
    (void)co_await r.mount->table->Release(r.parent_ino);
  }

  if (options.cache_hint != FileCacheHint::kNormal) {
    r.mount->fs->cache()->SetFileHint(r.mount->fs->fs_id(), ino, options.cache_hint);
  }
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await r.mount->table->Acquire(ino));
  (void)file;
  Fd fd;
  {
    std::lock_guard<std::mutex> lk(fd_mu_);
    fd = next_fd_++;
    open_files_[fd] = OpenFile{r.mount, ino};
  }
  co_return fd;
}

Task<Status> LocalClient::CloseLocal(OpenFile open) {
  co_return co_await open.mount->table->Release(open.ino);
}

Task<Result<uint64_t>> LocalClient::ReadLocal(OpenFile open, uint64_t offset, uint64_t len,
                                              std::span<std::byte> out) {
  File* file = open.mount->table->Get(open.ino);
  PFS_CHECK(file != nullptr);
  const OpTrace t = TraceBegin(ClientOp::kRead);
  co_await open.mount->fs->mover()->ChargeOpCost();
  Result<uint64_t> result = co_await file->Read(offset, len, out);
  TraceEnd(t, len);
  co_return result;
}

Task<Result<uint64_t>> LocalClient::WriteLocal(OpenFile open, uint64_t offset, uint64_t len,
                                               std::span<const std::byte> in) {
  File* file = open.mount->table->Get(open.ino);
  PFS_CHECK(file != nullptr);
  const OpTrace t = TraceBegin(ClientOp::kWrite);
  co_await open.mount->fs->mover()->ChargeOpCost();
  Result<uint64_t> result = co_await file->Write(offset, len, in);
  TraceEnd(t, len);
  co_return result;
}

Task<Status> LocalClient::TruncateLocal(OpenFile open, uint64_t new_size) {
  File* file = open.mount->table->Get(open.ino);
  PFS_CHECK(file != nullptr);
  co_return co_await file->Truncate(new_size);
}

Task<Status> LocalClient::FsyncLocal(OpenFile open) {
  File* file = open.mount->table->Get(open.ino);
  PFS_CHECK(file != nullptr);
  const OpTrace t = TraceBegin(ClientOp::kFsync);
  Status status = co_await file->Flush();
  TraceEnd(t, 0);
  co_return status;
}

Task<Result<FileAttrs>> LocalClient::FStatLocal(OpenFile open) {
  File* file = open.mount->table->Get(open.ino);
  PFS_CHECK(file != nullptr);
  co_return AttrsOf(*file);
}

Task<Result<FileAttrs>> LocalClient::StatLocal(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(auto resolved, co_await ResolveExisting(path));
  auto [mount, entry] = resolved;
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(entry.ino));
  const FileAttrs attrs = AttrsOf(*file);
  PFS_CO_RETURN_IF_ERROR(co_await mount->table->Release(entry.ino));
  co_return attrs;
}

Task<Status> LocalClient::UnlinkLocal(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    co_return Status(ErrorCode::kIsDirectory, "cannot unlink a mount root");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  auto* dir = static_cast<Directory*>(parent);
  auto entry_or = co_await dir->Lookup(r.leaf);
  if (!entry_or.ok()) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return entry_or.status();
  }
  if (entry_or->type == FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kIsDirectory, path);
  }
  PFS_CO_RETURN_IF_ERROR(co_await dir->Remove(r.leaf));
  (void)co_await r.mount->table->Release(r.parent_ino);

  const uint64_t ino = entry_or->ino;
  if (r.mount->table->open_count(ino) > 0) {
    // Unix semantics: the file lives until the last close.
    r.mount->table->MarkDeletePending(ino);
    co_return OkStatus();
  }
  // Dirty cached data dies in memory — the write-saving effect.
  r.mount->fs->cache()->InvalidateFile(r.mount->fs->fs_id(), ino);
  co_return co_await r.mount->fs->layout()->FreeInode(ino);
}

Task<Status> LocalClient::MkdirLocal(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    co_return Status(ErrorCode::kExists, path);
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  if (parent->type() != FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kNotDirectory, path);
  }
  auto* dir = static_cast<Directory*>(parent);
  auto ino_or = co_await r.mount->fs->layout()->AllocInode(FileType::kDirectory);
  if (!ino_or.ok()) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return ino_or.status();
  }
  const Status add = co_await dir->Add(r.leaf, *ino_or, FileType::kDirectory);
  (void)co_await r.mount->table->Release(r.parent_ino);
  if (!add.ok()) {
    (void)co_await r.mount->fs->layout()->FreeInode(*ino_or);
  }
  co_return add;
}

Task<Status> LocalClient::RmdirLocal(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    co_return Status(ErrorCode::kInvalidArgument, "cannot remove a mount root");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  auto* dir = static_cast<Directory*>(parent);
  auto entry_or = co_await dir->Lookup(r.leaf);
  if (!entry_or.ok() || entry_or->type != FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return entry_or.ok() ? Status(ErrorCode::kNotDirectory, path) : entry_or.status();
  }
  // The victim must be empty.
  PFS_CO_ASSIGN_OR_RETURN(File * victim_file, co_await r.mount->table->Acquire(entry_or->ino));
  auto* victim = static_cast<Directory*>(victim_file);
  const bool empty = victim->IsEmpty();
  (void)co_await r.mount->table->Release(entry_or->ino);
  if (!empty) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kNotEmpty, path);
  }
  PFS_CO_RETURN_IF_ERROR(co_await dir->Remove(r.leaf));
  (void)co_await r.mount->table->Release(r.parent_ino);
  r.mount->fs->cache()->InvalidateFile(r.mount->fs->fs_id(), entry_or->ino);
  co_return co_await r.mount->fs->layout()->FreeInode(entry_or->ino);
}

Task<Status> LocalClient::RenameLocal(const std::string& from, const std::string& to) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved rf, co_await ResolveParent(from));
  PFS_CO_ASSIGN_OR_RETURN(Resolved rt, co_await ResolveParent(to));
  if (rf.leaf.empty() || rt.leaf.empty() || rf.mount != rt.mount) {
    co_return Status(ErrorCode::kInvalidArgument, "bad rename");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * from_parent, co_await rf.mount->table->Acquire(rf.parent_ino));
  auto* from_dir = static_cast<Directory*>(from_parent);
  auto entry_or = co_await from_dir->Lookup(rf.leaf);
  if (!entry_or.ok()) {
    (void)co_await rf.mount->table->Release(rf.parent_ino);
    co_return entry_or.status();
  }
  // Replace an existing regular-file target, per Unix rename semantics.
  // Same shard by construction (the router rejected cross-shard pairs), so
  // the nested Unlink router collapses inline.
  auto existing = co_await ResolveExisting(to);
  if (existing.ok() && existing->second.type != FileType::kDirectory) {
    PFS_CO_RETURN_IF_ERROR(co_await Unlink(to));
  }
  PFS_CO_RETURN_IF_ERROR(co_await from_dir->Remove(rf.leaf));
  (void)co_await rf.mount->table->Release(rf.parent_ino);

  PFS_CO_ASSIGN_OR_RETURN(File * to_parent, co_await rt.mount->table->Acquire(rt.parent_ino));
  auto* to_dir = static_cast<Directory*>(to_parent);
  const Status add = co_await to_dir->Add(rt.leaf, entry_or->ino, entry_or->type);
  (void)co_await rt.mount->table->Release(rt.parent_ino);
  co_return add;
}

Task<Result<std::vector<DirEntry>>> LocalClient::ReadDirLocal(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(auto resolved, co_await ResolveExisting(path));
  auto [mount, entry] = resolved;
  if (entry.type != FileType::kDirectory) {
    co_return Status(ErrorCode::kNotDirectory, path);
  }
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(entry.ino));
  auto list_or = co_await static_cast<Directory*>(file)->List();
  PFS_CO_RETURN_IF_ERROR(co_await mount->table->Release(entry.ino));
  co_return list_or;
}

Task<Status> LocalClient::SymlinkAtLocal(const std::string& path, const std::string& target) {
  OpenOptions options;
  options.create = true;
  options.create_type = FileType::kSymlink;
  // Same shard as `path`, so the nested Open/Close routers collapse inline.
  PFS_CO_ASSIGN_OR_RETURN(const Fd fd, co_await Open(path, options));
  OpenFile open;
  PFS_CHECK(LookupFd(fd, &open));
  auto* link = static_cast<Symlink*>(open.mount->table->Get(open.ino));
  const Status status = co_await link->SetTarget(target);
  PFS_CO_RETURN_IF_ERROR(co_await Close(fd));
  co_return status;
}

Task<Result<std::string>> LocalClient::ReadLinkLocal(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(auto resolved, co_await ResolveExisting(path));
  auto [mount, entry] = resolved;
  if (entry.type != FileType::kSymlink) {
    co_return Status(ErrorCode::kInvalidArgument, "not a symlink");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(entry.ino));
  auto target_or = co_await static_cast<Symlink*>(file)->ReadTarget();
  PFS_CO_RETURN_IF_ERROR(co_await mount->table->Release(entry.ino));
  co_return target_or;
}

Task<Status> LocalClient::SyncAll() {
  // A trace root like Open/Read/Write: the flush I/O below runs inline on
  // this coroutine, so the write-back path (volume fan-out, driver batches)
  // shows up in traces even when the cache absorbed every foreground write.
  const OpTrace t = TraceBegin(ClientOp::kSyncAll);
  Status status = co_await SyncAllImpl();
  TraceEnd(t, 0);
  co_return status;
}

Task<Status> LocalClient::SyncAllImpl() {
  // Distinct shards in mount order; each shard's mounts sync on that shard.
  std::vector<Scheduler*> shards;
  for (auto& [name, mount] : mounts_) {
    Scheduler* s = mount.fs->scheduler();
    if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
      shards.push_back(s);
    }
  }
  if (shards.size() <= 1) {
    co_return co_await SyncShard(nullptr);
  }
  Scheduler* home = Scheduler::Current();
  for (Scheduler* shard : shards) {
    LocalClient* self = this;
    Status status;
    if (home == nullptr || shard == home) {
      status = co_await SyncShard(shard);
    } else {
      auto body = [self, shard]() { return self->SyncShard(shard); };
      status = co_await CallOn<Status>(home, shard, body);
    }
    PFS_CO_RETURN_IF_ERROR(status);
  }
  co_return OkStatus();
}

Task<Status> LocalClient::SyncShard(Scheduler* shard) {
  BufferCache* cache = nullptr;
  for (auto& [name, mount] : mounts_) {
    if (shard != nullptr && mount.fs->scheduler() != shard) {
      continue;
    }
    if (cache != mount.fs->cache()) {
      cache = mount.fs->cache();
      PFS_CO_RETURN_IF_ERROR(co_await cache->SyncAll());
    }
  }
  for (auto& [name, mount] : mounts_) {
    if (shard != nullptr && mount.fs->scheduler() != shard) {
      continue;
    }
    PFS_CO_RETURN_IF_ERROR(co_await mount.fs->layout()->Sync());
  }
  co_return OkStatus();
}

}  // namespace pfs
