#include "client/local_client.h"

#include <algorithm>

#include "obs/trace.h"

namespace pfs {
namespace {

// Splits "/mnt/a/b" into {"mnt", "a", "b"}; empty components collapse.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    parts.push_back(std::move(cur));
  }
  return parts;
}

}  // namespace

void LocalClient::AddMount(const std::string& name, FileSystem* fs) {
  PFS_CHECK(fs != nullptr);
  Mount mount;
  mount.fs = fs;
  mount.table = std::make_unique<FileTable>(fs);
  PFS_CHECK_MSG(mounts_.emplace(name, std::move(mount)).second, "duplicate mount");
}

FileAttrs LocalClient::AttrsOf(const File& file) {
  const Inode& inode = file.inode();
  return FileAttrs{inode.ino, inode.type, inode.size, inode.nlink, inode.mtime_ns};
}

Task<Result<LocalClient::Resolved>> LocalClient::ResolveParent(const std::string& path) {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    co_return Status(ErrorCode::kInvalidArgument, "empty path");
  }
  auto mount_it = mounts_.find(parts[0]);
  if (mount_it == mounts_.end()) {
    co_return Status(ErrorCode::kNotFound, "no mount " + parts[0]);
  }
  Mount* mount = &mount_it->second;
  if (parts.size() == 1) {
    co_return Resolved{mount, 0, ""};
  }
  uint64_t dir_ino = mount->fs->layout()->root_ino();
  for (size_t i = 1; i + 1 < parts.size(); ++i) {
    PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(dir_ino));
    if (file->type() != FileType::kDirectory) {
      (void)co_await mount->table->Release(dir_ino);
      co_return Status(ErrorCode::kNotDirectory, parts[i]);
    }
    auto* dir = static_cast<Directory*>(file);
    auto entry_or = co_await dir->Lookup(parts[i]);
    (void)co_await mount->table->Release(dir_ino);
    PFS_CO_RETURN_IF_ERROR(entry_or.status());
    dir_ino = entry_or->ino;
  }
  co_return Resolved{mount, dir_ino, parts.back()};
}

Task<Result<std::pair<LocalClient::Mount*, DirEntry>>> LocalClient::ResolveExisting(
    const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    const uint64_t root = r.mount->fs->layout()->root_ino();
    co_return std::make_pair(r.mount, DirEntry{"", root, FileType::kDirectory});
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  if (parent->type() != FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kNotDirectory, path);
  }
  auto entry_or = co_await static_cast<Directory*>(parent)->Lookup(r.leaf);
  (void)co_await r.mount->table->Release(r.parent_ino);
  PFS_CO_RETURN_IF_ERROR(entry_or.status());
  co_return std::make_pair(r.mount, *entry_or);
}

LocalClient::OpTrace LocalClient::TraceBegin() {
  OpTrace t;
  if (tracer_ == nullptr) {
    return t;
  }
  Thread* self = sched_->current_thread();
  if (self == nullptr) {
    return t;
  }
  t.self = self;
  t.saved = self->trace;
  self->trace = tracer_->StartTrace();
  t.begin = sched_->Now();
  return t;
}

void LocalClient::TraceEnd(const OpTrace& t, uint64_t arg) {
  if (t.self == nullptr) {
    return;
  }
  RecordSpan(t.self->trace, TraceStage::kClient, t.self->id(), t.begin, sched_->Now(), arg);
  t.self->trace = t.saved;
}

Task<Result<Fd>> LocalClient::Open(const std::string& path, OpenOptions options) {
  const OpTrace t = TraceBegin();
  Result<Fd> result = co_await OpenImpl(path, options);
  TraceEnd(t, 0);
  co_return result;
}

Task<Result<Fd>> LocalClient::OpenImpl(const std::string& path, OpenOptions options) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  uint64_t ino = 0;
  if (r.leaf.empty()) {
    ino = r.mount->fs->layout()->root_ino();
  } else {
    PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
    if (parent->type() != FileType::kDirectory) {
      (void)co_await r.mount->table->Release(r.parent_ino);
      co_return Status(ErrorCode::kNotDirectory, path);
    }
    auto* dir = static_cast<Directory*>(parent);
    auto entry_or = co_await dir->Lookup(r.leaf);
    if (entry_or.ok()) {
      ino = entry_or->ino;
    } else if (entry_or.code() == ErrorCode::kNotFound && options.create) {
      auto ino_or = co_await r.mount->fs->layout()->AllocInode(options.create_type);
      if (!ino_or.ok()) {
        (void)co_await r.mount->table->Release(r.parent_ino);
        co_return ino_or.status();
      }
      ino = *ino_or;
      const Status add = co_await dir->Add(r.leaf, ino, options.create_type);
      if (!add.ok()) {
        (void)co_await r.mount->table->Release(r.parent_ino);
        co_return add;
      }
    } else {
      (void)co_await r.mount->table->Release(r.parent_ino);
      co_return entry_or.status();
    }
    (void)co_await r.mount->table->Release(r.parent_ino);
  }

  if (options.cache_hint != FileCacheHint::kNormal) {
    r.mount->fs->cache()->SetFileHint(r.mount->fs->fs_id(), ino, options.cache_hint);
  }
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await r.mount->table->Acquire(ino));
  (void)file;
  const Fd fd = next_fd_++;
  open_files_[fd] = OpenFile{r.mount, ino};
  co_return fd;
}

Task<Status> LocalClient::Close(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  const OpenFile open = it->second;
  open_files_.erase(it);
  co_return co_await open.mount->table->Release(open.ino);
}

Task<Result<uint64_t>> LocalClient::Read(Fd fd, uint64_t offset, uint64_t len,
                                         std::span<std::byte> out) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  File* file = it->second.mount->table->Get(it->second.ino);
  PFS_CHECK(file != nullptr);
  const OpTrace t = TraceBegin();
  co_await it->second.mount->fs->mover()->ChargeOpCost();
  Result<uint64_t> result = co_await file->Read(offset, len, out);
  TraceEnd(t, len);
  co_return result;
}

Task<Result<uint64_t>> LocalClient::Write(Fd fd, uint64_t offset, uint64_t len,
                                          std::span<const std::byte> in) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  File* file = it->second.mount->table->Get(it->second.ino);
  PFS_CHECK(file != nullptr);
  const OpTrace t = TraceBegin();
  co_await it->second.mount->fs->mover()->ChargeOpCost();
  Result<uint64_t> result = co_await file->Write(offset, len, in);
  TraceEnd(t, len);
  co_return result;
}

Task<Status> LocalClient::Truncate(Fd fd, uint64_t new_size) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  File* file = it->second.mount->table->Get(it->second.ino);
  PFS_CHECK(file != nullptr);
  co_return co_await file->Truncate(new_size);
}

Task<Status> LocalClient::Fsync(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  File* file = it->second.mount->table->Get(it->second.ino);
  PFS_CHECK(file != nullptr);
  const OpTrace t = TraceBegin();
  Status status = co_await file->Flush();
  TraceEnd(t, 0);
  co_return status;
}

Task<Result<FileAttrs>> LocalClient::FStat(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad fd");
  }
  File* file = it->second.mount->table->Get(it->second.ino);
  PFS_CHECK(file != nullptr);
  co_return AttrsOf(*file);
}

Task<Result<FileAttrs>> LocalClient::Stat(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(auto resolved, co_await ResolveExisting(path));
  auto [mount, entry] = resolved;
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(entry.ino));
  const FileAttrs attrs = AttrsOf(*file);
  PFS_CO_RETURN_IF_ERROR(co_await mount->table->Release(entry.ino));
  co_return attrs;
}

Task<Status> LocalClient::Unlink(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    co_return Status(ErrorCode::kIsDirectory, "cannot unlink a mount root");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  auto* dir = static_cast<Directory*>(parent);
  auto entry_or = co_await dir->Lookup(r.leaf);
  if (!entry_or.ok()) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return entry_or.status();
  }
  if (entry_or->type == FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kIsDirectory, path);
  }
  PFS_CO_RETURN_IF_ERROR(co_await dir->Remove(r.leaf));
  (void)co_await r.mount->table->Release(r.parent_ino);

  const uint64_t ino = entry_or->ino;
  if (r.mount->table->open_count(ino) > 0) {
    // Unix semantics: the file lives until the last close.
    r.mount->table->MarkDeletePending(ino);
    co_return OkStatus();
  }
  // Dirty cached data dies in memory — the write-saving effect.
  r.mount->fs->cache()->InvalidateFile(r.mount->fs->fs_id(), ino);
  co_return co_await r.mount->fs->layout()->FreeInode(ino);
}

Task<Status> LocalClient::Mkdir(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    co_return Status(ErrorCode::kExists, path);
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  if (parent->type() != FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kNotDirectory, path);
  }
  auto* dir = static_cast<Directory*>(parent);
  auto ino_or = co_await r.mount->fs->layout()->AllocInode(FileType::kDirectory);
  if (!ino_or.ok()) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return ino_or.status();
  }
  const Status add = co_await dir->Add(r.leaf, *ino_or, FileType::kDirectory);
  (void)co_await r.mount->table->Release(r.parent_ino);
  if (!add.ok()) {
    (void)co_await r.mount->fs->layout()->FreeInode(*ino_or);
  }
  co_return add;
}

Task<Status> LocalClient::Rmdir(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolveParent(path));
  if (r.leaf.empty()) {
    co_return Status(ErrorCode::kInvalidArgument, "cannot remove a mount root");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * parent, co_await r.mount->table->Acquire(r.parent_ino));
  auto* dir = static_cast<Directory*>(parent);
  auto entry_or = co_await dir->Lookup(r.leaf);
  if (!entry_or.ok() || entry_or->type != FileType::kDirectory) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return entry_or.ok() ? Status(ErrorCode::kNotDirectory, path) : entry_or.status();
  }
  // The victim must be empty.
  PFS_CO_ASSIGN_OR_RETURN(File * victim_file, co_await r.mount->table->Acquire(entry_or->ino));
  auto* victim = static_cast<Directory*>(victim_file);
  const bool empty = victim->IsEmpty();
  (void)co_await r.mount->table->Release(entry_or->ino);
  if (!empty) {
    (void)co_await r.mount->table->Release(r.parent_ino);
    co_return Status(ErrorCode::kNotEmpty, path);
  }
  PFS_CO_RETURN_IF_ERROR(co_await dir->Remove(r.leaf));
  (void)co_await r.mount->table->Release(r.parent_ino);
  r.mount->fs->cache()->InvalidateFile(r.mount->fs->fs_id(), entry_or->ino);
  co_return co_await r.mount->fs->layout()->FreeInode(entry_or->ino);
}

Task<Status> LocalClient::Rename(const std::string& from, const std::string& to) {
  PFS_CO_ASSIGN_OR_RETURN(Resolved rf, co_await ResolveParent(from));
  PFS_CO_ASSIGN_OR_RETURN(Resolved rt, co_await ResolveParent(to));
  if (rf.leaf.empty() || rt.leaf.empty() || rf.mount != rt.mount) {
    co_return Status(ErrorCode::kInvalidArgument, "bad rename");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * from_parent, co_await rf.mount->table->Acquire(rf.parent_ino));
  auto* from_dir = static_cast<Directory*>(from_parent);
  auto entry_or = co_await from_dir->Lookup(rf.leaf);
  if (!entry_or.ok()) {
    (void)co_await rf.mount->table->Release(rf.parent_ino);
    co_return entry_or.status();
  }
  // Replace an existing regular-file target, per Unix rename semantics.
  auto existing = co_await ResolveExisting(to);
  if (existing.ok() && existing->second.type != FileType::kDirectory) {
    PFS_CO_RETURN_IF_ERROR(co_await Unlink(to));
  }
  PFS_CO_RETURN_IF_ERROR(co_await from_dir->Remove(rf.leaf));
  (void)co_await rf.mount->table->Release(rf.parent_ino);

  PFS_CO_ASSIGN_OR_RETURN(File * to_parent, co_await rt.mount->table->Acquire(rt.parent_ino));
  auto* to_dir = static_cast<Directory*>(to_parent);
  const Status add = co_await to_dir->Add(rt.leaf, entry_or->ino, entry_or->type);
  (void)co_await rt.mount->table->Release(rt.parent_ino);
  co_return add;
}

Task<Result<std::vector<DirEntry>>> LocalClient::ReadDir(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(auto resolved, co_await ResolveExisting(path));
  auto [mount, entry] = resolved;
  if (entry.type != FileType::kDirectory) {
    co_return Status(ErrorCode::kNotDirectory, path);
  }
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(entry.ino));
  auto list_or = co_await static_cast<Directory*>(file)->List();
  PFS_CO_RETURN_IF_ERROR(co_await mount->table->Release(entry.ino));
  co_return list_or;
}

Task<Status> LocalClient::SymlinkAt(const std::string& path, const std::string& target) {
  OpenOptions options;
  options.create = true;
  options.create_type = FileType::kSymlink;
  PFS_CO_ASSIGN_OR_RETURN(const Fd fd, co_await Open(path, options));
  auto it = open_files_.find(fd);
  auto* link = static_cast<Symlink*>(it->second.mount->table->Get(it->second.ino));
  const Status status = co_await link->SetTarget(target);
  PFS_CO_RETURN_IF_ERROR(co_await Close(fd));
  co_return status;
}

Task<Result<std::string>> LocalClient::ReadLink(const std::string& path) {
  PFS_CO_ASSIGN_OR_RETURN(auto resolved, co_await ResolveExisting(path));
  auto [mount, entry] = resolved;
  if (entry.type != FileType::kSymlink) {
    co_return Status(ErrorCode::kInvalidArgument, "not a symlink");
  }
  PFS_CO_ASSIGN_OR_RETURN(File * file, co_await mount->table->Acquire(entry.ino));
  auto target_or = co_await static_cast<Symlink*>(file)->ReadTarget();
  PFS_CO_RETURN_IF_ERROR(co_await mount->table->Release(entry.ino));
  co_return target_or;
}

Task<Status> LocalClient::SyncAll() {
  // A trace root like Open/Read/Write: the flush I/O below runs inline on
  // this coroutine, so the write-back path (volume fan-out, driver batches)
  // shows up in traces even when the cache absorbed every foreground write.
  const OpTrace t = TraceBegin();
  Status status = co_await SyncAllImpl();
  TraceEnd(t, 0);
  co_return status;
}

Task<Status> LocalClient::SyncAllImpl() {
  BufferCache* cache = nullptr;
  for (auto& [name, mount] : mounts_) {
    if (cache != mount.fs->cache()) {
      cache = mount.fs->cache();
      PFS_CO_RETURN_IF_ERROR(co_await cache->SyncAll());
    }
  }
  for (auto& [name, mount] : mounts_) {
    PFS_CO_RETURN_IF_ERROR(co_await mount.fs->layout()->Sync());
  }
  co_return OkStatus();
}

}  // namespace pfs
