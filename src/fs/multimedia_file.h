// Multimedia file: the paper's "active" file type (§2). On first open it
// spawns its own thread of control inside the file system, which pre-loads
// data ahead of the consumer at the stream's bit rate, and it switches its
// cache blocks to evict-first so a stream cannot flood the cache ("If
// ordinary cache policies are used on a multi-media file the whole cache
// would fill up with this data").
#ifndef PFS_FS_MULTIMEDIA_FILE_H_
#define PFS_FS_MULTIMEDIA_FILE_H_

#include "fs/file.h"
#include "sched/event.h"

namespace pfs {

class MultimediaFile final : public File {
 public:
  struct QosParams {
    uint64_t bit_rate_bytes_per_sec = 1500 * 1000 / 8;  // MPEG-1-ish
    uint32_t prefetch_blocks = 4;                       // read-ahead window
  };

  MultimediaFile(FileSystem* fs, Inode inode) : File(fs, inode) {}

  void set_qos(QosParams qos) { qos_ = qos; }
  const QosParams& qos() const { return qos_; }

  Task<Status> OnFirstOpen() override;
  Task<Status> OnLastClose() override;

  // Reads advance the stream position the pre-loader works from.
  Task<Result<uint64_t>> Read(uint64_t offset, uint64_t len,
                              std::span<std::byte> out) override;

  uint64_t prefetched_blocks() const { return prefetched_; }
  bool active() const { return active_; }

 private:
  Task<> Preloader();

  QosParams qos_;
  bool active_ = false;
  uint64_t stream_pos_ = 0;       // consumer's position (bytes)
  uint64_t prefetch_next_ = 0;    // next block index to pre-load
  uint64_t prefetched_ = 0;
};

}  // namespace pfs

#endif  // PFS_FS_MULTIMEDIA_FILE_H_
