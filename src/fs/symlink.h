// Symbolic link: the target path is the file's single-block content.
#ifndef PFS_FS_SYMLINK_H_
#define PFS_FS_SYMLINK_H_

#include <string>

#include "fs/file.h"

namespace pfs {

class Symlink final : public File {
 public:
  using File::File;

  Task<Status> SetTarget(const std::string& target);
  Task<Result<std::string>> ReadTarget();

 private:
  std::string cached_target_;  // authoritative in the simulator
  bool target_loaded_ = false;
};

}  // namespace pfs

#endif  // PFS_FS_SYMLINK_H_
