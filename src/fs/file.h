// Instantiated files (paper §2, "Files"): an instantiated file controls a
// file loaded into the file-system cache — a memory copy of the inode,
// references to cached data, and read/write/flush methods. Each file type is
// a derived class; the front-end instantiates an object of the right type
// when the file is first accessed.
#ifndef PFS_FS_FILE_H_
#define PFS_FS_FILE_H_

#include <span>

#include "fs/file_system.h"
#include "layout/inode.h"

namespace pfs {

class File {
 public:
  File(FileSystem* fs, Inode inode) : fs_(fs), inode_(inode) {}
  virtual ~File() = default;

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  uint64_t ino() const { return inode_.ino; }
  FileType type() const { return inode_.type; }
  uint64_t size() const { return inode_.size; }
  const Inode& inode() const { return inode_; }

  // Reads up to `len` bytes at `offset` through the cache; returns the byte
  // count actually read (clamped at EOF). `out` may be empty (simulator).
  virtual Task<Result<uint64_t>> Read(uint64_t offset, uint64_t len, std::span<std::byte> out);

  // Writes `len` bytes at `offset` through the cache, extending the file.
  // `in` may be empty (simulator); `len` governs behaviour.
  virtual Task<Result<uint64_t>> Write(uint64_t offset, uint64_t len,
                                       std::span<const std::byte> in);

  virtual Task<Status> Truncate(uint64_t new_size);

  // Writes back this file's dirty cache blocks and its inode.
  virtual Task<Status> Flush();

  // Lifecycle hooks driven by the file table (open count 0 -> 1 and 1 -> 0).
  virtual Task<Status> OnFirstOpen() { co_return OkStatus(); }
  virtual Task<Status> OnLastClose() { co_return OkStatus(); }

 protected:
  Task<Status> PersistInodeAttrs();  // push the in-memory inode to the layout

  FileSystem* fs_;
  Inode inode_;
};

// Ordinary data file.
class RegularFile : public File {
 public:
  using File::File;
};

}  // namespace pfs

#endif  // PFS_FS_FILE_H_
