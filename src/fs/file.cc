#include "fs/file.h"

#include <algorithm>

namespace pfs {

Task<Result<uint64_t>> File::Read(uint64_t offset, uint64_t len, std::span<std::byte> out) {
  if (offset >= inode_.size) {
    co_return 0;
  }
  len = std::min(len, inode_.size - offset);
  const uint32_t bs = fs_->block_size();
  BufferCache* cache = fs_->cache();
  uint64_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint64_t block_no = pos / bs;
    const uint32_t in_block = static_cast<uint32_t>(pos % bs);
    const uint64_t chunk = std::min<uint64_t>(len - done, bs - in_block);

    PFS_CO_ASSIGN_OR_RETURN(
        CacheBlock * block,
        co_await cache->GetBlock(BlockId{fs_->fs_id(), inode_.ino, block_no}, GetMode::kRead));
    std::span<std::byte> dst =
        out.empty() ? std::span<std::byte>{} : out.subspan(done, chunk);
    std::span<const std::byte> src =
        block->data.empty() ? std::span<const std::byte>{}
                            : std::span<const std::byte>(block->data).subspan(in_block, chunk);
    co_await fs_->mover()->Move(dst, src, chunk);
    cache->Release(block);
    done += chunk;
  }
  co_return done;
}

Task<Result<uint64_t>> File::Write(uint64_t offset, uint64_t len,
                                   std::span<const std::byte> in) {
  if (len == 0) {
    co_return 0;
  }
  if (offset + len > Inode::MaxFileSize(fs_->block_size())) {
    co_return Status(ErrorCode::kOutOfRange, "file too large");
  }
  const uint32_t bs = fs_->block_size();
  BufferCache* cache = fs_->cache();
  uint64_t done = 0;
  while (done < len) {
    const uint64_t pos = offset + done;
    const uint64_t block_no = pos / bs;
    const uint32_t in_block = static_cast<uint32_t>(pos % bs);
    const uint64_t chunk = std::min<uint64_t>(len - done, bs - in_block);

    // Whole-block overwrites (or writes wholly beyond current EOF) need no
    // read-modify-write fill.
    const bool full_block = in_block == 0 && chunk == bs;
    const bool beyond_eof = pos >= RoundUp(inode_.size, bs);
    const GetMode mode = (full_block || beyond_eof) ? GetMode::kOverwrite : GetMode::kRead;

    PFS_CO_ASSIGN_OR_RETURN(
        CacheBlock * block,
        co_await cache->GetBlock(BlockId{fs_->fs_id(), inode_.ino, block_no}, mode));
    const Status dirty_status = co_await cache->MarkDirty(block);
    if (!dirty_status.ok()) {
      cache->Release(block);
      co_return dirty_status;
    }
    std::span<std::byte> dst =
        block->data.empty() ? std::span<std::byte>{} : block->data.subspan(in_block, chunk);
    std::span<const std::byte> src =
        in.empty() ? std::span<const std::byte>{} : in.subspan(done, chunk);
    co_await fs_->mover()->Move(dst, src, chunk);
    cache->Release(block);
    done += chunk;
  }
  if (offset + len > inode_.size) {
    inode_.size = offset + len;
  }
  inode_.mtime_ns = fs_->scheduler()->Now().nanos();
  PFS_CO_RETURN_IF_ERROR(co_await PersistInodeAttrs());
  co_return done;
}

Task<Status> File::Truncate(uint64_t new_size) {
  const uint32_t bs = fs_->block_size();
  if (new_size < inode_.size) {
    const uint64_t first_dead_block = CeilDiv(new_size, bs);
    // Dirty data above the cut dies in memory — the overwrite absorption the
    // write-saving policies exploit.
    fs_->cache()->InvalidateFile(fs_->fs_id(), inode_.ino, first_dead_block);
    PFS_CO_RETURN_IF_ERROR(co_await fs_->layout()->TruncateBlocks(inode_.ino, first_dead_block));
  }
  inode_.size = new_size;
  inode_.mtime_ns = fs_->scheduler()->Now().nanos();
  co_return co_await PersistInodeAttrs();
}

Task<Status> File::Flush() {
  PFS_CO_RETURN_IF_ERROR(co_await fs_->cache()->FlushFile(fs_->fs_id(), inode_.ino));
  co_return co_await PersistInodeAttrs();
}

Task<Status> File::PersistInodeAttrs() { co_return co_await fs_->layout()->WriteInode(inode_); }

}  // namespace pfs
