// FileTable: the global table of instantiated files (paper §2: the abstract
// client interface "stores a reference to [the loaded file] in a global file
// table"; "the front-end examines the file type ... and instantiates an
// object of that type to manage the file while it is in core").
//
// Acquire() loads the inode and constructs the type-specific File object on
// first use; file objects stay instantiated for the life of the server (the
// cache, not the table, manages memory pressure on data).
#ifndef PFS_FS_FILE_TABLE_H_
#define PFS_FS_FILE_TABLE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "fs/directory.h"
#include "fs/file.h"
#include "fs/multimedia_file.h"
#include "fs/symlink.h"

namespace pfs {

class FileTable {
 public:
  explicit FileTable(FileSystem* fs) : fs_(fs) {}

  // Returns the instantiated file, constructing it (and firing OnFirstOpen)
  // if this is the first reference. Every Acquire pairs with one Release.
  Task<Result<File*>> Acquire(uint64_t ino);

  // Drops one reference; fires OnLastClose at zero. If the file was marked
  // for deletion (unlink while open), completes the deletion.
  Task<Status> Release(uint64_t ino);

  // Marks an open file to be freed on last close (Unix unlink semantics).
  void MarkDeletePending(uint64_t ino) { delete_pending_.insert(ino); }

  // Open-reference count (0 if not instantiated).
  int open_count(uint64_t ino) const;

  size_t instantiated_count() const { return files_.size(); }

  // Direct access for callers that already hold a reference.
  File* Get(uint64_t ino);

 private:
  struct Entry {
    std::unique_ptr<File> file;
    int refs = 0;
  };

  static std::unique_ptr<File> Instantiate(FileSystem* fs, const Inode& inode);

  FileSystem* fs_;
  std::unordered_map<uint64_t, Entry> files_;
  std::unordered_set<uint64_t> delete_pending_;
};

}  // namespace pfs

#endif  // PFS_FS_FILE_TABLE_H_
