#include "fs/multimedia_file.h"

#include <algorithm>

namespace pfs {

Task<Status> MultimediaFile::OnFirstOpen() {
  // Stream data must not age out everything else.
  fs_->cache()->SetFileHint(fs_->fs_id(), inode_.ino, FileCacheHint::kEvictFirst);
  active_ = true;
  stream_pos_ = 0;
  prefetch_next_ = 0;
  fs_->scheduler()->SpawnDaemon("mm.preload." + std::to_string(inode_.ino), Preloader());
  co_return OkStatus();
}

Task<Status> MultimediaFile::OnLastClose() {
  active_ = false;  // the pre-loader observes this and exits
  fs_->cache()->SetFileHint(fs_->fs_id(), inode_.ino, FileCacheHint::kNormal);
  co_return OkStatus();
}

Task<Result<uint64_t>> MultimediaFile::Read(uint64_t offset, uint64_t len,
                                            std::span<std::byte> out) {
  stream_pos_ = offset + len;
  co_return co_await File::Read(offset, len, out);
}

Task<> MultimediaFile::Preloader() {
  const uint32_t bs = fs_->block_size();
  // Pace: time for one block's worth of stream data.
  const Duration per_block = Duration::Nanos(
      static_cast<int64_t>(static_cast<uint64_t>(bs) * 1000000000ULL /
                           std::max<uint64_t>(qos_.bit_rate_bytes_per_sec, 1)));
  while (active_) {
    const uint64_t consumer_block = stream_pos_ / bs;
    const uint64_t horizon = consumer_block + qos_.prefetch_blocks;
    const uint64_t file_blocks = CeilDiv(inode_.size, bs);
    prefetch_next_ = std::max(prefetch_next_, consumer_block);
    if (prefetch_next_ < std::min(horizon, file_blocks)) {
      auto block_or = co_await fs_->cache()->GetBlock(
          BlockId{fs_->fs_id(), inode_.ino, prefetch_next_}, GetMode::kRead);
      if (block_or.ok()) {
        fs_->cache()->Release(*block_or);
        ++prefetched_;
      }
      ++prefetch_next_;
      continue;  // fill the window without pacing delay
    }
    co_await fs_->scheduler()->Sleep(per_block);
  }
}

}  // namespace pfs
