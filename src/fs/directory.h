// Directory: a file whose contents are fixed-size 64-byte entry records
// (ino, type, name), giving exactly 64 records per 4 KB block. Mutations
// rewrite one record through the normal cached write path, so directory
// traffic is charged like any other file I/O in both instantiations; the
// in-memory name index is authoritative during operation and is rebuilt from
// the records on first access in the real system.
#ifndef PFS_FS_DIRECTORY_H_
#define PFS_FS_DIRECTORY_H_

#include <map>
#include <string>
#include <vector>

#include "fs/file.h"

namespace pfs {

struct DirEntry {
  std::string name;
  uint64_t ino;
  FileType type;
};

class Directory final : public File {
 public:
  static constexpr size_t kRecordSize = 64;
  static constexpr size_t kMaxNameLen = kRecordSize - 10;  // u64 ino + u8 type + u8 len

  using File::File;

  // Rebuilds the in-memory index from the record file (real instantiation).
  // The simulator starts from a freshly formatted tree, so there is nothing
  // to load there.
  Task<Status> OnFirstOpen() override;

  Task<Result<DirEntry>> Lookup(const std::string& name);
  Task<Status> Add(const std::string& name, uint64_t ino, FileType type);
  Task<Status> Remove(const std::string& name);
  Task<Result<std::vector<DirEntry>>> List();

  bool IsEmpty() const { return entries_.empty(); }
  size_t entry_count() const { return entries_.size(); }

 private:
  struct Slot {
    uint64_t ino;
    FileType type;
    uint32_t slot;  // record index within the file
  };

  // Writes record `slot` (or a tombstone) through the cached write path.
  Task<Status> WriteRecord(uint32_t slot, const std::string& name, uint64_t ino,
                           FileType type);

  bool loaded_ = false;
  std::map<std::string, Slot> entries_;
  std::vector<uint32_t> free_slots_;
  uint32_t next_slot_ = 0;
};

}  // namespace pfs

#endif  // PFS_FS_DIRECTORY_H_
