#include "fs/file_table.h"

namespace pfs {

std::unique_ptr<File> FileTable::Instantiate(FileSystem* fs, const Inode& inode) {
  switch (inode.type) {
    case FileType::kRegular:
      return std::make_unique<RegularFile>(fs, inode);
    case FileType::kDirectory:
      return std::make_unique<Directory>(fs, inode);
    case FileType::kSymlink:
      return std::make_unique<Symlink>(fs, inode);
    case FileType::kMultimedia:
      return std::make_unique<MultimediaFile>(fs, inode);
    case FileType::kNone:
      break;
  }
  PFS_UNREACHABLE();
}

Task<Result<File*>> FileTable::Acquire(uint64_t ino) {
  auto it = files_.find(ino);
  if (it != files_.end()) {
    Entry& entry = it->second;
    if (entry.refs == 0) {
      PFS_CO_RETURN_IF_ERROR(co_await entry.file->OnFirstOpen());
    }
    ++entry.refs;
    co_return entry.file.get();
  }
  PFS_CO_ASSIGN_OR_RETURN(const Inode inode, co_await fs_->layout()->ReadInode(ino));
  Entry entry;
  entry.file = Instantiate(fs_, inode);
  entry.refs = 1;
  File* file = entry.file.get();
  files_.emplace(ino, std::move(entry));
  PFS_CO_RETURN_IF_ERROR(co_await file->OnFirstOpen());
  co_return file;
}

Task<Status> FileTable::Release(uint64_t ino) {
  auto it = files_.find(ino);
  if (it == files_.end()) {
    co_return Status(ErrorCode::kInvalidArgument, "Release of unknown file");
  }
  Entry& entry = it->second;
  PFS_CHECK(entry.refs > 0);
  --entry.refs;
  if (entry.refs > 0) {
    co_return OkStatus();
  }
  PFS_CO_RETURN_IF_ERROR(co_await entry.file->OnLastClose());
  if (delete_pending_.erase(ino) > 0) {
    fs_->cache()->InvalidateFile(fs_->fs_id(), ino);
    PFS_CO_RETURN_IF_ERROR(co_await fs_->layout()->FreeInode(ino));
    files_.erase(ino);
  }
  co_return OkStatus();
}

int FileTable::open_count(uint64_t ino) const {
  auto it = files_.find(ino);
  return it == files_.end() ? 0 : it->second.refs;
}

File* FileTable::Get(uint64_t ino) {
  auto it = files_.find(ino);
  return it == files_.end() ? nullptr : it->second.file.get();
}

}  // namespace pfs
