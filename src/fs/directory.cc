#include "fs/directory.h"

#include <cstring>

namespace pfs {

Task<Status> Directory::OnFirstOpen() {
  if (loaded_) {
    co_return OkStatus();
  }
  loaded_ = true;
  next_slot_ = static_cast<uint32_t>(CeilDiv(inode_.size, kRecordSize));
  if (inode_.size == 0) {
    co_return OkStatus();
  }
  // Real instantiation: parse the records. Simulator: file bytes do not
  // exist; the read below still charges the I/O, and the zeroed buffer
  // parses as empty (simulated trees are always built within the run, and
  // file objects are never evicted, so the index is never lost).
  std::vector<std::byte> buf(inode_.size);
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t got, co_await Read(0, inode_.size, buf));
  for (uint32_t slot = 0; slot < got / kRecordSize; ++slot) {
    const std::byte* rec = buf.data() + static_cast<size_t>(slot) * kRecordSize;
    uint64_t ino = 0;
    std::memcpy(&ino, rec, sizeof(ino));
    if (ino == 0) {
      free_slots_.push_back(slot);
      continue;
    }
    const auto type = static_cast<FileType>(rec[8]);
    const auto namelen = static_cast<uint8_t>(rec[9]);
    if (namelen == 0 || namelen > kMaxNameLen) {
      free_slots_.push_back(slot);  // tolerate damage; fsck territory
      continue;
    }
    std::string name(reinterpret_cast<const char*>(rec + 10), namelen);
    entries_[name] = Slot{ino, type, slot};
  }
  co_return OkStatus();
}

Task<Status> Directory::WriteRecord(uint32_t slot, const std::string& name, uint64_t ino,
                                    FileType type) {
  std::byte rec[kRecordSize] = {};
  std::memcpy(rec, &ino, sizeof(ino));
  rec[8] = static_cast<std::byte>(type);
  rec[9] = static_cast<std::byte>(name.size());
  std::memcpy(rec + 10, name.data(), name.size());
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t wrote,
                          co_await Write(static_cast<uint64_t>(slot) * kRecordSize,
                                         kRecordSize, std::span<const std::byte>(rec)));
  PFS_CHECK(wrote == kRecordSize);
  co_return OkStatus();
}

Task<Result<DirEntry>> Directory::Lookup(const std::string& name) {
  PFS_CO_RETURN_IF_ERROR(co_await OnFirstOpen());
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    co_return Status(ErrorCode::kNotFound, "no entry " + name);
  }
  co_return DirEntry{name, it->second.ino, it->second.type};
}

Task<Status> Directory::Add(const std::string& name, uint64_t ino, FileType type) {
  PFS_CO_RETURN_IF_ERROR(co_await OnFirstOpen());
  if (name.empty() || name.size() > kMaxNameLen) {
    co_return Status(ErrorCode::kNameTooLong, name);
  }
  if (entries_.contains(name)) {
    co_return Status(ErrorCode::kExists, name);
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_slot_++;
  }
  PFS_CO_RETURN_IF_ERROR(co_await WriteRecord(slot, name, ino, type));
  entries_[name] = Slot{ino, type, slot};
  co_return OkStatus();
}

Task<Status> Directory::Remove(const std::string& name) {
  PFS_CO_RETURN_IF_ERROR(co_await OnFirstOpen());
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    co_return Status(ErrorCode::kNotFound, name);
  }
  const uint32_t slot = it->second.slot;
  PFS_CO_RETURN_IF_ERROR(co_await WriteRecord(slot, "", 0, FileType::kNone));
  free_slots_.push_back(slot);
  entries_.erase(it);
  co_return OkStatus();
}

Task<Result<std::vector<DirEntry>>> Directory::List() {
  PFS_CO_RETURN_IF_ERROR(co_await OnFirstOpen());
  std::vector<DirEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, slot] : entries_) {
    out.push_back(DirEntry{name, slot.ino, slot.type});
  }
  co_return out;
}

}  // namespace pfs
