#include "fs/symlink.h"

namespace pfs {

Task<Status> Symlink::SetTarget(const std::string& target) {
  if (target.size() + 2 > fs_->block_size()) {
    co_return Status(ErrorCode::kNameTooLong, "symlink target too long");
  }
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutString(target);
  PFS_CO_RETURN_IF_ERROR(co_await Truncate(0));
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t wrote, co_await Write(0, buf.size(), buf));
  PFS_CHECK(wrote == buf.size());
  cached_target_ = target;
  target_loaded_ = true;
  co_return OkStatus();
}

Task<Result<std::string>> Symlink::ReadTarget() {
  if (target_loaded_) {
    // Charge the read, answer from the instantiated file (simulator path).
    auto charged = co_await Read(0, inode_.size, {});
    PFS_CO_RETURN_IF_ERROR(charged.status());
    co_return cached_target_;
  }
  std::vector<std::byte> buf(inode_.size);
  auto read = co_await Read(0, inode_.size, buf);
  PFS_CO_RETURN_IF_ERROR(read.status());
  Deserializer d(buf);
  PFS_CO_ASSIGN_OR_RETURN(cached_target_, d.TakeString());
  target_loaded_ = true;
  co_return cached_target_;
}

}  // namespace pfs
