// FileSystem: binds one storage layout to the (server-wide) buffer cache and
// data mover, and implements the cache's BlockIoHandler so cache fills and
// flushes reach the right layout. One instance per mounted file system.
#ifndef PFS_FS_FILE_SYSTEM_H_
#define PFS_FS_FILE_SYSTEM_H_

#include "cache/buffer_cache.h"
#include "cache/data_mover.h"
#include "layout/storage_layout.h"
#include "sched/scheduler.h"

namespace pfs {

class FileSystem final : public BlockIoHandler {
 public:
  FileSystem(Scheduler* sched, StorageLayout* layout, BufferCache* cache, DataMover* mover)
      : sched_(sched), layout_(layout), cache_(cache), mover_(mover) {
    cache_->RegisterHandler(layout_->fs_id(), this);
  }

  // BlockIoHandler
  Task<Status> FillBlock(const BlockId& id, CacheBlock* block) override {
    co_return co_await layout_->ReadFileBlock(id.ino, id.block_no, block->data);
  }
  Task<Status> WriteBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) override {
    co_return co_await layout_->WriteFileBlocks(ino, blocks);
  }

  uint32_t fs_id() const { return layout_->fs_id(); }
  uint32_t block_size() const { return layout_->block_size(); }
  Scheduler* scheduler() { return sched_; }
  StorageLayout* layout() { return layout_; }
  BufferCache* cache() { return cache_; }
  DataMover* mover() { return mover_; }

 private:
  Scheduler* sched_;
  StorageLayout* layout_;
  BufferCache* cache_;
  DataMover* mover_;
};

}  // namespace pfs

#endif  // PFS_FS_FILE_SYSTEM_H_
