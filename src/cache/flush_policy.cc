#include "cache/flush_policy.h"

#include "cache/buffer_cache.h"
#include "core/check.h"
#include "system/component_registry.h"

namespace pfs {

Task<Status> FlushPolicy::MakeSpace() {
  // Default space-maker: flush the file owning the oldest dirty block, the
  // base component's behaviour in the paper.
  co_return co_await cache_->FlushOldest(/*whole_file=*/true);
}

void WriteDelayPolicy::Attach(BufferCache* cache) {
  FlushPolicy::Attach(cache);
  cache->scheduler()->SpawnDaemon("flush.write-delay", Scanner());
}

Task<> WriteDelayPolicy::Scanner() {
  Scheduler* sched = cache_->scheduler();
  for (;;) {
    co_await sched->Sleep(options_.scan_interval);
    // Flush every file whose oldest dirty block exceeded the age limit
    // (paper §2: "when it detects that there exists a dirty block older than
    // 30 seconds, it flushes the file associated to the oldest block").
    for (;;) {
      CacheBlock* oldest = cache_->OldestFlushableDirty();
      if (oldest == nullptr || sched->Now() - oldest->dirtied_at < options_.max_age) {
        break;
      }
      if (options_.whole_file) {
        (void)co_await cache_->FlushFile(oldest->id.fs_id, oldest->id.ino);
      } else {
        (void)co_await cache_->FlushBlock(oldest);
      }
    }
  }
}

Task<Status> UpsPolicy::MakeSpace() {
  co_return co_await cache_->FlushOldest(options_.whole_file);
}

Task<Status> NvramPolicy::AdmitDirty(uint64_t bytes) {
  // Dirty data may only occupy the NVRAM buffer. Drain the oldest dirty data
  // until the new bytes fit; if another thread's flush is already in flight,
  // wait for a transition instead of issuing more I/O.
  while (cache_->dirty_bytes() + bytes > options_.nvram_bytes) {
    const Status status = co_await cache_->FlushOldest(options_.whole_file);
    if (status.code() == ErrorCode::kNotFound) {
      co_await cache_->cleaned_event().Wait();
      continue;
    }
    PFS_CO_RETURN_IF_ERROR(status);
  }
  co_return OkStatus();
}

Task<Status> NvramPolicy::MakeSpace() {
  co_return co_await cache_->FlushOldest(options_.whole_file);
}

void RegisterBuiltinFlushPolicies() {
  FlushPolicyRegistry::Register(
      "write-delay", [](const FlushPolicyOptions&) { return std::make_unique<WriteDelayPolicy>(); });
  FlushPolicyRegistry::Register(
      "ups", [](const FlushPolicyOptions&) { return std::make_unique<UpsPolicy>(); });
  FlushPolicyRegistry::Register("nvram-whole", [](const FlushPolicyOptions& options) {
    return std::make_unique<NvramPolicy>(NvramPolicy::Options{options.nvram_bytes, true});
  });
  FlushPolicyRegistry::Register("nvram-partial", [](const FlushPolicyOptions& options) {
    return std::make_unique<NvramPolicy>(NvramPolicy::Options{options.nvram_bytes, false});
  });
}

std::unique_ptr<FlushPolicy> MakeFlushPolicy(const std::string& name) {
  const auto* factory = FlushPolicyRegistry::Find(name);
  PFS_CHECK_MSG(factory != nullptr, "unknown flush policy");
  return (*factory)(FlushPolicyOptions{});
}

}  // namespace pfs
