// Cache flush (persistency) policies — the subject of the paper's §5.1
// experiments:
//
//   * WriteDelayPolicy — the Unix SVR4 30-second-update baseline: a scanner
//     thread examines the cache every few seconds and flushes the file that
//     owns the oldest dirty block once it exceeds the age limit.
//   * UpsPolicy — the write-saving extreme: the machine has a UPS, so dirty
//     data is only written when the cache runs out of non-dirty blocks.
//   * NvramPolicy — dirty data may only live in a small NVRAM buffer (4 MB
//     in the paper): writers block until their dirty bytes fit, draining the
//     oldest dirty data to disk. Variants flush the whole file owning the
//     oldest block, or just that block.
//
// A policy may also be asked by the cache to MakeSpace() when allocation
// finds no clean or free block.
#ifndef PFS_CACHE_FLUSH_POLICY_H_
#define PFS_CACHE_FLUSH_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"
#include "core/units.h"
#include "sched/task.h"
#include "sched/time.h"

namespace pfs {

class BufferCache;

class FlushPolicy {
 public:
  virtual ~FlushPolicy() = default;

  virtual std::string name() const = 0;

  // Binds the policy to its cache and spawns any daemon threads. Called once
  // from BufferCache::Start().
  virtual void Attach(BufferCache* cache) { cache_ = cache; }

  // Admission control for new dirty bytes; blocks the writer until the
  // policy allows the data to become dirty (NVRAM budget). Called *before*
  // the block is marked dirty.
  virtual Task<Status> AdmitDirty(uint64_t bytes) {
    (void)bytes;
    co_return OkStatus();
  }

  // Frees at least one block's worth of space when allocation is stuck
  // (no free and no clean blocks). Default: flush the oldest dirty data.
  virtual Task<Status> MakeSpace();

 protected:
  BufferCache* cache_ = nullptr;
};

class WriteDelayPolicy final : public FlushPolicy {
 public:
  struct Options {
    Duration max_age = Duration::Seconds(30);
    Duration scan_interval = Duration::Seconds(5);
    bool whole_file = true;  // flush the file owning the over-age block
  };

  WriteDelayPolicy() = default;
  explicit WriteDelayPolicy(Options options) : options_(options) {}

  std::string name() const override { return "write-delay-30s"; }
  void Attach(BufferCache* cache) override;

 private:
  Task<> Scanner();

  Options options_;
};

class UpsPolicy final : public FlushPolicy {
 public:
  struct Options {
    // The paper's UPS experiment uses the naive single-block flush; trace 5
    // shows its cost.
    bool whole_file = false;
  };

  UpsPolicy() = default;
  explicit UpsPolicy(Options options) : options_(options) {}

  std::string name() const override { return "ups-write-saving"; }
  Task<Status> MakeSpace() override;

 private:
  Options options_;
};

class NvramPolicy final : public FlushPolicy {
 public:
  struct Options {
    uint64_t nvram_bytes = 4 * kMiB;
    bool whole_file = true;  // whole-file vs partial-file flush variants
  };

  NvramPolicy() = default;
  explicit NvramPolicy(Options options) : options_(options) {}

  std::string name() const override {
    return options_.whole_file ? "nvram-whole-file" : "nvram-partial-file";
  }

  Task<Status> AdmitDirty(uint64_t bytes) override;
  Task<Status> MakeSpace() override;

  uint64_t nvram_bytes() const { return options_.nvram_bytes; }

 private:
  Options options_;
};

// Factory by name: "write-delay", "ups", "nvram-whole", "nvram-partial".
std::unique_ptr<FlushPolicy> MakeFlushPolicy(const std::string& name);

}  // namespace pfs

#endif  // PFS_CACHE_FLUSH_POLICY_H_
