// The file-system block cache (paper §2, "Caches").
//
// The base component administers all dirty, non-dirty and free blocks in LRU
// lists and allocates blocks from the cache: first from the free list, then
// by evicting from the non-dirty list, and when no non-dirty block exists it
// initiates a cache flush through the oldest dirty block. Replacement and
// flush behaviour are pluggable policies (replacement.h, flush_policy.h).
//
// In the real instantiation a chunk of memory is allocated at start and
// divided over the cache blocks; the simulator leaves block data empty and
// the DataMover accounts for copy time instead (paper §2).
#ifndef PFS_CACHE_BUFFER_CACHE_H_
#define PFS_CACHE_BUFFER_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/block.h"
#include "cache/flush_policy.h"
#include "cache/replacement.h"
#include "core/result.h"
#include "core/units.h"
#include "sched/affinity.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace pfs {

class MetricRegistry;
class CounterMetric;
class HistogramMetric;

// The storage side of the cache: each mounted file system registers one of
// these to fill blocks from disk and to write dirty blocks back. Flushes are
// file-grouped because log-structured layouts want to write whole files
// contiguously.
class BlockIoHandler {
 public:
  virtual ~BlockIoHandler() = default;

  virtual Task<Status> FillBlock(const BlockId& id, CacheBlock* block) = 0;
  virtual Task<Status> WriteBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) = 0;
};

enum class GetMode : uint8_t {
  kRead,       // caller needs current contents; fill from disk on miss
  kOverwrite,  // caller will overwrite the whole block; no fill needed
};

// Shard-affine (ShardAffine): sharded systems build one cache per shard, and
// every public entry point asserts the caller runs on the cache's own loop —
// LRU lists and block states interleave at scheduling points, so a foreign
// shard's access is a logical race TSAN cannot see.
class BufferCache : public StatSource, public ShardAffine {
 public:
  struct Config {
    uint32_t block_size = kDefaultBlockSize;
    uint64_t capacity_bytes = 8 * kMiB;
    // Real instantiation: allocate the arena and hand each block a slice.
    bool allocate_memory = false;
    // §5.2 lesson: perform space-making flushes on a dedicated flusher
    // thread instead of in the allocating thread.
    bool async_flush = false;
    // Async flusher keeps flushing until this many blocks are allocatable.
    size_t flusher_target_blocks = 8;
  };

  BufferCache(Scheduler* sched, Config config, std::unique_ptr<ReplacementPolicy> replacement,
              std::unique_ptr<FlushPolicy> flush_policy);
  ~BufferCache() override;

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // Registration and startup.
  void RegisterHandler(uint32_t fs_id, BlockIoHandler* handler);
  void Start();  // attaches the flush policy, spawns the flusher if async

  // -- Block access (the File layer's interface) ---------------------------

  // Returns the block pinned; callers must Release() it. kRead fills from
  // disk on a miss; kOverwrite hands back an unfilled block.
  Task<Result<CacheBlock*>> GetBlock(const BlockId& id, GetMode mode);

  // Admits the new dirty bytes against the flush policy (may block, e.g.
  // NVRAM budget) and moves the block to the dirty list. Call with the block
  // pinned, before modifying its contents.
  Task<Status> MarkDirty(CacheBlock* block);

  void Release(CacheBlock* block);

  // Per-file cache behaviour delegation (paper §2: a client can ask for a
  // replacement policy when opening a file; the multimedia file type uses
  // this to avoid flooding the cache).
  void SetFileHint(uint32_t fs_id, uint64_t ino, FileCacheHint hint);

  // -- Write-back ----------------------------------------------------------

  // Flushes every unpinned dirty block of the file (whole-file flush).
  Task<Status> FlushFile(uint32_t fs_id, uint64_t ino);

  // Flushes one block.
  Task<Status> FlushBlock(CacheBlock* block);

  // Flushes the oldest dirty data: the file owning the oldest dirty block,
  // or just that block. The flush policies' workhorse. Returns kNotFound if
  // there is nothing flushable.
  Task<Status> FlushOldest(bool whole_file);

  // Flushes everything (unmount / sync).
  Task<Status> SyncAll();

  // Drops all blocks of `ino` with block_no >= from_block. Dirty data dies
  // in memory — this is the overwrite absorption that write-saving policies
  // bank on. Pinned blocks are doomed and freed on release.
  void InvalidateFile(uint32_t fs_id, uint64_t ino, uint64_t from_block = 0);

  // -- Introspection (policies, tests, stats plug-ins) ----------------------

  Scheduler* scheduler() { return sched_; }
  uint32_t block_size() const { return config_.block_size; }
  size_t total_blocks() const { return pool_.size(); }
  size_t free_count() const { return free_.size(); }
  size_t clean_count() const { return clean_.size(); }
  size_t dirty_count() const { return dirty_.size(); }
  uint64_t dirty_bytes() const { return dirty_.size() * config_.block_size; }
  const FlushPolicy& flush_policy() const { return *flush_policy_; }
  const ReplacementPolicy& replacement_policy() const { return *replacement_; }

  // Oldest dirty block not currently being written, or nullptr.
  CacheBlock* OldestFlushableDirty();

  // Fired on every dirty->clean transition or dirty-block invalidation;
  // NVRAM admission waits on this while another thread's flush is in flight.
  Event& cleaned_event() { return cleaned_; }

  // Sharded systems build one cache per shard; the suffix (".shard<i>")
  // keeps their registry names distinct. Single-shard systems keep "cache".
  void set_stat_suffix(std::string suffix) { stat_suffix_ = std::move(suffix); }

  // Registers this cache's counters/histogram with the live metrics plane;
  // `shard_label` becomes the {shard="..."} label on every family. Legacy
  // StatSource counters keep working either way.
  void BindMetrics(MetricRegistry* registry, uint32_t shard_label);

  // StatSource
  std::string stat_name() const override { return "cache" + stat_suffix_; }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;
  void StatResetInterval() override;

  uint64_t hits() const { return hits_.value(); }
  const LatencyHistogram& fill_latency() const { return fill_latency_; }
  uint64_t misses() const { return misses_.value(); }
  double HitRate() const;
  uint64_t blocks_flushed() const { return blocks_flushed_.value(); }
  uint64_t absorbed_dirty_blocks() const { return absorbed_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

 private:
  Task<Result<CacheBlock*>> AllocateSlot();
  void FreeBlock(CacheBlock* block);          // -> free list, identity cleared
  void Touch(CacheBlock* block);              // MRU + policy hooks
  void TransitionToClean(CacheBlock* block);  // dirty list -> clean list
  Task<Status> FlushBlockSet(uint32_t fs_id, uint64_t ino, std::vector<CacheBlock*> blocks);
  Task<> Flusher();  // async space-maker daemon

  Scheduler* sched_;
  Config config_;
  std::unique_ptr<ReplacementPolicy> replacement_;
  std::unique_ptr<FlushPolicy> flush_policy_;
  bool started_ = false;
  std::string stat_suffix_;

  std::vector<std::byte> arena_;
  std::vector<std::unique_ptr<CacheBlock>> pool_;
  std::unordered_map<BlockId, CacheBlock*, BlockIdHash> map_;
  BlockLruList free_;
  BlockLruList clean_;
  BlockLruList dirty_;  // ordered by first-dirtied time (front = oldest)

  std::unordered_map<uint32_t, BlockIoHandler*> handlers_;
  std::map<std::pair<uint32_t, uint64_t>, FileCacheHint> file_hints_;

  Event cleaned_;
  Event space_available_;  // signalled when free/clean blocks appear
  Event flusher_wakeup_;   // async mode: allocation pressure

  Counter hits_;
  Counter misses_;
  Counter fills_;
  Counter evictions_;
  Counter blocks_flushed_;
  Counter files_flushed_;
  Counter absorbed_;
  Histogram dirty_fraction_{0, 1.0, 50};  // sampled at each MarkDirty
  LatencyHistogram fill_latency_;         // miss-fill service time

  // Live metrics plane (null until BindMetrics; written next to the legacy
  // counters above).
  CounterMetric* m_hits_ = nullptr;
  CounterMetric* m_misses_ = nullptr;
  CounterMetric* m_fills_ = nullptr;
  CounterMetric* m_evictions_ = nullptr;
  CounterMetric* m_blocks_flushed_ = nullptr;
  HistogramMetric* m_fill_ = nullptr;
};

}  // namespace pfs

#endif  // PFS_CACHE_BUFFER_CACHE_H_
