#include "cache/buffer_cache.h"

#include <algorithm>

#include "core/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pfs {

BufferCache::BufferCache(Scheduler* sched, Config config,
                         std::unique_ptr<ReplacementPolicy> replacement,
                         std::unique_ptr<FlushPolicy> flush_policy)
    : sched_(sched),
      config_(config),
      replacement_(std::move(replacement)),
      flush_policy_(std::move(flush_policy)),
      cleaned_(sched),
      space_available_(sched),
      flusher_wakeup_(sched) {
  PFS_CHECK(replacement_ != nullptr);
  PFS_CHECK(flush_policy_ != nullptr);
  BindHomeShard(sched_);  // public entry points assert shard affinity
  const size_t blocks = static_cast<size_t>(config_.capacity_bytes / config_.block_size);
  PFS_CHECK_MSG(blocks >= 4, "cache too small");
  if (config_.allocate_memory) {
    arena_.resize(blocks * static_cast<size_t>(config_.block_size));
  }
  pool_.reserve(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    auto block = std::make_unique<CacheBlock>(sched_);
    if (config_.allocate_memory) {
      block->data = std::span<std::byte>(arena_.data() + i * config_.block_size,
                                         config_.block_size);
    }
    free_.PushBack(*block);
    pool_.push_back(std::move(block));
  }
}

BufferCache::~BufferCache() = default;

void BufferCache::RegisterHandler(uint32_t fs_id, BlockIoHandler* handler) {
  PFS_CHECK(handler != nullptr);
  PFS_CHECK_MSG(handlers_.emplace(fs_id, handler).second, "fs_id registered twice");
}

void BufferCache::Start() {
  PFS_CHECK_MSG(!started_, "cache started twice");
  started_ = true;
  flush_policy_->Attach(this);
  if (config_.async_flush) {
    sched_->SpawnDaemon("cache.flusher", Flusher());
  }
}

void BufferCache::BindMetrics(MetricRegistry* registry, uint32_t shard_label) {
  char labels[32];
  std::snprintf(labels, sizeof(labels), "shard=\"%u\"", shard_label);
  m_hits_ = registry->Counter("cache_hits_total", "Block lookups served from the cache", labels);
  m_misses_ = registry->Counter("cache_misses_total", "Block lookups that missed", labels);
  m_fills_ = registry->Counter("cache_fills_total", "Blocks filled from disk", labels);
  m_evictions_ = registry->Counter("cache_evictions_total", "Clean blocks evicted", labels);
  m_blocks_flushed_ =
      registry->Counter("cache_blocks_flushed_total", "Dirty blocks written back", labels);
  m_fill_ = registry->Histogram("cache_fill_seconds", "Miss-fill service time", labels,
                                /*scale=*/1e-9);
}

void BufferCache::SetFileHint(uint32_t fs_id, uint64_t ino, FileCacheHint hint) {
  PFS_ASSERT_SHARD();
  if (hint == FileCacheHint::kNormal) {
    file_hints_.erase({fs_id, ino});
  } else {
    file_hints_[{fs_id, ino}] = hint;
  }
}

void BufferCache::Touch(CacheBlock* block) {
  block->prev_access = block->last_access;
  block->last_access = sched_->Now();
  replacement_->OnAccess(block);
  if (block->state == BlockState::kClean) {
    clean_.MoveToBack(*block);
  }
  // Dirty blocks keep their first-dirtied order; the 30-second policy ages
  // them by dirtied_at, not by access recency.
}

Task<Result<CacheBlock*>> BufferCache::GetBlock(const BlockId& id, GetMode mode) {
  PFS_ASSERT_SHARD();
  PFS_CHECK_MSG(started_, "GetBlock before Start");
  for (;;) {
    auto it = map_.find(id);
    if (it != map_.end()) {
      CacheBlock* block = it->second;
      if (block->state == BlockState::kFilling) {
        // Another thread is filling this block; wait and re-check.
        co_await block->ready.Wait();
        continue;
      }
      hits_.Inc();
      if (m_hits_ != nullptr) {
        m_hits_->Inc();
      }
      ++block->pin_count;
      Touch(block);
      co_return block;
    }

    misses_.Inc();
    if (m_misses_ != nullptr) {
      m_misses_->Inc();
    }
    PFS_CO_ASSIGN_OR_RETURN(CacheBlock* block, co_await AllocateSlot());
    // AllocateSlot may have suspended; another thread may have inserted the
    // block meanwhile.
    if (map_.contains(id)) {
      FreeBlock(block);
      continue;
    }
    block->id = id;
    block->access_count = 0;
    block->last_access = sched_->Now();
    block->prev_access = TimePoint();
    block->doomed = false;
    auto hint_it = file_hints_.find({id.fs_id, id.ino});
    block->hint = hint_it == file_hints_.end() ? FileCacheHint::kNormal : hint_it->second;
    map_.emplace(id, block);
    replacement_->OnInsert(block);

    if (mode == GetMode::kOverwrite) {
      block->state = BlockState::kClean;
      clean_.PushBack(*block);
      ++block->pin_count;
      co_return block;
    }

    // Fill from disk.
    auto handler_it = handlers_.find(id.fs_id);
    PFS_CHECK_MSG(handler_it != handlers_.end(), "no handler for fs");
    block->state = BlockState::kFilling;
    block->io_in_progress = true;
    ++block->pin_count;
    fills_.Inc();
    if (m_fills_ != nullptr) {
      m_fills_->Inc();
    }
    const TimePoint fill_begin = sched_->Now();
    const Status status = co_await handler_it->second->FillBlock(id, block);
    fill_latency_.Record(sched_->Now() - fill_begin);
    if (m_fill_ != nullptr) {
      m_fill_->RecordDuration(sched_->Now() - fill_begin);
    }
    {
      const Thread* self = sched_->current_thread();
      if (self != nullptr && self->trace.active()) {
        RecordSpan(self->trace, TraceStage::kCacheFill, self->id(), fill_begin, sched_->Now(),
                   config_.block_size);
      }
    }
    block->io_in_progress = false;
    --block->pin_count;
    if (!status.ok()) {
      map_.erase(block->id);
      FreeBlock(block);
      block->ready.Broadcast();
      co_return status;
    }
    block->state = BlockState::kClean;
    clean_.PushBack(*block);
    ++block->pin_count;
    block->ready.Broadcast();
    co_return block;
  }
}

Task<Result<CacheBlock*>> BufferCache::AllocateSlot() {
  for (;;) {
    if (CacheBlock* block = free_.PopFront(); block != nullptr) {
      co_return block;
    }
    if (CacheBlock* victim = replacement_->PickVictim(clean_); victim != nullptr) {
      evictions_.Inc();
      if (m_evictions_ != nullptr) {
        m_evictions_->Inc();
      }
      map_.erase(victim->id);
      clean_.Remove(*victim);
      victim->state = BlockState::kFree;
      co_return victim;
    }
    // No free and no clean blocks: make space through the flush policy
    // (inline) or the flusher daemon (asynchronous flush, §5.2).
    if (config_.async_flush) {
      flusher_wakeup_.Signal();
      co_await space_available_.Wait();
    } else {
      const Status status = co_await flush_policy_->MakeSpace();
      if (!status.ok() && status.code() != ErrorCode::kNotFound) {
        co_return status;
      }
      if (status.code() == ErrorCode::kNotFound) {
        // Nothing flushable right now (all dirty blocks pinned or in flight);
        // wait for any transition.
        co_await cleaned_.Wait();
      }
    }
  }
}

void BufferCache::FreeBlock(CacheBlock* block) {
  PFS_CHECK(block->pin_count == 0);
  if (block->lru_node.linked()) {
    // Caller already detached list membership where needed; only free-list
    // insertion happens here.
    PFS_UNREACHABLE();
  }
  block->state = BlockState::kFree;
  block->id = BlockId{};
  block->doomed = false;
  block->hint = FileCacheHint::kNormal;
  free_.PushBack(*block);
  space_available_.Broadcast();
}

Task<Status> BufferCache::MarkDirty(CacheBlock* block) {
  PFS_ASSERT_SHARD();
  PFS_CHECK_MSG(block->pin_count > 0, "MarkDirty on unpinned block");
  ++block->dirty_version;
  if (block->state == BlockState::kDirty) {
    co_return OkStatus();
  }
  PFS_CHECK(block->state == BlockState::kClean);
  PFS_CO_RETURN_IF_ERROR(co_await flush_policy_->AdmitDirty(config_.block_size));
  // Re-check: admission may have suspended and the block may have been
  // doomed by a concurrent truncate.
  if (block->doomed) {
    co_return Status(ErrorCode::kAborted, "block invalidated during admission");
  }
  if (block->state != BlockState::kDirty) {
    clean_.Remove(*block);
    block->state = BlockState::kDirty;
    block->dirtied_at = sched_->Now();
    dirty_.PushBack(*block);
  }
  dirty_fraction_.Record(static_cast<double>(dirty_.size()) /
                         static_cast<double>(pool_.size()));
  co_return OkStatus();
}

void BufferCache::Release(CacheBlock* block) {
  PFS_ASSERT_SHARD();
  PFS_CHECK(block->pin_count > 0);
  --block->pin_count;
  if (block->pin_count == 0 && block->state == BlockState::kDirty && !block->doomed) {
    // The block just became flushable; wake policies waiting for one.
    cleaned_.Broadcast();
  }
  if (block->pin_count == 0 && block->doomed) {
    if (block->state == BlockState::kDirty) {
      dirty_.Remove(*block);
      absorbed_.Inc();
      cleaned_.Signal();
    } else if (block->state == BlockState::kClean) {
      clean_.Remove(*block);
    }
    map_.erase(block->id);
    FreeBlock(block);
    return;
  }
  if (block->pin_count == 0 && block->state == BlockState::kClean &&
      block->hint == FileCacheHint::kEvictFirst) {
    // Consumed-once data (multimedia streams): become the next victim.
    clean_.Remove(*block);
    clean_.PushFront(*block);
  }
}

CacheBlock* BufferCache::OldestFlushableDirty() {
  for (CacheBlock& b : dirty_) {
    // Pinned blocks are not flushable *now*; skipping them (rather than
    // returning them) keeps the flush policies from spinning on a block a
    // suspended writer still holds.
    if (!b.io_in_progress && !b.doomed && b.pin_count == 0) {
      return &b;
    }
  }
  return nullptr;
}

Task<Status> BufferCache::FlushBlockSet(uint32_t fs_id, uint64_t ino,
                                        std::vector<CacheBlock*> blocks) {
  if (blocks.empty()) {
    co_return OkStatus();
  }
  auto handler_it = handlers_.find(fs_id);
  PFS_CHECK_MSG(handler_it != handlers_.end(), "no handler for fs");

  std::vector<uint64_t> versions;
  versions.reserve(blocks.size());
  for (CacheBlock* b : blocks) {
    ++b->pin_count;
    b->io_in_progress = true;
    versions.push_back(b->dirty_version);
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const CacheBlock* a, const CacheBlock* b) {
              return a->id.block_no < b->id.block_no;
            });
  const Status status = co_await handler_it->second->WriteBlocks(ino, blocks);
  for (size_t i = 0; i < blocks.size(); ++i) {
    CacheBlock* b = blocks[i];
    b->io_in_progress = false;
    --b->pin_count;
    if (status.ok() && b->state == BlockState::kDirty && b->dirty_version == versions[i] &&
        !b->doomed) {
      TransitionToClean(b);
      blocks_flushed_.Inc();
      if (m_blocks_flushed_ != nullptr) {
        m_blocks_flushed_->Inc();
      }
    }
    b->ready.Broadcast();
    if (b->pin_count == 0 && b->doomed) {
      // Invalidated while we wrote it; finish the job.
      if (b->state == BlockState::kDirty) {
        dirty_.Remove(*b);
        absorbed_.Inc();
      } else if (b->state == BlockState::kClean) {
        clean_.Remove(*b);
      }
      map_.erase(b->id);
      FreeBlock(b);
    }
  }
  co_return status;
}

void BufferCache::TransitionToClean(CacheBlock* block) {
  dirty_.Remove(*block);
  block->state = BlockState::kClean;
  clean_.PushBack(*block);
  cleaned_.Broadcast();
  space_available_.Broadcast();
}

Task<Status> BufferCache::FlushFile(uint32_t fs_id, uint64_t ino) {
  PFS_ASSERT_SHARD();
  std::vector<CacheBlock*> victims;
  for (CacheBlock& b : dirty_) {
    if (b.id.fs_id == fs_id && b.id.ino == ino && !b.io_in_progress && !b.doomed &&
        b.pin_count == 0) {
      victims.push_back(&b);
    }
  }
  if (victims.empty()) {
    co_return OkStatus();
  }
  files_flushed_.Inc();
  co_return co_await FlushBlockSet(fs_id, ino, std::move(victims));
}

Task<Status> BufferCache::FlushBlock(CacheBlock* block) {
  PFS_ASSERT_SHARD();
  if (block->state != BlockState::kDirty || block->io_in_progress || block->doomed) {
    co_return OkStatus();
  }
  std::vector<CacheBlock*> one;
  one.push_back(block);
  co_return co_await FlushBlockSet(block->id.fs_id, block->id.ino, std::move(one));
}

Task<Status> BufferCache::FlushOldest(bool whole_file) {
  PFS_ASSERT_SHARD();
  CacheBlock* oldest = OldestFlushableDirty();
  if (oldest == nullptr) {
    co_return Status(ErrorCode::kNotFound, "no flushable dirty block");
  }
  if (whole_file) {
    co_return co_await FlushFile(oldest->id.fs_id, oldest->id.ino);
  }
  co_return co_await FlushBlock(oldest);
}

Task<Status> BufferCache::SyncAll() {
  PFS_ASSERT_SHARD();
  // Flush file by file until no flushable dirty blocks remain.
  for (;;) {
    const Status status = co_await FlushOldest(/*whole_file=*/true);
    if (status.code() == ErrorCode::kNotFound) {
      co_return OkStatus();
    }
    PFS_CO_RETURN_IF_ERROR(status);
  }
}

void BufferCache::InvalidateFile(uint32_t fs_id, uint64_t ino, uint64_t from_block) {
  PFS_ASSERT_SHARD();
  std::vector<CacheBlock*> victims;
  for (auto& [id, block] : map_) {
    if (id.fs_id == fs_id && id.ino == ino && id.block_no >= from_block) {
      victims.push_back(block);
    }
  }
  for (CacheBlock* b : victims) {
    if (b->pin_count > 0 || b->io_in_progress) {
      b->doomed = true;  // freed on last release / flush completion
      continue;
    }
    if (b->state == BlockState::kDirty) {
      dirty_.Remove(*b);
      absorbed_.Inc();  // the write died in memory — saved disk traffic
      cleaned_.Broadcast();
    } else if (b->state == BlockState::kClean) {
      clean_.Remove(*b);
    }
    map_.erase(b->id);
    FreeBlock(b);
  }
}

Task<> BufferCache::Flusher() {
  for (;;) {
    co_await flusher_wakeup_.Wait();
    // Flush until the allocation pressure is relieved.
    while (free_.size() + clean_.size() < config_.flusher_target_blocks) {
      const Status status = co_await flush_policy_->MakeSpace();
      if (status.code() == ErrorCode::kNotFound) {
        // Everything flushable is in flight; wait for transitions.
        co_await cleaned_.Wait();
      }
    }
  }
}

double BufferCache::HitRate() const {
  const uint64_t total = hits_.value() + misses_.value();
  return total == 0 ? 0.0 : static_cast<double>(hits_.value()) / static_cast<double>(total);
}

std::string BufferCache::StatReport(bool with_histograms) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "policy=%s repl=%s blocks=%zu free=%zu clean=%zu dirty=%zu\n"
                "hits=%llu misses=%llu hit-rate=%.1f%% fills=%llu evictions=%llu\n"
                "blocks-flushed=%llu files-flushed=%llu absorbed-dirty=%llu\n",
                flush_policy_->name().c_str(), replacement_->name(), pool_.size(),
                free_.size(), clean_.size(), dirty_.size(),
                static_cast<unsigned long long>(hits_.value()),
                static_cast<unsigned long long>(misses_.value()), HitRate() * 100.0,
                static_cast<unsigned long long>(fills_.value()),
                static_cast<unsigned long long>(evictions_.value()),
                static_cast<unsigned long long>(blocks_flushed_.value()),
                static_cast<unsigned long long>(files_flushed_.value()),
                static_cast<unsigned long long>(absorbed_.value()));
  std::string out(buf);
  std::snprintf(buf, sizeof(buf), "fill latency: %s\n", fill_latency_.Summary().c_str());
  out += buf;
  if (with_histograms) {
    out += "dirty-fraction histogram:\n" + dirty_fraction_.BucketDump();
  }
  return out;
}

std::string BufferCache::StatJson() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"blocks\":%zu,\"free\":%zu,\"clean\":%zu,\"dirty\":%zu,"
                "\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,\"fills\":%llu,"
                "\"evictions\":%llu,\"blocks_flushed\":%llu,\"files_flushed\":%llu,"
                "\"absorbed\":%llu,",
                pool_.size(), free_.size(), clean_.size(), dirty_.size(),
                static_cast<unsigned long long>(hits_.value()),
                static_cast<unsigned long long>(misses_.value()), HitRate(),
                static_cast<unsigned long long>(fills_.value()),
                static_cast<unsigned long long>(evictions_.value()),
                static_cast<unsigned long long>(blocks_flushed_.value()),
                static_cast<unsigned long long>(files_flushed_.value()),
                static_cast<unsigned long long>(absorbed_.value()));
  std::string out(buf);
  if (m_fill_ != nullptr) {
    // Bound to the metrics plane: the scrape and StatJson share one source.
    out += m_fill_->LatencyMsJsonObject("fill_ms");
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\"fill_ms\":{\"mean\":%.4f,\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f}",
                  fill_latency_.mean().ToMillisF(), fill_latency_.Percentile(0.5).ToMillisF(),
                  fill_latency_.Percentile(0.95).ToMillisF(),
                  fill_latency_.Percentile(0.99).ToMillisF());
    out += buf;
  }
  out += "}";
  return out;
}

void BufferCache::StatResetInterval() {
  dirty_fraction_.Reset();
  fill_latency_.Reset();
}

}  // namespace pfs
