// Cache block descriptor and identity.
#ifndef PFS_CACHE_BLOCK_H_
#define PFS_CACHE_BLOCK_H_

#include <cstdint>
#include <functional>
#include <span>

#include "core/intrusive_list.h"
#include "sched/event.h"
#include "sched/time.h"

namespace pfs {

// A cache block is identified by (file system, inode, file block index); the
// disk address is the storage layout's business, not the cache's.
struct BlockId {
  uint32_t fs_id = 0;
  uint64_t ino = 0;
  uint64_t block_no = 0;

  bool operator==(const BlockId&) const = default;
};

struct BlockIdHash {
  size_t operator()(const BlockId& id) const {
    // splitmix-style mix of the three fields.
    uint64_t h = id.ino * 0x9e3779b97f4a7c15ULL;
    h ^= (id.block_no + 0x7f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
    h ^= (static_cast<uint64_t>(id.fs_id) + 1) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

enum class BlockState : uint8_t {
  kFree,     // on the free list, no identity
  kFilling,  // inserted, fill I/O in progress
  kClean,    // contents match disk
  kDirty,    // modified since last write-out
};

// Per-open-file cache behaviour hint (paper §2 "Files": a multimedia file
// implements other cache policies to keep from flooding the cache; and the
// Cao-style per-file delegation of replacement decisions).
enum class FileCacheHint : uint8_t {
  kNormal,      // standard LRU aging
  kEvictFirst,  // consumed-once data: released blocks become eviction victims
};

class CacheBlock {
 public:
  explicit CacheBlock(Scheduler* sched) : ready(sched) {}

  CacheBlock(const CacheBlock&) = delete;
  CacheBlock& operator=(const CacheBlock&) = delete;

  BlockId id;
  BlockState state = BlockState::kFree;
  bool io_in_progress = false;  // fill or flush under way
  bool doomed = false;          // invalidated while pinned; freed on last release
  uint32_t pin_count = 0;

  // Incremented on every MarkDirty; a flush only cleans the block if the
  // version did not move while its write was in flight.
  uint64_t dirty_version = 0;

  TimePoint dirtied_at;     // first made dirty (age for the 30-s policy)
  TimePoint last_access;
  TimePoint prev_access;    // second-to-last access (LRU-2)
  uint64_t access_count = 0;  // LFU
  uint8_t slru_protected = 0;  // SLRU segment membership
  FileCacheHint hint = FileCacheHint::kNormal;

  // Real instantiation: a slice of the cache arena. Simulator: empty — the
  // DataMover charges copy time instead of moving bytes.
  std::span<std::byte> data;

  IntrusiveListNode lru_node;  // exactly one of: free / clean / dirty list

  // Broadcast whenever this block's I/O completes (fill or flush).
  Event ready;
};

}  // namespace pfs

#endif  // PFS_CACHE_BLOCK_H_
