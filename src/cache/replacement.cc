#include "cache/replacement.h"

#include <limits>

#include "core/check.h"
#include "system/component_registry.h"

namespace pfs {

CacheBlock* LruReplacement::PickVictim(BlockLruList& clean) {
  for (CacheBlock& b : clean) {
    if (Evictable(b)) {
      return &b;
    }
  }
  return nullptr;
}

CacheBlock* RandomReplacement::PickVictim(BlockLruList& clean) {
  if (clean.empty()) {
    return nullptr;
  }
  // Walk to a random evictable block, bounded by the sample limit.
  const size_t target = static_cast<size_t>(rng_.NextBelow(clean.size()));
  size_t i = 0;
  CacheBlock* fallback = nullptr;
  for (CacheBlock& b : clean) {
    if (Evictable(b)) {
      if (i >= target || fallback == nullptr) {
        if (i >= target) {
          return &b;
        }
        fallback = &b;
      }
    }
    if (++i > target + kSampleLimit) {
      break;
    }
  }
  return fallback;
}

CacheBlock* LfuReplacement::PickVictim(BlockLruList& clean) {
  CacheBlock* best = nullptr;
  uint64_t best_count = std::numeric_limits<uint64_t>::max();
  size_t scanned = 0;
  for (CacheBlock& b : clean) {
    if (Evictable(b) && b.access_count < best_count) {
      best = &b;
      best_count = b.access_count;
    }
    if (++scanned >= kSampleLimit && best != nullptr) {
      break;
    }
  }
  return best;
}

CacheBlock* SlruReplacement::PickVictim(BlockLruList& clean) {
  CacheBlock* protected_fallback = nullptr;
  size_t scanned = 0;
  for (CacheBlock& b : clean) {
    if (!Evictable(b)) {
      continue;
    }
    if (b.slru_protected == 0) {
      return &b;  // oldest probationary block
    }
    if (protected_fallback == nullptr) {
      protected_fallback = &b;
    }
    if (++scanned >= kSampleLimit && protected_fallback != nullptr) {
      break;
    }
  }
  if (protected_fallback != nullptr) {
    return protected_fallback;
  }
  // Nothing in the sampled prefix; fall back to plain LRU over the whole list.
  for (CacheBlock& b : clean) {
    if (Evictable(b)) {
      return &b;
    }
  }
  return nullptr;
}

CacheBlock* Lru2Replacement::PickVictim(BlockLruList& clean) {
  // Single-referenced blocks (prev_access unset) have infinite backward
  // distance: evict the least-recently-used of those first.
  CacheBlock* best = nullptr;
  TimePoint best_prev = TimePoint::FromNanos(std::numeric_limits<int64_t>::max());
  size_t scanned = 0;
  for (CacheBlock& b : clean) {
    if (!Evictable(b)) {
      continue;
    }
    if (b.access_count <= 1) {
      return &b;
    }
    if (b.prev_access < best_prev) {
      best = &b;
      best_prev = b.prev_access;
    }
    if (++scanned >= kSampleLimit && best != nullptr) {
      break;
    }
  }
  if (best != nullptr) {
    return best;
  }
  for (CacheBlock& b : clean) {
    if (Evictable(b)) {
      return &b;
    }
  }
  return nullptr;
}

void RegisterBuiltinReplacementPolicies() {
  ReplacementRegistry::Register("LRU",
                                [](uint64_t) { return std::make_unique<LruReplacement>(); });
  ReplacementRegistry::Register(
      "RANDOM", [](uint64_t seed) { return std::make_unique<RandomReplacement>(seed); });
  ReplacementRegistry::Register("LFU",
                                [](uint64_t) { return std::make_unique<LfuReplacement>(); });
  ReplacementRegistry::Register("SLRU",
                                [](uint64_t) { return std::make_unique<SlruReplacement>(); });
  ReplacementRegistry::Register("LRU-2",
                                [](uint64_t) { return std::make_unique<Lru2Replacement>(); });
}

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(const std::string& name,
                                                         uint64_t seed) {
  const auto* factory = ReplacementRegistry::Find(name);
  PFS_CHECK_MSG(factory != nullptr, "unknown replacement policy");
  return (*factory)(seed);
}

}  // namespace pfs
