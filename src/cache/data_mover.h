// DataMover: the helper component that differs between the on-line system
// and the simulator (paper §2: "The difference between a simulated cache and
// a real cache is the lack of a data pointer in the simulated case. In all
// cases where data is moved between buffers, the simulator delays the
// current thread for the amount of time it would take ... to copy the data.")
#ifndef PFS_CACHE_DATA_MOVER_H_
#define PFS_CACHE_DATA_MOVER_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "core/check.h"
#include "sched/affinity.h"
#include "sched/scheduler.h"
#include "sched/task.h"

namespace pfs {

// The simulated host (the paper's experiments rebuild a Sun 4/280 server).
struct HostModel {
  uint64_t mem_bandwidth_bytes_per_sec = 50'000'000;  // buffer-copy bandwidth
  Duration per_op_cpu = Duration::Micros(150);        // request decode/dispatch cost
};

// Shard-affine (ShardAffine): sharded systems build one mover per shard
// (SimDataMover sleeps on its shard's clock; RealDataMover is bound by
// SystemBuilder), and Move/ChargeOpCost assert the caller's loop.
class DataMover : public ShardAffine {
 public:
  virtual ~DataMover() = default;

  // Moves `bytes` between a cache block and a client buffer. Either span may
  // be empty in the simulator.
  virtual Task<> Move(std::span<std::byte> dst, std::span<const std::byte> src,
                      uint64_t bytes) = 0;

  // Charges the fixed CPU cost of one client operation.
  virtual Task<> ChargeOpCost() = 0;
};

// Patsy's mover: pure time accounting.
class SimDataMover final : public DataMover {
 public:
  SimDataMover(Scheduler* sched, HostModel host) : sched_(sched), host_(host) {
    BindHomeShard(sched_, "data_mover");
  }

  Task<> Move(std::span<std::byte>, std::span<const std::byte>, uint64_t bytes) override {
    PFS_ASSERT_SHARD();
    co_await sched_->Sleep(Duration::Nanos(
        static_cast<int64_t>(bytes * 1000000000ULL / host_.mem_bandwidth_bytes_per_sec)));
  }

  Task<> ChargeOpCost() override {
    PFS_ASSERT_SHARD();
    co_await sched_->Sleep(host_.per_op_cpu);
  }

 private:
  Scheduler* sched_;
  HostModel host_;
};

// PFS's mover: actually copies; the host's real memory system provides the
// timing.
class RealDataMover final : public DataMover {
 public:
  Task<> Move(std::span<std::byte> dst, std::span<const std::byte> src,
              uint64_t bytes) override {
    PFS_ASSERT_SHARD();
    if (!dst.empty() && !src.empty() && bytes > 0) {
      PFS_CHECK(dst.size() >= bytes && src.size() >= bytes);
      std::memcpy(dst.data(), src.data(), bytes);
    }
    co_return;
  }

  Task<> ChargeOpCost() override { co_return; }
};

}  // namespace pfs

#endif  // PFS_CACHE_DATA_MOVER_H_
