// Cache replacement policies (paper §2, "Caches": "to experiment with
// different replacement policies (e.g. RR, LFU, SLRU, LRU-K or adaptive),
// only those functions that deal with LRU replacement need to be replaced").
//
// A policy sees insert/access/release events and picks eviction victims from
// the clean list. The clean list is maintained in LRU order by the cache
// itself, so plain LRU is O(1); the scan-based policies (LFU, LRU-2) sample
// a bounded prefix of candidates, the standard approximation for large
// caches.
#ifndef PFS_CACHE_REPLACEMENT_H_
#define PFS_CACHE_REPLACEMENT_H_

#include <memory>
#include <string>

#include "cache/block.h"
#include "core/intrusive_list.h"
#include "core/random.h"

namespace pfs {

using BlockLruList = IntrusiveList<CacheBlock, &CacheBlock::lru_node>;

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual const char* name() const = 0;

  // Block brought into the cache / hit in the cache.
  virtual void OnInsert(CacheBlock* block) { (void)block; }
  virtual void OnAccess(CacheBlock* block) { (void)block; }

  // Picks an eviction victim from the clean list (front = least recently
  // used), or nullptr if no block is evictable. Only unpinned, non-doomed,
  // non-io blocks are legal victims; Evictable() checks that.
  virtual CacheBlock* PickVictim(BlockLruList& clean) = 0;

  static bool Evictable(const CacheBlock& b) {
    return b.pin_count == 0 && !b.io_in_progress && !b.doomed;
  }

 protected:
  // Bounded candidate scan used by the sampling policies.
  static constexpr size_t kSampleLimit = 64;
};

// Least-recently-used: the base component's behaviour in the paper.
class LruReplacement final : public ReplacementPolicy {
 public:
  const char* name() const override { return "LRU"; }
  CacheBlock* PickVictim(BlockLruList& clean) override;
};

// Random replacement ("RR").
class RandomReplacement final : public ReplacementPolicy {
 public:
  explicit RandomReplacement(uint64_t seed) : rng_(seed) {}
  const char* name() const override { return "RANDOM"; }
  CacheBlock* PickVictim(BlockLruList& clean) override;

 private:
  Rng rng_;
};

// Least-frequently-used over a bounded sample of the LRU prefix.
class LfuReplacement final : public ReplacementPolicy {
 public:
  const char* name() const override { return "LFU"; }
  void OnInsert(CacheBlock* block) override { block->access_count = 1; }
  void OnAccess(CacheBlock* block) override { ++block->access_count; }
  CacheBlock* PickVictim(BlockLruList& clean) override;
};

// Segmented LRU: blocks enter a probationary segment and are promoted to the
// protected segment on re-reference; probationary blocks are evicted first.
class SlruReplacement final : public ReplacementPolicy {
 public:
  const char* name() const override { return "SLRU"; }
  void OnInsert(CacheBlock* block) override { block->slru_protected = 0; }
  void OnAccess(CacheBlock* block) override { block->slru_protected = 1; }
  CacheBlock* PickVictim(BlockLruList& clean) override;
};

// LRU-2: evict the block with the oldest second-to-last reference; blocks
// with only one reference are preferred victims (backward distance infinite).
class Lru2Replacement final : public ReplacementPolicy {
 public:
  const char* name() const override { return "LRU-2"; }
  CacheBlock* PickVictim(BlockLruList& clean) override;
};

// Factory by name for experiment configuration ("LRU", "RANDOM", "LFU",
// "SLRU", "LRU-2").
std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(const std::string& name,
                                                         uint64_t seed = 1);

}  // namespace pfs

#endif  // PFS_CACHE_REPLACEMENT_H_
