#include "trace/replayer.h"

#include <algorithm>

namespace pfs {

TraceReplayer::TraceReplayer(Scheduler* sched, ClientInterface* client)
    : TraceReplayer(sched, client, Options()) {}

TraceReplayer::TraceReplayer(Scheduler* sched, ClientInterface* client, Options options)
    : sched_(sched), client_(client), options_(options) {}

void TraceReplayer::AddRecords(std::vector<TraceRecord> records) {
  SynthesizeMissingTimes(&records);
  for (TraceRecord& r : records) {
    per_client_[r.client].push_back(std::move(r));
  }
  for (auto& [id, recs] : per_client_) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                       return a.time_us < b.time_us;
                     });
  }
}

void TraceReplayer::Start() {
  for (const auto& [id, recs] : per_client_) {
    sched_->Spawn("trace.client." + std::to_string(id), ClientThread(id));
  }
}

Task<Result<Fd>> TraceReplayer::FdFor(uint32_t client_id, const std::string& path,
                                      bool create) {
  const auto key = std::make_pair(client_id, path);
  auto it = open_fds_.find(key);
  if (it != open_fds_.end()) {
    co_return it->second;
  }
  OpenOptions options;
  options.create = create;
  auto fd_or = co_await client_->Open(path, options);
  if (!fd_or.ok() && fd_or.code() == ErrorCode::kNotFound && !create) {
    // The trace references a file that predates the (synthesized) initial
    // state: create it, as the paper does when replay information is missing.
    options.create = true;
    fd_or = co_await client_->Open(path, options);
  }
  PFS_CO_RETURN_IF_ERROR(fd_or.status());
  open_fds_[key] = *fd_or;
  co_return *fd_or;
}

Task<Status> TraceReplayer::Dispatch(uint32_t client_id, const TraceRecord& r) {
  switch (r.op) {
    case TraceOp::kOpen: {
      auto fd_or = co_await FdFor(client_id, r.path, r.create);
      co_return fd_or.status();
    }
    case TraceOp::kClose: {
      const auto key = std::make_pair(client_id, r.path);
      auto it = open_fds_.find(key);
      if (it == open_fds_.end()) {
        co_return OkStatus();  // close without open: tolerated
      }
      const Fd fd = it->second;
      open_fds_.erase(it);
      co_return co_await client_->Close(fd);
    }
    case TraceOp::kRead: {
      PFS_CO_ASSIGN_OR_RETURN(const Fd fd, co_await FdFor(client_id, r.path, false));
      auto n = co_await client_->Read(fd, r.offset, r.length, {});
      co_return n.status();
    }
    case TraceOp::kWrite: {
      PFS_CO_ASSIGN_OR_RETURN(const Fd fd, co_await FdFor(client_id, r.path, true));
      auto n = co_await client_->Write(fd, r.offset, r.length, {});
      co_return n.status();
    }
    case TraceOp::kStat: {
      auto attrs = co_await client_->Stat(r.path);
      co_return attrs.status();
    }
    case TraceOp::kUnlink: {
      // Close our own handle first, as trace grouping implies.
      const auto key = std::make_pair(client_id, r.path);
      auto it = open_fds_.find(key);
      if (it != open_fds_.end()) {
        (void)co_await client_->Close(it->second);
        open_fds_.erase(it);
      }
      co_return co_await client_->Unlink(r.path);
    }
    case TraceOp::kTruncate: {
      PFS_CO_ASSIGN_OR_RETURN(const Fd fd, co_await FdFor(client_id, r.path, true));
      co_return co_await client_->Truncate(fd, r.length);
    }
    case TraceOp::kMkdir:
      co_return co_await client_->Mkdir(r.path);
    case TraceOp::kRmdir:
      co_return co_await client_->Rmdir(r.path);
    case TraceOp::kRename:
      co_return co_await client_->Rename(r.path, r.path2);
  }
  co_return Status(ErrorCode::kUnsupported, "unhandled op");
}

Task<> TraceReplayer::ClientThread(uint32_t client_id) {
  const std::vector<TraceRecord>& records = per_client_[client_id];
  const TimePoint start = sched_->Now();
  for (const TraceRecord& r : records) {
    if (options_.respect_timing && r.time_us > 0) {
      const TimePoint due = start + Duration::Micros(r.time_us);
      if (due > sched_->Now()) {
        co_await sched_->SleepUntil(due);
      }
    }
    const TimePoint op_start = sched_->Now();
    const Status status = co_await Dispatch(client_id, r);
    const Duration latency = sched_->Now() - op_start;

    if (!status.ok()) {
      errors_.Inc();
      continue;
    }
    ops_.Inc();
    overall_.Record(latency);
    interval_.Record(latency);
    switch (r.op) {
      case TraceOp::kRead:
        reads_.Record(latency);
        break;
      case TraceOp::kWrite:
        writes_.Record(latency);
        break;
      default:
        meta_.Record(latency);
        break;
    }
  }
  // Close whatever the trace left open for this client.
  std::vector<std::pair<uint32_t, std::string>> keys;
  for (const auto& [key, fd] : open_fds_) {
    if (key.first == client_id) {
      keys.push_back(key);
    }
  }
  for (const auto& key : keys) {
    (void)co_await client_->Close(open_fds_[key]);
    open_fds_.erase(key);
  }
}

std::string TraceReplayer::StatReport(bool with_histograms) const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu errors=%llu\noverall: %s\ninterval: %s\nreads: %s\nwrites: %s\n",
                static_cast<unsigned long long>(ops_.value()),
                static_cast<unsigned long long>(errors_.value()), overall_.Summary().c_str(),
                interval_.Summary().c_str(), reads_.Summary().c_str(),
                writes_.Summary().c_str());
  std::string out(buf);
  (void)with_histograms;
  return out;
}

std::string TraceReplayer::StatJson() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"ops\":%llu,\"errors\":%llu,"
                "\"overall_ms\":{\"mean\":%.4f,\"p50\":%.4f,\"p95\":%.4f},"
                "\"reads_ms\":{\"mean\":%.4f},\"writes_ms\":{\"mean\":%.4f},"
                "\"metadata_ms\":{\"mean\":%.4f}}",
                static_cast<unsigned long long>(ops_.value()),
                static_cast<unsigned long long>(errors_.value()),
                overall_.mean().ToMillisF(), overall_.Percentile(0.5).ToMillisF(),
                overall_.Percentile(0.95).ToMillisF(), reads_.mean().ToMillisF(),
                writes_.mean().ToMillisF(), meta_.mean().ToMillisF());
  return buf;
}

void TraceReplayer::StatResetInterval() { interval_.Reset(); }

}  // namespace pfs
