// Trace replayer (paper §4): "Clients are modeled by separate threads of
// control ... The threads read a part of the trace file, group operations
// that obviously belong together (such as an open, read, ..., close
// sequence), and call the abstract-client interface to execute the operation
// on the simulated system. Since all of the trace records have timing
// information in them, the threads know how long they have to delay
// themselves before they can dispatch the next operation."
//
// The replayer also performs the paper's missing-parameter synthesis (via
// SynthesizeMissingTimes) and the "general simulation class" measurement
// duty: per-class and overall operation latencies.
#ifndef PFS_TRACE_REPLAYER_H_
#define PFS_TRACE_REPLAYER_H_

#include <map>
#include <vector>

#include "client/client_interface.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"
#include "trace/trace.h"

namespace pfs {

class TraceReplayer : public StatSource {
 public:
  struct Options {
    // Honour record timestamps (sleep between operations). Off = replay
    // as fast as the system allows (stress mode).
    bool respect_timing = true;
  };

  TraceReplayer(Scheduler* sched, ClientInterface* client);
  TraceReplayer(Scheduler* sched, ClientInterface* client, Options options);

  // Takes the full record stream; records are partitioned by client id and
  // sorted by time within each client. Synthesizes unknown times first.
  void AddRecords(std::vector<TraceRecord> records);

  // Spawns one (non-daemon) thread per trace client; Scheduler::Run()
  // returns when the replay is complete.
  void Start();

  // -- measurements (valid after the run) --
  const LatencyHistogram& overall() const { return overall_; }
  const LatencyHistogram& reads() const { return reads_; }
  const LatencyHistogram& writes() const { return writes_; }
  const LatencyHistogram& metadata() const { return meta_; }
  uint64_t ops_completed() const { return ops_.value(); }
  uint64_t errors() const { return errors_.value(); }

  // StatSource (the 15-minute interval reports read these).
  std::string stat_name() const override { return "replayer"; }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;
  void StatResetInterval() override;

 private:
  Task<> ClientThread(uint32_t client_id);
  Task<Status> Dispatch(uint32_t client_id, const TraceRecord& record);
  Task<Result<Fd>> FdFor(uint32_t client_id, const std::string& path, bool create);

  Scheduler* sched_;
  ClientInterface* client_;
  Options options_;
  std::map<uint32_t, std::vector<TraceRecord>> per_client_;
  std::map<std::pair<uint32_t, std::string>, Fd> open_fds_;

  LatencyHistogram overall_;
  LatencyHistogram reads_;
  LatencyHistogram writes_;
  LatencyHistogram meta_;
  LatencyHistogram interval_;  // reset every report interval
  Counter ops_;
  Counter errors_;
};

}  // namespace pfs

#endif  // PFS_TRACE_REPLAYER_H_
