// File-system traces (paper §4, "Work loads and traces"): records of when an
// operation took place (microseconds) and what it was. Two text dialects are
// supported, mirroring the paper's two replayable trace families:
//
//   * Sprite-style: one record per line,
//       <time_us> <client> <OP> <path> [<offset> <length>] [<path2>]
//   * Coda-style: session-grouped,
//       S <client> <time_us> <path>     (session open)
//       - <OP> [<offset> <length>]      (ops within the session, may omit time)
//       E <time_us>                     (session close)
//
// Records with time_us < 0 have unknown timing; the replayer synthesizes
// them "positioned equidistant between the open and close" exactly as the
// paper describes.
#ifndef PFS_TRACE_TRACE_H_
#define PFS_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"

namespace pfs {

enum class TraceOp : uint8_t {
  kOpen,      // open existing or create (see `create`)
  kClose,
  kRead,      // offset/length
  kWrite,     // offset/length
  kStat,
  kUnlink,
  kTruncate,  // length = new size
  kMkdir,
  kRmdir,
  kRename,    // path -> path2
};

const char* TraceOpName(TraceOp op);
Result<TraceOp> TraceOpFromName(const std::string& name);

struct TraceRecord {
  int64_t time_us = 0;  // since trace start; < 0 = unknown (synthesized)
  uint32_t client = 0;
  TraceOp op = TraceOp::kStat;
  std::string path;
  std::string path2;    // rename target
  uint64_t offset = 0;
  uint64_t length = 0;
  bool create = false;  // open-with-create
};

// -- Sprite-style dialect --
std::string EncodeSpriteRecord(const TraceRecord& record);
Result<TraceRecord> DecodeSpriteRecord(const std::string& line);

class SpriteTraceWriter {
 public:
  // Appends records to `path` (truncates on construction).
  static Status WriteFile(const std::string& path, const std::vector<TraceRecord>& records);
};

class SpriteTraceReader {
 public:
  static Result<std::vector<TraceRecord>> ReadFile(const std::string& path);
  static Result<std::vector<TraceRecord>> Parse(const std::string& text);
};

// -- Coda-style dialect --
std::string EncodeCodaTrace(const std::vector<TraceRecord>& records);

class CodaTraceReader {
 public:
  static Result<std::vector<TraceRecord>> ReadFile(const std::string& path);
  static Result<std::vector<TraceRecord>> Parse(const std::string& text);
};

// Fills in unknown (< 0) read/write times by spacing them equidistantly
// between the enclosing open and close records of the same client+path
// (paper §4). Records are expected in generation order per client.
void SynthesizeMissingTimes(std::vector<TraceRecord>* records);

}  // namespace pfs

#endif  // PFS_TRACE_TRACE_H_
