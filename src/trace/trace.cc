#include "trace/trace.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "core/check.h"

namespace pfs {

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kOpen:
      return "OPEN";
    case TraceOp::kClose:
      return "CLOSE";
    case TraceOp::kRead:
      return "READ";
    case TraceOp::kWrite:
      return "WRITE";
    case TraceOp::kStat:
      return "STAT";
    case TraceOp::kUnlink:
      return "UNLINK";
    case TraceOp::kTruncate:
      return "TRUNC";
    case TraceOp::kMkdir:
      return "MKDIR";
    case TraceOp::kRmdir:
      return "RMDIR";
    case TraceOp::kRename:
      return "RENAME";
  }
  return "?";
}

Result<TraceOp> TraceOpFromName(const std::string& name) {
  static const std::map<std::string, TraceOp> kOps = {
      {"OPEN", TraceOp::kOpen},     {"CREAT", TraceOp::kOpen},  {"CLOSE", TraceOp::kClose},
      {"READ", TraceOp::kRead},     {"WRITE", TraceOp::kWrite}, {"STAT", TraceOp::kStat},
      {"UNLINK", TraceOp::kUnlink}, {"TRUNC", TraceOp::kTruncate},
      {"MKDIR", TraceOp::kMkdir},   {"RMDIR", TraceOp::kRmdir}, {"RENAME", TraceOp::kRename},
  };
  auto it = kOps.find(name);
  if (it == kOps.end()) {
    return Status(ErrorCode::kCorrupt, "unknown trace op " + name);
  }
  return it->second;
}

std::string EncodeSpriteRecord(const TraceRecord& r) {
  std::ostringstream out;
  out << r.time_us << ' ' << r.client << ' ';
  // Creation piggybacks on OPEN via the CREAT verb, like the original traces'
  // open-mode flags.
  if (r.op == TraceOp::kOpen && r.create) {
    out << "CREAT";
  } else {
    out << TraceOpName(r.op);
  }
  out << ' ' << r.path;
  switch (r.op) {
    case TraceOp::kRead:
    case TraceOp::kWrite:
      out << ' ' << r.offset << ' ' << r.length;
      break;
    case TraceOp::kTruncate:
      out << ' ' << r.length;
      break;
    case TraceOp::kRename:
      out << ' ' << r.path2;
      break;
    default:
      break;
  }
  return out.str();
}

Result<TraceRecord> DecodeSpriteRecord(const std::string& line) {
  std::istringstream in(line);
  TraceRecord r;
  std::string op_name;
  if (!(in >> r.time_us >> r.client >> op_name >> r.path)) {
    return Status(ErrorCode::kCorrupt, "short trace record: " + line);
  }
  if (op_name == "CREAT") {
    r.op = TraceOp::kOpen;
    r.create = true;
  } else {
    PFS_ASSIGN_OR_RETURN(r.op, TraceOpFromName(op_name));
  }
  switch (r.op) {
    case TraceOp::kRead:
    case TraceOp::kWrite:
      if (!(in >> r.offset >> r.length)) {
        return Status(ErrorCode::kCorrupt, "bad io record: " + line);
      }
      break;
    case TraceOp::kTruncate:
      if (!(in >> r.length)) {
        return Status(ErrorCode::kCorrupt, "bad trunc record: " + line);
      }
      break;
    case TraceOp::kRename:
      if (!(in >> r.path2)) {
        return Status(ErrorCode::kCorrupt, "bad rename record: " + line);
      }
      break;
    default:
      break;
  }
  return r;
}

Status SpriteTraceWriter::WriteFile(const std::string& path,
                                    const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot write " + path);
  }
  for (const TraceRecord& r : records) {
    out << EncodeSpriteRecord(r) << '\n';
  }
  return out.good() ? OkStatus() : Status(ErrorCode::kIoError, "short write " + path);
}

Result<std::vector<TraceRecord>> SpriteTraceReader::Parse(const std::string& text) {
  std::vector<TraceRecord> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    PFS_ASSIGN_OR_RETURN(TraceRecord r, DecodeSpriteRecord(line));
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<TraceRecord>> SpriteTraceReader::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot read " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string EncodeCodaTrace(const std::vector<TraceRecord>& records) {
  // Group per client into open..close sessions; non-session ops are emitted
  // as standalone "- OP" lines under a pseudo-session.
  std::ostringstream out;
  for (const TraceRecord& r : records) {
    switch (r.op) {
      case TraceOp::kOpen:
        out << "S " << r.client << ' ' << r.time_us << ' ' << r.path
            << (r.create ? " new" : "") << '\n';
        break;
      case TraceOp::kClose:
        out << "E " << r.client << ' ' << r.time_us << ' ' << r.path << '\n';
        break;
      case TraceOp::kRead:
      case TraceOp::kWrite:
        out << "- " << r.client << ' ' << r.time_us << ' '
            << (r.op == TraceOp::kRead ? "READ" : "WRITE") << ' ' << r.path << ' '
            << r.offset << ' ' << r.length << '\n';
        break;
      default:
        out << "! " << r.client << ' ' << r.time_us << ' ' << TraceOpName(r.op) << ' '
            << r.path << ' ' << r.length << ' ' << r.path2 << '\n';
        break;
    }
  }
  return out.str();
}

Result<std::vector<TraceRecord>> CodaTraceReader::Parse(const std::string& text) {
  std::vector<TraceRecord> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    char tag;
    TraceRecord r;
    if (!(ls >> tag >> r.client >> r.time_us)) {
      return Status(ErrorCode::kCorrupt, "bad coda record: " + line);
    }
    switch (tag) {
      case 'S': {
        std::string flag;
        if (!(ls >> r.path)) {
          return Status(ErrorCode::kCorrupt, "bad coda session: " + line);
        }
        r.op = TraceOp::kOpen;
        if (ls >> flag && flag == "new") {
          r.create = true;
        }
        break;
      }
      case 'E':
        if (!(ls >> r.path)) {
          return Status(ErrorCode::kCorrupt, "bad coda end: " + line);
        }
        r.op = TraceOp::kClose;
        break;
      case '-': {
        std::string op_name;
        if (!(ls >> op_name >> r.path >> r.offset >> r.length)) {
          return Status(ErrorCode::kCorrupt, "bad coda io: " + line);
        }
        PFS_ASSIGN_OR_RETURN(r.op, TraceOpFromName(op_name));
        break;
      }
      case '!': {
        std::string op_name;
        if (!(ls >> op_name >> r.path >> r.length)) {
          return Status(ErrorCode::kCorrupt, "bad coda misc: " + line);
        }
        ls >> r.path2;  // optional
        PFS_ASSIGN_OR_RETURN(r.op, TraceOpFromName(op_name));
        break;
      }
      default:
        return Status(ErrorCode::kCorrupt, "bad coda tag: " + line);
    }
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<TraceRecord>> CodaTraceReader::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(ErrorCode::kIoError, "cannot read " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

void SynthesizeMissingTimes(std::vector<TraceRecord>* records) {
  // For each client+path session, collect indices of unknown-time records
  // between the open and its close and space them equidistantly.
  struct Session {
    int64_t open_time = 0;
    std::vector<size_t> unknown;
  };
  std::map<std::pair<uint32_t, std::string>, Session> open_sessions;
  for (size_t i = 0; i < records->size(); ++i) {
    TraceRecord& r = (*records)[i];
    const auto key = std::make_pair(r.client, r.path);
    switch (r.op) {
      case TraceOp::kOpen:
        open_sessions[key] = Session{r.time_us, {}};
        break;
      case TraceOp::kClose: {
        auto it = open_sessions.find(key);
        if (it != open_sessions.end()) {
          const Session& session = it->second;
          const int64_t span = r.time_us - session.open_time;
          const auto n = static_cast<int64_t>(session.unknown.size());
          for (int64_t k = 0; k < n; ++k) {
            (*records)[session.unknown[static_cast<size_t>(k)]].time_us =
                session.open_time + span * (k + 1) / (n + 1);
          }
          open_sessions.erase(it);
        }
        break;
      }
      default:
        if (r.time_us < 0) {
          auto it = open_sessions.find(key);
          if (it != open_sessions.end()) {
            it->second.unknown.push_back(i);
          } else {
            r.time_us = 0;  // no enclosing session: best effort
          }
        }
        break;
    }
  }
}

}  // namespace pfs
