// Patsy: the instantiation of the cut-and-paste library to a file-system
// simulator (paper §4). PatsyServer wires the shared components (scheduler,
// cache, layouts, files, client interface) to the simulation helper
// components (simulated drivers, disks, SCSI busses, virtual clock);
// RunTraceSimulation replays a trace against it and gathers the overall and
// 15-minute-interval measurements the paper reports.
//
// The default topology is the rebuilt Sprite "Allspice" server of §5.1:
// three SCSI busses, ten HP 97560 disks, fourteen file systems (two of them
// hot spots by workload construction), segmented LFS everywhere.
#ifndef PFS_PATSY_PATSY_H_
#define PFS_PATSY_PATSY_H_

#include <memory>
#include <string>
#include <vector>

#include "bus/scsi_bus.h"
#include "cache/buffer_cache.h"
#include "cache/data_mover.h"
#include "client/local_client.h"
#include "disk/disk_model.h"
#include "driver/sim_disk_driver.h"
#include "layout/ffs_layout.h"
#include "layout/guessing_layout.h"
#include "layout/lfs_layout.h"
#include "stats/registry.h"
#include "trace/replayer.h"

namespace pfs {

struct PatsyConfig {
  uint64_t seed = 42;

  // Topology (defaults: the paper's Allspice rebuild).
  std::vector<int> disks_per_bus = {4, 3, 3};
  int num_filesystems = 14;
  DiskParams disk_params = DiskParams::Hp97560();
  QueueSchedPolicy queue_policy = QueueSchedPolicy::kClook;

  // Layout: "lfs" (paper default), "ffs", or "guessing".
  std::string layout = "lfs";
  std::string cleaner = "greedy";
  uint32_t lfs_segment_blocks = 128;
  uint32_t max_inodes = 8192;

  // Cache. The Sun 4/280 had 128 MB against a day of traffic; the scaled
  // default keeps the same regime — the cache holds the trace's dirty data
  // (write-saving must not degenerate into demand-flush stalls) while cold
  // reads still miss. NVRAM keeps the paper's 1/32 cache ratio.
  uint64_t cache_bytes = 48 * kMiB;
  std::string replacement = "LRU";
  std::string flush_policy = "write-delay";  // write-delay|ups|nvram-whole|nvram-partial
  uint64_t nvram_bytes = 2 * kMiB;
  bool async_flush = true;                   // the §5.2 lesson, applied

  HostModel host;
};

class PatsyServer {
 public:
  explicit PatsyServer(const PatsyConfig& config);
  ~PatsyServer();

  PatsyServer(const PatsyServer&) = delete;
  PatsyServer& operator=(const PatsyServer&) = delete;

  // Formats all file systems and starts daemons; runs the scheduler until
  // setup completes.
  Status Setup();

  Scheduler* scheduler() { return sched_.get(); }
  LocalClient* client() { return client_.get(); }
  BufferCache* cache() { return cache_.get(); }
  StatsRegistry& stats() { return stats_; }
  const PatsyConfig& config() const { return config_; }

  const std::vector<std::unique_ptr<DiskModel>>& disks() const { return disks_; }
  const std::vector<std::unique_ptr<ScsiBus>>& busses() const { return busses_; }
  const std::vector<std::unique_ptr<SimDiskDriver>>& drivers() const { return drivers_; }
  StorageLayout* layout(int fs_index) { return layouts_[static_cast<size_t>(fs_index)].get(); }

  std::string StatReport(bool with_histograms) { return stats_.ReportAll(with_histograms); }

 private:
  PatsyConfig config_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<std::unique_ptr<ScsiBus>> busses_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::vector<std::unique_ptr<SimDiskDriver>> drivers_;
  std::vector<std::unique_ptr<StorageLayout>> layouts_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<SimDataMover> mover_;
  std::vector<std::unique_ptr<FileSystem>> filesystems_;
  std::unique_ptr<LocalClient> client_;
  StatsRegistry stats_;
};

struct SimulationResult {
  LatencyHistogram overall;
  LatencyHistogram reads;
  LatencyHistogram writes;
  LatencyHistogram metadata;
  uint64_t ops = 0;
  uint64_t errors = 0;
  double cache_hit_rate = 0;
  uint64_t absorbed_dirty_blocks = 0;
  uint64_t blocks_flushed = 0;
  Duration simulated_time;
  std::vector<std::string> interval_reports;  // every 15 simulated minutes
  std::string final_report;
};

struct SimulationOptions {
  // Paper §4: "The measurements are shown every 15 minutes of simulation
  // time and of the overall simulation."
  Duration report_interval = Duration::Minutes(15);
  bool collect_interval_reports = true;
  bool with_histograms = false;
  // Safety bound on simulated time (0 = none).
  Duration max_simulated_time;
};

// Builds a PatsyServer from `config`, replays `records`, and returns the
// measurements.
Result<SimulationResult> RunTraceSimulation(const PatsyConfig& config,
                                            std::vector<TraceRecord> records,
                                            const SimulationOptions& options = {});

}  // namespace pfs

#endif  // PFS_PATSY_PATSY_H_
