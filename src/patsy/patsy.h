// Patsy: the instantiation of the cut-and-paste library to a file-system
// simulator (paper §4). PatsyServer is a thin facade over SystemBuilder that
// pins the simulated backend (simulated drivers, disks, SCSI busses, virtual
// clock) under the shared components; RunTraceSimulation replays a trace
// against it and gathers the overall and 15-minute-interval measurements the
// paper reports.
//
// The default topology is the rebuilt Sprite "Allspice" server of §5.1:
// three SCSI busses, ten HP 97560 disks, fourteen file systems (two of them
// hot spots by workload construction), segmented LFS everywhere.
#ifndef PFS_PATSY_PATSY_H_
#define PFS_PATSY_PATSY_H_

#include <memory>
#include <string>
#include <vector>

#include "system/system_builder.h"
#include "trace/replayer.h"

namespace pfs {

// The historical name for the simulator's system description. The same
// SystemConfig value drives the on-line server (online/pfs_server.h).
using PatsyConfig = SystemConfig;

class PatsyServer {
 public:
  // Assembles the simulated stack via SystemBuilder, overriding
  // config.backend to kSimulated; a config Validate() rejects is fatal here
  // (use SystemBuilder::Build directly for a Status instead).
  explicit PatsyServer(const PatsyConfig& config);

  // Adopts an already-built system (the Status-returning path;
  // RunTraceSimulation uses this after SystemBuilder::Build).
  explicit PatsyServer(std::unique_ptr<System> system) : system_(std::move(system)) {}

  PatsyServer(const PatsyServer&) = delete;
  PatsyServer& operator=(const PatsyServer&) = delete;

  // Formats all file systems and starts daemons; runs the scheduler until
  // setup completes.
  Status Setup() { return system_->Setup(); }

  System& system() { return *system_; }
  Scheduler* scheduler() { return system_->scheduler(); }
  LocalClient* client() { return system_->client(); }
  BufferCache* cache() { return system_->cache(); }
  StatsRegistry& stats() { return system_->stats(); }
  const SystemConfig& config() const { return system_->config(); }

  const std::vector<std::unique_ptr<DiskModel>>& disks() const { return system_->disks(); }
  const std::vector<std::unique_ptr<ScsiBus>>& busses() const { return system_->busses(); }
  const std::vector<std::unique_ptr<QueueingDiskDriver>>& drivers() const {
    return system_->drivers();
  }
  StorageLayout* layout(int fs_index) { return system_->layout(fs_index); }

  std::string StatReport(bool with_histograms) { return system_->StatReport(with_histograms); }

 private:
  std::unique_ptr<System> system_;
};

struct SimulationResult {
  LatencyHistogram overall;
  LatencyHistogram reads;
  LatencyHistogram writes;
  LatencyHistogram metadata;
  uint64_t ops = 0;
  uint64_t errors = 0;
  double cache_hit_rate = 0;
  uint64_t absorbed_dirty_blocks = 0;
  uint64_t blocks_flushed = 0;
  Duration simulated_time;
  std::vector<std::string> interval_reports;  // every 15 simulated minutes
  std::string final_report;
};

struct SimulationOptions {
  // Paper §4: "The measurements are shown every 15 minutes of simulation
  // time and of the overall simulation."
  Duration report_interval = Duration::Minutes(15);
  bool collect_interval_reports = true;
  bool with_histograms = false;
  // Safety bound on simulated time (0 = none).
  Duration max_simulated_time;
};

// Builds a PatsyServer from `config`, replays `records`, and returns the
// measurements.
Result<SimulationResult> RunTraceSimulation(const PatsyConfig& config,
                                            std::vector<TraceRecord> records,
                                            const SimulationOptions& options = {});

}  // namespace pfs

#endif  // PFS_PATSY_PATSY_H_
