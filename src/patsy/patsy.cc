#include "patsy/patsy.h"

#include <algorithm>

#include "core/log.h"

namespace pfs {
namespace {

std::unique_ptr<FlushPolicy> MakeConfiguredFlushPolicy(const PatsyConfig& config) {
  if (config.flush_policy == "write-delay") {
    return std::make_unique<WriteDelayPolicy>();
  }
  if (config.flush_policy == "ups") {
    return std::make_unique<UpsPolicy>();
  }
  if (config.flush_policy == "nvram-whole") {
    return std::make_unique<NvramPolicy>(NvramPolicy::Options{config.nvram_bytes, true});
  }
  if (config.flush_policy == "nvram-partial") {
    return std::make_unique<NvramPolicy>(NvramPolicy::Options{config.nvram_bytes, false});
  }
  PFS_CHECK_MSG(false, "unknown flush policy in PatsyConfig");
  return nullptr;
}

}  // namespace

PatsyServer::PatsyServer(const PatsyConfig& config) : config_(config) {
  sched_ = Scheduler::CreateVirtual(config.seed);

  // Busses and disks (paper: 3 SCSI busses, 10 HP97560 disks).
  int disk_index = 0;
  for (size_t b = 0; b < config.disks_per_bus.size(); ++b) {
    auto bus = std::make_unique<ScsiBus>(sched_.get(), "scsi" + std::to_string(b));
    for (int d = 0; d < config.disks_per_bus[b]; ++d) {
      auto disk = std::make_unique<DiskModel>(sched_.get(), "d" + std::to_string(disk_index),
                                              config.disk_params, bus.get());
      disk->Start();
      auto driver = std::make_unique<SimDiskDriver>(
          sched_.get(), "d" + std::to_string(disk_index), disk.get(), bus.get(),
          config.queue_policy);
      driver->Start();
      stats_.Register(disk.get());
      stats_.Register(driver.get());
      disks_.push_back(std::move(disk));
      drivers_.push_back(std::move(driver));
      ++disk_index;
    }
    stats_.Register(bus.get());
    busses_.push_back(std::move(bus));
  }
  PFS_CHECK_MSG(!disks_.empty(), "no disks configured");

  // Server-wide cache (the Sprite server's main memory).
  BufferCache::Config cache_config;
  cache_config.capacity_bytes = config.cache_bytes;
  cache_config.async_flush = config.async_flush;
  cache_ = std::make_unique<BufferCache>(sched_.get(), cache_config,
                                         MakeReplacementPolicy(config.replacement, config.seed),
                                         MakeConfiguredFlushPolicy(config));
  stats_.Register(cache_.get());
  mover_ = std::make_unique<SimDataMover>(sched_.get(), config.host);

  // File systems, round-robin over disks; disks hosting several file systems
  // are partitioned evenly (the paper's server had 14 on 10 disks).
  const int ndisks = static_cast<int>(disks_.size());
  std::vector<int> fs_on_disk(static_cast<size_t>(ndisks), 0);
  for (int f = 0; f < config.num_filesystems; ++f) {
    ++fs_on_disk[static_cast<size_t>(f % ndisks)];
  }
  std::vector<int> next_slot(static_cast<size_t>(ndisks), 0);
  client_ = std::make_unique<LocalClient>(sched_.get());
  for (int f = 0; f < config.num_filesystems; ++f) {
    const int d = f % ndisks;
    DiskDriver* driver = drivers_[static_cast<size_t>(d)].get();
    const uint64_t disk_blocks =
        driver->total_sectors() / (kDefaultBlockSize / driver->sector_bytes());
    const uint64_t part_blocks = disk_blocks / static_cast<uint64_t>(fs_on_disk[d]);
    const uint64_t start = part_blocks * static_cast<uint64_t>(next_slot[d]++);
    BlockDev dev(driver, kDefaultBlockSize, start, part_blocks);

    std::unique_ptr<StorageLayout> layout;
    if (config_.layout == "lfs") {
      LfsConfig lfs;
      lfs.fs_id = static_cast<uint32_t>(f);
      lfs.segment_blocks = config.lfs_segment_blocks;
      lfs.max_inodes = config.max_inodes;
      lfs.materialize_metadata = false;
      auto lfs_layout = std::make_unique<LfsLayout>(sched_.get(), dev, lfs,
                                                    MakeCleanerPolicy(config.cleaner));
      stats_.Register(lfs_layout.get());
      layout = std::move(lfs_layout);
    } else if (config_.layout == "ffs") {
      FfsConfig ffs;
      ffs.fs_id = static_cast<uint32_t>(f);
      auto ffs_layout = std::make_unique<FfsLayout>(sched_.get(), dev, ffs);
      stats_.Register(ffs_layout.get());
      layout = std::move(ffs_layout);
    } else if (config_.layout == "guessing") {
      GuessingConfig guess;
      guess.fs_id = static_cast<uint32_t>(f);
      guess.seed = config.seed + static_cast<uint64_t>(f);
      layout = std::make_unique<GuessingLayout>(sched_.get(), dev, guess);
    } else {
      PFS_CHECK_MSG(false, "unknown layout in PatsyConfig");
    }
    auto fs = std::make_unique<FileSystem>(sched_.get(), layout.get(), cache_.get(),
                                           mover_.get());
    client_->AddMount("fs" + std::to_string(f), fs.get());
    layouts_.push_back(std::move(layout));
    filesystems_.push_back(std::move(fs));
  }
}

PatsyServer::~PatsyServer() {
  // Suspended threads (daemons, or clients cut off by a bounded run) hold
  // references into the components destroyed below; release their frames
  // while everything is still alive.
  if (sched_ != nullptr) {
    sched_->DestroyAllThreads();
  }
}

Status PatsyServer::Setup() {
  Status result(ErrorCode::kAborted);
  sched_->Spawn("patsy.setup", [](PatsyServer* server, Status* out) -> Task<> {
    for (auto& layout : server->layouts_) {
      const Status status = co_await layout->Format();
      if (!status.ok()) {
        *out = status;
        co_return;
      }
    }
    *out = OkStatus();
  }(this, &result));
  sched_->Run();
  PFS_RETURN_IF_ERROR(result);
  cache_->Start();
  for (auto& layout : layouts_) {
    if (auto* lfs = dynamic_cast<LfsLayout*>(layout.get()); lfs != nullptr) {
      lfs->Start();
    }
  }
  return OkStatus();
}

Result<SimulationResult> RunTraceSimulation(const PatsyConfig& config,
                                            std::vector<TraceRecord> records,
                                            const SimulationOptions& options) {
  PatsyServer server(config);
  PFS_RETURN_IF_ERROR(server.Setup());

  TraceReplayer replayer(server.scheduler(), server.client());
  replayer.AddRecords(std::move(records));
  server.stats().Register(&replayer);

  SimulationResult result;

  // The paper's 15-minute interval reporter.
  struct ReporterState {
    bool stop = false;
  };
  ReporterState reporter_state;
  if (options.collect_interval_reports) {
    server.scheduler()->SpawnDaemon(
        "patsy.reporter",
        [](PatsyServer* srv, SimulationResult* res, const SimulationOptions* opts,
           ReporterState* state) -> Task<> {
          for (;;) {
            co_await srv->scheduler()->Sleep(opts->report_interval);
            if (state->stop) {
              co_return;
            }
            char header[96];
            std::snprintf(header, sizeof(header), "-- interval report @ %.0f min --\n",
                          (srv->scheduler()->Now() - TimePoint()).ToSecondsF() / 60.0);
            res->interval_reports.push_back(header +
                                            srv->StatReport(opts->with_histograms));
            srv->stats().ResetIntervalAll();
          }
        }(&server, &result, &options, &reporter_state));
  }

  replayer.Start();
  if (options.max_simulated_time.IsZero()) {
    server.scheduler()->Run();
  } else {
    server.scheduler()->RunFor(options.max_simulated_time);
  }
  reporter_state.stop = true;

  result.overall = replayer.overall();
  result.reads = replayer.reads();
  result.writes = replayer.writes();
  result.metadata = replayer.metadata();
  result.ops = replayer.ops_completed();
  result.errors = replayer.errors();
  result.cache_hit_rate = server.cache()->HitRate();
  result.absorbed_dirty_blocks = server.cache()->absorbed_dirty_blocks();
  result.blocks_flushed = server.cache()->blocks_flushed();
  result.simulated_time = server.scheduler()->Now() - TimePoint();
  result.final_report = server.StatReport(options.with_histograms);
  return result;
}

}  // namespace pfs
