#include "patsy/patsy.h"

#include <cstdio>

namespace pfs {

PatsyServer::PatsyServer(const PatsyConfig& config) {
  SystemConfig sim = config;
  sim.backend = BackendKind::kSimulated;  // Patsy *is* the simulator facade
  auto system_or = SystemBuilder::Build(sim);
  PFS_CHECK_MSG(system_or.ok(), system_or.status().ToString().c_str());
  system_ = std::move(system_or).value();
}

Result<SimulationResult> RunTraceSimulation(const PatsyConfig& config,
                                            std::vector<TraceRecord> records,
                                            const SimulationOptions& options) {
  SystemConfig sim = config;
  sim.backend = BackendKind::kSimulated;
  PFS_ASSIGN_OR_RETURN(std::unique_ptr<System> system, SystemBuilder::Build(sim));
  PatsyServer server(std::move(system));
  PFS_RETURN_IF_ERROR(server.Setup());

  TraceReplayer replayer(server.scheduler(), server.client());
  replayer.AddRecords(std::move(records));
  server.stats().Register(&replayer);

  SimulationResult result;

  // The paper's 15-minute interval reporter.
  struct ReporterState {
    bool stop = false;
  };
  ReporterState reporter_state;
  if (options.collect_interval_reports) {
    server.scheduler()->SpawnDaemon(
        "patsy.reporter",
        [](PatsyServer* srv, SimulationResult* res, const SimulationOptions* opts,
           ReporterState* state) -> Task<> {
          for (;;) {
            co_await srv->scheduler()->Sleep(opts->report_interval);
            if (state->stop) {
              co_return;
            }
            char header[96];
            std::snprintf(header, sizeof(header), "-- interval report @ %.0f min --\n",
                          (srv->scheduler()->Now() - TimePoint()).ToSecondsF() / 60.0);
            res->interval_reports.push_back(header +
                                            srv->StatReport(opts->with_histograms));
            srv->stats().ResetIntervalAll();
          }
        }(&server, &result, &options, &reporter_state));
  }

  replayer.Start();
  if (options.max_simulated_time.IsZero()) {
    server.system().RunToCompletion();
  } else {
    server.system().RunForDuration(options.max_simulated_time);
  }
  reporter_state.stop = true;

  result.overall = replayer.overall();
  result.reads = replayer.reads();
  result.writes = replayer.writes();
  result.metadata = replayer.metadata();
  result.ops = replayer.ops_completed();
  result.errors = replayer.errors();
  result.cache_hit_rate = server.cache()->HitRate();
  result.absorbed_dirty_blocks = server.cache()->absorbed_dirty_blocks();
  result.blocks_flushed = server.cache()->blocks_flushed();
  result.simulated_time = server.scheduler()->Now() - TimePoint();
  result.final_report = server.StatReport(options.with_histograms);
  return result;
}

}  // namespace pfs
