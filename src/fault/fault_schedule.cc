#include "fault/fault_schedule.h"

#include "system/component_registry.h"

namespace pfs {

const char* FaultActionName(FaultAction a) {
  switch (a) {
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kReturn:
      return "return";
  }
  return "?";
}

void RegisterBuiltinFaultActions() {
  FaultActionRegistry::Register("fail", FaultAction::kFail);
  FaultActionRegistry::Register("return", FaultAction::kReturn);
}

namespace {

// The volume specs the faults target: the config's own, or the defaulted
// round-robin single-disk volumes (kind "single", one member each) that
// SystemBuilder plans when none are given.
size_t EffectiveVolumeCount(const SystemConfig& config) {
  if (!config.volumes.empty()) {
    return config.volumes.size();
  }
  return config.num_filesystems < 0 ? 0 : static_cast<size_t>(config.num_filesystems);
}

const VolumeSpec* ExplicitVolume(const SystemConfig& config, size_t v) {
  return config.volumes.empty() ? nullptr : &config.volumes[v];
}

}  // namespace

std::optional<FaultSpecError> CheckFaultSpecs(const SystemConfig& config) {
  const size_t volume_count = EffectiveVolumeCount(config);
  uint64_t prev_at_ms = 0;
  for (size_t i = 0; i < config.faults.size(); ++i) {
    const FaultSpec& fault = config.faults[i];
    if (!FaultActionRegistry::Contains(fault.action)) {
      return FaultSpecError{i, "action",
                            "unknown fault action \"" + fault.action +
                                "\" (registered: " + FaultActionRegistry::NameList() + ")"};
    }
    if (fault.volume < 0 || static_cast<size_t>(fault.volume) >= volume_count) {
      return FaultSpecError{i, "volume",
                            "volume index " + std::to_string(fault.volume) + " outside the " +
                                std::to_string(volume_count) + " configured volume(s)"};
    }
    const VolumeSpec* spec = ExplicitVolume(config, static_cast<size_t>(fault.volume));
    const std::string kind = spec == nullptr ? "single" : spec->kind;
    const VolumeKindFamily::Value* family = VolumeKindRegistry::Find(kind);
    // allows_degraded_start is the "members may be failed" capability: the
    // same volume kinds that can start degraded can degrade mid-run.
    if (family == nullptr || !family->allows_degraded_start) {
      return FaultSpecError{i, "volume",
                            "volume " + std::to_string(fault.volume) + " is kind \"" + kind +
                                "\"; only mirror members can fail mid-run"};
    }
    const size_t member_count = spec == nullptr ? 1 : spec->members.size();
    if (fault.member < 0 || static_cast<size_t>(fault.member) >= member_count) {
      return FaultSpecError{i, "member",
                            "member position " + std::to_string(fault.member) +
                                " outside the volume's " + std::to_string(member_count) +
                                " member(s)"};
    }
    if (fault.at_ms > kMaxFaultAtMs) {
      return FaultSpecError{i, "at_ms",
                            "timestamp " + std::to_string(fault.at_ms) +
                                "ms is out of range (max " + std::to_string(kMaxFaultAtMs) +
                                ")"};
    }
    if (i > 0 && fault.at_ms < prev_at_ms) {
      return FaultSpecError{i, "at_ms",
                            "non-monotonic timestamp: " + std::to_string(fault.at_ms) +
                                "ms is before fault" + std::to_string(i - 1) + "'s " +
                                std::to_string(prev_at_ms) + "ms"};
    }
    prev_at_ms = fault.at_ms;
  }
  return std::nullopt;
}

Result<FaultSchedule> FaultSchedule::FromConfig(const SystemConfig& config) {
  if (auto error = CheckFaultSpecs(config); error.has_value()) {
    return Status(ErrorCode::kInvalidArgument, "faults[" + std::to_string(error->fault) +
                                                   "]." + error->field + ": " +
                                                   error->message);
  }
  FaultSchedule schedule;
  schedule.events_.reserve(config.faults.size());
  for (const FaultSpec& fault : config.faults) {
    schedule.events_.push_back(FaultEvent{
        Duration::Millis(static_cast<int64_t>(fault.at_ms)),
        static_cast<size_t>(fault.volume), static_cast<size_t>(fault.member),
        *FaultActionRegistry::Find(fault.action)});
  }
  return schedule;
}

Duration FaultSchedule::last_event_time() const {
  return events_.empty() ? Duration() : events_.back().at;
}

}  // namespace pfs
