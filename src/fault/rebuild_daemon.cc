#include "fault/rebuild_daemon.h"

#include <algorithm>
#include <cstdio>

#include "core/log.h"
#include "obs/metrics.h"

namespace pfs {

RebuildDaemon::RebuildDaemon(Scheduler* sched, MirrorVolume* mirror, Options options)
    : sched_(sched), mirror_(mirror), options_(options), work_(sched) {
  PFS_CHECK(mirror_ != nullptr);
  BindHomeShard(sched_);
  PFS_CHECK_MSG(options_.chunk_sectors > 0, "rebuild chunk must be at least one sector");
  if (options_.copy_real_data) {
    buffer_.resize(static_cast<size_t>(options_.chunk_sectors) * mirror_->sector_bytes());
  }
}

void RebuildDaemon::Start() {
  PFS_CHECK_MSG(!started_, "RebuildDaemon started twice");
  started_ = true;
  sched_->SpawnDaemon("rebuild." + mirror_->name(), Loop());
}

void RebuildDaemon::BindMetrics(MetricRegistry* registry) {
  const std::string labels = "volume=\"" + mirror_->name() + "\"";
  m_requests_ = registry->Counter("rebuild_requests_total", "Member rebuilds requested", labels);
  m_completed_ =
      registry->Counter("rebuild_completed_total", "Members rebuilt and reinstated", labels);
  m_aborted_ = registry->Counter("rebuild_aborted_total", "Rebuild passes aborted on copy "
                                 "failure", labels);
  m_copied_bytes_ =
      registry->Counter("rebuild_copied_bytes_total", "Debt bytes copied back", labels);
}

void RebuildDaemon::RequestRebuild(size_t member) {
  PFS_ASSERT_SHARD();
  PFS_CHECK(member < mirror_->member_count());
  if (active_ && active_member_ == member) {
    return;  // already being rebuilt
  }
  for (size_t queued : pending_) {
    if (queued == member) {
      return;
    }
  }
  requests_.Inc();
  if (m_requests_ != nullptr) m_requests_->Inc();
  pending_.push_back(member);
  work_.Signal();
}

Task<> RebuildDaemon::Loop() {
  for (;;) {
    while (pending_.empty()) {
      co_await work_.Wait();
    }
    const size_t member = pending_.front();
    pending_.pop_front();
    active_ = true;
    active_member_ = member;
    co_await RebuildMember(member);
    active_ = false;
  }
}

Task<> RebuildDaemon::RebuildMember(size_t member) {
  if (!mirror_->member_failed(member)) {
    co_return;  // raced with another reinstatement path: nothing to do
  }
  const TimePoint start = sched_->Now();
  const uint32_t sector_bytes = mirror_->sector_bytes();
  bool failed = false;
  while (auto extent = mirror_->PopDebtExtent(member, options_.chunk_sectors)) {
    const auto [sector, count] = *extent;
    const uint64_t bytes = static_cast<uint64_t>(count) * sector_bytes;
    // Simulated backend: empty spans, the copy is pure timing (the paper's
    // "no real data is moved" rule). File-backed: real bytes round-trip.
    std::span<std::byte> span =
        options_.copy_real_data ? std::span<std::byte>(buffer_).first(bytes)
                                : std::span<std::byte>{};
    // Read through the mirror itself (live members, shortest queue — the
    // normal volume path), write to the returning member's own device.
    Status status = co_await mirror_->Read(sector, count, span);
    if (status.ok()) {
      status = co_await mirror_->member(member)->Write(sector, count, span);
    }
    if (!status.ok()) {
      mirror_->PushDebtExtent(member, sector, count);
      aborted_.Inc();
      if (m_aborted_ != nullptr) m_aborted_->Inc();
      PFS_LOG_WARN("rebuild", "%s member %zu aborted: %s", mirror_->name().c_str(), member,
                   status.ToString().c_str());
      failed = true;
      break;
    }
    rebuilt_sectors_.Inc(count);
    if (m_copied_bytes_ != nullptr) m_copied_bytes_->Inc(bytes);
    mirror_->NoteRebuildCopied(count);
    if (options_.bw_kbps > 0) {
      co_await sched_->Sleep(Duration::SecondsF(
          static_cast<double>(bytes) / (static_cast<double>(options_.bw_kbps) * 1024.0)));
    }
  }
  const Duration elapsed = sched_->Now() - start;
  busy_ns_ += elapsed.nanos();
  mirror_->NoteRebuildElapsed(elapsed);
  if (!failed) {
    // A foreground write may have slipped a new extent in after the final
    // pop, or one that skipped the member may still be in flight. Back off
    // a beat (so the write can finish and its debt land) and go around —
    // checked via ReinstateBlocked, not a refused SetMemberFailed, so these
    // routine retry beats don't count as reinstate refusals.
    if (mirror_->ReinstateBlocked(member)) {
      co_await sched_->Sleep(Duration::Millis(1));
      pending_.push_back(member);  // Loop re-checks pending_ right after us
      co_return;
    }
    // Nothing blocks it and nothing can change between the check and the
    // call (no suspension point): this succeeds, or the member was already
    // reinstated under us (a no-op OkStatus) — completed either way.
    PFS_CHECK(mirror_->SetMemberFailed(member, false).ok());
    completed_.Inc();
    if (m_completed_ != nullptr) m_completed_->Inc();
  }
}

std::string RebuildDaemon::StatReport(bool) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "bw-cap=%ukbps requests=%llu completed=%llu aborted=%llu "
                "rebuilt=%lluB busy=%.3fms\n",
                options_.bw_kbps, static_cast<unsigned long long>(requests_.value()),
                static_cast<unsigned long long>(completed_.value()),
                static_cast<unsigned long long>(aborted_.value()),
                static_cast<unsigned long long>(rebuilt_sectors_.value() *
                                                mirror_->sector_bytes()),
                static_cast<double>(busy_ns_) / 1e6);
  return buf;
}

std::string RebuildDaemon::StatJson() const {
  const uint64_t bytes = rebuilt_sectors_.value() * mirror_->sector_bytes();
  const double busy_s = static_cast<double>(busy_ns_) / 1e9;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"bw_kbps\":%u,\"requests\":%llu,\"completed\":%llu,\"aborted\":%llu,"
                "\"rebuilt_bytes\":%llu,\"busy_ms\":%.3f,\"throughput_kbps\":%.1f,"
                "\"idle\":%s}",
                options_.bw_kbps, static_cast<unsigned long long>(requests_.value()),
                static_cast<unsigned long long>(completed_.value()),
                static_cast<unsigned long long>(aborted_.value()),
                static_cast<unsigned long long>(bytes), static_cast<double>(busy_ns_) / 1e6,
                busy_s > 0 ? static_cast<double>(bytes) / busy_s / 1024.0 : 0.0,
                idle() ? "true" : "false");
  return buf;
}

}  // namespace pfs
