// FaultInjector: the daemon that replays a FaultSchedule on the system
// clock. It sleeps until each event's instant — virtual time under the
// simulator (events land at exactly the scheduled simulated instant), real
// time for the on-line server — then drives the target mirror:
//
//   fail    MirrorVolume::SetMemberFailed(m, true): degraded reads from the
//           survivors, missed writes accrue as rebuild-debt extents
//   return  RebuildDaemon::RequestRebuild(m): drain the debt as background
//           copy I/O, then reinstate the member
//
// The injector is a StatSource ("fault.injector") and exposes quiescent()
// — every event applied and every referenced rebuild drained — which the
// scenario runner and benches use as the "availability experiment is over"
// condition.
#ifndef PFS_FAULT_FAULT_INJECTOR_H_
#define PFS_FAULT_FAULT_INJECTOR_H_

#include <vector>

#include "fault/fault_schedule.h"
#include "fault/rebuild_daemon.h"
#include "sched/affinity.h"
#include "sched/scheduler.h"
#include "stats/registry.h"
#include "volume/volume.h"

namespace pfs {

class MetricRegistry;
class CounterMetric;

// Shard-affine (ShardAffine): each injector drives mirrors owned by one
// shard, so Apply asserts it runs on that shard's loop.
class FaultInjector : public StatSource, public ShardAffine {
 public:
  // One schedule entry resolved against the assembled system. `rebuild` may
  // be null only when the schedule holds no "return" event for the volume
  // (SystemBuilder creates a RebuildDaemon for every mirror it assembles).
  struct PlannedEvent {
    FaultEvent event;
    MirrorVolume* mirror;
    RebuildDaemon* rebuild;
  };

  FaultInjector(Scheduler* sched, std::vector<PlannedEvent> events);

  // Spawns the injector as a transient daemon: it neither keeps the
  // scheduler's Run() alive nor leaves a finished thread record behind once
  // the last event has been applied.
  void Start();

  size_t event_count() const { return events_.size(); }
  size_t applied_count() const { return applied_; }
  bool done() const { return applied_ == events_.size(); }
  // Every event applied and every rebuild daemon the schedule touches idle:
  // nothing fault-related will happen anymore.
  bool quiescent() const;

  uint64_t fails_applied() const { return fails_.value(); }
  uint64_t returns_applied() const { return returns_.value(); }
  // Events that found their target already in the requested state (failing
  // a failed member, returning a live one).
  uint64_t noop_events() const { return noops_.value(); }

  // Sharded systems run one injector per shard that has scheduled events;
  // the suffix (".shard<i>") keeps the registry names distinct.
  void set_stat_suffix(std::string suffix) { stat_suffix_ = std::move(suffix); }

  // Registers fault_events_total{kind=...} with the live metrics plane;
  // `shard_label` distinguishes the per-shard injectors.
  void BindMetrics(MetricRegistry* registry, uint32_t shard_label);

  // StatSource
  std::string stat_name() const override { return "fault.injector" + stat_suffix_; }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;

 private:
  Task<> Run();
  void Apply(const PlannedEvent& planned);

  Scheduler* sched_;
  std::vector<PlannedEvent> events_;
  size_t applied_ = 0;
  bool started_ = false;
  std::string stat_suffix_;
  Counter fails_;
  Counter returns_;
  Counter noops_;
  CounterMetric* m_fails_ = nullptr;  // live metrics plane (null until bound)
  CounterMetric* m_returns_ = nullptr;
  CounterMetric* m_noops_ = nullptr;
};

}  // namespace pfs

#endif  // PFS_FAULT_FAULT_INJECTOR_H_
