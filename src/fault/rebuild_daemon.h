// RebuildDaemon: per-mirror background rebuild. When a failed member
// returns (a "return" fault event, or any caller's RequestRebuild), the
// daemon replays the mirror's accumulated rebuild debt as copy I/O through
// the normal volume path — reads fan out to the live members, the repaired
// ranges are written to the returning member's own device — so rebuild
// traffic queues behind and contends with foreground requests exactly as it
// would on real hardware. A bandwidth cap (SystemConfig::rebuild_bw_kbps)
// throttles the copy loop on the system clock, virtual or real; once the
// debt drains to zero the member is reinstated via
// MirrorVolume::SetMemberFailed(i, false), which now succeeds.
#ifndef PFS_FAULT_REBUILD_DAEMON_H_
#define PFS_FAULT_REBUILD_DAEMON_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "sched/affinity.h"
#include "sched/event.h"
#include "sched/scheduler.h"
#include "stats/registry.h"
#include "volume/volume.h"

namespace pfs {

class MetricRegistry;
class CounterMetric;

// Shard-affine (ShardAffine): the daemon, its mirror, and the debt ledger all
// live on the mirror's shard; RequestRebuild asserts the caller's loop.
class RebuildDaemon : public StatSource, public ShardAffine {
 public:
  struct Options {
    uint32_t bw_kbps = 4096;      // copy-bandwidth cap; 0 = uncapped
    uint32_t chunk_sectors = 128; // one copy request (64 KiB at 512 B sectors)
    bool copy_real_data = false;  // file-backed backend: move real bytes
  };

  RebuildDaemon(Scheduler* sched, MirrorVolume* mirror, Options options);

  // Spawns the daemon thread; call once, before RequestRebuild.
  void Start();

  // Queues member `i` for rebuild + reinstatement. Idempotent while the
  // member is already queued or being rebuilt. Callable from any scheduler
  // thread (the FaultInjector's "return" events land here).
  void RequestRebuild(size_t member);

  // No rebuild running and none queued (the injector's quiescence check).
  bool idle() const { return pending_.empty() && !active_; }

  MirrorVolume* mirror() { return mirror_; }
  uint64_t requests() const { return requests_.value(); }
  uint64_t completed() const { return completed_.value(); }
  uint64_t aborted() const { return aborted_.value(); }
  uint64_t rebuilt_sectors() const { return rebuilt_sectors_.value(); }
  Duration busy_time() const { return Duration::Nanos(busy_ns_); }

  // Registers rebuild_* families (labelled {volume="<mirror>"}) with the
  // live metrics plane.
  void BindMetrics(MetricRegistry* registry);

  // StatSource
  std::string stat_name() const override { return "rebuild." + mirror_->name(); }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;

 private:
  Task<> Loop();
  // Drains member `i`'s debt, then reinstates it. Copy failures push the
  // extent back and abort (the member stays failed; a later RequestRebuild
  // retries).
  Task<> RebuildMember(size_t member);

  Scheduler* sched_;
  MirrorVolume* mirror_;
  Options options_;
  Event work_;
  std::deque<size_t> pending_;
  bool active_ = false;
  size_t active_member_ = 0;  // valid while active_
  bool started_ = false;
  std::vector<std::byte> buffer_;  // chunk bounce buffer (real-data mode)

  Counter requests_;
  Counter completed_;
  Counter aborted_;
  Counter rebuilt_sectors_;
  int64_t busy_ns_ = 0;

  // Live metrics plane (null until BindMetrics).
  CounterMetric* m_requests_ = nullptr;
  CounterMetric* m_completed_ = nullptr;
  CounterMetric* m_aborted_ = nullptr;
  CounterMetric* m_copied_bytes_ = nullptr;
};

}  // namespace pfs

#endif  // PFS_FAULT_REBUILD_DAEMON_H_
