#include "fault/fault_injector.h"

#include <cstdio>

#include "core/log.h"
#include "obs/metrics.h"

namespace pfs {

FaultInjector::FaultInjector(Scheduler* sched, std::vector<PlannedEvent> events)
    : sched_(sched), events_(std::move(events)) {
  BindHomeShard(sched_);
  for (const PlannedEvent& planned : events_) {
    PFS_CHECK(planned.mirror != nullptr);
    PFS_CHECK_MSG(planned.event.action != FaultAction::kReturn || planned.rebuild != nullptr,
                  "return event without a rebuild daemon");
    PFS_CHECK(planned.event.member < planned.mirror->member_count());
  }
}

void FaultInjector::Start() {
  PFS_CHECK_MSG(!started_, "FaultInjector started twice");
  started_ = true;
  if (!events_.empty()) {
    sched_->SpawnTransientDaemon("fault.injector", Run());
  }
}

void FaultInjector::BindMetrics(MetricRegistry* registry, uint32_t shard_label) {
  char labels[64];
  std::snprintf(labels, sizeof(labels), "shard=\"%u\",kind=\"fail\"", shard_label);
  m_fails_ = registry->Counter("fault_events_total", "Fault-schedule events applied", labels);
  std::snprintf(labels, sizeof(labels), "shard=\"%u\",kind=\"return\"", shard_label);
  m_returns_ = registry->Counter("fault_events_total", "Fault-schedule events applied", labels);
  std::snprintf(labels, sizeof(labels), "shard=\"%u\",kind=\"noop\"", shard_label);
  m_noops_ = registry->Counter("fault_events_total", "Fault-schedule events applied", labels);
}

Task<> FaultInjector::Run() {
  for (const PlannedEvent& planned : events_) {
    co_await sched_->SleepUntil(TimePoint() + planned.event.at);
    Apply(planned);
    ++applied_;
  }
}

void FaultInjector::Apply(const PlannedEvent& planned) {
  PFS_ASSERT_SHARD();
  MirrorVolume* mirror = planned.mirror;
  const size_t member = planned.event.member;
  switch (planned.event.action) {
    case FaultAction::kFail:
      if (mirror->member_failed(member)) {
        noops_.Inc();
        if (m_noops_ != nullptr) m_noops_->Inc();
        return;
      }
      // Failing a member out always succeeds.
      PFS_CHECK(mirror->SetMemberFailed(member, true).ok());
      fails_.Inc();
      if (m_fails_ != nullptr) m_fails_->Inc();
      PFS_LOG_INFO("fault", "t=%.3fms: failed %s member %zu (%zu live)",
                   sched_->Now().ToSecondsF() * 1e3, mirror->name().c_str(), member,
                   mirror->live_member_count());
      return;
    case FaultAction::kReturn:
      if (!mirror->member_failed(member)) {
        noops_.Inc();
        if (m_noops_ != nullptr) m_noops_->Inc();
        return;
      }
      planned.rebuild->RequestRebuild(member);
      returns_.Inc();
      if (m_returns_ != nullptr) m_returns_->Inc();
      PFS_LOG_INFO("fault", "t=%.3fms: returned %s member %zu (debt %llu B)",
                   sched_->Now().ToSecondsF() * 1e3, mirror->name().c_str(), member,
                   static_cast<unsigned long long>(mirror->debt_sectors(member) *
                                                   mirror->sector_bytes()));
      return;
  }
}

bool FaultInjector::quiescent() const {
  if (!done()) {
    return false;
  }
  for (const PlannedEvent& planned : events_) {
    if (planned.rebuild != nullptr && !planned.rebuild->idle()) {
      return false;
    }
  }
  return true;
}

std::string FaultInjector::StatReport(bool) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "events=%zu applied=%zu fails=%llu returns=%llu noops=%llu quiescent=%s\n",
                events_.size(), applied_, static_cast<unsigned long long>(fails_.value()),
                static_cast<unsigned long long>(returns_.value()),
                static_cast<unsigned long long>(noops_.value()),
                quiescent() ? "yes" : "no");
  return buf;
}

std::string FaultInjector::StatJson() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"events\":%zu,\"applied\":%zu,\"fails\":%llu,\"returns\":%llu,"
                "\"noops\":%llu,\"quiescent\":%s}",
                events_.size(), applied_, static_cast<unsigned long long>(fails_.value()),
                static_cast<unsigned long long>(returns_.value()),
                static_cast<unsigned long long>(noops_.value()),
                quiescent() ? "true" : "false");
  return buf;
}

}  // namespace pfs
