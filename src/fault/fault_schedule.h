// Fault schedules: the declarative half of the fault-injection subsystem.
// A SystemConfig carries an ordered list of timestamped FaultSpecs
// ("fail member 1 of volume 0 at t=5000ms"); FaultSchedule validates the
// list against the configured topology and resolves it into runtime events
// the FaultInjector daemon replays on the system clock — virtual under the
// simulator, real for the on-line server, the same schedule either way.
// Actions are a registered component family (FaultActionRegistry), so new
// fault kinds (whole-disk faults, latency degradation) plug in by name.
#ifndef PFS_FAULT_FAULT_SCHEDULE_H_
#define PFS_FAULT_FAULT_SCHEDULE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/result.h"
#include "sched/time.h"
#include "system/system_config.h"

namespace pfs {

enum class FaultAction : uint8_t {
  kFail,    // fail the member out: degraded reads, writes accrue rebuild debt
  kReturn,  // hand the member to the RebuildDaemon: drain debt, reinstate
};

const char* FaultActionName(FaultAction a);

// Largest accepted fault<i>.at_ms (about 29 years): far beyond any run, and
// small enough that the millisecond -> nanosecond conversion can never
// overflow Duration's signed 64-bit representation.
inline constexpr uint64_t kMaxFaultAtMs = 1'000'000'000'000;

// One validated, resolved schedule entry (FaultSpec is the textual form).
struct FaultEvent {
  Duration at;  // measured from scheduler start (t = 0)
  size_t volume;
  size_t member;
  FaultAction action;
};

// A field-level verdict on config.faults, shared by SystemConfig::Parse
// (which maps it back to the offending scenario line) and
// SystemBuilder::Validate (which prefixes the faults[i].field path).
struct FaultSpecError {
  size_t fault;       // index into config.faults
  const char* field;  // "at_ms" | "volume" | "member" | "action"
  std::string message;
};

// Checks every fault spec against the config's volumes: a registered action,
// a volume index inside the topology whose kind supports member faults
// (mirrors), a member position inside that volume, and non-decreasing
// timestamps. nullopt when the schedule is well-formed.
std::optional<FaultSpecError> CheckFaultSpecs(const SystemConfig& config);

class FaultSchedule {
 public:
  // Validates config.faults (CheckFaultSpecs) and resolves the specs into
  // runtime events; an empty config yields an empty schedule.
  static Result<FaultSchedule> FromConfig(const SystemConfig& config);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  // Instant of the final event; zero for an empty schedule.
  Duration last_event_time() const;

 private:
  std::vector<FaultEvent> events_;
};

// Registers the builtin fault actions ("fail", "return") with
// FaultActionRegistry; called from EnsureBuiltinComponentsRegistered.
void RegisterBuiltinFaultActions();

}  // namespace pfs

#endif  // PFS_FAULT_FAULT_SCHEDULE_H_
