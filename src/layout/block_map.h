// BlockMap: a file's logical-block -> disk-address mapping, chunked into
// block-sized arrays of u64 addresses. Chunks are persisted as ordinary
// layout blocks; the inode records each chunk's disk address. Both the LFS
// and the FFS layouts use this structure, differing only in where chunk
// blocks land on disk.
#ifndef PFS_LAYOUT_BLOCK_MAP_H_
#define PFS_LAYOUT_BLOCK_MAP_H_

#include <cstdint>
#include <vector>

#include "core/check.h"
#include "core/result.h"
#include "core/serializer.h"
#include "layout/inode.h"

namespace pfs {

class BlockMap {
 public:
  explicit BlockMap(uint32_t block_size)
      : entries_per_chunk_(block_size / 8), block_size_(block_size) {}

  uint64_t entries_per_chunk() const { return entries_per_chunk_; }
  size_t max_chunks() const { return Inode::kBmapChunks; }
  uint64_t max_file_blocks() const { return entries_per_chunk_ * max_chunks(); }

  // Disk address of a file block, or kNullAddr for a hole.
  uint64_t Get(uint64_t file_block) const {
    const size_t chunk = ChunkOf(file_block);
    if (chunk >= chunks_.size() || chunks_[chunk].entries.empty()) {
      return kNullAddr;
    }
    return chunks_[chunk].entries[file_block % entries_per_chunk_];
  }

  // Sets the mapping; marks the chunk dirty. Returns the previous address.
  uint64_t Set(uint64_t file_block, uint64_t addr) {
    const size_t chunk = ChunkOf(file_block);
    PFS_CHECK_MSG(chunk < max_chunks(), "file exceeds maximum mappable size");
    if (chunk >= chunks_.size()) {
      chunks_.resize(chunk + 1);
    }
    if (chunks_[chunk].entries.empty()) {
      chunks_[chunk].entries.assign(entries_per_chunk_, kNullAddr);
    }
    uint64_t& slot = chunks_[chunk].entries[file_block % entries_per_chunk_];
    const uint64_t old = slot;
    if (old != addr) {
      slot = addr;
      chunks_[chunk].dirty = true;
    }
    return old;
  }

  // Drops mappings at and above `from_block`, returning the freed addresses
  // (for segment-usage / bitmap accounting).
  std::vector<uint64_t> TruncateFrom(uint64_t from_block);

  size_t chunk_count() const { return chunks_.size(); }
  bool ChunkLoaded(size_t chunk) const {
    return chunk < chunks_.size() && !chunks_[chunk].entries.empty();
  }
  bool ChunkDirty(size_t chunk) const {
    return chunk < chunks_.size() && chunks_[chunk].dirty;
  }
  void MarkChunkClean(size_t chunk) {
    if (chunk < chunks_.size()) {
      chunks_[chunk].dirty = false;
    }
  }

  // Forces a rewrite of a loaded chunk (used by the cleaner to relocate a
  // chunk block whose contents are unchanged).
  void MarkChunkDirty(size_t chunk) {
    PFS_CHECK(ChunkLoaded(chunk));
    chunks_[chunk].dirty = true;
  }

  // Serialization of one chunk to/from exactly one layout block.
  void SerializeChunk(size_t chunk, Serializer* out) const;
  Status DeserializeChunk(size_t chunk, Deserializer* in);

  // All currently-mapped addresses (liveness scans, frees).
  std::vector<uint64_t> AllAddresses() const;

 private:
  struct Chunk {
    std::vector<uint64_t> entries;  // empty = not loaded / all holes
    bool dirty = false;
  };

  size_t ChunkOf(uint64_t file_block) const {
    return static_cast<size_t>(file_block / entries_per_chunk_);
  }

  uint64_t entries_per_chunk_;
  uint32_t block_size_;
  std::vector<Chunk> chunks_;
};

}  // namespace pfs

#endif  // PFS_LAYOUT_BLOCK_MAP_H_
