#include "layout/cleaner.h"

#include "core/check.h"
#include "system/component_registry.h"

namespace pfs {

int64_t GreedyCleanerPolicy::PickSegment(std::span<const SegmentInfo> segments,
                                         uint32_t usable_blocks, uint64_t now_seq) const {
  (void)usable_blocks;
  (void)now_seq;
  int64_t best = -1;
  uint32_t best_live = UINT32_MAX;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].state != SegmentState::kFull) {
      continue;
    }
    if (segments[i].live_blocks < best_live) {
      best_live = segments[i].live_blocks;
      best = static_cast<int64_t>(i);
    }
  }
  return best;
}

int64_t CostBenefitCleanerPolicy::PickSegment(std::span<const SegmentInfo> segments,
                                              uint32_t usable_blocks, uint64_t now_seq) const {
  int64_t best = -1;
  double best_score = -1.0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const SegmentInfo& seg = segments[i];
    if (seg.state != SegmentState::kFull) {
      continue;
    }
    const double u =
        static_cast<double>(seg.live_blocks) / static_cast<double>(usable_blocks);
    const double age = static_cast<double>(now_seq - seg.write_seq) + 1.0;
    const double score = (1.0 - u) * age / (1.0 + u);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int64_t>(i);
    }
  }
  return best;
}

void RegisterBuiltinCleaners() {
  CleanerRegistry::Register("greedy", [] { return std::make_unique<GreedyCleanerPolicy>(); });
  CleanerRegistry::Register("cost-benefit",
                            [] { return std::make_unique<CostBenefitCleanerPolicy>(); });
}

std::unique_ptr<CleanerPolicy> MakeCleanerPolicy(const std::string& name) {
  const auto* factory = CleanerRegistry::Find(name);
  PFS_CHECK_MSG(factory != nullptr, "unknown cleaner policy");
  return (*factory)();
}

}  // namespace pfs
