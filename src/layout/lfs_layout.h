// Segmented log-structured layout (paper §2: "Currently, we have implemented
// a segmented LFS. This system stores file-system updates to the end of the
// log, and is able to find files through an IFILE. The log-cleaner can be
// replaced and is plugged into the LFS component when the system starts").
//
// On-disk format (all units are file-system blocks within the partition):
//   0                      superblock
//   1 .. 1+C               checkpoint region A   (C blocks)
//   1+C .. 1+2C            checkpoint region B
//   S .. S+N*SEG           N segments of SEG blocks; the last block of each
//                          segment is its summary block
//
// The checkpoint (the IFILE) holds the inode map (ino -> log address of the
// inode's block), the segment usage table, and the log frontier; regions A/B
// alternate with a sequence number, so mount recovers the newer valid one.
//
// The simulator instantiation keeps all metadata in memory and issues the
// same I/O with empty buffers — helper components account for the time data
// movement would take (paper §2).
#ifndef PFS_LAYOUT_LFS_LAYOUT_H_
#define PFS_LAYOUT_LFS_LAYOUT_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "layout/block_map.h"
#include "layout/cleaner.h"
#include "layout/storage_layout.h"
#include "sched/scheduler.h"
#include "sched/sync.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace pfs {

struct LfsConfig {
  uint32_t fs_id = 0;
  uint32_t block_size = kDefaultBlockSize;
  uint32_t segment_blocks = 128;  // 512 KiB segments
  uint32_t max_inodes = 16384;
  // Cleaner watermarks, in free segments.
  uint32_t cleaner_low = 6;
  uint32_t cleaner_high = 12;
  bool enable_cleaner = true;
  // Segments the log may never consume, so the cleaner always has room to
  // relocate live data.
  uint32_t reserved_segments = 2;
  // Real instantiation: metadata is serialized to the device and read back.
  // Simulator: metadata stays in memory; I/O carries empty buffers.
  bool materialize_metadata = false;
};

class LfsLayout final : public StorageLayout, public StatSource {
 public:
  LfsLayout(Scheduler* sched, BlockDev dev, LfsConfig config,
            std::unique_ptr<CleanerPolicy> cleaner_policy);
  ~LfsLayout() override;

  // The smallest partition (in blocks) this layout can be formatted in with
  // `min_segments` of log, computed from the same serialized-geometry sizes
  // the constructor uses. Topology validation calls this before building.
  static uint64_t MinPartitionBlocks(const LfsConfig& config, uint32_t min_segments = 16);

  // StorageLayout
  const char* layout_name() const override { return "lfs"; }
  uint32_t fs_id() const override { return config_.fs_id; }
  uint32_t block_size() const override { return config_.block_size; }
  Task<Status> Format() override;
  Task<Status> Mount() override;
  Task<Status> Unmount() override;
  Task<Status> Sync() override;
  uint64_t root_ino() const override { return root_ino_; }
  Task<Result<uint64_t>> AllocInode(FileType type) override;
  Task<Result<Inode>> ReadInode(uint64_t ino) override;
  Task<Status> WriteInode(const Inode& inode) override;
  // Frees immediately, or defers until in-flight writes for `ino` complete
  // (an unlinked file may still be mid-flush; see busy_inos_).
  Task<Status> FreeInode(uint64_t ino) override;
  Task<Status> ReadFileBlock(uint64_t ino, uint64_t file_block,
                             std::span<std::byte> out) override;
  Task<Status> WriteFileBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) override;
  Task<Status> TruncateBlocks(uint64_t ino, uint64_t from_block) override;
  uint64_t TotalBlocks() const override { return dev_.nblocks(); }
  uint64_t FreeBlocksEstimate() const override;

  // Spawns the cleaner daemon (after Format/Mount, if enabled).
  void Start() override;

  // StatSource
  std::string stat_name() const override;
  std::string StatReport(bool with_histograms) const override;

  // Introspection for tests/benches.
  uint32_t free_segments() const;
  uint64_t log_blocks_written() const { return log_blocks_written_.value(); }
  uint64_t segments_cleaned() const { return segments_cleaned_.value(); }
  uint64_t blocks_relocated() const { return blocks_relocated_.value(); }
  const CleanerPolicy& cleaner_policy() const { return *cleaner_policy_; }
  // Write cost: log blocks written (incl. relocation) per data block written.
  double WriteCost() const;

 private:
  enum class LogKind : uint8_t { kData = 1, kBmapChunk = 2, kInode = 3 };

  struct SummaryEntry {
    LogKind kind;
    uint64_t ino;
    uint64_t aux;  // file block (kData) or chunk index (kBmapChunk)
  };

  struct LogItem {
    LogKind kind;
    uint64_t ino;
    uint64_t aux;
    std::span<const std::byte> data;  // empty in the simulator
  };

  struct Geometry {
    uint64_t checkpoint_blocks;
    uint64_t first_segment_block;
    uint32_t nsegments;
    uint32_t usable_blocks;  // per segment (minus summary)
  };

  // -- log machinery --
  Task<Result<std::vector<uint64_t>>> AppendItems(std::span<const LogItem> items,
                                                  bool for_cleaner);
  Task<Status> CloseCurrentSegment();
  Result<uint32_t> FindFreeSegment();
  void DecLive(uint64_t addr);
  uint64_t SegmentOf(uint64_t addr) const;

  // -- metadata helpers --
  Task<Result<Inode*>> GetInode(uint64_t ino);
  Task<Result<BlockMap*>> GetBmap(uint64_t ino);
  Task<Status> EnsureChunkLoaded(uint64_t ino, BlockMap* bmap, size_t chunk);
  // Appends dirty bmap chunks + the inode for `ino` to the log.
  Task<Status> PersistFileMetadata(uint64_t ino, bool for_cleaner);
  Task<Status> PersistFileMetadataGuarded(uint64_t ino, bool for_cleaner);
  Task<Status> WriteFileBlocksImpl(uint64_t ino, std::span<CacheBlock* const> blocks);
  Task<Status> FreeInodeNow(uint64_t ino);
  // In-flight write tracking: raw Inode*/BlockMap* pointers live across
  // suspension points inside the write paths, so the maps they point into
  // must not lose those entries until the writes retire.
  void BeginInoWrite(uint64_t ino) { ++busy_inos_[ino]; }
  Task<Status> EndInoWrite(uint64_t ino);

  // -- checkpoint --
  Task<Status> WriteCheckpoint();
  Task<Status> ReadCheckpoint();
  std::vector<std::byte> SerializeCheckpoint() const;
  Status DeserializeCheckpoint(std::span<const std::byte> bytes);

  // -- cleaner --
  Task<> CleanerLoop();
  Task<Status> CleanSegment(uint32_t seg);
  Task<Status> LoadSummaryIfNeeded(uint32_t seg);
  Task<bool> IsLive(const SummaryEntry& entry, uint64_t addr);

  Scheduler* sched_;
  BlockDev dev_;
  LfsConfig config_;
  std::unique_ptr<CleanerPolicy> cleaner_policy_;
  Geometry geo_{};
  bool mounted_ = false;
  bool cleaner_started_ = false;

  // IFILE state.
  std::vector<uint64_t> imap_;  // ino -> inode log address (kNullAddr = free)
  std::vector<SegmentInfo> segments_;
  std::vector<std::vector<SummaryEntry>> summaries_;  // per segment, in memory
  std::unordered_set<uint32_t> summary_loaded_;
  uint64_t checkpoint_seq_ = 0;
  uint64_t root_ino_ = 0;
  uint64_t next_ino_hint_ = 1;

  // Log frontier.
  uint32_t cur_seg_ = 0;
  uint32_t cur_off_ = 0;
  uint64_t write_seq_ = 0;
  Mutex log_mutex_;
  Event segments_freed_;   // cleaner -> blocked writers
  Event cleaner_wakeup_;

  // In-memory caches (complete in simulator mode; write-through in real mode).
  std::unordered_map<uint64_t, Inode> inode_cache_;
  std::unordered_map<uint64_t, BlockMap> bmap_cache_;
  std::unordered_map<uint64_t, int> busy_inos_;     // in-flight write counts
  std::unordered_set<uint64_t> free_pending_;       // unlinked while busy

  // Stats.
  Counter log_blocks_written_;
  Counter data_blocks_written_;
  Counter segments_cleaned_;
  Counter blocks_relocated_;
  Counter cleaner_reads_;
  Histogram cleaned_utilization_{0, 1.0, 20};
};

}  // namespace pfs

#endif  // PFS_LAYOUT_LFS_LAYOUT_H_
