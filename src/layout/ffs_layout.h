// FFS-lite: an update-in-place cylinder-group layout, the second concrete
// storage layout (paper §2: "To implement other storage-layouts (such as a
// Unix FFS ...) a new derived storage-layout class needs to be written").
// It shares the inode/block-map machinery with the LFS, differing in
// allocation: bitmapped blocks and a fixed inode table per group, data
// written back in place.
//
// On-disk format (blocks within the partition):
//   0                         superblock
//   per group g at G(g):      inode bitmap | block bitmap | inode table | data
//
// Bitmaps and inode tables are held in memory and written back on Sync or
// Unmount (crash consistency is out of scope, as in the paper's PFS).
#ifndef PFS_LAYOUT_FFS_LAYOUT_H_
#define PFS_LAYOUT_FFS_LAYOUT_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "layout/block_map.h"
#include "layout/storage_layout.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace pfs {

struct FfsConfig {
  uint32_t fs_id = 0;
  uint32_t block_size = kDefaultBlockSize;
  uint32_t blocks_per_group = 2048;  // 8 MiB groups with 4 KB blocks
  uint32_t inodes_per_group = 256;
  bool materialize_metadata = false;
};

class FfsLayout final : public StorageLayout, public StatSource {
 public:
  FfsLayout(Scheduler* sched, BlockDev dev, FfsConfig config);

  // The smallest partition (in blocks) that yields at least one cylinder
  // group: the superblock plus one full group.
  static uint64_t MinPartitionBlocks(const FfsConfig& config) {
    return 1 + config.blocks_per_group;
  }

  const char* layout_name() const override { return "ffs"; }
  uint32_t fs_id() const override { return config_.fs_id; }
  uint32_t block_size() const override { return config_.block_size; }
  Task<Status> Format() override;
  Task<Status> Mount() override;
  Task<Status> Unmount() override;
  Task<Status> Sync() override;
  uint64_t root_ino() const override { return root_ino_; }
  Task<Result<uint64_t>> AllocInode(FileType type) override;
  Task<Result<Inode>> ReadInode(uint64_t ino) override;
  Task<Status> WriteInode(const Inode& inode) override;
  Task<Status> FreeInode(uint64_t ino) override;
  Task<Status> ReadFileBlock(uint64_t ino, uint64_t file_block,
                             std::span<std::byte> out) override;
  Task<Status> WriteFileBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) override;
  Task<Status> TruncateBlocks(uint64_t ino, uint64_t from_block) override;
  uint64_t TotalBlocks() const override { return dev_.nblocks(); }
  uint64_t FreeBlocksEstimate() const override { return free_blocks_; }

  // StatSource
  std::string stat_name() const override { return "ffs.fs" + std::to_string(config_.fs_id); }
  std::string StatReport(bool with_histograms) const override;

  uint32_t group_count() const { return ngroups_; }
  uint64_t blocks_written() const { return blocks_written_.value(); }

 private:
  struct Group {
    std::vector<bool> inode_used;
    std::vector<bool> block_used;  // data-area blocks only
    bool dirty = false;            // bitmap needs write-back
  };

  uint32_t GroupOfIno(uint64_t ino) const {
    return static_cast<uint32_t>((ino - 1) / config_.inodes_per_group);
  }
  uint64_t GroupBase(uint32_t group) const {
    return 1 + static_cast<uint64_t>(group) * config_.blocks_per_group;
  }
  uint64_t DataBase(uint32_t group) const { return GroupBase(group) + 2 + itable_blocks_; }
  uint32_t DataBlocksPerGroup() const { return config_.blocks_per_group - 2 - itable_blocks_; }
  uint64_t InodeTableBlock(uint64_t ino) const;

  Result<uint64_t> AllocDataBlock(uint32_t preferred_group);
  Task<Status> WriteFileBlocksImpl(uint64_t ino, std::span<CacheBlock* const> blocks);
  Task<Status> FreeInodeNow(uint64_t ino);
  Task<Status> EndInoWrite(uint64_t ino);
  void FreeDataBlock(uint64_t addr);
  Task<Status> LoadBmapChunk(uint64_t ino, BlockMap* bmap, size_t chunk);
  Task<Result<Inode*>> GetInode(uint64_t ino);
  Task<Status> PersistInode(uint64_t ino);
  Task<Status> PersistDirtyChunks(uint64_t ino);

  Scheduler* sched_;
  BlockDev dev_;
  FfsConfig config_;
  uint32_t ngroups_ = 0;
  uint32_t itable_blocks_ = 0;
  uint32_t inodes_per_block_ = 0;
  uint64_t free_blocks_ = 0;
  uint64_t root_ino_ = 0;
  uint32_t next_group_hint_ = 0;
  bool mounted_ = false;

  std::vector<Group> groups_;
  std::unordered_map<uint64_t, Inode> inode_cache_;
  std::unordered_map<uint64_t, BlockMap> bmap_cache_;
  std::unordered_map<uint64_t, int> busy_inos_;
  std::unordered_set<uint64_t> free_pending_;

  Counter blocks_written_;
  Counter blocks_read_;
  Counter inode_writes_;
};

}  // namespace pfs

#endif  // PFS_LAYOUT_FFS_LAYOUT_H_
