// Shared storage-layout types: file types, disk addressing, and the
// block-addressed device adapter over a (sector-addressed) disk driver.
#ifndef PFS_LAYOUT_TYPES_H_
#define PFS_LAYOUT_TYPES_H_

#include <cstdint>
#include <span>

#include "core/result.h"
#include "core/units.h"
#include "driver/disk_driver.h"

namespace pfs {

enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
  kMultimedia = 4,  // continuous-media file with its own active thread
};

const char* FileTypeName(FileType t);

// Disk addresses are file-system-block indices within the layout's
// partition. 0 is the superblock, so 0 doubles as the null address.
inline constexpr uint64_t kNullAddr = 0;

// A partition of a disk, in file-system blocks, with gather/scatter helpers.
// Spans may be empty: the simulated driver accounts time from the sector
// count alone (the paper's "no real data is moved" rule).
class BlockDev {
 public:
  BlockDev(DiskDriver* driver, uint32_t block_size, uint64_t start_block, uint64_t nblocks)
      : driver_(driver),
        block_size_(block_size),
        start_block_(start_block),
        nblocks_(nblocks),
        sectors_per_block_(block_size / driver->sector_bytes()) {
    PFS_CHECK(block_size % driver->sector_bytes() == 0);
    PFS_CHECK((start_block + nblocks) * sectors_per_block_ <= driver->total_sectors());
  }

  Task<Status> Read(uint64_t block_addr, std::span<std::byte> out) {
    PFS_CHECK(block_addr < nblocks_);
    co_return co_await driver_->Read((start_block_ + block_addr) * sectors_per_block_,
                                     sectors_per_block_, out);
  }

  Task<Status> Write(uint64_t block_addr, std::span<const std::byte> in) {
    PFS_CHECK(block_addr < nblocks_);
    co_return co_await driver_->Write((start_block_ + block_addr) * sectors_per_block_,
                                      sectors_per_block_, in);
  }

  // One contiguous multi-block transfer — how the log writes whole segments.
  Task<Status> WriteRun(uint64_t block_addr, uint32_t count, std::span<const std::byte> in) {
    PFS_CHECK(block_addr + count <= nblocks_);
    co_return co_await driver_->Write((start_block_ + block_addr) * sectors_per_block_,
                                      count * sectors_per_block_, in);
  }

  Task<Status> ReadRun(uint64_t block_addr, uint32_t count, std::span<std::byte> out) {
    PFS_CHECK(block_addr + count <= nblocks_);
    co_return co_await driver_->Read((start_block_ + block_addr) * sectors_per_block_,
                                     count * sectors_per_block_, out);
  }

  uint64_t nblocks() const { return nblocks_; }
  uint32_t block_size() const { return block_size_; }
  DiskDriver* driver() { return driver_; }

 private:
  DiskDriver* driver_;
  uint32_t block_size_;
  uint64_t start_block_;
  uint64_t nblocks_;
  uint32_t sectors_per_block_;
};

}  // namespace pfs

#endif  // PFS_LAYOUT_TYPES_H_
