// Shared storage-layout types: file types, disk addressing, and the
// block-addressed adapter over a (sector-addressed) BlockDevice.
#ifndef PFS_LAYOUT_TYPES_H_
#define PFS_LAYOUT_TYPES_H_

#include <cstdint>
#include <span>

#include "core/result.h"
#include "core/units.h"
#include "volume/block_device.h"

namespace pfs {

enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
  kMultimedia = 4,  // continuous-media file with its own active thread
};

const char* FileTypeName(FileType t);

// Disk addresses are file-system-block indices within the layout's
// partition. 0 is the superblock, so 0 doubles as the null address.
inline constexpr uint64_t kNullAddr = 0;

// The layouts' view of their storage: a BlockDevice addressed in file-system
// blocks, with gather/scatter helpers. The device is a volume — one disk's
// partition slice, or a striped/mirrored/concatenated composition; the
// layout cannot tell the difference (that is the point). Spans may be empty:
// the simulated backend accounts time from the sector count alone (the
// paper's "no real data is moved" rule).
class BlockDev {
 public:
  BlockDev(BlockDevice* device, uint32_t block_size)
      : device_(device),
        block_size_(block_size),
        sectors_per_block_(SectorsPerBlock(device, block_size)),
        nblocks_(device->total_sectors() / sectors_per_block_) {}

  Task<Status> Read(uint64_t block_addr, std::span<std::byte> out) {
    PFS_CHECK(block_addr < nblocks_);
    co_return co_await device_->Read(block_addr * sectors_per_block_, sectors_per_block_,
                                     out);
  }

  Task<Status> Write(uint64_t block_addr, std::span<const std::byte> in) {
    PFS_CHECK(block_addr < nblocks_);
    co_return co_await device_->Write(block_addr * sectors_per_block_, sectors_per_block_,
                                      in);
  }

  // One contiguous multi-block transfer — how the log writes whole segments.
  Task<Status> WriteRun(uint64_t block_addr, uint32_t count, std::span<const std::byte> in) {
    PFS_CHECK(block_addr + count <= nblocks_);
    co_return co_await device_->Write(block_addr * sectors_per_block_,
                                      count * sectors_per_block_, in);
  }

  Task<Status> ReadRun(uint64_t block_addr, uint32_t count, std::span<std::byte> out) {
    PFS_CHECK(block_addr + count <= nblocks_);
    co_return co_await device_->Read(block_addr * sectors_per_block_,
                                     count * sectors_per_block_, out);
  }

  uint64_t nblocks() const { return nblocks_; }
  uint32_t block_size() const { return block_size_; }
  BlockDevice* device() { return device_; }

 private:
  // Checked before any division, so a block size that is zero or not a
  // multiple of the sector fails with a message instead of a SIGFPE in the
  // initializer list.
  static uint32_t SectorsPerBlock(BlockDevice* device, uint32_t block_size) {
    PFS_CHECK(device->sector_bytes() != 0);
    PFS_CHECK(block_size != 0 && block_size % device->sector_bytes() == 0);
    return block_size / device->sector_bytes();
  }

  BlockDevice* device_;
  uint32_t block_size_;
  uint32_t sectors_per_block_;
  uint64_t nblocks_;
};

}  // namespace pfs

#endif  // PFS_LAYOUT_TYPES_H_
