#include "layout/lfs_layout.h"

#include <algorithm>
#include <cstring>

#include "core/log.h"
#include "system/component_registry.h"

namespace pfs {
namespace {

constexpr uint64_t kSuperMagic = 0x5046535355505231ULL;  // "PFSSUPR1"
constexpr uint64_t kCkptMagic = 0x504653434b505431ULL;   // "PFSCKPT1"
constexpr uint32_t kVersion = 1;

// Serialized checkpoint-region size for a partition with `est_segments`
// segments — the single source of truth for the constructor's geometry and
// for MinPartitionBlocks.
uint64_t CheckpointBlocksFor(const LfsConfig& config, uint64_t est_segments) {
  const uint64_t header_bytes = 96;
  const uint64_t imap_bytes = static_cast<uint64_t>(config.max_inodes) * 8;
  const uint64_t usage_bytes = est_segments * 13;
  const uint64_t summary_bytes = static_cast<uint64_t>(config.segment_blocks) * 17 + 4;
  return CeilDiv(header_bytes + imap_bytes + usage_bytes + summary_bytes,
                 config.block_size);
}

}  // namespace

LfsLayout::LfsLayout(Scheduler* sched, BlockDev dev, LfsConfig config,
                     std::unique_ptr<CleanerPolicy> cleaner_policy)
    : sched_(sched),
      dev_(std::move(dev)),
      config_(config),
      cleaner_policy_(std::move(cleaner_policy)),
      log_mutex_(sched),
      segments_freed_(sched),
      cleaner_wakeup_(sched) {
  PFS_CHECK(cleaner_policy_ != nullptr);
  PFS_CHECK(config_.segment_blocks >= 4);
  PFS_CHECK(config_.block_size == dev_.block_size());

  // Geometry. The checkpoint region is sized from an upper bound on the
  // segment count, so Format and Mount always agree.
  geo_.checkpoint_blocks =
      CheckpointBlocksFor(config_, dev_.nblocks() / config_.segment_blocks);
  geo_.first_segment_block = 1 + 2 * geo_.checkpoint_blocks;
  PFS_CHECK_MSG(dev_.nblocks() > geo_.first_segment_block + 2 * config_.segment_blocks,
                "partition too small for LFS");
  geo_.nsegments = static_cast<uint32_t>((dev_.nblocks() - geo_.first_segment_block) /
                                         config_.segment_blocks);
  geo_.usable_blocks = config_.segment_blocks - 1;  // last block = summary
}

LfsLayout::~LfsLayout() = default;

uint64_t LfsLayout::MinPartitionBlocks(const LfsConfig& config, uint32_t min_segments) {
  // The checkpoint size depends on the partition size through the estimated
  // segment count; two fixed-point rounds converge for any realistic config.
  uint64_t nblocks = static_cast<uint64_t>(min_segments) * config.segment_blocks;
  for (int i = 0; i < 2; ++i) {
    const uint64_t ckpt = CheckpointBlocksFor(config, nblocks / config.segment_blocks);
    nblocks = 1 + 2 * ckpt + static_cast<uint64_t>(min_segments) * config.segment_blocks;
  }
  return nblocks;
}

uint64_t LfsLayout::SegmentOf(uint64_t addr) const {
  PFS_CHECK(addr >= geo_.first_segment_block);
  return (addr - geo_.first_segment_block) / config_.segment_blocks;
}

void LfsLayout::DecLive(uint64_t addr) {
  const uint64_t seg = SegmentOf(addr);
  SegmentInfo& info = segments_[seg];
  if (info.live_blocks > 0) {
    --info.live_blocks;
  }
}

uint32_t LfsLayout::free_segments() const {
  uint32_t n = 0;
  for (const SegmentInfo& s : segments_) {
    if (s.state == SegmentState::kFree) {
      ++n;
    }
  }
  return n;
}

uint64_t LfsLayout::FreeBlocksEstimate() const {
  return static_cast<uint64_t>(free_segments()) * geo_.usable_blocks +
         (geo_.usable_blocks - cur_off_);
}

double LfsLayout::WriteCost() const {
  const uint64_t data = data_blocks_written_.value();
  if (data == 0) {
    return 0.0;
  }
  return static_cast<double>(log_blocks_written_.value()) / static_cast<double>(data);
}

Result<uint32_t> LfsLayout::FindFreeSegment() {
  for (uint32_t i = 0; i < geo_.nsegments; ++i) {
    const uint32_t seg = (cur_seg_ + 1 + i) % geo_.nsegments;
    if (segments_[seg].state == SegmentState::kFree) {
      return seg;
    }
  }
  return Status(ErrorCode::kNoSpace, "log full: no free segment");
}

Task<Status> LfsLayout::CloseCurrentSegment() {
  // Serialize and write the summary block (last block of the segment), then
  // move the frontier to a fresh segment.
  const std::vector<SummaryEntry>& entries = summaries_[cur_seg_];
  std::vector<std::byte> buf;
  std::span<const std::byte> payload;
  if (config_.materialize_metadata) {
    Serializer s(&buf);
    s.PutU32(static_cast<uint32_t>(entries.size()));
    for (const SummaryEntry& e : entries) {
      s.PutU8(static_cast<uint8_t>(e.kind));
      s.PutU64(e.ino);
      s.PutU64(e.aux);
    }
    buf.resize(config_.block_size);
    payload = buf;
  }
  const uint64_t summary_addr = geo_.first_segment_block +
                                static_cast<uint64_t>(cur_seg_) * config_.segment_blocks +
                                geo_.usable_blocks;
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(summary_addr, payload));
  log_blocks_written_.Inc();
  segments_[cur_seg_].state = SegmentState::kFull;

  PFS_CO_ASSIGN_OR_RETURN(const uint32_t next, FindFreeSegment());
  cur_seg_ = next;
  cur_off_ = 0;
  segments_[next].state = SegmentState::kActive;
  segments_[next].live_blocks = 0;
  summaries_[next].clear();
  summary_loaded_.insert(next);
  co_return OkStatus();
}

Task<Result<std::vector<uint64_t>>> LfsLayout::AppendItems(std::span<const LogItem> items,
                                                           bool for_cleaner) {
  PFS_CHECK(mounted_);
  if (items.empty()) {
    co_return std::vector<uint64_t>{};
  }
  for (;;) {
    Mutex::Guard guard = co_await log_mutex_.Lock();

    // Space admission: regular writers may not eat into the cleaner's
    // reserve; the cleaner itself may.
    const uint64_t reserve = for_cleaner ? 0 : config_.reserved_segments;
    const uint64_t free_segs = free_segments();
    const uint64_t usable_free =
        (free_segs > reserve ? (free_segs - reserve) * geo_.usable_blocks : 0) +
        (geo_.usable_blocks - cur_off_);
    if (usable_free < items.size()) {
      guard.Release();
      if (!config_.enable_cleaner || !cleaner_started_) {
        co_return Status(ErrorCode::kNoSpace, "log full and no cleaner running");
      }
      cleaner_wakeup_.Signal();
      co_await segments_freed_.Wait();
      continue;
    }

    std::vector<uint64_t> addrs;
    addrs.reserve(items.size());
    size_t done = 0;
    while (done < items.size()) {
      if (cur_off_ >= geo_.usable_blocks) {
        PFS_CO_RETURN_IF_ERROR(co_await CloseCurrentSegment());
      }
      const uint32_t space = geo_.usable_blocks - cur_off_;
      const uint32_t n =
          static_cast<uint32_t>(std::min<uint64_t>(space, items.size() - done));
      const uint64_t start_addr = geo_.first_segment_block +
                                  static_cast<uint64_t>(cur_seg_) * config_.segment_blocks +
                                  cur_off_;
      std::vector<std::byte> staging;
      std::span<const std::byte> payload;
      if (config_.materialize_metadata) {
        staging.assign(static_cast<size_t>(n) * config_.block_size, std::byte{0});
        for (uint32_t i = 0; i < n; ++i) {
          const LogItem& item = items[done + i];
          if (!item.data.empty()) {
            std::memcpy(staging.data() + static_cast<size_t>(i) * config_.block_size,
                        item.data.data(),
                        std::min<size_t>(item.data.size(), config_.block_size));
          }
        }
        payload = staging;
      }
      PFS_CO_RETURN_IF_ERROR(co_await dev_.WriteRun(start_addr, n, payload));
      for (uint32_t i = 0; i < n; ++i) {
        const LogItem& item = items[done + i];
        addrs.push_back(start_addr + i);
        summaries_[cur_seg_].push_back(SummaryEntry{item.kind, item.ino, item.aux});
      }
      segments_[cur_seg_].live_blocks += n;
      segments_[cur_seg_].write_seq = ++write_seq_;
      log_blocks_written_.Inc(n);
      cur_off_ += n;
      done += n;
    }
    guard.Release();
    if (config_.enable_cleaner && cleaner_started_ && free_segments() < config_.cleaner_low) {
      cleaner_wakeup_.Signal();
    }
    co_return addrs;
  }
}

// -- metadata helpers --------------------------------------------------------

Task<Result<Inode*>> LfsLayout::GetInode(uint64_t ino) {
  if (ino == 0 || ino >= imap_.size()) {
    co_return Status(ErrorCode::kInvalidArgument, "bad inode number");
  }
  auto it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    co_return &it->second;
  }
  const uint64_t addr = imap_[ino];
  if (addr == kNullAddr) {
    co_return Status(ErrorCode::kNotFound, "inode not allocated");
  }
  PFS_CHECK_MSG(config_.materialize_metadata,
                "simulator inode cache lost an allocated inode");
  std::vector<std::byte> buf(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(addr, buf));
  Deserializer d(buf);
  PFS_CO_ASSIGN_OR_RETURN(Inode inode, Inode::Deserialize(&d));
  if (inode.ino != ino) {
    co_return Status(ErrorCode::kCorrupt, "inode block mismatch");
  }
  auto [pos, inserted] = inode_cache_.emplace(ino, inode);
  PFS_CHECK(inserted);
  co_return &pos->second;
}

Task<Result<BlockMap*>> LfsLayout::GetBmap(uint64_t ino) {
  auto it = bmap_cache_.find(ino);
  if (it != bmap_cache_.end()) {
    co_return &it->second;
  }
  auto [pos, inserted] = bmap_cache_.emplace(ino, BlockMap(config_.block_size));
  PFS_CHECK(inserted);
  co_return &pos->second;
}

Task<Status> LfsLayout::EnsureChunkLoaded(uint64_t ino, BlockMap* bmap, size_t chunk) {
  if (chunk >= Inode::kBmapChunks) {
    co_return Status(ErrorCode::kOutOfRange, "file block beyond maximum size");
  }
  if (bmap->ChunkLoaded(chunk)) {
    co_return OkStatus();
  }
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  const uint64_t addr = inode->bmap[chunk];
  if (addr == kNullAddr) {
    co_return OkStatus();  // all holes
  }
  PFS_CHECK_MSG(config_.materialize_metadata, "simulator bmap cache lost a chunk");
  std::vector<std::byte> buf(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(addr, buf));
  Deserializer d(buf);
  co_return bmap->DeserializeChunk(chunk, &d);
}

Task<Status> LfsLayout::PersistFileMetadata(uint64_t ino, bool for_cleaner) {
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  PFS_CO_ASSIGN_OR_RETURN(BlockMap * bmap, co_await GetBmap(ino));

  // Dirty block-map chunks first, so the inode we append points at them.
  std::vector<size_t> dirty_chunks;
  for (size_t chunk = 0; chunk < bmap->chunk_count(); ++chunk) {
    if (bmap->ChunkDirty(chunk)) {
      dirty_chunks.push_back(chunk);
    }
  }
  std::vector<std::vector<std::byte>> chunk_bufs;
  std::vector<LogItem> items;
  for (size_t chunk : dirty_chunks) {
    std::span<const std::byte> payload;
    if (config_.materialize_metadata) {
      chunk_bufs.emplace_back();
      Serializer s(&chunk_bufs.back());
      bmap->SerializeChunk(chunk, &s);
      chunk_bufs.back().resize(config_.block_size);
      payload = chunk_bufs.back();
    }
    items.push_back(LogItem{LogKind::kBmapChunk, ino, chunk, payload});
  }
  if (!items.empty()) {
    PFS_CO_ASSIGN_OR_RETURN(std::vector<uint64_t> addrs,
                            co_await AppendItems(items, for_cleaner));
    for (size_t i = 0; i < dirty_chunks.size(); ++i) {
      const size_t chunk = dirty_chunks[i];
      if (inode->bmap[chunk] != kNullAddr) {
        DecLive(inode->bmap[chunk]);
      }
      inode->bmap[chunk] = addrs[i];
      bmap->MarkChunkClean(chunk);
    }
  }

  // Then the inode itself.
  std::vector<std::byte> inode_buf;
  std::span<const std::byte> inode_payload;
  if (config_.materialize_metadata) {
    Serializer s(&inode_buf);
    inode->Serialize(&s);
    inode_buf.resize(config_.block_size);
    inode_payload = inode_buf;
  }
  const LogItem inode_item{LogKind::kInode, ino, 0, inode_payload};
  PFS_CO_ASSIGN_OR_RETURN(std::vector<uint64_t> iaddrs,
                          co_await AppendItems(std::span(&inode_item, 1), for_cleaner));
  if (imap_[ino] != kNullAddr) {
    DecLive(imap_[ino]);
  }
  imap_[ino] = iaddrs[0];
  co_return OkStatus();
}

// -- StorageLayout interface -------------------------------------------------

Task<Result<uint64_t>> LfsLayout::AllocInode(FileType type) {
  PFS_ASSERT_SHARD();
  PFS_CHECK(mounted_);
  for (uint64_t i = 0; i < imap_.size(); ++i) {
    const uint64_t ino = 1 + (next_ino_hint_ - 1 + i) % (imap_.size() - 1);
    if (imap_[ino] == kNullAddr && !inode_cache_.contains(ino)) {
      next_ino_hint_ = ino + 1;
      Inode inode;
      inode.ino = ino;
      inode.type = type;
      inode.nlink = 1;
      inode.mtime_ns = sched_->Now().nanos();
      inode_cache_.emplace(ino, inode);
      bmap_cache_.emplace(ino, BlockMap(config_.block_size));
      co_return ino;
    }
  }
  co_return Status(ErrorCode::kNoSpace, "inode table full");
}

Task<Result<Inode>> LfsLayout::ReadInode(uint64_t ino) {
  PFS_ASSERT_SHARD();
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  co_return *inode;
}

Task<Status> LfsLayout::WriteInode(const Inode& inode) {
  PFS_ASSERT_SHARD();
  PFS_CHECK(mounted_);
  auto it = inode_cache_.find(inode.ino);
  if (it == inode_cache_.end()) {
    co_return Status(ErrorCode::kNotFound, "WriteInode of unknown inode");
  }
  // Preserve the layout-owned block-map pointers; callers update attributes.
  const auto bmap_ptrs = it->second.bmap;
  it->second = inode;
  it->second.bmap = bmap_ptrs;
  co_return OkStatus();
}

Task<Status> LfsLayout::FreeInodeNow(uint64_t ino) {
  PFS_CO_RETURN_IF_ERROR(co_await TruncateBlocks(ino, 0));
  if (imap_[ino] != kNullAddr) {
    DecLive(imap_[ino]);
    imap_[ino] = kNullAddr;
  }
  inode_cache_.erase(ino);
  bmap_cache_.erase(ino);
  co_return OkStatus();
}

Task<Status> LfsLayout::FreeInode(uint64_t ino) {
  PFS_ASSERT_SHARD();
  if (busy_inos_.contains(ino)) {
    // A flush for this file is suspended mid-append and holds pointers into
    // the inode/bmap caches. Defer the free until it retires (Unix unlink
    // semantics at the layout level).
    free_pending_.insert(ino);
    co_return OkStatus();
  }
  co_return co_await FreeInodeNow(ino);
}

Task<Status> LfsLayout::EndInoWrite(uint64_t ino) {
  auto it = busy_inos_.find(ino);
  PFS_CHECK(it != busy_inos_.end() && it->second > 0);
  if (--it->second == 0) {
    busy_inos_.erase(it);
    if (free_pending_.erase(ino) > 0) {
      co_return co_await FreeInodeNow(ino);
    }
  }
  co_return OkStatus();
}

Task<Status> LfsLayout::ReadFileBlock(uint64_t ino, uint64_t file_block,
                                      std::span<std::byte> out) {
  PFS_ASSERT_SHARD();
  PFS_CO_ASSIGN_OR_RETURN(BlockMap * bmap, co_await GetBmap(ino));
  PFS_CO_RETURN_IF_ERROR(
      co_await EnsureChunkLoaded(ino, bmap, file_block / bmap->entries_per_chunk()));
  const uint64_t addr = bmap->Get(file_block);
  if (addr == kNullAddr) {
    // Hole: reads as zeroes, no I/O.
    if (!out.empty()) {
      std::memset(out.data(), 0, out.size());
    }
    co_return OkStatus();
  }
  co_return co_await dev_.Read(addr, out);
}

Task<Status> LfsLayout::WriteFileBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) {
  PFS_ASSERT_SHARD();
  if (blocks.empty()) {
    co_return OkStatus();
  }
  BeginInoWrite(ino);
  const Status status = co_await WriteFileBlocksImpl(ino, blocks);
  PFS_CO_RETURN_IF_ERROR(co_await EndInoWrite(ino));
  co_return status;
}

Task<Status> LfsLayout::WriteFileBlocksImpl(uint64_t ino, std::span<CacheBlock* const> blocks) {
  PFS_CO_ASSIGN_OR_RETURN(BlockMap * bmap, co_await GetBmap(ino));
  std::vector<LogItem> items;
  items.reserve(blocks.size());
  for (const CacheBlock* b : blocks) {
    PFS_CHECK(b->id.ino == ino);
    PFS_CO_RETURN_IF_ERROR(
        co_await EnsureChunkLoaded(ino, bmap, b->id.block_no / bmap->entries_per_chunk()));
    items.push_back(LogItem{LogKind::kData, ino, b->id.block_no,
                            std::span<const std::byte>(b->data.data(), b->data.size())});
  }
  PFS_CO_ASSIGN_OR_RETURN(std::vector<uint64_t> addrs,
                          co_await AppendItems(items, /*for_cleaner=*/false));
  for (size_t i = 0; i < blocks.size(); ++i) {
    const uint64_t old = bmap->Set(blocks[i]->id.block_no, addrs[i]);
    if (old != kNullAddr) {
      DecLive(old);
    }
  }
  data_blocks_written_.Inc(blocks.size());
  PFS_CO_RETURN_IF_ERROR(co_await PersistFileMetadata(ino, /*for_cleaner=*/false));
  co_return OkStatus();
}

Task<Status> LfsLayout::PersistFileMetadataGuarded(uint64_t ino, bool for_cleaner) {
  BeginInoWrite(ino);
  const Status status = co_await PersistFileMetadata(ino, for_cleaner);
  PFS_CO_RETURN_IF_ERROR(co_await EndInoWrite(ino));
  co_return status;
}

Task<Status> LfsLayout::TruncateBlocks(uint64_t ino, uint64_t from_block) {
  PFS_ASSERT_SHARD();
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  PFS_CO_ASSIGN_OR_RETURN(BlockMap * bmap, co_await GetBmap(ino));
  // Load every chunk that may contain mappings to free.
  for (size_t chunk = from_block / bmap->entries_per_chunk(); chunk < Inode::kBmapChunks;
       ++chunk) {
    if (inode->bmap[chunk] != kNullAddr) {
      PFS_CO_RETURN_IF_ERROR(co_await EnsureChunkLoaded(ino, bmap, chunk));
    }
  }
  for (uint64_t addr : bmap->TruncateFrom(from_block)) {
    DecLive(addr);
  }
  // Chunks entirely above the new end lose their on-disk block too.
  const size_t first_dead_chunk = CeilDiv(from_block, bmap->entries_per_chunk());
  for (size_t chunk = first_dead_chunk; chunk < Inode::kBmapChunks; ++chunk) {
    if (inode->bmap[chunk] != kNullAddr) {
      DecLive(inode->bmap[chunk]);
      inode->bmap[chunk] = kNullAddr;
      bmap->MarkChunkClean(chunk);
    }
  }
  co_return OkStatus();
}

// -- lifecycle ----------------------------------------------------------------

Task<Status> LfsLayout::Format() {
  PFS_ASSERT_SHARD();
  imap_.assign(config_.max_inodes, kNullAddr);
  segments_.assign(geo_.nsegments, SegmentInfo{});
  summaries_.assign(geo_.nsegments, {});
  summary_loaded_.clear();
  inode_cache_.clear();
  bmap_cache_.clear();
  checkpoint_seq_ = 0;
  write_seq_ = 0;
  next_ino_hint_ = 1;
  cur_seg_ = 0;
  cur_off_ = 0;
  segments_[0].state = SegmentState::kActive;
  summary_loaded_.insert(0);
  mounted_ = true;

  // Superblock.
  std::vector<std::byte> buf;
  std::span<const std::byte> payload;
  if (config_.materialize_metadata) {
    Serializer s(&buf);
    s.PutU64(kSuperMagic);
    s.PutU32(kVersion);
    s.PutU32(config_.block_size);
    s.PutU32(config_.segment_blocks);
    s.PutU32(config_.max_inodes);
    s.PutU32(geo_.nsegments);
    s.PutU64(geo_.checkpoint_blocks);
    s.PutU64(geo_.first_segment_block);
    buf.resize(config_.block_size);
    payload = buf;
  }
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(0, payload));

  // Root directory.
  PFS_CO_ASSIGN_OR_RETURN(root_ino_, co_await AllocInode(FileType::kDirectory));
  PFS_CO_RETURN_IF_ERROR(co_await PersistFileMetadata(root_ino_, false));

  co_return co_await WriteCheckpoint();
}

std::vector<std::byte> LfsLayout::SerializeCheckpoint() const {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutU64(kCkptMagic);
  s.PutU64(checkpoint_seq_);
  s.PutU32(cur_seg_);
  s.PutU32(cur_off_);
  s.PutU64(write_seq_);
  s.PutU64(root_ino_);
  s.PutU64(next_ino_hint_);
  s.PutU32(geo_.nsegments);
  s.PutU32(config_.max_inodes);
  for (uint64_t addr : imap_) {
    s.PutU64(addr);
  }
  for (const SegmentInfo& seg : segments_) {
    s.PutU8(static_cast<uint8_t>(seg.state));
    s.PutU32(seg.live_blocks);
    s.PutU64(seg.write_seq);
  }
  const std::vector<SummaryEntry>& cur = summaries_[cur_seg_];
  s.PutU32(static_cast<uint32_t>(cur.size()));
  for (const SummaryEntry& e : cur) {
    s.PutU8(static_cast<uint8_t>(e.kind));
    s.PutU64(e.ino);
    s.PutU64(e.aux);
  }
  buf.resize(geo_.checkpoint_blocks * config_.block_size);
  return buf;
}

Status LfsLayout::DeserializeCheckpoint(std::span<const std::byte> bytes) {
  Deserializer d(bytes);
  PFS_ASSIGN_OR_RETURN(const uint64_t magic, d.TakeU64());
  if (magic != kCkptMagic) {
    return Status(ErrorCode::kCorrupt, "bad checkpoint magic");
  }
  PFS_ASSIGN_OR_RETURN(checkpoint_seq_, d.TakeU64());
  PFS_ASSIGN_OR_RETURN(cur_seg_, d.TakeU32());
  PFS_ASSIGN_OR_RETURN(cur_off_, d.TakeU32());
  PFS_ASSIGN_OR_RETURN(write_seq_, d.TakeU64());
  PFS_ASSIGN_OR_RETURN(root_ino_, d.TakeU64());
  PFS_ASSIGN_OR_RETURN(next_ino_hint_, d.TakeU64());
  PFS_ASSIGN_OR_RETURN(const uint32_t nsegments, d.TakeU32());
  PFS_ASSIGN_OR_RETURN(const uint32_t max_inodes, d.TakeU32());
  if (nsegments != geo_.nsegments || max_inodes != config_.max_inodes) {
    return Status(ErrorCode::kCorrupt, "checkpoint geometry mismatch");
  }
  imap_.assign(config_.max_inodes, kNullAddr);
  for (uint64_t& addr : imap_) {
    PFS_ASSIGN_OR_RETURN(addr, d.TakeU64());
  }
  segments_.assign(geo_.nsegments, SegmentInfo{});
  for (SegmentInfo& seg : segments_) {
    PFS_ASSIGN_OR_RETURN(const uint8_t state, d.TakeU8());
    seg.state = static_cast<SegmentState>(state);
    PFS_ASSIGN_OR_RETURN(seg.live_blocks, d.TakeU32());
    PFS_ASSIGN_OR_RETURN(seg.write_seq, d.TakeU64());
  }
  summaries_.assign(geo_.nsegments, {});
  summary_loaded_.clear();
  PFS_ASSIGN_OR_RETURN(const uint32_t count, d.TakeU32());
  std::vector<SummaryEntry>& cur = summaries_[cur_seg_];
  cur.clear();
  for (uint32_t i = 0; i < count; ++i) {
    SummaryEntry e;
    PFS_ASSIGN_OR_RETURN(const uint8_t kind, d.TakeU8());
    e.kind = static_cast<LogKind>(kind);
    PFS_ASSIGN_OR_RETURN(e.ino, d.TakeU64());
    PFS_ASSIGN_OR_RETURN(e.aux, d.TakeU64());
    cur.push_back(e);
  }
  summary_loaded_.insert(cur_seg_);
  return OkStatus();
}

Task<Status> LfsLayout::WriteCheckpoint() {
  ++checkpoint_seq_;
  std::vector<std::byte> buf;
  std::span<const std::byte> payload;
  if (config_.materialize_metadata) {
    buf = SerializeCheckpoint();
    payload = buf;
  }
  const uint64_t region = 1 + (checkpoint_seq_ % 2) * geo_.checkpoint_blocks;
  co_return co_await dev_.WriteRun(region, static_cast<uint32_t>(geo_.checkpoint_blocks),
                                   payload);
}

Task<Status> LfsLayout::ReadCheckpoint() {
  std::vector<std::byte> a(geo_.checkpoint_blocks * config_.block_size);
  std::vector<std::byte> b(geo_.checkpoint_blocks * config_.block_size);
  PFS_CO_RETURN_IF_ERROR(
      co_await dev_.ReadRun(1, static_cast<uint32_t>(geo_.checkpoint_blocks), a));
  PFS_CO_RETURN_IF_ERROR(co_await dev_.ReadRun(
      1 + geo_.checkpoint_blocks, static_cast<uint32_t>(geo_.checkpoint_blocks), b));

  auto seq_of = [](std::span<const std::byte> bytes) -> int64_t {
    Deserializer d(bytes);
    auto magic = d.TakeU64();
    if (!magic.ok() || *magic != kCkptMagic) {
      return -1;
    }
    auto seq = d.TakeU64();
    return seq.ok() ? static_cast<int64_t>(*seq) : -1;
  };
  const int64_t seq_a = seq_of(a);
  const int64_t seq_b = seq_of(b);
  if (seq_a < 0 && seq_b < 0) {
    co_return Status(ErrorCode::kCorrupt, "no valid checkpoint");
  }
  co_return DeserializeCheckpoint(seq_a >= seq_b ? a : b);
}

Task<Status> LfsLayout::Mount() {
  PFS_ASSERT_SHARD();
  if (mounted_) {
    co_return OkStatus();
  }
  if (!config_.materialize_metadata) {
    co_return Status(ErrorCode::kCorrupt, "simulator mount requires Format first");
  }
  std::vector<std::byte> super(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(0, super));
  Deserializer d(super);
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t magic, d.TakeU64());
  if (magic != kSuperMagic) {
    co_return Status(ErrorCode::kCorrupt, "bad superblock magic");
  }
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t version, d.TakeU32());
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t block_size, d.TakeU32());
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t segment_blocks, d.TakeU32());
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t max_inodes, d.TakeU32());
  if (version != kVersion || block_size != config_.block_size ||
      segment_blocks != config_.segment_blocks || max_inodes != config_.max_inodes) {
    co_return Status(ErrorCode::kCorrupt, "superblock/config mismatch");
  }
  PFS_CO_RETURN_IF_ERROR(co_await ReadCheckpoint());
  mounted_ = true;
  co_return OkStatus();
}

Task<Status> LfsLayout::Sync() {
  PFS_ASSERT_SHARD();
  PFS_CHECK(mounted_);
  // Persist every inode whose cached attributes may be newer than the log.
  std::vector<uint64_t> inos;
  inos.reserve(inode_cache_.size());
  for (const auto& [ino, inode] : inode_cache_) {
    inos.push_back(ino);
  }
  for (uint64_t ino : inos) {
    if (!inode_cache_.contains(ino)) {
      continue;  // freed while an earlier iteration's append was in flight
    }
    PFS_CO_RETURN_IF_ERROR(co_await PersistFileMetadataGuarded(ino, false));
  }
  co_return co_await WriteCheckpoint();
}

Task<Status> LfsLayout::Unmount() {
  PFS_ASSERT_SHARD();
  PFS_CO_RETURN_IF_ERROR(co_await Sync());
  mounted_ = false;
  co_return OkStatus();
}

// -- cleaner ------------------------------------------------------------------

void LfsLayout::Start() {
  if (config_.enable_cleaner && !cleaner_started_) {
    cleaner_started_ = true;
    sched_->SpawnDaemon("lfs.cleaner." + std::to_string(config_.fs_id), CleanerLoop());
  }
}

Task<> LfsLayout::CleanerLoop() {
  for (;;) {
    while (free_segments() >= config_.cleaner_low) {
      co_await cleaner_wakeup_.Wait();
    }
    while (free_segments() < config_.cleaner_high) {
      const int64_t victim =
          cleaner_policy_->PickSegment(segments_, geo_.usable_blocks, write_seq_);
      if (victim < 0) {
        break;  // nothing cleanable; wait for more activity
      }
      const Status status = co_await CleanSegment(static_cast<uint32_t>(victim));
      if (!status.ok()) {
        PFS_LOG_WARN("lfs", "cleaner error: %s", status.ToString().c_str());
        break;
      }
    }
    segments_freed_.Broadcast();
  }
}

Task<Status> LfsLayout::LoadSummaryIfNeeded(uint32_t seg) {
  if (summary_loaded_.contains(seg)) {
    co_return OkStatus();
  }
  if (!config_.materialize_metadata) {
    // Simulator summaries never leave memory.
    summary_loaded_.insert(seg);
    co_return OkStatus();
  }
  std::vector<std::byte> buf(config_.block_size);
  const uint64_t addr = geo_.first_segment_block +
                        static_cast<uint64_t>(seg) * config_.segment_blocks +
                        geo_.usable_blocks;
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(addr, buf));
  Deserializer d(buf);
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t count, d.TakeU32());
  std::vector<SummaryEntry>& entries = summaries_[seg];
  entries.clear();
  for (uint32_t i = 0; i < count; ++i) {
    SummaryEntry e;
    PFS_CO_ASSIGN_OR_RETURN(const uint8_t kind, d.TakeU8());
    e.kind = static_cast<LogKind>(kind);
    PFS_CO_ASSIGN_OR_RETURN(e.ino, d.TakeU64());
    PFS_CO_ASSIGN_OR_RETURN(e.aux, d.TakeU64());
    entries.push_back(e);
  }
  summary_loaded_.insert(seg);
  co_return OkStatus();
}

Task<bool> LfsLayout::IsLive(const SummaryEntry& entry, uint64_t addr) {
  if (entry.ino == 0 || entry.ino >= imap_.size()) {
    co_return false;
  }
  switch (entry.kind) {
    case LogKind::kInode:
      co_return imap_[entry.ino] == addr;
    case LogKind::kBmapChunk: {
      auto inode_or = co_await GetInode(entry.ino);
      if (!inode_or.ok()) {
        co_return false;
      }
      co_return entry.aux < Inode::kBmapChunks && (*inode_or)->bmap[entry.aux] == addr;
    }
    case LogKind::kData: {
      auto inode_or = co_await GetInode(entry.ino);
      if (!inode_or.ok()) {
        co_return false;
      }
      auto bmap_or = co_await GetBmap(entry.ino);
      if (!bmap_or.ok()) {
        co_return false;
      }
      BlockMap* bmap = *bmap_or;
      const Status chunk_status = co_await EnsureChunkLoaded(
          entry.ino, bmap, entry.aux / bmap->entries_per_chunk());
      if (!chunk_status.ok()) {
        co_return false;
      }
      co_return bmap->Get(entry.aux) == addr;
    }
  }
  co_return false;
}

Task<Status> LfsLayout::CleanSegment(uint32_t seg) {
  PFS_CHECK(segments_[seg].state == SegmentState::kFull);
  PFS_CO_RETURN_IF_ERROR(co_await LoadSummaryIfNeeded(seg));
  const std::vector<SummaryEntry> entries = summaries_[seg];  // copy: stable view
  const uint64_t base =
      geo_.first_segment_block + static_cast<uint64_t>(seg) * config_.segment_blocks;
  cleaned_utilization_.Record(static_cast<double>(segments_[seg].live_blocks) /
                              static_cast<double>(geo_.usable_blocks));

  std::vector<std::byte> scratch;
  if (config_.materialize_metadata) {
    scratch.resize(config_.block_size);
  }
  // Files whose metadata (bmap chunk / inode block) lives in the victim.
  std::vector<uint64_t> metadata_files;

  for (size_t i = 0; i < entries.size(); ++i) {
    const SummaryEntry& entry = entries[i];
    const uint64_t addr = base + i;
    const bool live = co_await IsLive(entry, addr);
    if (!live) {
      continue;
    }
    switch (entry.kind) {
      case LogKind::kData: {
        // Relocate the block: read it and append it to the head of the log.
        std::span<std::byte> read_span =
            config_.materialize_metadata ? std::span<std::byte>(scratch) : std::span<std::byte>{};
        PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(addr, read_span));
        cleaner_reads_.Inc();
        const LogItem item{LogKind::kData, entry.ino, entry.aux,
                           std::span<const std::byte>(read_span.data(), read_span.size())};
        PFS_CO_ASSIGN_OR_RETURN(std::vector<uint64_t> new_addrs,
                                co_await AppendItems(std::span(&item, 1), true));
        auto bmap_or = co_await GetBmap(entry.ino);
        if (bmap_or.ok()) {
          const uint64_t old = (*bmap_or)->Set(entry.aux, new_addrs[0]);
          if (old != kNullAddr) {
            DecLive(old);
          }
        }
        blocks_relocated_.Inc();
        break;
      }
      case LogKind::kBmapChunk: {
        // Mark the chunk dirty so PersistFileMetadata rewrites it.
        auto bmap_or = co_await GetBmap(entry.ino);
        if (bmap_or.ok()) {
          const Status chunk_status = co_await EnsureChunkLoaded(
              entry.ino, *bmap_or, static_cast<size_t>(entry.aux));
          if (chunk_status.ok() && (*bmap_or)->ChunkLoaded(entry.aux)) {
            (*bmap_or)->MarkChunkDirty(entry.aux);
          }
        }
        metadata_files.push_back(entry.ino);
        break;
      }
      case LogKind::kInode:
        metadata_files.push_back(entry.ino);
        break;
    }
  }
  // Rewrite metadata for affected files (dedup first).
  std::sort(metadata_files.begin(), metadata_files.end());
  metadata_files.erase(std::unique(metadata_files.begin(), metadata_files.end()),
                       metadata_files.end());
  for (uint64_t ino : metadata_files) {
    const Status status = co_await PersistFileMetadataGuarded(ino, /*for_cleaner=*/true);
    if (!status.ok() && status.code() != ErrorCode::kNotFound) {
      co_return status;
    }
    blocks_relocated_.Inc();
  }

  segments_[seg].state = SegmentState::kFree;
  segments_[seg].live_blocks = 0;
  summaries_[seg].clear();
  segments_cleaned_.Inc();
  segments_freed_.Broadcast();
  co_return OkStatus();
}

// -- stats --------------------------------------------------------------------

std::string LfsLayout::stat_name() const {
  return "lfs.fs" + std::to_string(config_.fs_id);
}

std::string LfsLayout::StatReport(bool with_histograms) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "cleaner=%s segments=%u free=%u frontier=%u/%u\n"
                "log-blocks=%llu data-blocks=%llu write-cost=%.2f\n"
                "cleaned=%llu relocated=%llu cleaner-reads=%llu\n",
                cleaner_policy_->name(), geo_.nsegments, free_segments(), cur_seg_, cur_off_,
                static_cast<unsigned long long>(log_blocks_written_.value()),
                static_cast<unsigned long long>(data_blocks_written_.value()), WriteCost(),
                static_cast<unsigned long long>(segments_cleaned_.value()),
                static_cast<unsigned long long>(blocks_relocated_.value()),
                static_cast<unsigned long long>(cleaner_reads_.value()));
  std::string out(buf);
  if (with_histograms) {
    out += "cleaned-segment utilization:\n" + cleaned_utilization_.BucketDump();
  }
  return out;
}

namespace {

LfsConfig LfsConfigFrom(const SystemConfig& config, int fs_index) {
  LfsConfig lfs;
  lfs.fs_id = static_cast<uint32_t>(fs_index);
  lfs.segment_blocks = config.lfs_segment_blocks;
  lfs.max_inodes = config.max_inodes;
  lfs.materialize_metadata = !config.simulated();
  return lfs;
}

}  // namespace

void RegisterLfsLayout() {
  LayoutRegistry::Register(
      "lfs",
      {[](LayoutContext ctx) -> std::unique_ptr<StorageLayout> {
         const auto* make_cleaner = CleanerRegistry::Find(ctx.config->cleaner);
         PFS_CHECK_MSG(make_cleaner != nullptr, "cleaner name validated before build");
         return std::make_unique<LfsLayout>(ctx.sched, std::move(ctx.dev),
                                            LfsConfigFrom(*ctx.config, ctx.fs_index),
                                            (*make_cleaner)());
       },
       [](const SystemConfig& config) {
         return LfsLayout::MinPartitionBlocks(LfsConfigFrom(config, 0));
       },
       [](const SystemConfig& config) {
         if (config.lfs_segment_blocks < 4) {
           return Status(ErrorCode::kInvalidArgument,
                         "lfs_segment_blocks: segments need at least 4 blocks");
         }
         return OkStatus();
       }});
}

}  // namespace pfs
