// GuessingLayout: the storage layout "instantiated for a simulator" (paper
// §2): "all information that would have been read or written to disk is
// simulated by making educated guesses. If a file is accessed that is not
// yet known by the storage-layout module, it picks a random location on
// disk. Once an initial location has been chosen for a file, the simulator
// sticks to those addresses."
//
// Patsy uses this mode for pure trace replay where the initial on-disk state
// is unknown: files get a random, then-stable, contiguous placement; inode
// reads charge one metadata I/O at a guessed location.
#ifndef PFS_LAYOUT_GUESSING_LAYOUT_H_
#define PFS_LAYOUT_GUESSING_LAYOUT_H_

#include <string>
#include <unordered_map>

#include "core/random.h"
#include "layout/storage_layout.h"
#include "sched/scheduler.h"

namespace pfs {

struct GuessingConfig {
  uint32_t fs_id = 0;
  uint32_t block_size = kDefaultBlockSize;
  uint64_t seed = 1;
};

class GuessingLayout final : public StorageLayout {
 public:
  GuessingLayout(Scheduler* sched, BlockDev dev, GuessingConfig config)
      : sched_(sched), dev_(std::move(dev)), config_(config), rng_(config.seed) {}

  const char* layout_name() const override { return "guessing"; }
  uint32_t fs_id() const override { return config_.fs_id; }
  uint32_t block_size() const override { return config_.block_size; }

  Task<Status> Format() override {
    mounted_ = true;
    auto root_or = co_await AllocInode(FileType::kDirectory);
    PFS_CO_RETURN_IF_ERROR(root_or.status());
    root_ino_ = *root_or;
    co_return OkStatus();
  }
  Task<Status> Mount() override {
    mounted_ = true;
    co_return OkStatus();
  }
  Task<Status> Unmount() override {
    mounted_ = false;
    co_return OkStatus();
  }
  Task<Status> Sync() override { co_return OkStatus(); }

  uint64_t root_ino() const override { return root_ino_; }

  Task<Result<uint64_t>> AllocInode(FileType type) override;
  Task<Result<Inode>> ReadInode(uint64_t ino) override;
  Task<Status> WriteInode(const Inode& inode) override;
  Task<Status> FreeInode(uint64_t ino) override;
  Task<Status> ReadFileBlock(uint64_t ino, uint64_t file_block,
                             std::span<std::byte> out) override;
  Task<Status> WriteFileBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) override;
  Task<Status> TruncateBlocks(uint64_t ino, uint64_t from_block) override;

  uint64_t TotalBlocks() const override { return dev_.nblocks(); }
  uint64_t FreeBlocksEstimate() const override { return dev_.nblocks(); }

 private:
  // The sticky random placement decision for a file.
  uint64_t GuessBase(uint64_t ino);
  uint64_t AddrOf(uint64_t ino, uint64_t file_block);

  Scheduler* sched_;
  BlockDev dev_;
  GuessingConfig config_;
  Rng rng_;
  bool mounted_ = false;
  uint64_t root_ino_ = 0;
  uint64_t next_ino_ = 1;
  std::unordered_map<uint64_t, uint64_t> base_addr_;     // ino -> first block
  std::unordered_map<uint64_t, Inode> inodes_;
  std::unordered_map<uint64_t, bool> inode_charged_;     // first metadata read done
};

}  // namespace pfs

#endif  // PFS_LAYOUT_GUESSING_LAYOUT_H_
