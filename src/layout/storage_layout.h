// The abstract storage-layout component (paper §2, "Storage-layout"): it
// "knows the actual location(s) of file-system meta-data and is able to
// store and retrieve information from one or more disks. It is consulted
// whenever something needs to be done with a raw disk. The base class is
// only an interface ... for all layout and policy decisions there exists a
// virtual method."
//
// Implementations: LfsLayout (segmented log-structured, the paper's
// production layout), FfsLayout (cylinder-group update-in-place baseline),
// GuessingLayout (the simulator's educated-guess mode).
#ifndef PFS_LAYOUT_STORAGE_LAYOUT_H_
#define PFS_LAYOUT_STORAGE_LAYOUT_H_

#include <span>

#include "cache/block.h"
#include "core/result.h"
#include "layout/inode.h"
#include "layout/types.h"
#include "sched/affinity.h"
#include "sched/task.h"

namespace pfs {

// Shard-affine (ShardAffine): a layout's allocation maps, inode tables, and
// log state belong to its filesystem's shard. MakeLayout binds the home
// scheduler; the concrete layouts assert on every virtual entry point.
class StorageLayout : public ShardAffine {
 public:
  virtual ~StorageLayout() = default;

  virtual const char* layout_name() const = 0;
  virtual uint32_t fs_id() const = 0;
  virtual uint32_t block_size() const = 0;

  // -- lifecycle --
  // Spawns the layout's daemon threads (log cleaner, ...), once the layout
  // is formatted or mounted. Default: the layout has none.
  virtual void Start() {}
  virtual Task<Status> Format() = 0;
  virtual Task<Status> Mount() = 0;
  virtual Task<Status> Unmount() = 0;  // Sync + checkpoint metadata
  virtual Task<Status> Sync() = 0;     // persist all layout metadata

  // The root directory's inode number (valid after Format/Mount).
  virtual uint64_t root_ino() const = 0;

  // -- inodes --
  virtual Task<Result<uint64_t>> AllocInode(FileType type) = 0;
  virtual Task<Result<Inode>> ReadInode(uint64_t ino) = 0;
  virtual Task<Status> WriteInode(const Inode& inode) = 0;
  // Frees the inode and every block the file owns.
  virtual Task<Status> FreeInode(uint64_t ino) = 0;

  // -- data path (driven by the buffer cache's BlockIoHandler) --
  virtual Task<Status> ReadFileBlock(uint64_t ino, uint64_t file_block,
                                     std::span<std::byte> out) = 0;
  // Writes the blocks (pre-sorted by file block number) and updates the
  // file's block map and inode. Log layouts assign fresh addresses;
  // update-in-place layouts allocate on first write.
  virtual Task<Status> WriteFileBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) = 0;
  // Releases the blocks at and above `from_block` (delete = 0).
  virtual Task<Status> TruncateBlocks(uint64_t ino, uint64_t from_block) = 0;

  // -- space accounting --
  virtual uint64_t TotalBlocks() const = 0;
  virtual uint64_t FreeBlocksEstimate() const = 0;
};

}  // namespace pfs

#endif  // PFS_LAYOUT_STORAGE_LAYOUT_H_
