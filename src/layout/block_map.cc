#include "layout/block_map.h"

namespace pfs {

std::vector<uint64_t> BlockMap::TruncateFrom(uint64_t from_block) {
  std::vector<uint64_t> freed;
  for (size_t chunk = ChunkOf(from_block); chunk < chunks_.size(); ++chunk) {
    if (chunks_[chunk].entries.empty()) {
      continue;
    }
    const uint64_t chunk_base = chunk * entries_per_chunk_;
    for (uint64_t i = 0; i < entries_per_chunk_; ++i) {
      if (chunk_base + i < from_block) {
        continue;
      }
      uint64_t& slot = chunks_[chunk].entries[i];
      if (slot != kNullAddr) {
        freed.push_back(slot);
        slot = kNullAddr;
        chunks_[chunk].dirty = true;
      }
    }
  }
  return freed;
}

void BlockMap::SerializeChunk(size_t chunk, Serializer* out) const {
  PFS_CHECK(ChunkLoaded(chunk));
  for (uint64_t addr : chunks_[chunk].entries) {
    out->PutU64(addr);
  }
}

Status BlockMap::DeserializeChunk(size_t chunk, Deserializer* in) {
  if (chunk >= chunks_.size()) {
    chunks_.resize(chunk + 1);
  }
  chunks_[chunk].entries.assign(entries_per_chunk_, kNullAddr);
  for (uint64_t i = 0; i < entries_per_chunk_; ++i) {
    PFS_ASSIGN_OR_RETURN(chunks_[chunk].entries[i], in->TakeU64());
  }
  chunks_[chunk].dirty = false;
  return OkStatus();
}

std::vector<uint64_t> BlockMap::AllAddresses() const {
  std::vector<uint64_t> out;
  for (const Chunk& chunk : chunks_) {
    for (uint64_t addr : chunk.entries) {
      if (addr != kNullAddr) {
        out.push_back(addr);
      }
    }
  }
  return out;
}

}  // namespace pfs
