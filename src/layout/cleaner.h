// Log-cleaner policies for the segmented LFS (paper §2: "The log-cleaner can
// be replaced and is plugged into the LFS component when the system starts").
#ifndef PFS_LAYOUT_CLEANER_H_
#define PFS_LAYOUT_CLEANER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace pfs {

enum class SegmentState : uint8_t { kFree, kActive, kFull };

struct SegmentInfo {
  SegmentState state = SegmentState::kFree;
  uint32_t live_blocks = 0;
  uint64_t write_seq = 0;  // monotone counter at last write; age proxy
};

class CleanerPolicy {
 public:
  virtual ~CleanerPolicy() = default;

  virtual const char* name() const = 0;

  // Index of the kFull segment to clean next, or -1 if none qualifies.
  // `usable_blocks` is the data capacity of one segment; `now_seq` the
  // current write sequence for age computation.
  virtual int64_t PickSegment(std::span<const SegmentInfo> segments, uint32_t usable_blocks,
                              uint64_t now_seq) const = 0;
};

// Cleans the emptiest segment: cheap, but keeps re-cleaning hot segments
// under skewed writes.
class GreedyCleanerPolicy final : public CleanerPolicy {
 public:
  const char* name() const override { return "greedy"; }
  int64_t PickSegment(std::span<const SegmentInfo> segments, uint32_t usable_blocks,
                      uint64_t now_seq) const override;
};

// Rosenblum's cost-benefit: maximize (1-u)*age/(1+u); prefers cleaning cold
// segments even at moderate utilization.
class CostBenefitCleanerPolicy final : public CleanerPolicy {
 public:
  const char* name() const override { return "cost-benefit"; }
  int64_t PickSegment(std::span<const SegmentInfo> segments, uint32_t usable_blocks,
                      uint64_t now_seq) const override;
};

std::unique_ptr<CleanerPolicy> MakeCleanerPolicy(const std::string& name);

}  // namespace pfs

#endif  // PFS_LAYOUT_CLEANER_H_
