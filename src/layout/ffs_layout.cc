#include "layout/ffs_layout.h"

#include <cstring>

#include "core/log.h"
#include "system/component_registry.h"

namespace pfs {
namespace {
constexpr uint64_t kFfsMagic = 0x5046534646533131ULL;  // "PFSFFS11"
}

FfsLayout::FfsLayout(Scheduler* sched, BlockDev dev, FfsConfig config)
    : sched_(sched), dev_(std::move(dev)), config_(config) {
  PFS_CHECK(config_.block_size == dev_.block_size());
  inodes_per_block_ = config_.block_size / static_cast<uint32_t>(Inode::kDiskSize);
  itable_blocks_ = CeilDiv(config_.inodes_per_group, inodes_per_block_);
  PFS_CHECK(config_.blocks_per_group > 2 + itable_blocks_ + 8);
  ngroups_ = static_cast<uint32_t>((dev_.nblocks() - 1) / config_.blocks_per_group);
  PFS_CHECK_MSG(ngroups_ >= 1, "partition too small for FFS");
}

uint64_t FfsLayout::InodeTableBlock(uint64_t ino) const {
  const uint32_t group = GroupOfIno(ino);
  const uint32_t index = static_cast<uint32_t>((ino - 1) % config_.inodes_per_group);
  return GroupBase(group) + 2 + index / inodes_per_block_;
}

Task<Status> FfsLayout::Format() {
  PFS_ASSERT_SHARD();
  groups_.assign(ngroups_, Group{});
  for (Group& g : groups_) {
    g.inode_used.assign(config_.inodes_per_group, false);
    g.block_used.assign(DataBlocksPerGroup(), false);
  }
  free_blocks_ = static_cast<uint64_t>(ngroups_) * DataBlocksPerGroup();
  inode_cache_.clear();
  bmap_cache_.clear();
  next_group_hint_ = 0;
  mounted_ = true;

  std::vector<std::byte> buf;
  std::span<const std::byte> payload;
  if (config_.materialize_metadata) {
    Serializer s(&buf);
    s.PutU64(kFfsMagic);
    s.PutU32(config_.block_size);
    s.PutU32(config_.blocks_per_group);
    s.PutU32(config_.inodes_per_group);
    s.PutU32(ngroups_);
    buf.resize(config_.block_size);
    payload = buf;
  }
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(0, payload));

  PFS_CO_ASSIGN_OR_RETURN(root_ino_, co_await AllocInode(FileType::kDirectory));
  PFS_CO_RETURN_IF_ERROR(co_await PersistInode(root_ino_));
  co_return co_await Sync();
}

Task<Status> FfsLayout::Mount() {
  PFS_ASSERT_SHARD();
  if (mounted_) {
    co_return OkStatus();
  }
  if (!config_.materialize_metadata) {
    co_return Status(ErrorCode::kCorrupt, "simulator mount requires Format first");
  }
  std::vector<std::byte> super(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(0, super));
  Deserializer d(super);
  PFS_CO_ASSIGN_OR_RETURN(const uint64_t magic, d.TakeU64());
  if (magic != kFfsMagic) {
    co_return Status(ErrorCode::kCorrupt, "bad FFS superblock");
  }
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t block_size, d.TakeU32());
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t bpg, d.TakeU32());
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t ipg, d.TakeU32());
  PFS_CO_ASSIGN_OR_RETURN(const uint32_t ngroups, d.TakeU32());
  if (block_size != config_.block_size || bpg != config_.blocks_per_group ||
      ipg != config_.inodes_per_group || ngroups != ngroups_) {
    co_return Status(ErrorCode::kCorrupt, "FFS superblock/config mismatch");
  }

  groups_.assign(ngroups_, Group{});
  free_blocks_ = 0;
  std::vector<std::byte> bitmap_buf(config_.block_size);
  for (uint32_t g = 0; g < ngroups_; ++g) {
    Group& group = groups_[g];
    group.inode_used.assign(config_.inodes_per_group, false);
    group.block_used.assign(DataBlocksPerGroup(), false);
    // Inode bitmap.
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(GroupBase(g), bitmap_buf));
    for (uint32_t i = 0; i < config_.inodes_per_group; ++i) {
      group.inode_used[i] =
          (static_cast<uint8_t>(bitmap_buf[i / 8]) >> (i % 8)) & 1;
    }
    // Block bitmap.
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(GroupBase(g) + 1, bitmap_buf));
    for (uint32_t i = 0; i < DataBlocksPerGroup(); ++i) {
      group.block_used[i] = (static_cast<uint8_t>(bitmap_buf[i / 8]) >> (i % 8)) & 1;
      if (!group.block_used[i]) {
        ++free_blocks_;
      }
    }
  }
  // Root is by convention the first inode of group 0.
  root_ino_ = 1;
  mounted_ = true;
  co_return OkStatus();
}

Task<Status> FfsLayout::Sync() {
  PFS_ASSERT_SHARD();
  PFS_CHECK(mounted_);
  // Inode attribute write-back.
  for (auto& [ino, inode] : inode_cache_) {
    (void)inode;
    PFS_CO_RETURN_IF_ERROR(co_await PersistDirtyChunks(ino));
    PFS_CO_RETURN_IF_ERROR(co_await PersistInode(ino));
  }
  // Bitmap write-back.
  for (uint32_t g = 0; g < ngroups_; ++g) {
    if (!groups_[g].dirty) {
      continue;
    }
    std::vector<std::byte> buf;
    std::span<const std::byte> payload;
    if (config_.materialize_metadata) {
      buf.assign(config_.block_size, std::byte{0});
      for (uint32_t i = 0; i < config_.inodes_per_group; ++i) {
        if (groups_[g].inode_used[i]) {
          buf[i / 8] |= static_cast<std::byte>(1u << (i % 8));
        }
      }
      payload = buf;
    }
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(GroupBase(g), payload));
    if (config_.materialize_metadata) {
      buf.assign(config_.block_size, std::byte{0});
      for (uint32_t i = 0; i < DataBlocksPerGroup(); ++i) {
        if (groups_[g].block_used[i]) {
          buf[i / 8] |= static_cast<std::byte>(1u << (i % 8));
        }
      }
      payload = buf;
    }
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(GroupBase(g) + 1, payload));
    groups_[g].dirty = false;
  }
  co_return OkStatus();
}

Task<Status> FfsLayout::Unmount() {
  PFS_ASSERT_SHARD();
  PFS_CO_RETURN_IF_ERROR(co_await Sync());
  mounted_ = false;
  co_return OkStatus();
}

Task<Result<uint64_t>> FfsLayout::AllocInode(FileType type) {
  PFS_ASSERT_SHARD();
  PFS_CHECK(mounted_);
  for (uint32_t attempt = 0; attempt < ngroups_; ++attempt) {
    const uint32_t g = (next_group_hint_ + attempt) % ngroups_;
    Group& group = groups_[g];
    for (uint32_t i = 0; i < config_.inodes_per_group; ++i) {
      if (group.inode_used[i]) {
        continue;
      }
      group.inode_used[i] = true;
      group.dirty = true;
      next_group_hint_ = (g + 1) % ngroups_;  // spread directories/files
      const uint64_t ino = 1 + static_cast<uint64_t>(g) * config_.inodes_per_group + i;
      Inode inode;
      inode.ino = ino;
      inode.type = type;
      inode.nlink = 1;
      inode.mtime_ns = sched_->Now().nanos();
      inode_cache_[ino] = inode;
      bmap_cache_.emplace(ino, BlockMap(config_.block_size));
      co_return ino;
    }
  }
  co_return Status(ErrorCode::kNoSpace, "no free inodes");
}

Task<Result<Inode*>> FfsLayout::GetInode(uint64_t ino) {
  if (ino == 0 || GroupOfIno(ino) >= ngroups_) {
    co_return Status(ErrorCode::kInvalidArgument, "bad inode number");
  }
  auto it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    co_return &it->second;
  }
  const uint32_t g = GroupOfIno(ino);
  const uint32_t index = static_cast<uint32_t>((ino - 1) % config_.inodes_per_group);
  if (!groups_[g].inode_used[index]) {
    co_return Status(ErrorCode::kNotFound, "inode not allocated");
  }
  PFS_CHECK_MSG(config_.materialize_metadata, "simulator inode cache lost an inode");
  std::vector<std::byte> buf(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(InodeTableBlock(ino), buf));
  const size_t offset = (index % inodes_per_block_) * Inode::kDiskSize;
  Deserializer d(std::span<const std::byte>(buf).subspan(offset, Inode::kDiskSize));
  PFS_CO_ASSIGN_OR_RETURN(Inode inode, Inode::Deserialize(&d));
  if (inode.ino != ino) {
    co_return Status(ErrorCode::kCorrupt, "inode slot mismatch");
  }
  auto [pos, inserted] = inode_cache_.emplace(ino, inode);
  PFS_CHECK(inserted);
  co_return &pos->second;
}

Task<Status> FfsLayout::PersistInode(uint64_t ino) {
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  inode_writes_.Inc();
  if (!config_.materialize_metadata) {
    // Charge the read-modify-write of the table block.
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(InodeTableBlock(ino), {}));
    co_return co_await dev_.Write(InodeTableBlock(ino), {});
  }
  std::vector<std::byte> buf(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(InodeTableBlock(ino), buf));
  const uint32_t index = static_cast<uint32_t>((ino - 1) % config_.inodes_per_group);
  std::vector<std::byte> encoded;
  Serializer s(&encoded);
  inode->Serialize(&s);
  std::memcpy(buf.data() + (index % inodes_per_block_) * Inode::kDiskSize, encoded.data(),
              Inode::kDiskSize);
  co_return co_await dev_.Write(InodeTableBlock(ino), buf);
}

Result<uint64_t> FfsLayout::AllocDataBlock(uint32_t preferred_group) {
  for (uint32_t attempt = 0; attempt < ngroups_; ++attempt) {
    const uint32_t g = (preferred_group + attempt) % ngroups_;
    Group& group = groups_[g];
    for (uint32_t i = 0; i < DataBlocksPerGroup(); ++i) {
      if (!group.block_used[i]) {
        group.block_used[i] = true;
        group.dirty = true;
        PFS_CHECK(free_blocks_ > 0);
        --free_blocks_;
        return DataBase(g) + i;
      }
    }
  }
  return Status(ErrorCode::kNoSpace, "no free data blocks");
}

void FfsLayout::FreeDataBlock(uint64_t addr) {
  const uint32_t g = static_cast<uint32_t>((addr - 1) / config_.blocks_per_group);
  const uint64_t index = addr - DataBase(g);
  PFS_CHECK(index < DataBlocksPerGroup());
  Group& group = groups_[g];
  PFS_CHECK(group.block_used[index]);
  group.block_used[index] = false;
  group.dirty = true;
  ++free_blocks_;
}

Task<Status> FfsLayout::LoadBmapChunk(uint64_t ino, BlockMap* bmap, size_t chunk) {
  if (chunk >= Inode::kBmapChunks) {
    co_return Status(ErrorCode::kOutOfRange, "file block beyond maximum size");
  }
  if (bmap->ChunkLoaded(chunk)) {
    co_return OkStatus();
  }
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  const uint64_t addr = inode->bmap[chunk];
  if (addr == kNullAddr) {
    co_return OkStatus();
  }
  PFS_CHECK_MSG(config_.materialize_metadata, "simulator bmap cache lost a chunk");
  std::vector<std::byte> buf(config_.block_size);
  PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(addr, buf));
  Deserializer d(buf);
  co_return bmap->DeserializeChunk(chunk, &d);
}

Task<Status> FfsLayout::PersistDirtyChunks(uint64_t ino) {
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  auto bmap_it = bmap_cache_.find(ino);
  if (bmap_it == bmap_cache_.end()) {
    co_return OkStatus();
  }
  BlockMap& bmap = bmap_it->second;
  for (size_t chunk = 0; chunk < bmap.chunk_count(); ++chunk) {
    if (!bmap.ChunkDirty(chunk)) {
      continue;
    }
    if (inode->bmap[chunk] == kNullAddr) {
      PFS_CO_ASSIGN_OR_RETURN(inode->bmap[chunk], AllocDataBlock(GroupOfIno(ino)));
    }
    std::vector<std::byte> buf;
    std::span<const std::byte> payload;
    if (config_.materialize_metadata) {
      Serializer s(&buf);
      bmap.SerializeChunk(chunk, &s);
      buf.resize(config_.block_size);
      payload = buf;
    }
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(inode->bmap[chunk], payload));
    blocks_written_.Inc();
    bmap.MarkChunkClean(chunk);
  }
  co_return OkStatus();
}

Task<Result<Inode>> FfsLayout::ReadInode(uint64_t ino) {
  PFS_ASSERT_SHARD();
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  co_return *inode;
}

Task<Status> FfsLayout::WriteInode(const Inode& inode) {
  PFS_ASSERT_SHARD();
  auto it = inode_cache_.find(inode.ino);
  if (it == inode_cache_.end()) {
    co_return Status(ErrorCode::kNotFound, "WriteInode of unknown inode");
  }
  const auto bmap_ptrs = it->second.bmap;
  it->second = inode;
  it->second.bmap = bmap_ptrs;
  co_return OkStatus();
}

Task<Status> FfsLayout::FreeInodeNow(uint64_t ino) {
  PFS_CO_RETURN_IF_ERROR(co_await TruncateBlocks(ino, 0));
  const uint32_t g = GroupOfIno(ino);
  const uint32_t index = static_cast<uint32_t>((ino - 1) % config_.inodes_per_group);
  PFS_CHECK(groups_[g].inode_used[index]);
  groups_[g].inode_used[index] = false;
  groups_[g].dirty = true;
  inode_cache_.erase(ino);
  bmap_cache_.erase(ino);
  co_return OkStatus();
}

Task<Status> FfsLayout::FreeInode(uint64_t ino) {
  PFS_ASSERT_SHARD();
  if (busy_inos_.contains(ino)) {
    free_pending_.insert(ino);  // mid-flush; free when the write retires
    co_return OkStatus();
  }
  co_return co_await FreeInodeNow(ino);
}

Task<Status> FfsLayout::EndInoWrite(uint64_t ino) {
  auto it = busy_inos_.find(ino);
  PFS_CHECK(it != busy_inos_.end() && it->second > 0);
  if (--it->second == 0) {
    busy_inos_.erase(it);
    if (free_pending_.erase(ino) > 0) {
      co_return co_await FreeInodeNow(ino);
    }
  }
  co_return OkStatus();
}

Task<Status> FfsLayout::ReadFileBlock(uint64_t ino, uint64_t file_block,
                                      std::span<std::byte> out) {
  PFS_ASSERT_SHARD();
  auto bmap_it = bmap_cache_.find(ino);
  if (bmap_it == bmap_cache_.end()) {
    bmap_it = bmap_cache_.emplace(ino, BlockMap(config_.block_size)).first;
  }
  BlockMap& bmap = bmap_it->second;
  PFS_CO_RETURN_IF_ERROR(
      co_await LoadBmapChunk(ino, &bmap, file_block / bmap.entries_per_chunk()));
  const uint64_t addr = bmap.Get(file_block);
  if (addr == kNullAddr) {
    if (!out.empty()) {
      std::memset(out.data(), 0, out.size());
    }
    co_return OkStatus();
  }
  blocks_read_.Inc();
  co_return co_await dev_.Read(addr, out);
}

Task<Status> FfsLayout::WriteFileBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) {
  PFS_ASSERT_SHARD();
  if (blocks.empty()) {
    co_return OkStatus();
  }
  ++busy_inos_[ino];
  const Status status = co_await WriteFileBlocksImpl(ino, blocks);
  PFS_CO_RETURN_IF_ERROR(co_await EndInoWrite(ino));
  co_return status;
}

Task<Status> FfsLayout::WriteFileBlocksImpl(uint64_t ino, std::span<CacheBlock* const> blocks) {
  auto bmap_it = bmap_cache_.find(ino);
  if (bmap_it == bmap_cache_.end()) {
    bmap_it = bmap_cache_.emplace(ino, BlockMap(config_.block_size)).first;
  }
  BlockMap& bmap = bmap_it->second;
  const uint32_t group = GroupOfIno(ino);
  for (const CacheBlock* b : blocks) {
    PFS_CHECK(b->id.ino == ino);
    const size_t chunk = b->id.block_no / bmap.entries_per_chunk();
    PFS_CO_RETURN_IF_ERROR(co_await LoadBmapChunk(ino, &bmap, chunk));
    uint64_t addr = bmap.Get(b->id.block_no);
    if (addr == kNullAddr) {
      PFS_CO_ASSIGN_OR_RETURN(addr, AllocDataBlock(group));
      bmap.Set(b->id.block_no, addr);
    }
    PFS_CO_RETURN_IF_ERROR(
        co_await dev_.Write(addr, std::span<const std::byte>(b->data.data(), b->data.size())));
    blocks_written_.Inc();
  }
  PFS_CO_RETURN_IF_ERROR(co_await PersistDirtyChunks(ino));
  co_return co_await PersistInode(ino);
}

Task<Status> FfsLayout::TruncateBlocks(uint64_t ino, uint64_t from_block) {
  PFS_ASSERT_SHARD();
  PFS_CO_ASSIGN_OR_RETURN(Inode * inode, co_await GetInode(ino));
  auto bmap_it = bmap_cache_.find(ino);
  if (bmap_it == bmap_cache_.end()) {
    bmap_it = bmap_cache_.emplace(ino, BlockMap(config_.block_size)).first;
  }
  BlockMap& bmap = bmap_it->second;
  for (size_t chunk = from_block / bmap.entries_per_chunk(); chunk < Inode::kBmapChunks;
       ++chunk) {
    if (inode->bmap[chunk] != kNullAddr) {
      PFS_CO_RETURN_IF_ERROR(co_await LoadBmapChunk(ino, &bmap, chunk));
    }
  }
  for (uint64_t addr : bmap.TruncateFrom(from_block)) {
    FreeDataBlock(addr);
  }
  const size_t first_dead_chunk = CeilDiv(from_block, bmap.entries_per_chunk());
  for (size_t chunk = first_dead_chunk; chunk < Inode::kBmapChunks; ++chunk) {
    if (inode->bmap[chunk] != kNullAddr) {
      FreeDataBlock(inode->bmap[chunk]);
      inode->bmap[chunk] = kNullAddr;
      bmap.MarkChunkClean(chunk);
    }
  }
  co_return OkStatus();
}

std::string FfsLayout::StatReport(bool with_histograms) const {
  (void)with_histograms;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "groups=%u free-blocks=%llu blocks-written=%llu blocks-read=%llu "
                "inode-writes=%llu\n",
                ngroups_, static_cast<unsigned long long>(free_blocks_),
                static_cast<unsigned long long>(blocks_written_.value()),
                static_cast<unsigned long long>(blocks_read_.value()),
                static_cast<unsigned long long>(inode_writes_.value()));
  return buf;
}

void RegisterFfsLayout() {
  LayoutRegistry::Register(
      "ffs", {[](LayoutContext ctx) -> std::unique_ptr<StorageLayout> {
                FfsConfig ffs;
                ffs.fs_id = static_cast<uint32_t>(ctx.fs_index);
                ffs.materialize_metadata = !ctx.config->simulated();
                return std::make_unique<FfsLayout>(ctx.sched, std::move(ctx.dev), ffs);
              },
              [](const SystemConfig& config) {
                FfsConfig ffs;
                ffs.materialize_metadata = !config.simulated();
                return FfsLayout::MinPartitionBlocks(ffs);
              },
              nullptr});
}

}  // namespace pfs
