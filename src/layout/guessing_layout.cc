#include "layout/guessing_layout.h"

#include <cstring>

#include "system/component_registry.h"

namespace pfs {

uint64_t GuessingLayout::GuessBase(uint64_t ino) {
  auto it = base_addr_.find(ino);
  if (it != base_addr_.end()) {
    return it->second;
  }
  // Pick a random location; the file's blocks extend contiguously from it.
  const uint64_t base = 1 + rng_.NextBelow(dev_.nblocks() - 1);
  base_addr_.emplace(ino, base);
  return base;
}

uint64_t GuessingLayout::AddrOf(uint64_t ino, uint64_t file_block) {
  const uint64_t base = GuessBase(ino);
  return 1 + (base - 1 + file_block) % (dev_.nblocks() - 1);
}

Task<Result<uint64_t>> GuessingLayout::AllocInode(FileType type) {
  PFS_ASSERT_SHARD();
  PFS_CHECK(mounted_);
  const uint64_t ino = next_ino_++;
  Inode inode;
  inode.ino = ino;
  inode.type = type;
  inode.nlink = 1;
  inode.mtime_ns = sched_->Now().nanos();
  inodes_.emplace(ino, inode);
  inode_charged_[ino] = true;  // freshly created: no disk state to fetch
  (void)GuessBase(ino);
  co_return ino;
}

Task<Result<Inode>> GuessingLayout::ReadInode(uint64_t ino) {
  PFS_ASSERT_SHARD();
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    co_return Status(ErrorCode::kNotFound, "unknown inode");
  }
  if (!inode_charged_[ino]) {
    // First access to a pre-existing file: charge one metadata read at the
    // guessed location.
    inode_charged_[ino] = true;
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Read(AddrOf(ino, 0), {}));
  }
  co_return it->second;
}

Task<Status> GuessingLayout::WriteInode(const Inode& inode) {
  PFS_ASSERT_SHARD();
  auto it = inodes_.find(inode.ino);
  if (it == inodes_.end()) {
    co_return Status(ErrorCode::kNotFound, "unknown inode");
  }
  it->second = inode;
  co_return OkStatus();
}

Task<Status> GuessingLayout::FreeInode(uint64_t ino) {
  PFS_ASSERT_SHARD();
  inodes_.erase(ino);
  base_addr_.erase(ino);
  inode_charged_.erase(ino);
  co_return OkStatus();
}

Task<Status> GuessingLayout::ReadFileBlock(uint64_t ino, uint64_t file_block,
                                           std::span<std::byte> out) {
  PFS_ASSERT_SHARD();
  if (!out.empty()) {
    std::memset(out.data(), 0, out.size());  // guessed data is zeroes
  }
  co_return co_await dev_.Read(AddrOf(ino, file_block), out);
}

Task<Status> GuessingLayout::WriteFileBlocks(uint64_t ino,
                                             std::span<CacheBlock* const> blocks) {
  PFS_ASSERT_SHARD();
  for (const CacheBlock* b : blocks) {
    PFS_CO_RETURN_IF_ERROR(co_await dev_.Write(
        AddrOf(ino, b->id.block_no),
        std::span<const std::byte>(b->data.data(), b->data.size())));
  }
  co_return OkStatus();
}

Task<Status> GuessingLayout::TruncateBlocks(uint64_t ino, uint64_t from_block) {
  PFS_ASSERT_SHARD();
  (void)ino;
  (void)from_block;
  co_return OkStatus();  // nothing to account: space is guessed, not managed
}

void RegisterGuessingLayout() {
  LayoutRegistry::Register(
      "guessing",
      {[](LayoutContext ctx) -> std::unique_ptr<StorageLayout> {
         GuessingConfig guess;
         guess.fs_id = static_cast<uint32_t>(ctx.fs_index);
         guess.seed = ctx.config->seed + static_cast<uint64_t>(ctx.fs_index);
         return std::make_unique<GuessingLayout>(ctx.sched, std::move(ctx.dev), guess);
       },
       [](const SystemConfig&) -> uint64_t { return 64; },
       nullptr});
}

}  // namespace pfs
