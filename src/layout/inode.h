// On-disk inode. Fixed 128-byte encoding; 25 inodes pack into a 4 KB block.
//
// Block pointers are indirected through block-map chunks (block_map.h): the
// inode holds the addresses of up to 12 chunk blocks, each mapping 512 file
// blocks, for a 24 MiB maximum file size with 4 KB blocks — ample for the
// trace workloads and uniform across all layouts.
#ifndef PFS_LAYOUT_INODE_H_
#define PFS_LAYOUT_INODE_H_

#include <array>
#include <cstdint>

#include "core/result.h"
#include "core/serializer.h"
#include "layout/types.h"
#include "sched/time.h"

namespace pfs {

struct Inode {
  static constexpr size_t kDiskSize = 160;  // bytes on disk (129 used + growth room)
  static constexpr size_t kBmapChunks = 12;

  uint64_t ino = 0;
  FileType type = FileType::kNone;
  uint32_t nlink = 0;
  uint64_t size = 0;
  int64_t mtime_ns = 0;
  uint32_t flags = 0;
  std::array<uint64_t, kBmapChunks> bmap = {};  // block-map chunk addresses

  bool allocated() const { return type != FileType::kNone; }

  void Serialize(Serializer* out) const;
  static Result<Inode> Deserialize(Deserializer* in);

  // Maximum file size representable given a block size.
  static uint64_t MaxFileSize(uint32_t block_size) {
    const uint64_t entries_per_chunk = block_size / 8;
    return kBmapChunks * entries_per_chunk * block_size;
  }
};

}  // namespace pfs

#endif  // PFS_LAYOUT_INODE_H_
