#include "layout/inode.h"

namespace pfs {

const char* FileTypeName(FileType t) {
  switch (t) {
    case FileType::kNone:
      return "none";
    case FileType::kRegular:
      return "regular";
    case FileType::kDirectory:
      return "directory";
    case FileType::kSymlink:
      return "symlink";
    case FileType::kMultimedia:
      return "multimedia";
  }
  return "?";
}

void Inode::Serialize(Serializer* out) const {
  const size_t start = out->size();
  out->PutU64(ino);
  out->PutU8(static_cast<uint8_t>(type));
  out->PutU32(nlink);
  out->PutU64(size);
  out->PutI64(mtime_ns);
  out->PutU32(flags);
  for (uint64_t addr : bmap) {
    out->PutU64(addr);
  }
  // Pad to the fixed on-disk size.
  while (out->size() - start < kDiskSize) {
    out->PutU8(0);
  }
  PFS_CHECK(out->size() - start == kDiskSize);
}

Result<Inode> Inode::Deserialize(Deserializer* in) {
  Inode inode;
  PFS_ASSIGN_OR_RETURN(inode.ino, in->TakeU64());
  PFS_ASSIGN_OR_RETURN(uint8_t type, in->TakeU8());
  if (type > static_cast<uint8_t>(FileType::kMultimedia)) {
    return Status(ErrorCode::kCorrupt, "bad inode type");
  }
  inode.type = static_cast<FileType>(type);
  PFS_ASSIGN_OR_RETURN(inode.nlink, in->TakeU32());
  PFS_ASSIGN_OR_RETURN(inode.size, in->TakeU64());
  PFS_ASSIGN_OR_RETURN(inode.mtime_ns, in->TakeI64());
  PFS_ASSIGN_OR_RETURN(inode.flags, in->TakeU32());
  for (auto& addr : inode.bmap) {
    PFS_ASSIGN_OR_RETURN(addr, in->TakeU64());
  }
  constexpr size_t kUsed = 8 + 1 + 4 + 8 + 8 + 4 + 12 * 8;
  PFS_RETURN_IF_ERROR(in->Skip(kDiskSize - kUsed));
  return inode;
}

}  // namespace pfs
