#include "driver/io_executor.h"

namespace pfs {

IoExecutor::IoExecutor(int num_threads, std::unique_ptr<IoEngine> engine)
    : engine_(engine != nullptr ? std::move(engine)
                                : std::make_unique<ThreadPoolIoEngine>()) {
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void IoExecutor::SubmitBatch(std::span<BatchIo> batch, std::function<void()> on_complete) {
  Execute([this, batch, cb = std::move(on_complete)] {
    engine_->RunBatch(batch);
    cb();
  });
}

void IoExecutor::Execute(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void IoExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopped and drained
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

}  // namespace pfs
