// Disk-drivers (paper §3/§4): a combined read-write queue per disk, a
// pluggable queue-scheduling policy (C-LOOK by default, as in the paper's
// only production driver), and a device-specific dispatch hook.
//
// The queueing, measurement, and policy code is identical for the simulated
// driver (SimDiskDriver: bus protocol + DiskModel) and the real driver
// (FileBackedDriver: a Unix file as back-end) — this symmetry is the
// cut-and-paste property the paper is about.
#ifndef PFS_DRIVER_DISK_DRIVER_H_
#define PFS_DRIVER_DISK_DRIVER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "disk/io_request.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"
#include "volume/block_device.h"

namespace pfs {

class MetricRegistry;
class CounterMetric;
class GaugeMetric;
class HistogramMetric;

// Queue-scheduling policies (paper §3 cites SCAN, C-SCAN, LOOK, C-LOOK).
// The arm-positioning cost of sweeping to the physical edge is modelled by
// the disk itself, so SCAN behaves as LOOK and C-SCAN as C-LOOK here.
enum class QueueSchedPolicy : uint8_t { kFcfs, kSstf, kScan, kCscan, kLook, kClook };

const char* QueueSchedPolicyName(QueueSchedPolicy p);
// Inverse of QueueSchedPolicyName; nullopt for unknown names.
std::optional<QueueSchedPolicy> QueueSchedPolicyFromName(std::string_view name);
// "FCFS, SSTF, SCAN, C-SCAN, LOOK, C-LOOK" — for validation error messages.
std::string QueueSchedPolicyNames();

// A disk driver is the volume layer's leaf device: it satisfies the
// BlockDevice contract directly, so layouts (through volumes) never see
// which driver backs them.
class DiskDriver : public BlockDevice {};

// Base driver: owns the I/O queue and its scheduling policy; derived classes
// implement Dispatch() for their device. One request is outstanding at the
// device at a time (the device's own cache provides overlap).
class QueueingDiskDriver : public DiskDriver, public StatSource {
 public:
  QueueingDiskDriver(Scheduler* sched, std::string name, QueueSchedPolicy policy);

  // Spawns the driver's worker daemon; call once.
  void Start();

  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override;
  Task<Status> Write(uint64_t sector, uint32_t count, std::span<const std::byte> in) override;

  const std::string& name() const { return name_; }
  QueueSchedPolicy policy() const { return policy_; }
  size_t queue_length() const { return queue_.size(); }
  size_t QueueDepthHint() const override { return queue_.size(); }

  // StatSource
  std::string stat_name() const override { return "driver." + name_; }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;
  void StatResetInterval() override;

  uint64_t ops_completed() const { return ops_.value(); }
  const Histogram& queue_length_hist() const { return queue_len_; }
  const LatencyHistogram& io_latency() const { return latency_; }
  const LatencyHistogram& queue_wait() const { return queue_wait_; }

  uint64_t batches() const { return batches_.value(); }
  const Histogram& batch_size_hist() const { return batch_size_; }

  // Registers this driver's families with the live metrics plane under a
  // {disk="<name>"} label. Derived drivers may extend it (FileBackedDriver
  // adds its io_uring submit latency).
  virtual void BindMetrics(MetricRegistry* registry);

 protected:
  Scheduler* sched() { return sched_; }

  // Performs `req` on the device and returns when it completed (req->result
  // and req->complete_time filled in). Subclasses override this or
  // DispatchBatch; the defaults delegate to each other, so overriding
  // neither CHECK-fails on first dispatch.
  virtual Task<> Dispatch(IoRequest* req);

  // Performs a policy-ordered batch of requests and returns when every one
  // completed. The default dispatches them one at a time; batching drivers
  // (FileBackedDriver) override it to submit the whole batch at once.
  virtual Task<> DispatchBatch(std::span<IoRequest* const> batch);

  // How many queued requests one dispatch may drain (1 = no batching). The
  // picks stay policy-ordered: each drain continues the sweep from the
  // previous pick's sector.
  virtual size_t MaxBatchSize() const { return 1; }

 private:
  Task<Status> Submit(IoRequest* req);
  Task<> Worker();
  size_t PickNextIndex();

  Scheduler* sched_;
  std::string name_;
  QueueSchedPolicy policy_;
  bool started_ = false;

  std::vector<IoRequest*> queue_;  // arrival order; policy picks an index
  Event work_;
  uint64_t head_position_ = 0;  // sector of the last dispatched request
  int sweep_direction_ = 1;     // for SCAN/LOOK

  Counter ops_;
  Counter reads_;
  Counter writes_;
  Counter batches_;              // device dispatches (>= 1 request each)
  Histogram batch_size_{0, 64, 64};  // requests per dispatch
  Histogram queue_len_{0, 128, 128};
  LatencyHistogram queue_wait_;
  LatencyHistogram latency_;

  // Live metrics plane (null until BindMetrics).
  CounterMetric* m_reads_ = nullptr;
  CounterMetric* m_writes_ = nullptr;
  CounterMetric* m_batches_ = nullptr;
  GaugeMetric* m_queue_depth_ = nullptr;
  HistogramMetric* m_batch_size_ = nullptr;
  HistogramMetric* m_queue_wait_ = nullptr;
  HistogramMetric* m_latency_ = nullptr;
};

}  // namespace pfs

#endif  // PFS_DRIVER_DISK_DRIVER_H_
