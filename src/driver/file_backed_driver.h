// The production disk-driver (paper §3): "uses a Unix-file (ordinary file,
// or raw-device) as back-end" with the same combined read-write queue and
// C-LOOK policy as the simulated driver. Batches of queued requests are
// submitted together through the IoExecutor's engine (preadv/pwritev pool
// or io_uring); completions return to the scheduler via Post().
#ifndef PFS_DRIVER_FILE_BACKED_DRIVER_H_
#define PFS_DRIVER_FILE_BACKED_DRIVER_H_

#include <memory>
#include <string>

#include "core/result.h"
#include "driver/disk_driver.h"
#include "driver/io_executor.h"

namespace pfs {

class FileBackedDriver final : public QueueingDiskDriver {
 public:
  // The sector size the backing file is addressed in.
  static constexpr uint32_t kSectorBytes = 512;

  // One dispatch drains up to this many queued requests into one engine
  // batch (policy-ordered, so contiguous requests arrive adjacent and the
  // engine can vector them).
  static constexpr size_t kMaxBatch = 32;

  // Opens (creating and sizing if needed) `path` as the backing store.
  static Result<std::unique_ptr<FileBackedDriver>> Create(
      Scheduler* sched, std::string name, const std::string& path, uint64_t size_bytes,
      IoExecutor* executor, QueueSchedPolicy policy = QueueSchedPolicy::kClook);

  ~FileBackedDriver() override;

  uint64_t total_sectors() const override { return total_sectors_; }
  uint32_t sector_bytes() const override { return kSectorBytes; }

  // The engine actually performing this driver's I/O ("threadpool", "uring").
  const char* engine_name() const { return executor_->engine()->name(); }

  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;

  void BindMetrics(MetricRegistry* registry) override;

 protected:
  Task<> DispatchBatch(std::span<IoRequest* const> batch) override;
  size_t MaxBatchSize() const override { return kMaxBatch; }

 private:
  FileBackedDriver(Scheduler* sched, std::string name, int fd, uint64_t total_sectors,
                   IoExecutor* executor, QueueSchedPolicy policy)
      : QueueingDiskDriver(sched, std::move(name), policy),
        fd_(fd),
        total_sectors_(total_sectors),
        executor_(executor) {}

  int fd_;
  uint64_t total_sectors_;
  IoExecutor* executor_;
  // Wall time from handing a batch to the executor to its engine completion
  // (pool wait + submission syscalls + device time), in microseconds.
  Histogram submit_us_{0, 65536, 64};
  HistogramMetric* m_submit_ = nullptr;  // live metrics twin of submit_us_
};

}  // namespace pfs

#endif  // PFS_DRIVER_FILE_BACKED_DRIVER_H_
