// Simulated disk-driver (paper §4): same interface as the real driver; the
// difference is internal. Dispatch acquires the host/disk connection,
// simulates sending the command (plus data for writes), releases the
// connection, activates the request on the simulated disk, and waits for the
// disk to respond. "The system itself does not know it is communicating with
// a 'fake' disk."
#ifndef PFS_DRIVER_SIM_DISK_DRIVER_H_
#define PFS_DRIVER_SIM_DISK_DRIVER_H_

#include <string>

#include "bus/connection.h"
#include "disk/disk_model.h"
#include "driver/disk_driver.h"

namespace pfs {

class SimDiskDriver final : public QueueingDiskDriver {
 public:
  SimDiskDriver(Scheduler* sched, std::string name, DiskModel* disk, Connection* bus,
                QueueSchedPolicy policy = QueueSchedPolicy::kClook)
      : QueueingDiskDriver(sched, std::move(name), policy), disk_(disk), bus_(bus) {}

  uint64_t total_sectors() const override { return disk_->params().geometry.TotalSectors(); }
  uint32_t sector_bytes() const override { return disk_->params().geometry.sector_bytes; }

 protected:
  Task<> Dispatch(IoRequest* req) override;

 private:
  // SCSI command block size for the command phase.
  static constexpr uint64_t kCommandBytes = 32;

  DiskModel* disk_;
  Connection* bus_;
};

}  // namespace pfs

#endif  // PFS_DRIVER_SIM_DISK_DRIVER_H_
