#include "driver/disk_driver.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "system/component_registry.h"

namespace pfs {

const char* QueueSchedPolicyName(QueueSchedPolicy p) {
  switch (p) {
    case QueueSchedPolicy::kFcfs:
      return "FCFS";
    case QueueSchedPolicy::kSstf:
      return "SSTF";
    case QueueSchedPolicy::kScan:
      return "SCAN";
    case QueueSchedPolicy::kCscan:
      return "C-SCAN";
    case QueueSchedPolicy::kLook:
      return "LOOK";
    case QueueSchedPolicy::kClook:
      return "C-LOOK";
  }
  return "?";
}

namespace {
// The one list both the parser and the error message enumerate.
constexpr QueueSchedPolicy kAllQueueSchedPolicies[] = {
    QueueSchedPolicy::kFcfs, QueueSchedPolicy::kSstf,  QueueSchedPolicy::kScan,
    QueueSchedPolicy::kCscan, QueueSchedPolicy::kLook, QueueSchedPolicy::kClook};
}  // namespace

void RegisterBuiltinQueuePolicies() {
  for (QueueSchedPolicy p : kAllQueueSchedPolicies) {
    QueuePolicyRegistry::Register(QueueSchedPolicyName(p), p);
  }
}

std::optional<QueueSchedPolicy> QueueSchedPolicyFromName(std::string_view name) {
  const QueueSchedPolicy* policy = QueuePolicyRegistry::Find(name);
  if (policy == nullptr) {
    return std::nullopt;
  }
  return *policy;
}

std::string QueueSchedPolicyNames() { return QueuePolicyRegistry::NameList(); }

QueueingDiskDriver::QueueingDiskDriver(Scheduler* sched, std::string name,
                                       QueueSchedPolicy policy)
    : sched_(sched), name_(std::move(name)), policy_(policy), work_(sched) {}

void QueueingDiskDriver::BindMetrics(MetricRegistry* registry) {
  const std::string labels = "disk=\"" + name_ + "\"";
  m_reads_ = registry->Counter("disk_reads_total", "Read requests submitted", labels);
  m_writes_ = registry->Counter("disk_writes_total", "Write requests submitted", labels);
  m_batches_ = registry->Counter("disk_batches_total", "Device dispatches", labels);
  m_queue_depth_ = registry->Gauge("disk_queue_depth", "Requests waiting in the driver queue",
                                   labels);
  m_batch_size_ =
      registry->Histogram("disk_batch_size", "Requests drained per dispatch", labels);
  m_queue_wait_ = registry->Histogram("disk_queue_wait_seconds",
                                      "Enqueue-to-dispatch wait", labels, /*scale=*/1e-9);
  m_latency_ = registry->Histogram("disk_request_seconds",
                                   "Enqueue-to-completion request latency", labels,
                                   /*scale=*/1e-9);
}

void QueueingDiskDriver::Start() {
  PFS_CHECK_MSG(!started_, "driver started twice");
  started_ = true;
  sched_->SpawnDaemon("driver." + name_, Worker());
}

Task<Status> QueueingDiskDriver::Read(uint64_t sector, uint32_t count,
                                      std::span<std::byte> out) {
  IoRequest req(sched_, IoOp::kRead, sector, count, out, {});
  reads_.Inc();
  if (m_reads_ != nullptr) {
    m_reads_->Inc();
  }
  co_return co_await Submit(&req);
}

Task<Status> QueueingDiskDriver::Write(uint64_t sector, uint32_t count,
                                       std::span<const std::byte> in) {
  IoRequest req(sched_, IoOp::kWrite, sector, count, {}, in);
  writes_.Inc();
  if (m_writes_ != nullptr) {
    m_writes_->Inc();
  }
  co_return co_await Submit(&req);
}

Task<Status> QueueingDiskDriver::Submit(IoRequest* req) {
  PFS_CHECK_MSG(started_, "driver Submit before Start");
  const Thread* issuer = sched_->current_thread();
  if (issuer != nullptr && issuer->trace.active()) {
    req->trace = issuer->trace;
  }
  req->enqueue_time = sched_->Now();
  queue_len_.Record(static_cast<double>(queue_.size()));
  queue_.push_back(req);
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  work_.Signal();
  co_await req->done.Wait();
  queue_wait_.Record(req->dispatch_time - req->enqueue_time);
  latency_.Record(req->complete_time - req->enqueue_time);
  ops_.Inc();
  if (m_latency_ != nullptr) {
    m_queue_wait_->RecordDuration(req->dispatch_time - req->enqueue_time);
    m_latency_->RecordDuration(req->complete_time - req->enqueue_time);
  }
  if (req->trace.active()) {
    // Queue wait and service time fall out of the timestamps the driver
    // already stamps — no extra clock reads on the traced path either.
    const uint64_t tid = issuer != nullptr ? issuer->id() : 0;
    RecordSpan(req->trace, TraceStage::kDriverQueue, tid, req->enqueue_time, req->dispatch_time,
               req->sector_count);
    RecordSpan(req->trace, TraceStage::kDriverIo, tid, req->dispatch_time, req->complete_time,
               req->sector_count);
  }
  co_return req->result;
}

size_t QueueingDiskDriver::PickNextIndex() {
  PFS_CHECK(!queue_.empty());
  switch (policy_) {
    case QueueSchedPolicy::kFcfs:
      return 0;

    case QueueSchedPolicy::kSstf: {
      size_t best = 0;
      uint64_t best_dist = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < queue_.size(); ++i) {
        const uint64_t s = queue_[i]->sector;
        const uint64_t dist = s > head_position_ ? s - head_position_ : head_position_ - s;
        if (dist < best_dist) {
          best_dist = dist;
          best = i;
        }
      }
      return best;
    }

    case QueueSchedPolicy::kScan:
    case QueueSchedPolicy::kLook: {
      // Continue the sweep; reverse when no request remains ahead.
      for (int attempt = 0; attempt < 2; ++attempt) {
        size_t best = queue_.size();
        uint64_t best_key = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < queue_.size(); ++i) {
          const uint64_t s = queue_[i]->sector;
          const bool ahead = sweep_direction_ > 0 ? s >= head_position_ : s <= head_position_;
          if (!ahead) {
            continue;
          }
          const uint64_t key = sweep_direction_ > 0 ? s - head_position_ : head_position_ - s;
          if (key < best_key) {
            best_key = key;
            best = i;
          }
        }
        if (best < queue_.size()) {
          return best;
        }
        sweep_direction_ = -sweep_direction_;
      }
      return 0;  // unreachable with a non-empty queue, but keep it total
    }

    case QueueSchedPolicy::kCscan:
    case QueueSchedPolicy::kClook: {
      // Smallest sector at-or-above the head; wrap to the smallest overall.
      size_t best = queue_.size();
      uint64_t best_sector = std::numeric_limits<uint64_t>::max();
      size_t lowest = 0;
      uint64_t lowest_sector = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < queue_.size(); ++i) {
        const uint64_t s = queue_[i]->sector;
        if (s < lowest_sector) {
          lowest_sector = s;
          lowest = i;
        }
        if (s >= head_position_ && s < best_sector) {
          best_sector = s;
          best = i;
        }
      }
      return best < queue_.size() ? best : lowest;
    }
  }
  return 0;
}

Task<> QueueingDiskDriver::Dispatch(IoRequest*) {
  // Only reachable through the default DispatchBatch loop: the subclass
  // overrode neither dispatch hook.
  PFS_CHECK_MSG(false, "driver overrides neither Dispatch nor DispatchBatch");
  co_return;
}

Task<> QueueingDiskDriver::DispatchBatch(std::span<IoRequest* const> batch) {
  for (IoRequest* req : batch) {
    co_await Dispatch(req);
  }
}

Task<> QueueingDiskDriver::Worker() {
  const uint64_t worker_tid = sched_->current_thread()->id();
  std::vector<IoRequest*> batch;
  for (;;) {
    while (queue_.empty()) {
      co_await work_.Wait();
    }
    // Drain up to MaxBatchSize requests in policy order into one dispatch:
    // each pick advances the head, so the batch follows the same sweep the
    // one-at-a-time loop would have taken.
    batch.clear();
    const size_t max_batch = std::max<size_t>(1, MaxBatchSize());
    while (!queue_.empty() && batch.size() < max_batch) {
      const size_t idx = PickNextIndex();
      IoRequest* req = queue_[idx];
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(idx));
      head_position_ = req->sector;
      req->dispatch_time = sched_->Now();
      batch.push_back(req);
    }
    batches_.Inc();
    batch_size_.Record(static_cast<double>(batch.size()));
    if (m_batches_ != nullptr) {
      m_batches_->Inc();
      m_batch_size_->Record(static_cast<int64_t>(batch.size()));
      m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    // Attribute the batch to the first traced request it carries (a batch
    // can mix traced client requests with untraced daemon I/O).
    TraceContext batch_ctx;
    for (const IoRequest* req : batch) {
      if (req->trace.active()) {
        batch_ctx = req->trace;
        break;
      }
    }
    const TimePoint batch_begin = sched_->Now();
    co_await DispatchBatch(batch);
    if (batch_ctx.active()) {
      RecordSpan(batch_ctx, TraceStage::kDriverBatch, worker_tid, batch_begin, sched_->Now(),
                 batch.size());
    }
  }
}

std::string QueueingDiskDriver::StatReport(bool with_histograms) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "policy=%s ops=%llu reads=%llu writes=%llu queued=%zu "
                "batches=%llu reqs/batch=%.2f\n"
                "latency: %s\nqueue-wait: %s\nqueue-length: %s\n",
                QueueSchedPolicyName(policy_), static_cast<unsigned long long>(ops_.value()),
                static_cast<unsigned long long>(reads_.value()),
                static_cast<unsigned long long>(writes_.value()), queue_.size(),
                static_cast<unsigned long long>(batches_.value()), batch_size_.mean(),
                latency_.Summary().c_str(), queue_wait_.Summary().c_str(),
                queue_len_.Summary().c_str());
  std::string out(buf);
  if (with_histograms) {
    out += "queue-length histogram:\n" + queue_len_.BucketDump();
  }
  return out;
}

std::string QueueingDiskDriver::StatJson() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"policy\":\"%s\",\"ops\":%llu,\"reads\":%llu,\"writes\":%llu,"
                "\"batches\":%llu,\"reqs_per_batch\":%.3f,",
                QueueSchedPolicyName(policy_), static_cast<unsigned long long>(ops_.value()),
                static_cast<unsigned long long>(reads_.value()),
                static_cast<unsigned long long>(writes_.value()),
                static_cast<unsigned long long>(batches_.value()), batch_size_.mean());
  std::string out(buf);
  if (m_latency_ != nullptr) {
    // Bound to the metrics plane: the scrape and StatJson share one source.
    out += m_latency_->LatencyMsJsonObject("latency_ms");
    out += ",";
    out += m_queue_wait_->LatencyMsJsonObject("queue_wait_ms");
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\"latency_ms\":{\"mean\":%.4f,\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f},"
                  "\"queue_wait_ms\":{\"mean\":%.4f,\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f}",
                  latency_.mean().ToMillisF(), latency_.Percentile(0.5).ToMillisF(),
                  latency_.Percentile(0.95).ToMillisF(), latency_.Percentile(0.99).ToMillisF(),
                  queue_wait_.mean().ToMillisF(), queue_wait_.Percentile(0.5).ToMillisF(),
                  queue_wait_.Percentile(0.95).ToMillisF(),
                  queue_wait_.Percentile(0.99).ToMillisF());
    out += buf;
  }
  out += "}";
  return out;
}

void QueueingDiskDriver::StatResetInterval() {
  queue_len_.Reset();
  batch_size_.Reset();
  queue_wait_.Reset();
  latency_.Reset();
}

}  // namespace pfs
