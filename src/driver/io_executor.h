// A small pool of OS threads for blocking system calls (pread/pwrite) made
// on behalf of the on-line system, keeping the cooperative scheduler thread
// responsive. Completions are delivered back via Scheduler::Post.
//
// Batches go through a pluggable IoEngine (io_engine.h): the portable
// thread-pool engine issues preadv/pwritev on the pool thread; the io_uring
// engine submits the whole batch with one syscall. Either way the pool
// thread blocks for the batch and then runs the single completion callback.
#ifndef PFS_DRIVER_IO_EXECUTOR_H_
#define PFS_DRIVER_IO_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "driver/io_engine.h"

namespace pfs {

class IoExecutor {
 public:
  // `engine` performs the batches; nullptr selects ThreadPoolIoEngine.
  explicit IoExecutor(int num_threads = 2, std::unique_ptr<IoEngine> engine = nullptr);
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  // Runs `fn` on a pool thread. `fn` is responsible for posting its
  // completion back to the scheduler.
  void Execute(std::function<void()> fn);

  // Performs every descriptor of `batch` on a pool thread through the
  // engine, then runs `on_complete` (still on the pool thread — it is
  // responsible for posting back to the scheduler). The caller keeps the
  // descriptor storage alive until `on_complete` runs; per-descriptor
  // results land in BatchIo::result.
  void SubmitBatch(std::span<BatchIo> batch, std::function<void()> on_complete);

  IoEngine* engine() const { return engine_.get(); }

 private:
  void WorkerLoop();

  std::unique_ptr<IoEngine> engine_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pfs

#endif  // PFS_DRIVER_IO_EXECUTOR_H_
