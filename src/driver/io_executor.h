// A small pool of OS threads for blocking system calls (pread/pwrite) made
// on behalf of the on-line system, keeping the cooperative scheduler thread
// responsive. Completions are delivered back via Scheduler::Post.
#ifndef PFS_DRIVER_IO_EXECUTOR_H_
#define PFS_DRIVER_IO_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfs {

class IoExecutor {
 public:
  explicit IoExecutor(int num_threads = 2);
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  // Runs `fn` on a pool thread. `fn` is responsible for posting its
  // completion back to the scheduler.
  void Execute(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pfs

#endif  // PFS_DRIVER_IO_EXECUTOR_H_
