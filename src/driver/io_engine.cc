#include "driver/io_engine.h"

#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "system/component_registry.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#define PFS_HAS_IO_URING 1
#else
#define PFS_HAS_IO_URING 0
#endif

namespace pfs {
namespace {

// Runs of more iovecs than this are split (IOV_MAX is 1024 on Linux; stay
// comfortably below it).
constexpr size_t kMaxIov = 256;

uint64_t ByteLen(const BatchIo& desc) {
  return desc.op == IoOp::kRead ? desc.read_buf.size() : desc.write_buf.size();
}

Status ErrnoStatus(const char* what) {
  return Status(ErrorCode::kIoError, std::string(what) + ": " + std::strerror(errno));
}

// The one full-transfer loop every path bottoms out in: continues a short
// transfer from where it stopped, retries EINTR, and turns a zero-byte read
// (EOF inside the image) into an error instead of partial data. `skip` is
// how many leading bytes a previous attempt already moved.
Status FullTransfer(const BatchIo& desc, uint64_t skip) {
  const uint64_t total = ByteLen(desc);
  uint64_t done = skip;
  while (done < total) {
    ssize_t n;
    if (desc.op == IoOp::kRead) {
      n = ::pread(desc.fd, desc.read_buf.data() + done, total - done,
                  static_cast<off_t>(desc.offset + done));
    } else {
      n = ::pwrite(desc.fd, desc.write_buf.data() + done, total - done,
                   static_cast<off_t>(desc.offset + done));
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus(desc.op == IoOp::kRead ? "pread" : "pwrite");
    }
    if (n == 0) {
      return Status(ErrorCode::kIoError, "pread: unexpected EOF mid-transfer");
    }
    done += static_cast<uint64_t>(n);
  }
  return OkStatus();
}

// One contiguous same-op run of a batch through preadv/pwritev, looping to
// full transfer across the whole run. Descriptors fully covered when an
// error stops the loop keep their OkStatus; the rest share the error.
void RunVectored(std::span<BatchIo> run) {
  const bool is_read = run[0].op == IoOp::kRead;
  uint64_t total = 0;
  for (const BatchIo& desc : run) {
    total += ByteLen(desc);
  }
  uint64_t done = 0;
  Status error = OkStatus();
  while (done < total) {
    // Rebuild the iovec window past the bytes already moved.
    struct iovec iov[kMaxIov];
    int iov_count = 0;
    uint64_t prefix = 0;
    for (const BatchIo& desc : run) {
      const uint64_t len = ByteLen(desc);
      if (prefix + len > done) {
        const uint64_t skip = done > prefix ? done - prefix : 0;
        // pwritev does not write through its iovecs; the const_cast is safe.
        std::byte* base = is_read ? desc.read_buf.data()
                                  : const_cast<std::byte*>(desc.write_buf.data());
        iov[iov_count].iov_base = base + skip;
        iov[iov_count].iov_len = static_cast<size_t>(len - skip);
        ++iov_count;
      }
      prefix += len;
    }
    const off_t offset = static_cast<off_t>(run[0].offset + done);
    const ssize_t n = is_read ? ::preadv(run[0].fd, iov, iov_count, offset)
                              : ::pwritev(run[0].fd, iov, iov_count, offset);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      error = ErrnoStatus(is_read ? "preadv" : "pwritev");
      break;
    }
    if (n == 0) {
      error = Status(ErrorCode::kIoError, "preadv: unexpected EOF mid-transfer");
      break;
    }
    done += static_cast<uint64_t>(n);
  }
  uint64_t prefix = 0;
  for (BatchIo& desc : run) {
    prefix += ByteLen(desc);
    desc.result = prefix <= done ? OkStatus() : error;
  }
}

// Shared by ThreadPoolIoEngine and every fallback path: performs the batch
// synchronously, vectoring contiguous same-op runs.
void RunBatchSync(std::span<BatchIo> batch) {
  size_t i = 0;
  while (i < batch.size()) {
    size_t j = i + 1;
    uint64_t end = batch[i].offset + ByteLen(batch[i]);
    while (j < batch.size() && batch[j].op == batch[i].op && batch[j].fd == batch[i].fd &&
           batch[j].offset == end && j - i < kMaxIov && ByteLen(batch[j]) > 0) {
      end += ByteLen(batch[j]);
      ++j;
    }
    if (j - i == 1) {
      batch[i].result = FullTransfer(batch[i], 0);
    } else {
      RunVectored(batch.subspan(i, j - i));
    }
    i = j;
  }
}

}  // namespace

void ThreadPoolIoEngine::RunBatch(std::span<BatchIo> batch) { RunBatchSync(batch); }

// -- UringIoEngine -----------------------------------------------------------

#if PFS_HAS_IO_URING

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

}  // namespace

// One mmap'd submission/completion ring pair. Single-threaded use (the
// engine's pool hands a ring to exactly one batch at a time); the atomics
// below order our accesses against the kernel's, not other user threads.
struct UringIoEngine::Ring {
  int fd = -1;
  io_uring_params params{};
  void* sq_ptr = MAP_FAILED;
  size_t sq_len = 0;
  void* cq_ptr = MAP_FAILED;
  size_t cq_len = 0;
  io_uring_sqe* sqes = static_cast<io_uring_sqe*>(MAP_FAILED);
  size_t sqes_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  ~Ring() {
    if (sqes != MAP_FAILED) {
      ::munmap(sqes, sqes_len);
    }
    if (cq_ptr != MAP_FAILED && cq_ptr != sq_ptr) {
      ::munmap(cq_ptr, cq_len);
    }
    if (sq_ptr != MAP_FAILED) {
      ::munmap(sq_ptr, sq_len);
    }
    if (fd >= 0) {
      ::close(fd);
    }
  }

  static std::unique_ptr<Ring> Create(unsigned entries) {
    auto ring = std::make_unique<Ring>();
    ring->fd = SysIoUringSetup(entries, &ring->params);
    if (ring->fd < 0) {
      return nullptr;
    }
    const io_uring_params& p = ring->params;
    ring->sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    ring->cq_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) {
      ring->sq_len = ring->cq_len = std::max(ring->sq_len, ring->cq_len);
    }
    ring->sq_ptr = ::mmap(nullptr, ring->sq_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQ_RING);
    if (ring->sq_ptr == MAP_FAILED) {
      return nullptr;
    }
    ring->cq_ptr = single
                       ? ring->sq_ptr
                       : ::mmap(nullptr, ring->cq_len, PROT_READ | PROT_WRITE,
                                MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_CQ_RING);
    if (ring->cq_ptr == MAP_FAILED) {
      return nullptr;
    }
    ring->sqes_len = p.sq_entries * sizeof(io_uring_sqe);
    ring->sqes = static_cast<io_uring_sqe*>(::mmap(nullptr, ring->sqes_len,
                                                   PROT_READ | PROT_WRITE,
                                                   MAP_SHARED | MAP_POPULATE, ring->fd,
                                                   IORING_OFF_SQES));
    if (ring->sqes == static_cast<io_uring_sqe*>(MAP_FAILED)) {
      return nullptr;
    }
    auto* sq = static_cast<unsigned char*>(ring->sq_ptr);
    auto* cq = static_cast<unsigned char*>(ring->cq_ptr);
    ring->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    ring->sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    ring->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    ring->cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return ring;
  }
};

bool UringIoEngine::Available() {
  static const bool available = [] {
    io_uring_params params{};
    const int fd = SysIoUringSetup(4, &params);
    if (fd < 0) {
      return false;
    }
    ::close(fd);
    return true;
  }();
  return available;
}

UringIoEngine::UringIoEngine() = default;
UringIoEngine::~UringIoEngine() = default;

UringIoEngine::Ring* UringIoEngine::AcquireRing() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_rings_.empty()) {
    Ring* ring = free_rings_.back();
    free_rings_.pop_back();
    return ring;
  }
  std::unique_ptr<Ring> ring = Ring::Create(kRingEntries);
  if (ring == nullptr) {
    return nullptr;  // caller falls back to the synchronous path
  }
  rings_.push_back(std::move(ring));
  return rings_.back().get();
}

void UringIoEngine::ReleaseRing(Ring* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  free_rings_.push_back(ring);
}

void UringIoEngine::RunBatch(std::span<BatchIo> batch) {
  Ring* ring = AcquireRing();
  if (ring == nullptr) {
    RunBatchSync(batch);
    return;
  }
  const unsigned entries = ring->params.sq_entries;
  const unsigned sq_mask = *ring->sq_mask;
  const unsigned cq_mask = *ring->cq_mask;
  size_t next = 0;  // next descriptor to submit
  while (next < batch.size()) {
    const size_t chunk = std::min<size_t>(batch.size() - next, entries);
    unsigned tail = *ring->sq_tail;
    for (size_t k = 0; k < chunk; ++k) {
      const BatchIo& desc = batch[next + k];
      const unsigned idx = tail & sq_mask;
      io_uring_sqe* sqe = &ring->sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = desc.op == IoOp::kRead ? IORING_OP_READ : IORING_OP_WRITE;
      sqe->fd = desc.fd;
      sqe->off = desc.offset;
      sqe->addr = desc.op == IoOp::kRead
                      ? reinterpret_cast<uint64_t>(desc.read_buf.data())
                      : reinterpret_cast<uint64_t>(desc.write_buf.data());
      sqe->len = static_cast<unsigned>(ByteLen(desc));
      sqe->user_data = next + k;
      ring->sq_array[idx] = idx;
      ++tail;
    }
    __atomic_store_n(ring->sq_tail, tail, __ATOMIC_RELEASE);
    // One syscall submits and waits for the whole chunk.
    unsigned reaped = 0;
    int ret = SysIoUringEnter(ring->fd, static_cast<unsigned>(chunk),
                              static_cast<unsigned>(chunk), IORING_ENTER_GETEVENTS);
    while (reaped < chunk) {
      if (ret < 0 && errno != EINTR) {
        // Submission itself failed: the chunk's descriptors fall back.
        for (size_t k = 0; k < chunk; ++k) {
          BatchIo& desc = batch[next + k];
          desc.result = FullTransfer(desc, 0);
        }
        reaped = static_cast<unsigned>(chunk);
        break;
      }
      unsigned head = *ring->cq_head;
      const unsigned cq_tail = __atomic_load_n(ring->cq_tail, __ATOMIC_ACQUIRE);
      while (head != cq_tail && reaped < chunk) {
        const io_uring_cqe* cqe = &ring->cqes[head & cq_mask];
        BatchIo& desc = batch[cqe->user_data];
        const uint64_t want = ByteLen(desc);
        if (cqe->res >= 0 && static_cast<uint64_t>(cqe->res) == want) {
          desc.result = OkStatus();
        } else {
          // Error or short completion: the portable loop finishes (or
          // produces the definitive Status for) the remainder.
          const uint64_t moved = cqe->res > 0 ? static_cast<uint64_t>(cqe->res) : 0;
          desc.result = FullTransfer(desc, moved);
        }
        ++head;
        ++reaped;
      }
      __atomic_store_n(ring->cq_head, head, __ATOMIC_RELEASE);
      if (reaped < chunk) {
        ret = SysIoUringEnter(ring->fd, 0, chunk - reaped, IORING_ENTER_GETEVENTS);
      }
    }
    next += chunk;
  }
  ReleaseRing(ring);
}

#else  // !PFS_HAS_IO_URING

struct UringIoEngine::Ring {};

bool UringIoEngine::Available() { return false; }
UringIoEngine::UringIoEngine() = default;
UringIoEngine::~UringIoEngine() = default;
UringIoEngine::Ring* UringIoEngine::AcquireRing() { return nullptr; }
void UringIoEngine::ReleaseRing(Ring*) {}
void UringIoEngine::RunBatch(std::span<BatchIo> batch) { RunBatchSync(batch); }

#endif  // PFS_HAS_IO_URING

void RegisterBuiltinIoEngines() {
  IoEngineRegistry::Register("threadpool", [] {
    return std::unique_ptr<IoEngine>(std::make_unique<ThreadPoolIoEngine>());
  });
  IoEngineRegistry::Register("uring", []() -> std::unique_ptr<IoEngine> {
    if (UringIoEngine::Available()) {
      return std::make_unique<UringIoEngine>();
    }
    // Kernel (or sandbox) refuses io_uring: degrade to the portable engine.
    // The driver's stats report the engine actually in use.
    return std::make_unique<ThreadPoolIoEngine>();
  });
}

}  // namespace pfs
