// I/O engines: how a batch of file reads/writes reaches the kernel on
// behalf of the on-line (file-backed) driver stack.
//
//   ThreadPoolIoEngine  portable: preadv/pwritev per contiguous run of the
//                       batch, plain pread/pwrite otherwise — always
//                       available, and the behavioral baseline
//   UringIoEngine       Linux io_uring via raw syscalls (no liburing): the
//                       whole batch is submitted with one io_uring_enter and
//                       reaped in one pass, so an N-request batch costs one
//                       syscall instead of N
//
// Engines are registered by name in IoEngineRegistry ("threadpool",
// "uring") and resolved at SystemBuilder time from the scenario's
// `system.io_engine` key, like every other component family. The "uring"
// factory probes the kernel at creation and falls back to the thread-pool
// engine when io_uring is unavailable (old kernel, seccomp, RLIMIT) — the
// driver's StatJson reports the engine actually in use.
//
// Every transfer loops until the full count is moved: a short read/write is
// continued from where it stopped, EINTR retries, and a zero-byte read
// (EOF inside the image file) fails the descriptor with a Status instead of
// silently returning partial data.
#ifndef PFS_DRIVER_IO_ENGINE_H_
#define PFS_DRIVER_IO_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/status.h"
#include "disk/io_request.h"

namespace pfs {

// One descriptor of a batch: a read into `read_buf` or a write from
// `write_buf` at byte `offset` of `fd`. The engine fills `result`.
struct BatchIo {
  IoOp op = IoOp::kRead;
  int fd = -1;
  uint64_t offset = 0;
  std::span<std::byte> read_buf;         // read target (op == kRead)
  std::span<const std::byte> write_buf;  // write source (op == kWrite)
  Status result;
};

// A blocking batch performer. RunBatch is invoked from IoExecutor pool
// threads; implementations must be safe to call concurrently.
class IoEngine {
 public:
  virtual ~IoEngine() = default;

  // The registry name of the engine actually performing I/O (a "uring"
  // request that fell back reports "threadpool").
  virtual const char* name() const = 0;

  // Performs every descriptor, blocking until all complete; each
  // descriptor's `result` is filled before returning.
  virtual void RunBatch(std::span<BatchIo> batch) = 0;
};

// Portable engine: contiguous same-op runs of the batch go through one
// preadv/pwritev; everything else through pread/pwrite. All paths loop to
// full transfer.
class ThreadPoolIoEngine final : public IoEngine {
 public:
  const char* name() const override { return "threadpool"; }
  void RunBatch(std::span<BatchIo> batch) override;
};

// io_uring engine (Linux). One ring per concurrently-running batch, drawn
// from a lazily-grown pool, so IoExecutor pool threads never serialize on a
// shared ring. Short completions are finished with the portable
// full-transfer loop (they are rare; correctness over elegance).
class UringIoEngine final : public IoEngine {
 public:
  // Ring capacity per batch submission; larger batches are submitted in
  // chunks of this size.
  static constexpr unsigned kRingEntries = 64;

  // True when the running kernel accepts io_uring_setup (compile-time
  // support alone is not enough: seccomp or sysctl may refuse it).
  static bool Available();

  UringIoEngine();
  ~UringIoEngine() override;

  const char* name() const override { return "uring"; }
  void RunBatch(std::span<BatchIo> batch) override;

 private:
  struct Ring;  // one mmap'd SQ/CQ pair (io_engine.cc)

  Ring* AcquireRing();
  void ReleaseRing(Ring* ring);

  std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  // all created rings
  std::vector<Ring*> free_rings_;             // currently unused
};

// Registers "threadpool" and "uring" in IoEngineRegistry (the "uring"
// factory degrades to ThreadPoolIoEngine when Available() is false).
void RegisterBuiltinIoEngines();

}  // namespace pfs

#endif  // PFS_DRIVER_IO_ENGINE_H_
