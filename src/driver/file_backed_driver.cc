#include "driver/file_backed_driver.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.h"

namespace pfs {

void FileBackedDriver::BindMetrics(MetricRegistry* registry) {
  QueueingDiskDriver::BindMetrics(registry);
  const std::string labels = "disk=\"" + name() + "\"";
  m_submit_ = registry->Histogram("disk_submit_seconds",
                                  "Executor handoff to engine completion", labels,
                                  /*scale=*/1e-6);
}

Result<std::unique_ptr<FileBackedDriver>> FileBackedDriver::Create(
    Scheduler* sched, std::string name, const std::string& path, uint64_t size_bytes,
    IoExecutor* executor, QueueSchedPolicy policy) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size_bytes)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kIoError, "ftruncate " + path + ": " + std::strerror(errno));
  }
  auto driver = std::unique_ptr<FileBackedDriver>(
      new FileBackedDriver(sched, std::move(name), fd, size_bytes / kSectorBytes, executor, policy));
  return driver;
}

FileBackedDriver::~FileBackedDriver() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Task<> FileBackedDriver::DispatchBatch(std::span<IoRequest* const> batch) {
  Scheduler* s = sched();
  s->BeginExternalOp();
  // Descriptor storage lives in this frame; the frame outlives the engine
  // (the final co_await resumes only after the completion Post ran).
  std::vector<BatchIo> descs(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const IoRequest* req = batch[i];
    BatchIo& desc = descs[i];
    desc.op = req->op;
    desc.fd = fd_;
    desc.offset = req->sector * kSectorBytes;
    const size_t bytes = static_cast<size_t>(req->sector_count) * kSectorBytes;
    if (req->op == IoOp::kRead) {
      PFS_CHECK_MSG(req->read_buf.size() >= bytes, "read buffer too small");
      desc.read_buf = req->read_buf.subspan(0, bytes);
    } else {
      PFS_CHECK_MSG(req->write_buf.size() >= bytes, "write buffer too small");
      desc.write_buf = req->write_buf.subspan(0, bytes);
    }
  }
  Notification batch_done(s);
  const auto t0 = std::chrono::steady_clock::now();
  executor_->SubmitBatch(descs, [this, s, batch, &descs, &batch_done, t0] {
    // Pool thread: the engine has filled every desc.result. Stamp the
    // submit time here and deliver everything on the scheduler thread, so
    // all request and histogram mutation stays single-threaded.
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(elapsed)
            .count();
    // Synchronous handoff: the submitting coroutine frame (which owns descs
    // and batch_done) stays suspended on batch_done.Wait() below until this
    // callback runs, so the by-ref captures cannot dangle.
    // pfs-lint: allow(ref-capture-escape)
    s->Post([this, s, batch, &descs, &batch_done, us] {
      for (size_t i = 0; i < batch.size(); ++i) {
        batch[i]->result = descs[i].result;
        batch[i]->complete_time = s->Now();
        batch[i]->done.Notify();
      }
      submit_us_.Record(us);
      if (m_submit_ != nullptr) {
        m_submit_->Record(std::llround(us));
      }
      batch_done.Notify();
      s->EndExternalOp();
    });
  });
  co_await batch_done.Wait();
}

std::string FileBackedDriver::StatReport(bool with_histograms) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "engine=%s submit-us: %s\n", engine_name(),
                submit_us_.Summary().c_str());
  return QueueingDiskDriver::StatReport(with_histograms) + buf;
}

std::string FileBackedDriver::StatJson() const {
  std::string out = QueueingDiskDriver::StatJson();
  out.pop_back();  // extend the base object in place
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\"engine\":\"%s\",\"submit_us\":{\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,"
                "\"p99\":%.1f}}",
                engine_name(), submit_us_.mean(), submit_us_.Percentile(0.5),
                submit_us_.Percentile(0.95), submit_us_.Percentile(0.99));
  return out + buf;
}

}  // namespace pfs
