#include "driver/file_backed_driver.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pfs {

Result<std::unique_ptr<FileBackedDriver>> FileBackedDriver::Create(
    Scheduler* sched, std::string name, const std::string& path, uint64_t size_bytes,
    IoExecutor* executor, QueueSchedPolicy policy) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size_bytes)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kIoError, "ftruncate " + path + ": " + std::strerror(errno));
  }
  auto driver = std::unique_ptr<FileBackedDriver>(
      new FileBackedDriver(sched, std::move(name), fd, size_bytes / kSectorBytes, executor, policy));
  return driver;
}

FileBackedDriver::~FileBackedDriver() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Task<> FileBackedDriver::Dispatch(IoRequest* req) {
  Scheduler* s = sched();
  s->BeginExternalOp();
  executor_->Execute([this, s, req] {
    const off_t offset = static_cast<off_t>(req->sector) * kSectorBytes;
    const size_t bytes = static_cast<size_t>(req->sector_count) * kSectorBytes;
    Status status;
    if (req->op == IoOp::kRead) {
      PFS_CHECK_MSG(req->read_buf.size() >= bytes, "read buffer too small");
      const ssize_t n = ::pread(fd_, req->read_buf.data(), bytes, offset);
      if (n != static_cast<ssize_t>(bytes)) {
        status = Status(ErrorCode::kIoError, "short pread");
      }
    } else {
      PFS_CHECK_MSG(req->write_buf.size() >= bytes, "write buffer too small");
      const ssize_t n = ::pwrite(fd_, req->write_buf.data(), bytes, offset);
      if (n != static_cast<ssize_t>(bytes)) {
        status = Status(ErrorCode::kIoError, "short pwrite");
      }
    }
    s->Post([s, req, status] {
      req->result = status;
      req->complete_time = s->Now();
      req->done.Notify();
      s->EndExternalOp();
    });
  });
  co_await req->done.Wait();
}

}  // namespace pfs
