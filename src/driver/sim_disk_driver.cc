#include "driver/sim_disk_driver.h"

namespace pfs {

Task<> SimDiskDriver::Dispatch(IoRequest* req) {
  // Command phase (and data-out phase for writes) on the shared connection.
  uint64_t out_bytes = kCommandBytes;
  if (req->op == IoOp::kWrite) {
    out_bytes += req->byte_count(sector_bytes());
  }
  co_await bus_->Acquire();
  co_await bus_->Transfer(out_bytes);
  bus_->Release();

  // Activate on the disk; the disk reconnects to respond and fires req->done.
  co_await disk_->Submit(req);
  co_await req->done.Wait();
}

}  // namespace pfs
