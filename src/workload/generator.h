// Probabilistic workload generator (paper §4: "We are also considering a
// component that can be used to hand craft work loads using probabilistic
// means. This component will, given some inputs, generate a work load and
// dispatch it to the simulator."). We build that component: it emits trace
// records with the distributional properties the paper's experiments depend
// on — Zipf file popularity, lognormal sizes, exponential inter-arrivals,
// and a high overwrite factor early in file lifetimes (Baker et al. '91).
//
// SpriteLike() provides calibrations named after the paper's trace runs
// (1a, 1b, 2a, 2b, 3a, 5): 1b is dominated by large parallel writes (the
// NVRAM-drain case) and 5 mixes large writes with heavy stat/read traffic
// (the cache-clutter case), per the paper's descriptions.
#ifndef PFS_WORKLOAD_GENERATOR_H_
#define PFS_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "sched/time.h"
#include "trace/trace.h"

namespace pfs {

struct WorkloadParams {
  uint64_t seed = 1;
  uint32_t clients = 8;
  Duration duration = Duration::Minutes(10);
  double ops_per_sec_per_client = 6.0;  // session/op arrival rate

  uint32_t num_filesystems = 14;
  double fs_zipf_theta = 1.0;  // two clear hot spots emerge
  uint32_t files_per_fs = 300;
  double file_zipf_theta = 0.9;

  double mean_file_kb = 16.0;  // lognormal body
  double file_sigma = 1.0;
  uint32_t io_chunk_kb = 8;

  // Session mix (normalized internally).
  double p_read_session = 0.45;
  double p_rewrite_session = 0.25;  // whole-file overwrite from offset 0
  double p_append_session = 0.10;
  double p_stat = 0.12;
  double p_delete = 0.05;
  double p_truncate = 0.03;

  // Large sequential writes (trace 1b / trace 5 behaviour).
  double p_large_write = 0.0;
  double large_write_min_mb = 1.0;
  double large_write_max_mb = 4.0;

  // Emit unknown (-1) times for reads/writes inside sessions so the replayer
  // exercises the paper's equidistant-synthesis rule.
  bool unknown_io_times = true;

  // Named calibrations for the paper's Sprite trace runs; `scale` multiplies
  // the duration (1.0 = the bench default, not 24 hours — shape, not hours).
  static WorkloadParams SpriteLike(const std::string& trace_name, double scale = 1.0);
};

std::vector<TraceRecord> GenerateWorkload(const WorkloadParams& params);

// Hand-crafted burst workload (paper §5.2: "We found the NVRAM contention
// problem through carefully analyzing and hand-crafting a work load"):
// periodic multi-megabyte write bursts from one client against background
// reads from another.
struct BurstWorkloadParams {
  uint64_t seed = 7;
  Duration duration = Duration::Minutes(5);
  Duration burst_interval = Duration::Seconds(10);
  uint64_t burst_bytes = 2 * 1024 * 1024;
  uint32_t io_chunk_kb = 64;
  double background_reads_per_sec = 4.0;
  uint32_t background_files = 64;
};

std::vector<TraceRecord> GenerateBurstWorkload(const BurstWorkloadParams& params);

}  // namespace pfs

#endif  // PFS_WORKLOAD_GENERATOR_H_
