#include "workload/generator.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/check.h"
#include "core/random.h"
#include "core/units.h"

namespace pfs {
namespace {

std::string FilePath(uint32_t fs, uint32_t file_id) {
  return "/fs" + std::to_string(fs) + "/f" + std::to_string(file_id);
}

// Per-generator view of which files exist and how big they are, so the
// emitted trace is self-consistent (opens without create only reference
// files created earlier in the trace).
struct FilePopulation {
  std::set<std::pair<uint32_t, uint32_t>> exists;
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> size;
};

}  // namespace

WorkloadParams WorkloadParams::SpriteLike(const std::string& trace_name, double scale) {
  WorkloadParams p;
  p.duration = Duration::SecondsF(240.0 * scale);
  p.clients = 12;
  if (trace_name == "1a") {
    p.seed = 101;
    // Office/development: read-leaning with a strong overwrite component.
  } else if (trace_name == "1b") {
    // "During trace 1b there are many large and parallel write operations."
    p.seed = 102;
    p.clients = 16;
    p.p_large_write = 0.10;
    p.large_write_min_mb = 1.0;
    p.large_write_max_mb = 3.0;
    p.p_read_session = 0.30;
    p.p_rewrite_session = 0.30;
  } else if (trace_name == "2a") {
    p.seed = 103;
    p.ops_per_sec_per_client = 4.0;
  } else if (trace_name == "2b") {
    p.seed = 104;
    p.p_rewrite_session = 0.35;
    p.p_read_session = 0.35;
  } else if (trace_name == "3a") {
    p.seed = 105;
    p.p_read_session = 0.65;
    p.p_rewrite_session = 0.15;
  } else if (trace_name == "5") {
    // "During trace 5, many large writes enter the system while there are
    // also a fair amount of stat and read operations."
    p.seed = 106;
    p.p_large_write = 0.06;
    p.large_write_min_mb = 2.0;
    p.large_write_max_mb = 4.0;
    p.p_stat = 0.30;
    p.p_read_session = 0.35;
    p.p_rewrite_session = 0.15;
  } else {
    PFS_CHECK_MSG(false, "unknown Sprite-like trace name");
  }
  return p;
}

std::vector<TraceRecord> GenerateWorkload(const WorkloadParams& params) {
  Rng master(params.seed);
  ZipfDistribution fs_dist(params.num_filesystems, params.fs_zipf_theta);
  ZipfDistribution file_dist(params.files_per_fs, params.file_zipf_theta);
  FilePopulation population;
  std::vector<TraceRecord> records;

  const double mix_total = params.p_read_session + params.p_rewrite_session +
                           params.p_append_session + params.p_stat + params.p_delete +
                           params.p_truncate + params.p_large_write;
  PFS_CHECK(mix_total > 0);
  const uint64_t chunk = static_cast<uint64_t>(params.io_chunk_kb) * kKiB;

  for (uint32_t client = 0; client < params.clients; ++client) {
    Rng rng = master.Fork();
    int64_t now_us = static_cast<int64_t>(rng.NextExponential(1e6));
    const int64_t end_us = params.duration.micros();

    while (now_us < end_us) {
      const uint32_t fs = static_cast<uint32_t>(fs_dist.Sample(rng));
      const uint32_t file_id = static_cast<uint32_t>(file_dist.Sample(rng)) +
                               client * params.files_per_fs;  // client-local id space
      const auto key = std::make_pair(fs, file_id);
      const std::string path = FilePath(fs, file_id);
      const bool exists = population.exists.contains(key);

      double pick = rng.NextDouble() * mix_total;
      auto take = [&pick](double p) {
        if (pick < p) {
          return true;
        }
        pick -= p;
        return false;
      };

      auto emit = [&](TraceOp op, int64_t t, uint64_t offset, uint64_t length,
                      bool create = false) {
        TraceRecord r;
        r.time_us = t;
        r.client = client;
        r.op = op;
        r.path = path;
        r.offset = offset;
        r.length = length;
        r.create = create;
        records.push_back(std::move(r));
      };

      if (take(params.p_read_session)) {
        if (exists) {
          const uint64_t size = population.size[key];
          const uint64_t span_us = 2000 + static_cast<uint64_t>(size / 100);  // dwell time
          emit(TraceOp::kOpen, now_us, 0, 0);
          for (uint64_t off = 0; off < size; off += chunk) {
            emit(TraceOp::kRead, params.unknown_io_times ? -1 : now_us, off,
                 std::min(chunk, size - off));
          }
          emit(TraceOp::kClose, now_us + static_cast<int64_t>(span_us), 0, 0);
        }
      } else if (take(params.p_rewrite_session)) {
        // Whole-file overwrite from offset 0 — the die-young write pattern.
        const uint64_t size = std::clamp<uint64_t>(
            static_cast<uint64_t>(params.mean_file_kb * kKiB *
                                  rng.NextLogNormal(0.0, params.file_sigma)),
            1 * kKiB, 16 * kMiB);
        const uint64_t span_us = 2000 + size / 50;
        emit(TraceOp::kOpen, now_us, 0, 0, /*create=*/!exists);
        for (uint64_t off = 0; off < size; off += chunk) {
          emit(TraceOp::kWrite, params.unknown_io_times ? -1 : now_us, off,
               std::min(chunk, size - off));
        }
        emit(TraceOp::kClose, now_us + static_cast<int64_t>(span_us), 0, 0);
        population.exists.insert(key);
        population.size[key] = size;
      } else if (take(params.p_append_session)) {
        if (exists) {
          const uint64_t old_size = population.size[key];
          const uint64_t add = chunk * (1 + rng.NextBelow(4));
          const uint64_t span_us = 2000 + add / 50;
          emit(TraceOp::kOpen, now_us, 0, 0);
          for (uint64_t off = old_size; off < old_size + add; off += chunk) {
            emit(TraceOp::kWrite, params.unknown_io_times ? -1 : now_us, off,
                 std::min(chunk, old_size + add - off));
          }
          emit(TraceOp::kClose, now_us + static_cast<int64_t>(span_us), 0, 0);
          population.size[key] = std::min<uint64_t>(old_size + add, 16 * kMiB);
        }
      } else if (take(params.p_stat)) {
        if (exists) {
          emit(TraceOp::kStat, now_us, 0, 0);
        }
      } else if (take(params.p_delete)) {
        if (exists) {
          emit(TraceOp::kUnlink, now_us, 0, 0);
          population.exists.erase(key);
          population.size.erase(key);
        }
      } else if (take(params.p_truncate)) {
        if (exists && population.size[key] > chunk) {
          const uint64_t new_size = population.size[key] / 2;
          emit(TraceOp::kTruncate, now_us, 0, new_size);
          population.size[key] = new_size;
        }
      } else if (params.p_large_write > 0) {
        // Large sequential write of a fresh file.
        const double mb = params.large_write_min_mb +
                          rng.NextDouble() * (params.large_write_max_mb -
                                              params.large_write_min_mb);
        const uint64_t size = std::min<uint64_t>(
            static_cast<uint64_t>(mb * static_cast<double>(kMiB)), 16 * kMiB);
        const uint64_t span_us = 5000 + size / 20;
        emit(TraceOp::kOpen, now_us, 0, 0, /*create=*/!exists);
        for (uint64_t off = 0; off < size; off += chunk) {
          emit(TraceOp::kWrite, params.unknown_io_times ? -1 : now_us, off,
               std::min(chunk, size - off));
        }
        emit(TraceOp::kClose, now_us + static_cast<int64_t>(span_us), 0, 0);
        population.exists.insert(key);
        population.size[key] = size;
      }

      now_us += static_cast<int64_t>(
          rng.NextExponential(1e6 / params.ops_per_sec_per_client));
    }
  }
  return records;
}

std::vector<TraceRecord> GenerateBurstWorkload(const BurstWorkloadParams& params) {
  Rng rng(params.seed);
  std::vector<TraceRecord> records;
  const uint64_t chunk = static_cast<uint64_t>(params.io_chunk_kb) * kKiB;

  // Client 0: periodic write bursts of fresh files.
  int64_t t = 1000000;
  uint32_t burst_id = 0;
  while (t < params.duration.micros()) {
    TraceRecord open;
    open.time_us = t;
    open.client = 0;
    open.op = TraceOp::kOpen;
    open.path = "/fs0/burst" + std::to_string(burst_id);
    open.create = true;
    records.push_back(open);
    for (uint64_t off = 0; off < params.burst_bytes; off += chunk) {
      TraceRecord w;
      w.time_us = -1;
      w.client = 0;
      w.op = TraceOp::kWrite;
      w.path = open.path;
      w.offset = off;
      w.length = std::min(chunk, params.burst_bytes - off);
      records.push_back(std::move(w));
    }
    TraceRecord close;
    close.time_us = t + 500000;  // burst issued within half a second
    close.client = 0;
    close.op = TraceOp::kClose;
    close.path = open.path;
    records.push_back(close);
    t += params.burst_interval.micros();
    ++burst_id;
  }

  // Client 1: steady background read traffic over a small file set. Seed the
  // files first so reads always hit existing data.
  for (uint32_t i = 0; i < params.background_files; ++i) {
    TraceRecord open;
    open.time_us = static_cast<int64_t>(i) * 1000;
    open.client = 1;
    open.op = TraceOp::kOpen;
    open.path = "/fs0/bg" + std::to_string(i);
    open.create = true;
    records.push_back(open);
    TraceRecord w;
    w.time_us = -1;
    w.client = 1;
    w.op = TraceOp::kWrite;
    w.path = open.path;
    w.offset = 0;
    w.length = 16 * kKiB;
    records.push_back(std::move(w));
    TraceRecord close = open;
    close.op = TraceOp::kClose;
    close.create = false;
    close.time_us = open.time_us + 900;
    records.push_back(close);
  }
  int64_t rt = static_cast<int64_t>(params.background_files) * 1000 + 1000000;
  while (rt < params.duration.micros()) {
    const uint32_t file = static_cast<uint32_t>(rng.NextBelow(params.background_files));
    TraceRecord open;
    open.time_us = rt;
    open.client = 1;
    open.op = TraceOp::kOpen;
    open.path = "/fs0/bg" + std::to_string(file);
    records.push_back(open);
    TraceRecord r;
    r.time_us = -1;
    r.client = 1;
    r.op = TraceOp::kRead;
    r.path = open.path;
    r.offset = 0;
    r.length = 16 * kKiB;
    records.push_back(std::move(r));
    TraceRecord close = open;
    close.op = TraceOp::kClose;
    close.time_us = rt + 2000;
    records.push_back(close);
    rt += static_cast<int64_t>(rng.NextExponential(1e6 / params.background_reads_per_sec));
  }
  return records;
}

}  // namespace pfs
