// RecordingClient: a ClientInterface decorator that writes a trace of every
// operation it forwards. This closes the paper's loop: PFS records traces of
// real use, Patsy replays them off-line against candidate algorithms, and
// the winning algorithm migrates back into PFS unchanged (§5.3: "we will use
// snapshots of PFS in Patsy experiments").
#ifndef PFS_ONLINE_RECORDING_CLIENT_H_
#define PFS_ONLINE_RECORDING_CLIENT_H_

#include <map>
#include <string>
#include <vector>

#include "client/client_interface.h"
#include "sched/scheduler.h"
#include "trace/trace.h"

namespace pfs {

class RecordingClient final : public ClientInterface {
 public:
  RecordingClient(Scheduler* sched, ClientInterface* backend, uint32_t client_id = 0)
      : sched_(sched), backend_(backend), client_id_(client_id),
        start_(sched->Now()) {}

  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> TakeRecords() { return std::move(records_); }

  Task<Result<Fd>> Open(const std::string& path, OpenOptions options) override {
    Record(TraceOp::kOpen, path, 0, 0, options.create);
    auto fd = co_await backend_->Open(path, options);
    if (fd.ok()) {
      fd_paths_[*fd] = path;
    }
    co_return fd;
  }
  Task<Status> Close(Fd fd) override {
    Record(TraceOp::kClose, PathOf(fd), 0, 0);
    fd_paths_.erase(fd);
    co_return co_await backend_->Close(fd);
  }
  Task<Result<uint64_t>> Read(Fd fd, uint64_t offset, uint64_t len,
                              std::span<std::byte> out) override {
    Record(TraceOp::kRead, PathOf(fd), offset, len);
    co_return co_await backend_->Read(fd, offset, len, out);
  }
  Task<Result<uint64_t>> Write(Fd fd, uint64_t offset, uint64_t len,
                               std::span<const std::byte> in) override {
    Record(TraceOp::kWrite, PathOf(fd), offset, len);
    co_return co_await backend_->Write(fd, offset, len, in);
  }
  Task<Status> Truncate(Fd fd, uint64_t new_size) override {
    Record(TraceOp::kTruncate, PathOf(fd), 0, new_size);
    co_return co_await backend_->Truncate(fd, new_size);
  }
  Task<Status> Fsync(Fd fd) override { co_return co_await backend_->Fsync(fd); }
  Task<Result<FileAttrs>> FStat(Fd fd) override { co_return co_await backend_->FStat(fd); }
  Task<Result<FileAttrs>> Stat(const std::string& path) override {
    Record(TraceOp::kStat, path, 0, 0);
    co_return co_await backend_->Stat(path);
  }
  Task<Status> Unlink(const std::string& path) override {
    Record(TraceOp::kUnlink, path, 0, 0);
    co_return co_await backend_->Unlink(path);
  }
  Task<Status> Mkdir(const std::string& path) override {
    Record(TraceOp::kMkdir, path, 0, 0);
    co_return co_await backend_->Mkdir(path);
  }
  Task<Status> Rmdir(const std::string& path) override {
    Record(TraceOp::kRmdir, path, 0, 0);
    co_return co_await backend_->Rmdir(path);
  }
  Task<Status> Rename(const std::string& from, const std::string& to) override {
    TraceRecord r = MakeRecord(TraceOp::kRename, from, 0, 0);
    r.path2 = to;
    records_.push_back(std::move(r));
    co_return co_await backend_->Rename(from, to);
  }
  Task<Result<std::vector<DirEntry>>> ReadDir(const std::string& path) override {
    co_return co_await backend_->ReadDir(path);
  }
  Task<Status> SymlinkAt(const std::string& path, const std::string& target) override {
    co_return co_await backend_->SymlinkAt(path, target);
  }
  Task<Result<std::string>> ReadLink(const std::string& path) override {
    co_return co_await backend_->ReadLink(path);
  }
  Task<Status> SyncAll() override { co_return co_await backend_->SyncAll(); }

 private:
  TraceRecord MakeRecord(TraceOp op, const std::string& path, uint64_t offset,
                         uint64_t length, bool create = false) {
    TraceRecord r;
    r.time_us = (sched_->Now() - start_).micros();
    r.client = client_id_;
    r.op = op;
    r.path = path;
    r.offset = offset;
    r.length = length;
    r.create = create;
    return r;
  }
  void Record(TraceOp op, const std::string& path, uint64_t offset, uint64_t length,
              bool create = false) {
    records_.push_back(MakeRecord(op, path, offset, length, create));
  }
  std::string PathOf(Fd fd) const {
    auto it = fd_paths_.find(fd);
    return it == fd_paths_.end() ? "?" : it->second;
  }

  Scheduler* sched_;
  ClientInterface* backend_;
  uint32_t client_id_;
  TimePoint start_;
  std::vector<TraceRecord> records_;
  std::map<Fd, std::string> fd_paths_;
};

}  // namespace pfs

#endif  // PFS_ONLINE_RECORDING_CLIENT_H_
