// PFS: the on-line instantiation (paper §3) — the same framework components
// bound to a real clock, real memory in the cache, and a file-backed disk
// driver, fronted by the NFS-style interface. The scheduler runs on a
// dedicated OS thread; other OS threads submit work with Submit(), which
// posts a closure and blocks on a promise — the external-event integration
// the paper describes for the real system.
#ifndef PFS_ONLINE_PFS_SERVER_H_
#define PFS_ONLINE_PFS_SERVER_H_

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/buffer_cache.h"
#include "cache/data_mover.h"
#include "client/local_client.h"
#include "driver/file_backed_driver.h"
#include "driver/io_executor.h"
#include "layout/lfs_layout.h"
#include "nfs/nfs.h"
#include "online/recording_client.h"

namespace pfs {

struct PfsServerConfig {
  std::string image_path;               // backing Unix file (the "raw device")
  uint64_t image_bytes = 64 * kMiB;
  bool format = true;                   // format vs mount an existing image
  uint64_t cache_bytes = 8 * kMiB;
  std::string flush_policy = "write-delay";
  std::string replacement = "LRU";
  std::string cleaner = "greedy";
  uint32_t lfs_segment_blocks = 64;
  uint32_t max_inodes = 4096;
  bool record_trace = false;            // wrap the client in a RecordingClient
  int nfs_workers = 4;
  uint64_t seed = 1;
};

class PfsServer {
 public:
  // Builds, formats/mounts, and starts the server loop on its own OS thread.
  static Result<std::unique_ptr<PfsServer>> Start(const PfsServerConfig& config);

  ~PfsServer();

  PfsServer(const PfsServer&) = delete;
  PfsServer& operator=(const PfsServer&) = delete;

  // Runs a coroutine against the server's client interface from any OS
  // thread and waits for its completion. `fn` is invoked on the scheduler
  // thread and must return Task<Status>.
  template <typename Fn>
  Status Submit(Fn fn) {
    std::promise<Status> promise;
    std::future<Status> future = promise.get_future();
    sched_->Post([this, fn = std::move(fn), &promise]() mutable {
      sched_->Spawn("pfs.request", RunAndFulfill(std::move(fn), &promise));
    });
    return future.get();
  }

  // The mounted client interface (recording wrapper if configured). Only
  // touch it from coroutines running on the server's scheduler.
  ClientInterface* client() { return recording_ ? static_cast<ClientInterface*>(recording_.get())
                                                : client_.get(); }
  Scheduler* scheduler() { return sched_.get(); }
  BufferCache* cache() { return cache_.get(); }
  LfsLayout* layout() { return layout_.get(); }

  // Recorded trace (if record_trace was set); safe after Stop().
  std::vector<TraceRecord> TakeRecordedTrace();

  // Syncs, stops the scheduler loop, and joins the server thread.
  Status Stop();

 private:
  PfsServer() = default;

  template <typename Fn>
  Task<> RunAndFulfill(Fn fn, std::promise<Status>* promise) {
    const Status status = co_await fn(client());
    promise->set_value(status);
  }

  PfsServerConfig config_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<IoExecutor> executor_;
  std::unique_ptr<FileBackedDriver> driver_;
  std::unique_ptr<LfsLayout> layout_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<RealDataMover> mover_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<LocalClient> client_;
  std::unique_ptr<RecordingClient> recording_;
  std::unique_ptr<NfsLoopback> loopback_;
  std::unique_ptr<NfsServer> nfs_;
  std::thread server_thread_;
  bool stopped_ = false;
};

}  // namespace pfs

#endif  // PFS_ONLINE_PFS_SERVER_H_
