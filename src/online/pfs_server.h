// PFS: the on-line instantiation (paper §3) — the same framework components
// bound to a real clock, real memory in the cache, and file-backed disk
// drivers, fronted by the NFS-style interface. The stack itself is assembled
// by SystemBuilder from the shared SystemConfig, so the on-line server
// supports every topology the simulator does (multiple disks, multiple file
// systems, any storage layout). The scheduler runs on a dedicated OS thread;
// other OS threads submit work with Submit(), which posts a closure and
// blocks on a promise — the external-event integration the paper describes
// for the real system.
#ifndef PFS_ONLINE_PFS_SERVER_H_
#define PFS_ONLINE_PFS_SERVER_H_

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nfs/nfs.h"
#include "online/recording_client.h"
#include "system/system_builder.h"

namespace pfs {

// The on-line server's description: the shared SystemConfig (defaulted to
// one file-backed disk with one LFS file system) plus the front-end knobs
// that only exist on-line.
struct PfsServerConfig : SystemConfig {
  PfsServerConfig() : SystemConfig(SystemConfig::OnlineDefaults()) {}
  // Adopts a shared system description (e.g. one also used for a Patsy
  // replay), switching it to the file-backed backend.
  explicit PfsServerConfig(const SystemConfig& system) : SystemConfig(system) {
    backend = BackendKind::kFileBacked;
  }

  bool record_trace = false;  // wrap the client in a RecordingClient
  int nfs_workers = 4;
};

class PfsServer {
 public:
  // Builds, formats/mounts, and starts the server loop on its own OS thread.
  static Result<std::unique_ptr<PfsServer>> Start(const PfsServerConfig& config);

  ~PfsServer();

  PfsServer(const PfsServer&) = delete;
  PfsServer& operator=(const PfsServer&) = delete;

  // Runs a coroutine against the server's client interface from any OS
  // thread and waits for its completion. `fn` is invoked on the scheduler
  // thread and must return Task<Status>.
  template <typename Fn>
  Status Submit(Fn fn) {
    std::promise<Status> promise;
    std::future<Status> future = promise.get_future();
    Scheduler* sched = system_->scheduler();
    // Synchronous handoff: Submit blocks on future.get() until RunAndFulfill
    // sets the promise, so &promise outlives every use.
    // pfs-lint: allow(ref-capture-escape)
    sched->Post([this, sched, fn = std::move(fn), &promise]() mutable {
      // Transient: completion travels through the promise, nobody joins the
      // thread, and a long-lived server must not accumulate request records.
      sched->SpawnTransient("pfs.request", RunAndFulfill(std::move(fn), &promise));
    });
    return future.get();
  }

  // The mounted client interface (recording wrapper if configured). Only
  // touch it from coroutines running on the server's scheduler.
  ClientInterface* client() {
    return recording_ ? static_cast<ClientInterface*>(recording_.get())
                      : static_cast<ClientInterface*>(system_->client());
  }
  System& system() { return *system_; }
  Scheduler* scheduler() { return system_->scheduler(); }
  BufferCache* cache() { return system_->cache(); }
  int filesystem_count() const { return system_->filesystem_count(); }
  StorageLayout* layout(int fs_index = 0) { return system_->layout(fs_index); }

  // Recorded trace (if record_trace was set); safe after Stop().
  std::vector<TraceRecord> TakeRecordedTrace();

  // Syncs, stops the scheduler loop, and joins the server thread.
  Status Stop();

 private:
  PfsServer() = default;

  template <typename Fn>
  Task<> RunAndFulfill(Fn fn, std::promise<Status>* promise) {
    const Status status = co_await fn(client());
    promise->set_value(status);
  }

  // The resolved configuration lives in system().config(); the front-end
  // knobs (record_trace, nfs_workers) are only needed inside Start().
  std::unique_ptr<System> system_;
  std::unique_ptr<RecordingClient> recording_;
  std::unique_ptr<NfsLoopback> loopback_;
  std::unique_ptr<NfsServer> nfs_;
  std::thread server_thread_;
  bool stopped_ = false;
};

}  // namespace pfs

#endif  // PFS_ONLINE_PFS_SERVER_H_
