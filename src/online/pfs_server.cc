#include "online/pfs_server.h"

namespace pfs {

Result<std::unique_ptr<PfsServer>> PfsServer::Start(const PfsServerConfig& config) {
  auto server = std::unique_ptr<PfsServer>(new PfsServer());

  // The on-line server serves wall-clock time; kAuto resolves to real here
  // (the simulator facade resolves it to virtual).
  SystemConfig system_config = config;
  if (system_config.clock == ClockKind::kAuto) {
    system_config.clock = ClockKind::kReal;
  }
  PFS_ASSIGN_OR_RETURN(server->system_, SystemBuilder::Build(system_config));

  // Format or mount on the scheduler before the loop goes live.
  PFS_RETURN_IF_ERROR(server->system_->Setup());
  Scheduler* sched = server->system_->scheduler();
  sched->set_keep_alive(true);  // from here on, Run() serves forever

  if (config.record_trace) {
    server->recording_ =
        std::make_unique<RecordingClient>(sched, server->system_->client());
  }

  // NFS-style front end over the loopback transport.
  server->loopback_ = std::make_unique<NfsLoopback>(sched, 64);
  server->nfs_ = std::make_unique<NfsServer>(sched, server->client(),
                                             server->loopback_.get(), config.nfs_workers);
  server->nfs_->Start();

  // The on-line service loop (all shards; one OS thread per shard when the
  // config asks for more than one).
  System* sys = server->system_.get();
  server->server_thread_ = std::thread([sys] { sys->RunToCompletion(); });
  return server;
}

std::vector<TraceRecord> PfsServer::TakeRecordedTrace() {
  return recording_ ? recording_->TakeRecords() : std::vector<TraceRecord>{};
}

Status PfsServer::Stop() {
  if (stopped_) {
    return OkStatus();
  }
  stopped_ = true;
  // Sync through the scheduler, then stop the loop.
  const Status sync = Submit([](ClientInterface* c) -> Task<Status> {
    co_return co_await c->SyncAll();
  });
  system_->RequestStop();
  if (server_thread_.joinable()) {
    server_thread_.join();
  }
  // The loops are down for good: turn any straggler Post() into a checked
  // error instead of silently dropping the work.
  system_->CloseSchedulers();
  return sync;
}

PfsServer::~PfsServer() {
  if (system_ == nullptr) {
    return;  // Start() failed before the stack was assembled
  }
  if (!stopped_ && server_thread_.joinable()) {
    (void)Stop();
  }
  // The loops have stopped; release suspended frames (NFS workers, daemons)
  // while the components they reference — including the front end — are
  // still alive. System's own destructor would run too late for the NFS
  // members declared after it.
  for (int s = 0; s < system_->shard_count(); ++s) {
    system_->shard_scheduler(s)->DestroyAllThreads();
  }
}

}  // namespace pfs
