#include "online/pfs_server.h"

namespace pfs {

Result<std::unique_ptr<PfsServer>> PfsServer::Start(const PfsServerConfig& config) {
  auto server = std::unique_ptr<PfsServer>(new PfsServer());
  server->config_ = config;
  server->sched_ = Scheduler::CreateReal(config.seed);
  server->executor_ = std::make_unique<IoExecutor>(2);

  PFS_ASSIGN_OR_RETURN(server->driver_,
                       FileBackedDriver::Create(server->sched_.get(), "pfs0",
                                                config.image_path, config.image_bytes,
                                                server->executor_.get()));
  server->driver_->Start();

  LfsConfig lfs;
  lfs.fs_id = 0;
  lfs.segment_blocks = config.lfs_segment_blocks;
  lfs.max_inodes = config.max_inodes;
  lfs.materialize_metadata = true;  // the real system round-trips its metadata
  server->layout_ = std::make_unique<LfsLayout>(
      server->sched_.get(),
      BlockDev(server->driver_.get(), kDefaultBlockSize, 0,
               config.image_bytes / kDefaultBlockSize),
      lfs, MakeCleanerPolicy(config.cleaner));

  BufferCache::Config cache_config;
  cache_config.capacity_bytes = config.cache_bytes;
  cache_config.allocate_memory = true;  // a real cache holds real bytes
  cache_config.async_flush = true;
  server->cache_ = std::make_unique<BufferCache>(
      server->sched_.get(), cache_config, MakeReplacementPolicy(config.replacement),
      MakeFlushPolicy(config.flush_policy));
  server->mover_ = std::make_unique<RealDataMover>();
  server->fs_ = std::make_unique<FileSystem>(server->sched_.get(), server->layout_.get(),
                                             server->cache_.get(), server->mover_.get());
  server->client_ = std::make_unique<LocalClient>(server->sched_.get());
  server->client_->AddMount("pfs", server->fs_.get());

  // Format or mount on the scheduler before the loop goes live.
  Status setup(ErrorCode::kAborted);
  server->sched_->Spawn("pfs.setup", [](PfsServer* s, Status* out) -> Task<> {
    if (s->config_.format) {
      *out = co_await s->layout_->Format();
    } else {
      *out = co_await s->layout_->Mount();
    }
  }(server.get(), &setup));
  server->sched_->Run();  // returns when the setup thread finishes
  PFS_RETURN_IF_ERROR(setup);
  server->sched_->set_keep_alive(true);  // from here on, Run() serves forever
  server->cache_->Start();
  server->layout_->Start();

  if (config.record_trace) {
    server->recording_ = std::make_unique<RecordingClient>(server->sched_.get(),
                                                           server->client_.get());
  }

  // NFS-style front end over the loopback transport.
  server->loopback_ = std::make_unique<NfsLoopback>(server->sched_.get(), 64);
  server->nfs_ = std::make_unique<NfsServer>(server->sched_.get(), server->client(),
                                             server->loopback_.get(), config.nfs_workers);
  server->nfs_->Start();

  // The on-line service loop.
  server->server_thread_ = std::thread([sched = server->sched_.get()] { sched->Run(); });
  return server;
}

std::vector<TraceRecord> PfsServer::TakeRecordedTrace() {
  return recording_ ? recording_->TakeRecords() : std::vector<TraceRecord>{};
}

Status PfsServer::Stop() {
  if (stopped_) {
    return OkStatus();
  }
  stopped_ = true;
  // Sync through the scheduler, then stop the loop.
  const Status sync = Submit([](ClientInterface* c) -> Task<Status> {
    co_return co_await c->SyncAll();
  });
  sched_->RequestStop();
  if (server_thread_.joinable()) {
    server_thread_.join();
  }
  return sync;
}

PfsServer::~PfsServer() {
  if (!stopped_) {
    (void)Stop();
  }
  // The loop has stopped; release suspended frames (NFS workers, daemons)
  // before the components they reference are destroyed.
  if (sched_ != nullptr) {
    sched_->DestroyAllThreads();
  }
}

}  // namespace pfs
