// The request identity carried down the storage stack (obs/). Kept free of
// any other include so low layers (sched/, disk/) can embed a TraceContext
// without pulling the tracing machinery into their headers: when tracing is
// off the context is two null words and every instrumentation site reduces
// to one branch on `active()`.
#ifndef PFS_OBS_TRACE_CONTEXT_H_
#define PFS_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace pfs {

class TraceRecorder;

struct TraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t id = 0;  // one id per client-level operation

  bool active() const { return recorder != nullptr; }
};

}  // namespace pfs

#endif  // PFS_OBS_TRACE_CONTEXT_H_
