// Per-shard scheduler statistics as a StatSource: steps (context switches),
// mailbox traffic (posts received, cross-shard posts sent, drain-batch depth
// percentiles), and idle time. One instance per shard, named
// "sched.shard<i>", so shard imbalance shows up directly in ReportJson and
// the StatsSampler time series.
//
// The underlying counters are written only from the shard's own OS thread;
// read them from that thread (StatsSampler hops with CallOn) or after the
// shard threads have been joined.
#ifndef PFS_OBS_SCHED_STATS_H_
#define PFS_OBS_SCHED_STATS_H_

#include <string>

#include "sched/scheduler.h"
#include "stats/registry.h"

namespace pfs {

class SchedStats final : public StatSource {
 public:
  explicit SchedStats(Scheduler* sched) : sched_(sched) {}

  std::string stat_name() const override {
    return "sched.shard" + std::to_string(sched_->shard_index());
  }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;

  Scheduler* scheduler() { return sched_; }

 private:
  // Percentile over the log2 drain-depth histogram, reported as the bucket's
  // upper bound in requests (bucket 0 = depth 1).
  double DepthPercentile(double q) const;

  Scheduler* sched_;
};

}  // namespace pfs

#endif  // PFS_OBS_SCHED_STATS_H_
