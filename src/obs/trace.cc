#include "obs/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/check.h"

namespace pfs {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kClient:
      return "client.op";
    case TraceStage::kCacheFill:
      return "cache.fill";
    case TraceStage::kVolume:
      return "volume.request";
    case TraceStage::kFragment:
      return "volume.fragment";
    case TraceStage::kDriverQueue:
      return "driver.queue";
    case TraceStage::kDriverIo:
      return "driver.io";
    case TraceStage::kDriverBatch:
      return "driver.batch";
  }
  return "unknown";
}

namespace {
// Process-unique recorder ids key the thread-local ring cache: a stale cache
// entry can never be revived by a new recorder allocated at the same address.
std::atomic<uint64_t> g_next_recorder_instance{1};
}  // namespace

TraceRecorder::TraceRecorder(Scheduler* sched, size_t ring_capacity)
    : sched_(sched),
      capacity_(ring_capacity),
      instance_id_(g_next_recorder_instance.fetch_add(1, std::memory_order_relaxed)) {
  PFS_CHECK(sched != nullptr);
  PFS_CHECK(ring_capacity > 0);
}

TraceRecorder::Ring* TraceRecorder::LocalRing() {
  struct Cache {
    uint64_t instance = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.instance != instance_id_) {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(std::make_unique<Ring>(capacity_));
    cache = Cache{instance_id_, rings_.back().get()};
  }
  return cache.ring;
}

void TraceRecorder::Record(const TraceSpan& span) {
  Ring* ring = LocalRing();
  std::lock_guard<std::mutex> lock(ring->mu);
  ++ring->recorded;
  if (ring->size == ring->slots.size()) {
    ++ring->dropped;  // overwrite the oldest span
  } else {
    ++ring->size;
  }
  ring->slots[ring->next] = span;
  ring->next = (ring->next + 1) % ring->slots.size();
}

void TraceRecorder::Drain(std::vector<TraceSpan>* out) {
  std::lock_guard<std::mutex> rings_lock(rings_mu_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t cap = ring->slots.size();
    size_t idx = (ring->next + cap - ring->size) % cap;  // oldest
    for (size_t i = 0; i < ring->size; ++i) {
      out->push_back(ring->slots[idx]);
      idx = (idx + 1) % cap;
    }
    ring->size = 0;
  }
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> rings_lock(rings_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->recorded;
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> rings_lock(rings_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

TraceSink::TraceSink(TraceRecorder* recorder) : recorder_(recorder) {
  PFS_CHECK(recorder != nullptr);
}

void TraceSink::Start(Duration drain_interval) {
  PFS_CHECK_MSG(!started_, "TraceSink started twice");
  started_ = true;
  recorder_->scheduler()->SpawnTransientDaemon("obs.trace_sink", DrainLoop(drain_interval));
}

Task<> TraceSink::DrainLoop(Duration interval) {
  for (;;) {
    co_await recorder_->scheduler()->Sleep(interval);
    Drain();
  }
}

void TraceSink::Drain() {
  const size_t first_new = spans_.size();
  recorder_->Drain(&spans_);
  for (size_t i = first_new; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    const auto stage = static_cast<size_t>(span.stage);
    ++stage_counts_[stage];
    stage_latency_[stage].Record(Duration::Nanos(span.end_ns - span.begin_ns));
  }
}

std::string TraceSink::ChromeTraceJson() {
  Drain();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"pfs\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%llu,\"args\":{\"trace_id\":%llu,\"arg\":%llu}}",
                  i == 0 ? "" : ",", TraceStageName(span.stage),
                  static_cast<double>(span.begin_ns) / 1000.0,
                  static_cast<double>(span.end_ns - span.begin_ns) / 1000.0,
                  static_cast<unsigned long long>(span.tid),
                  static_cast<unsigned long long>(span.trace_id),
                  static_cast<unsigned long long>(span.arg));
    out += buf;
  }
  out += "]}";
  return out;
}

Status TraceSink::WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status(ErrorCode::kIoError, "write " + path);
  }
  return OkStatus();
}

std::string TraceSink::StatReport(bool with_histograms) const {
  std::string out = "trace sink:\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  spans buffered: %zu  recorded: %llu  dropped: %llu\n",
                spans_.size(), static_cast<unsigned long long>(recorder_->recorded()),
                static_cast<unsigned long long>(recorder_->dropped()));
  out += line;
  for (size_t i = 0; i < kTraceStageCount; ++i) {
    if (stage_counts_[i] == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  %-16s %s\n",
                  TraceStageName(static_cast<TraceStage>(i)), stage_latency_[i].Summary().c_str());
    out += line;
    if (with_histograms) {
      for (const auto& point : stage_latency_[i].Cdf()) {
        std::snprintf(line, sizeof(line), "    <= %10.3f ms: %5.1f%%\n", point.millis,
                      point.fraction * 100.0);
        out += line;
      }
    }
  }
  return out;
}

std::string TraceSink::StatJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"spans\":%zu,\"recorded\":%llu,\"dropped\":%llu,\"stages\":{",
                spans_.size(), static_cast<unsigned long long>(recorder_->recorded()),
                static_cast<unsigned long long>(recorder_->dropped()));
  std::string out = buf;
  bool first = true;
  for (size_t i = 0; i < kTraceStageCount; ++i) {
    if (stage_counts_[i] == 0) {
      continue;
    }
    const LatencyHistogram& h = stage_latency_[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%llu,\"mean_ms\":%.6f,\"p50_ms\":%.6f,\"p95_ms\":%.6f,"
                  "\"p99_ms\":%.6f}",
                  first ? "" : ",", TraceStageName(static_cast<TraceStage>(i)),
                  static_cast<unsigned long long>(stage_counts_[i]), h.mean().ToMillisF(),
                  h.Percentile(0.50).ToMillisF(), h.Percentile(0.95).ToMillisF(),
                  h.Percentile(0.99).ToMillisF());
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

std::string TraceSamplesPath(const std::string& trace_file) {
  const std::string suffix = ".json";
  if (trace_file.size() > suffix.size() &&
      trace_file.compare(trace_file.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return trace_file.substr(0, trace_file.size() - suffix.size()) + "-samples.json";
  }
  return trace_file + "-samples.json";
}

}  // namespace pfs
