#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "sched/shard.h"

namespace pfs {

namespace {

using metrics_detail::BumpRelaxed;

// Slot the calling thread owns: its shard index inside the scheduler group,
// or the overflow slot (== shard count) for threads outside scheduler
// control and for shard indices beyond what the registry was sized for.
size_t OwnSlot(size_t shards) {
  int s = SchedulerGroup::CurrentShard();
  if (s < 0 || static_cast<size_t>(s) >= shards) return shards;
  return static_cast<size_t>(s);
}

// Formats a double the way Prometheus text format expects: integers render
// without a fractional part, everything else with enough digits to round-trip.
void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v > -1e15 && v < 1e15) {
    snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

// "name{labels} value\n" — the single-sample line shape; `extra` carries an
// additional label ("le=...") merged after the instance labels.
void AppendSample(std::string* out, const std::string& name, const std::string& labels,
                  const std::string& extra, double value) {
  out->append(name);
  if (!labels.empty() || !extra.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra.empty()) out->push_back(',');
    out->append(extra);
    out->push_back('}');
  }
  out->push_back(' ');
  AppendNumber(out, value);
  out->push_back('\n');
}

// JSON keys in the sampler snapshot: "name" or "name{k=v,...}" with the
// label quotes stripped (they would need escaping inside a JSON string).
std::string JsonKey(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key.push_back('{');
  for (char c : labels) {
    if (c != '"') key.push_back(c);
  }
  key.push_back('}');
  return key;
}

}  // namespace

size_t HistBucketIndex(uint64_t v) {
  if (v < kHistSubBuckets) return static_cast<size_t>(v);
  uint32_t e = 63u - static_cast<uint32_t>(std::countl_zero(v));
  uint32_t sub = static_cast<uint32_t>(v >> (e - kHistSubBits)) & (kHistSubBuckets - 1);
  return static_cast<size_t>(kHistSubBuckets) * (e - kHistSubBits + 1) + sub;
}

uint64_t HistBucketHigh(size_t i) {
  size_t q = i / kHistSubBuckets;
  size_t r = i % kHistSubBuckets;
  if (q == 0) return static_cast<uint64_t>(r);  // unit buckets: value == index
  uint32_t e = static_cast<uint32_t>(q) + kHistSubBits - 1;
  if (e >= 63 && r == kHistSubBuckets - 1) return UINT64_MAX;
  uint64_t lo = (static_cast<uint64_t>(kHistSubBuckets) + r) << (e - kHistSubBits);
  return lo + (uint64_t{1} << (e - kHistSubBits)) - 1;
}

void CounterMetric::Inc(uint64_t k) {
  size_t slot = OwnSlot(cells_.size() - 1);
  std::atomic<int64_t>& cell = cells_[slot].v;
  if (slot == cells_.size() - 1) {
    cell.fetch_add(static_cast<int64_t>(k), std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + static_cast<int64_t>(k),
               std::memory_order_relaxed);
  }
}

uint64_t CounterMetric::Total() const {
  uint64_t total = 0;
  for (const auto& c : cells_) total += static_cast<uint64_t>(c.v.load(std::memory_order_relaxed));
  return total;
}

void GaugeMetric::Set(int64_t v) {
  cells_[OwnSlot(cells_.size() - 1)].v.store(v, std::memory_order_relaxed);
}

void GaugeMetric::Add(int64_t delta) {
  size_t slot = OwnSlot(cells_.size() - 1);
  std::atomic<int64_t>& cell = cells_[slot].v;
  if (slot == cells_.size() - 1) {
    cell.fetch_add(delta, std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
  }
}

int64_t GaugeMetric::Total() const {
  int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void HistogramMetric::Record(uint64_t v) {
  size_t slot = OwnSlot(cells_.size() - 1);
  metrics_detail::HistCell& cell = cells_[slot];
  if (slot == cells_.size() - 1) {
    // Overflow slot: multiple non-scheduler threads may land here, so the
    // single-writer store is not safe — pay for the RMW off the hot path.
    cell.buckets[HistBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(v, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
  } else {
    BumpRelaxed(cell.buckets[HistBucketIndex(v)], 1);
    BumpRelaxed(cell.sum, v);
    BumpRelaxed(cell.count, 1);
  }
}

uint64_t HistogramMetric::Count() const {
  uint64_t total = 0;
  for (const auto& c : cells_) total += c.count.load(std::memory_order_relaxed);
  return total;
}

uint64_t HistogramMetric::Sum() const {
  uint64_t total = 0;
  for (const auto& c : cells_) total += c.sum.load(std::memory_order_relaxed);
  return total;
}

double HistogramMetric::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

std::vector<uint64_t> HistogramMetric::Bins() const {
  std::vector<uint64_t> bins(kHistBuckets, 0);
  for (const auto& c : cells_) {
    for (size_t i = 0; i < kHistBuckets; ++i) {
      bins[i] += c.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return bins;
}

uint64_t HistogramMetric::Percentile(double q) const {
  std::vector<uint64_t> bins = Bins();
  uint64_t total = 0;
  for (uint64_t b : bins) total += b;
  if (total == 0) return 0;
  // Nearest-rank definition: the q-quantile is the ceil(q*total)-th sample
  // (1-based, clamped into [1, total]). Truncating instead of ceiling would
  // bias one sample low — worst at small counts, where p99 of two samples
  // would report the smaller one.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistBuckets; ++i) {
    seen += bins[i];
    if (seen >= rank) return HistBucketHigh(i);
  }
  return HistBucketHigh(kHistBuckets - 1);
}

std::string HistogramMetric::LatencyMsJsonObject(const std::string& key) const {
  // Samples are nanoseconds (scale 1e-9 to seconds); StatJson reports ms.
  const double to_ms = scale_ * 1e3;
  char buf[192];
  snprintf(buf, sizeof(buf),
           "\"%s\":{\"mean\":%.4f,\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f}", key.c_str(),
           Mean() * to_ms, static_cast<double>(Percentile(0.50)) * to_ms,
           static_cast<double>(Percentile(0.95)) * to_ms,
           static_cast<double>(Percentile(0.99)) * to_ms);
  return buf;
}

MetricRegistry::MetricRegistry(size_t shards, std::string prefix)
    : shards_(shards), prefix_(std::move(prefix)) {}

MetricRegistry::Family* MetricRegistry::FindOrCreateFamily(const std::string& name,
                                                           const std::string& help,
                                                           MetricKind kind, bool callback) {
  std::string full = prefix_.empty() ? name : prefix_ + "_" + name;
  for (auto& f : families_) {
    if (f->name == full) return f.get();
  }
  auto family = std::make_unique<Family>();
  family->name = std::move(full);
  family->help = help;
  family->kind = kind;
  family->callback = callback;
  families_.push_back(std::move(family));
  return families_.back().get();
}

MetricRegistry::Instance* MetricRegistry::FindOrCreateInstance(Family* family,
                                                               const std::string& labels) {
  for (auto& inst : family->instances) {
    if (inst->labels == labels) return inst.get();
  }
  auto inst = std::make_unique<Instance>();
  inst->labels = labels;
  family->instances.push_back(std::move(inst));
  return family->instances.back().get();
}

CounterMetric* MetricRegistry::Counter(const std::string& name, const std::string& help,
                                       const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance* inst =
      FindOrCreateInstance(FindOrCreateFamily(name, help, MetricKind::kCounter, false), labels);
  if (!inst->counter) inst->counter.reset(new CounterMetric(shards_));
  return inst->counter.get();
}

GaugeMetric* MetricRegistry::Gauge(const std::string& name, const std::string& help,
                                   const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance* inst =
      FindOrCreateInstance(FindOrCreateFamily(name, help, MetricKind::kGauge, false), labels);
  if (!inst->gauge) inst->gauge.reset(new GaugeMetric(shards_));
  return inst->gauge.get();
}

HistogramMetric* MetricRegistry::Histogram(const std::string& name, const std::string& help,
                                           const std::string& labels, double scale) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance* inst =
      FindOrCreateInstance(FindOrCreateFamily(name, help, MetricKind::kHistogram, false), labels);
  if (!inst->histogram) inst->histogram.reset(new HistogramMetric(shards_, scale));
  return inst->histogram.get();
}

void MetricRegistry::AddCallback(const std::string& name, const std::string& help,
                                 MetricKind kind, const std::string& labels,
                                 std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Instance* inst = FindOrCreateInstance(FindOrCreateFamily(name, help, kind, true), labels);
  inst->callback = std::move(fn);
}

std::string MetricRegistry::PrometheusText() const {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& family : families_) {
    out.append("# HELP ").append(family->name).push_back(' ');
    out.append(family->help).push_back('\n');
    out.append("# TYPE ").append(family->name).push_back(' ');
    switch (family->kind) {
      case MetricKind::kCounter:
        out.append("counter\n");
        break;
      case MetricKind::kGauge:
        out.append("gauge\n");
        break;
      case MetricKind::kHistogram:
        out.append("histogram\n");
        break;
    }
    for (const auto& inst : family->instances) {
      if (inst->callback) {
        AppendSample(&out, family->name, inst->labels, "", inst->callback());
        continue;
      }
      switch (family->kind) {
        case MetricKind::kCounter:
          AppendSample(&out, family->name, inst->labels, "",
                       static_cast<double>(inst->counter->Total()));
          break;
        case MetricKind::kGauge:
          AppendSample(&out, family->name, inst->labels, "",
                       static_cast<double>(inst->gauge->Total()));
          break;
        case MetricKind::kHistogram: {
          const HistogramMetric& h = *inst->histogram;
          std::vector<uint64_t> bins = h.Bins();
          // Cumulative buckets, skipping the long runs of empty bins: a
          // bucket line is emitted whenever its bin is non-empty (so the
          // cumulative count changed), plus the mandatory +Inf.
          uint64_t cumulative = 0;
          for (size_t i = 0; i < kHistBuckets; ++i) {
            if (bins[i] == 0) continue;
            cumulative += bins[i];
            char le[64];
            snprintf(le, sizeof(le), "le=\"%.9g\"",
                     static_cast<double>(HistBucketHigh(i)) * h.scale());
            AppendSample(&out, family->name + "_bucket", inst->labels, le,
                         static_cast<double>(cumulative));
          }
          AppendSample(&out, family->name + "_bucket", inst->labels, "le=\"+Inf\"",
                       static_cast<double>(cumulative));
          AppendSample(&out, family->name + "_sum", inst->labels, "",
                       static_cast<double>(h.Sum()) * h.scale());
          AppendSample(&out, family->name + "_count", inst->labels, "",
                       static_cast<double>(cumulative));
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  char buf[256];
  for (const auto& family : families_) {
    for (const auto& inst : family->instances) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out.append(JsonKey(family->name, inst->labels));
      out.append("\":");
      if (inst->callback) {
        AppendNumber(&out, inst->callback());
      } else if (family->kind == MetricKind::kCounter) {
        AppendNumber(&out, static_cast<double>(inst->counter->Total()));
      } else if (family->kind == MetricKind::kGauge) {
        AppendNumber(&out, static_cast<double>(inst->gauge->Total()));
      } else {
        const HistogramMetric& h = *inst->histogram;
        snprintf(buf, sizeof(buf),
                 "{\"count\":%llu,\"sum\":%.9g,\"mean\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
                 "\"p99\":%.9g}",
                 static_cast<unsigned long long>(h.Count()),
                 static_cast<double>(h.Sum()) * h.scale(), h.Mean() * h.scale(),
                 static_cast<double>(h.Percentile(0.50)) * h.scale(),
                 static_cast<double>(h.Percentile(0.95)) * h.scale(),
                 static_cast<double>(h.Percentile(0.99)) * h.scale());
        out.append(buf);
      }
    }
  }
  out.push_back('}');
  return out;
}

bool ValidMetricPrefix(const std::string& prefix) {
  if (prefix.empty()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    char c = prefix[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    bool digit = (c >= '0' && c <= '9');
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

}  // namespace pfs
