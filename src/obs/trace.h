// Request tracing and latency attribution (obs/).
//
// Every client-level operation gets a trace id (TraceContext) that rides the
// calling thread — `Scheduler::SpawnImpl` copies it onto spawned threads, so
// volume fan-out fragments inherit the identity of the request that spawned
// them — and on each IoRequest handed to a driver. Instrumented stages record
// completed spans (enter/exit timestamps on whichever clock the system runs
// on) into per-OS-thread ring buffers owned by a TraceRecorder; a TraceSink
// drains the rings into per-stage latency histograms and a Chrome
// `trace_event` JSON export (open in chrome://tracing or Perfetto).
//
// Overhead when tracing is off: one branch per stage (the thread's context
// has a null recorder), nothing else.
#ifndef PFS_OBS_TRACE_H_
#define PFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/trace_context.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace pfs {

// One row per instrumented stage. Stage names are the Chrome-trace event
// names; tools/trace_check.py rejects a file containing any other name.
enum class TraceStage : uint8_t {
  kClient = 0,   // client.op: one root span per client operation
  kCacheFill,    // cache.fill: miss fill from the layout tier
  kVolume,       // volume.request: one logical request at a volume
  kFragment,     // volume.fragment: one member-local piece of a fan-out
  kDriverQueue,  // driver.queue: enqueue -> batch dispatch (queue wait)
  kDriverIo,     // driver.io: dispatch -> completion (service time)
  kDriverBatch,  // driver.batch: one batched device dispatch
};
inline constexpr size_t kTraceStageCount = 7;
const char* TraceStageName(TraceStage stage);

struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t tid = 0;  // scheduler Thread id: the chrome-trace row
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  uint64_t arg = 0;  // stage-specific size (bytes, sectors, batch size)
  TraceStage stage = TraceStage::kClient;
};

// Owns the span rings. Recording takes one uncontended mutex on a ring
// private to the calling OS thread (file-backed completions re-enter the
// scheduler via Post(), so in practice every span is recorded on the
// scheduler's OS thread); a full ring overwrites its oldest span and counts
// the drop rather than blocking or growing.
class TraceRecorder {
 public:
  TraceRecorder(Scheduler* sched, size_t ring_capacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  Scheduler* scheduler() const { return sched_; }
  size_t ring_capacity() const { return capacity_; }

  // A fresh trace id bound to this recorder; call at the root of an
  // operation and place the result on the current thread.
  TraceContext StartTrace() {
    return TraceContext{this, next_id_.fetch_add(1, std::memory_order_relaxed)};
  }

  void Record(const TraceSpan& span);

  // Moves every buffered span out (oldest-first within each ring),
  // appending to `*out`.
  void Drain(std::vector<TraceSpan>* out);

  uint64_t recorded() const;
  uint64_t dropped() const;

 private:
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::mutex mu;
    std::vector<TraceSpan> slots;
    size_t next = 0;  // insertion cursor
    size_t size = 0;  // occupied slots
    uint64_t recorded = 0;
    uint64_t dropped = 0;
  };

  Ring* LocalRing();

  Scheduler* sched_;
  size_t capacity_;
  uint64_t instance_id_;  // process-unique: keys the thread-local ring cache
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

// Records a completed span against `ctx`. Callers check `ctx.active()` first
// — that check is the entire disabled-path cost.
inline void RecordSpan(const TraceContext& ctx, TraceStage stage, uint64_t tid, TimePoint begin,
                       TimePoint end, uint64_t arg) {
  ctx.recorder->Record(TraceSpan{ctx.id, tid, begin.nanos(), end.nanos(), arg, stage});
}

// Drains a recorder into per-stage latency histograms (queue wait vs.
// service time per tier, surfaced as p50/p95/p99 in StatJson) and an event
// list exported as Chrome trace_event JSON.
class TraceSink : public StatSource {
 public:
  explicit TraceSink(TraceRecorder* recorder);

  // Spawns the periodic drain daemon (transient: it neither keeps Run()
  // alive nor leaves a finished record). Without Start(), Drain() on demand
  // still works.
  void Start(Duration drain_interval);

  // Pulls buffered spans out of the recorder into the sink.
  void Drain();

  // Drain + serialize the Chrome trace_event document.
  std::string ChromeTraceJson();
  Status WriteChromeTrace(const std::string& path);

  size_t span_count() const { return spans_.size(); }
  uint64_t spans_for_stage(TraceStage stage) const {
    return stage_counts_[static_cast<size_t>(stage)];
  }
  const LatencyHistogram& stage_latency(TraceStage stage) const {
    return stage_latency_[static_cast<size_t>(stage)];
  }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  // StatSource
  std::string stat_name() const override { return "trace"; }
  std::string StatReport(bool with_histograms) const override;
  std::string StatJson() const override;

 private:
  Task<> DrainLoop(Duration interval);

  TraceRecorder* recorder_;
  std::vector<TraceSpan> spans_;
  LatencyHistogram stage_latency_[kTraceStageCount];
  uint64_t stage_counts_[kTraceStageCount] = {};
  bool started_ = false;
};

// "trace.json" -> "trace-samples.json": where the StatsSampler time series
// lands next to a chrome-trace export.
std::string TraceSamplesPath(const std::string& trace_file);

}  // namespace pfs

#endif  // PFS_OBS_TRACE_H_
