#include "obs/sched_stats.h"

#include <cstdio>

namespace pfs {

double SchedStats::DepthPercentile(double q) const {
  uint64_t buckets[kMailboxDepthBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kMailboxDepthBuckets; ++i) {
    buckets[i] = sched_->mailbox_depth_bucket(i);
    total += buckets[i];
  }
  if (total == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kMailboxDepthBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(1ull << i);
    }
  }
  return static_cast<double>(1ull << (kMailboxDepthBuckets - 1));
}

std::string SchedStats::StatReport(bool with_histograms) const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "shard=%u steps=%llu posts=%llu cross_posts_sent=%llu drains=%llu "
                "depth_p50=%.0f depth_p99=%.0f idle=%.3fs live=%zu\n",
                sched_->shard_index(),
                static_cast<unsigned long long>(sched_->context_switches()),
                static_cast<unsigned long long>(sched_->posts_received()),
                static_cast<unsigned long long>(sched_->cross_posts_sent()),
                static_cast<unsigned long long>(sched_->mailbox_drains()), DepthPercentile(0.5),
                DepthPercentile(0.99), static_cast<double>(sched_->idle_nanos()) / 1e9,
                sched_->live_thread_count());
  std::string out(buf);
  if (with_histograms) {
    out += "drain-depth histogram (log2 buckets):\n";
    for (size_t i = 0; i < kMailboxDepthBuckets; ++i) {
      const uint64_t count = sched_->mailbox_depth_bucket(i);
      if (count == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "  <=%llu: %llu\n",
                    static_cast<unsigned long long>(1ull << i),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  }
  return out;
}

std::string SchedStats::StatJson() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"shard\":%u,\"steps\":%llu,\"posts_received\":%llu,"
                "\"cross_posts_sent\":%llu,\"mailbox_drains\":%llu,"
                "\"mailbox_depth\":{\"p50\":%.0f,\"p99\":%.0f},\"idle_ms\":%.3f}",
                sched_->shard_index(),
                static_cast<unsigned long long>(sched_->context_switches()),
                static_cast<unsigned long long>(sched_->posts_received()),
                static_cast<unsigned long long>(sched_->cross_posts_sent()),
                static_cast<unsigned long long>(sched_->mailbox_drains()), DepthPercentile(0.5),
                DepthPercentile(0.99), static_cast<double>(sched_->idle_nanos()) / 1e6);
  return buf;
}

}  // namespace pfs
