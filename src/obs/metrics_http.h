// Minimal HTTP scrape listener for the live metrics plane: a nonblocking TCP
// socket on 127.0.0.1 serviced by one dedicated OS thread, serving
// Prometheus text at /metrics, liveness + per-shard progress at /healthz,
// and the current ReportJson at /statz.
//
// The listener thread never enters scheduler control and never touches
// component state: /metrics and /healthz read only the relaxed-atomic metric
// cells and scheduler stat counters, so scraping a run under load is
// race-free and cannot violate shard affinity. /statz needs the non-atomic
// StatSource reports, so its handler is injected by the system builder and
// gathers via a posted coroutine on shard 0 (and CallOn hops for the rest),
// failing over to 503 when the schedulers are quiescing.
//
// HTTP support is deliberately tiny: HTTP/1.0 semantics, GET only,
// Connection: close, one short-lived blocking-write connection at a time.
// Scrapers poll at ~1 Hz; this is a diagnostics port, not a web server.
#ifndef PFS_OBS_METRICS_HTTP_H_
#define PFS_OBS_METRICS_HTTP_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"

namespace pfs {

class MetricRegistry;

// A handler returns the response body and sets `content_type`; returning
// false sends 503 Service Unavailable instead (e.g. /statz after teardown
// has begun).
using MetricsHttpHandler = std::function<bool(std::string* body, std::string* content_type)>;

class MetricsHttpServer {
 public:
  // `port` 0 binds an ephemeral port (read it back from port() after
  // Start()); any other value binds that port on 127.0.0.1.
  explicit MetricsHttpServer(uint16_t port) : requested_port_(port) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Registers `handler` for an exact request path ("/metrics"). All
  // registration must happen before Start(): the listener thread reads the
  // table without a lock.
  void Handle(const std::string& path, MetricsHttpHandler handler);

  // Binds + listens + spawns the listener thread. Fails (without a thread)
  // when the port is taken or sockets are unavailable.
  Status Start();

  // Stops accepting, joins the listener thread, closes the socket.
  // Idempotent; safe when Start() was never called or failed.
  void Stop();

  // The bound port (resolved from an ephemeral bind); 0 before Start().
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }

 private:
  void Serve();
  void HandleConnection(int fd);

  const uint16_t requested_port_;
  std::vector<std::pair<std::string, MetricsHttpHandler>> handlers_;
  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace pfs

#endif  // PFS_OBS_METRICS_HTTP_H_
