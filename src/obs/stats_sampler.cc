#include "obs/stats_sampler.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/check.h"
#include "sched/shard.h"

namespace pfs {

StatsSampler::StatsSampler(Scheduler* sched, StatsRegistry* stats, Duration interval)
    : sched_(sched), stats_(stats), interval_(interval) {
  PFS_CHECK(sched != nullptr);
  PFS_CHECK(stats != nullptr);
  PFS_CHECK(interval > Duration());
}

void StatsSampler::Start() {
  PFS_CHECK_MSG(!started_, "StatsSampler started twice");
  started_ = true;
  sched_->SpawnTransientDaemon("obs.stats_sampler", Loop());
}

Task<> StatsSampler::Loop() {
  for (;;) {
    co_await sched_->Sleep(interval_);
    if (group_ == nullptr) {
      SampleNow();
    } else {
      co_await SampleSharded();
    }
  }
}

void StatsSampler::SampleNow() {
  samples_.push_back(Sample{static_cast<double>(sched_->Now().nanos()) / 1e6,
                            stats_->ReportJson()});
}

Task<> StatsSampler::SampleSharded() {
  const double t_ms = static_cast<double>(sched_->Now().nanos()) / 1e6;
  std::string out = "{";
  for (size_t i = 0; i < group_->size(); ++i) {
    Scheduler* shard = group_->shard(i);
    StatsRegistry* stats = stats_;
    Scheduler* home = sched_;
    // The non-affine sources ride with the sampler's own shard so every
    // source appears exactly once. Named thunk, not a temporary: GCC 12
    // double-destroys non-trivial temporaries passed as coroutine arguments
    // in an await full-expression.
    auto body = [stats, shard, home]() -> Task<std::string> {
      co_return stats->ReportJsonOwned(shard, /*include_unowned=*/shard == home);
    };
    std::string frag = co_await CallOn<std::string>(sched_, shard, body);
    if (!frag.empty()) {
      if (out.size() > 1) {
        out += ",";
      }
      out += frag;
    }
  }
  out += "}";
  samples_.push_back(Sample{t_ms, std::move(out)});
}

std::string StatsSampler::SeriesJson() const {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < samples_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"t_ms\":%.3f,\"stats\":", i == 0 ? "" : ",",
                  samples_[i].t_ms);
    out += buf;
    out += samples_[i].stats_json;
    out += "}";
  }
  out += "]";
  return out;
}

Status StatsSampler::WriteFile(const std::string& path) const {
  const std::string json = SeriesJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status(ErrorCode::kIoError, "write " + path);
  }
  return OkStatus();
}

}  // namespace pfs
