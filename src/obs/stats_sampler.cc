#include "obs/stats_sampler.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/check.h"

namespace pfs {

StatsSampler::StatsSampler(Scheduler* sched, StatsRegistry* stats, Duration interval)
    : sched_(sched), stats_(stats), interval_(interval) {
  PFS_CHECK(sched != nullptr);
  PFS_CHECK(stats != nullptr);
  PFS_CHECK(interval > Duration());
}

void StatsSampler::Start() {
  PFS_CHECK_MSG(!started_, "StatsSampler started twice");
  started_ = true;
  sched_->SpawnTransientDaemon("obs.stats_sampler", Loop());
}

Task<> StatsSampler::Loop() {
  for (;;) {
    co_await sched_->Sleep(interval_);
    SampleNow();
  }
}

void StatsSampler::SampleNow() {
  samples_.push_back(Sample{static_cast<double>(sched_->Now().nanos()) / 1e6,
                            stats_->ReportJson()});
}

std::string StatsSampler::SeriesJson() const {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < samples_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"t_ms\":%.3f,\"stats\":", i == 0 ? "" : ",",
                  samples_[i].t_ms);
    out += buf;
    out += samples_[i].stats_json;
    out += "}";
  }
  out += "]";
  return out;
}

Status StatsSampler::WriteFile(const std::string& path) const {
  const std::string json = SeriesJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status(ErrorCode::kIoError, "write " + path);
  }
  return OkStatus();
}

}  // namespace pfs
