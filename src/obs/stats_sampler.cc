#include "obs/stats_sampler.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/check.h"
#include "obs/metrics.h"
#include "sched/shard.h"

namespace pfs {

StatsSampler::StatsSampler(Scheduler* sched, StatsRegistry* stats, Duration interval)
    : sched_(sched), stats_(stats), interval_(interval) {
  PFS_CHECK(sched != nullptr);
  PFS_CHECK(stats != nullptr);
  PFS_CHECK(interval > Duration());
}

StatsSampler::~StatsSampler() {
  if (writer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_stop_ = true;
    }
    cv_.notify_one();
    writer_.join();
  }
  if (out_ != nullptr) {
    std::fflush(out_);
    ::fsync(fileno(out_));
    std::fclose(out_);
  }
}

Status StatsSampler::OpenOutput(const std::string& path, size_t flush_every) {
  PFS_CHECK_MSG(!started_, "OpenOutput after Start");
  PFS_CHECK_MSG(out_ == nullptr, "OpenOutput called twice");
  PFS_CHECK(flush_every > 0);
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  flush_every_ = flush_every;
  writer_ = std::thread([this] { WriterLoop(); });
  return OkStatus();
}

void StatsSampler::WriterLoop() {
  // All blocking file work lives here: fwrite can block on a full page-cache
  // writeback queue and fdatasync is an unbounded syscall — neither belongs
  // on a scheduler thread, where they would stall every coroutine on the
  // shard and distort the latency distributions being sampled.
  size_t unflushed = 0;
  for (;;) {
    std::deque<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return writer_stop_ || !pending_.empty(); });
      if (pending_.empty() && writer_stop_) break;
      batch.swap(pending_);
    }
    for (const std::string& line : batch) {
      std::fwrite(line.data(), 1, line.size(), out_);
    }
    unflushed += batch.size();
    if (unflushed >= flush_every_) {
      std::fflush(out_);
      ::fdatasync(fileno(out_));
      unflushed = 0;
    }
  }
  if (unflushed > 0) {
    std::fflush(out_);
    ::fdatasync(fileno(out_));
  }
}

void StatsSampler::Start() {
  PFS_CHECK_MSG(!started_, "StatsSampler started twice");
  started_ = true;
  sched_->SpawnTransientDaemon("obs.stats_sampler", Loop());
}

Task<> StatsSampler::Loop() {
  for (;;) {
    co_await sched_->Sleep(interval_);
    if (group_ == nullptr) {
      SampleNow();
    } else {
      co_await SampleSharded();
    }
  }
}

void StatsSampler::PushSample(double t_ms, std::string stats_json) {
  SamplePoint sample;
  sample.t_ms = t_ms;
  sample.stats_json = std::move(stats_json);
  if (metrics_ != nullptr) {
    sample.metrics_json = metrics_->JsonSnapshot();
  }
  if (out_ != nullptr) {
    // Hand the rendered line to the writer thread; file I/O (and the
    // periodic sync) must not run on the scheduler thread.
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(LineJson(sample) + "\n");
    }
    cv_.notify_one();
  }
  samples_.push_back(std::move(sample));
}

void StatsSampler::SampleNow() {
  PushSample(static_cast<double>(sched_->Now().nanos()) / 1e6, stats_->ReportJson());
}

Task<> StatsSampler::SampleSharded() {
  const double t_ms = static_cast<double>(sched_->Now().nanos()) / 1e6;
  std::string out = "{";
  for (size_t i = 0; i < group_->size(); ++i) {
    Scheduler* shard = group_->shard(i);
    StatsRegistry* stats = stats_;
    Scheduler* home = sched_;
    // The non-affine sources ride with the sampler's own shard so every
    // source appears exactly once. Named thunk, not a temporary: GCC 12
    // double-destroys non-trivial temporaries passed as coroutine arguments
    // in an await full-expression.
    auto body = [stats, shard, home]() -> Task<std::string> {
      co_return stats->ReportJsonOwned(shard, /*include_unowned=*/shard == home);
    };
    std::string frag = co_await CallOn<std::string>(sched_, shard, body);
    if (!frag.empty()) {
      if (out.size() > 1) {
        out += ",";
      }
      out += frag;
    }
  }
  out += "}";
  PushSample(t_ms, std::move(out));
}

std::string StatsSampler::LineJson(const SamplePoint& sample) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"t_ms\":%.3f,\"stats\":", sample.t_ms);
  std::string out(buf);
  out += sample.stats_json;
  if (!sample.metrics_json.empty()) {
    out += ",\"metrics\":";
    out += sample.metrics_json;
  }
  out += "}";
  return out;
}

std::string StatsSampler::SeriesJson() const {
  std::string out = "[";
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += LineJson(samples_[i]);
  }
  out += "]";
  return out;
}

Status StatsSampler::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(ErrorCode::kIoError, "open " + path + ": " + std::strerror(errno));
  }
  bool ok = true;
  for (const SamplePoint& sample : samples_) {
    const std::string line = LineJson(sample) + "\n";
    ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size();
  }
  const int close_rc = std::fclose(f);
  if (!ok || close_rc != 0) {
    return Status(ErrorCode::kIoError, "write " + path);
  }
  return OkStatus();
}

}  // namespace pfs
