// Live metrics plane (obs/): a typed metric registry scraped over HTTP while
// the system runs, complementing the post-hoc StatSource reports.
//
// Every metric is internally *sharded*: one cache-line-padded slot per
// scheduler shard plus one overflow slot for OS threads outside scheduler
// control. The owning shard updates its slot with relaxed atomic loads and
// stores only — a single writer per slot, exactly the PFS_ASSERT_SHARD
// ownership model — so the hot path is wait-free and takes no lock, no RMW,
// and no fence. Scrapers (the HTTP listener thread, the StatsSampler) sum
// the slots with relaxed loads from any thread; each slot is individually
// monotonic for counters, so consecutive scrapes can never observe a counter
// go backwards.
//
// Histograms are HDR-style log-bucketed fixed bins: 8 sub-buckets per power
// of two (<= 12.5% relative bucket width) over the full uint64 range, no
// sampling and no ring to overflow — unlike the bounded trace-span rings,
// the percentile error is bounded by bucket width alone. The latency_ms /
// queue_wait_ms / fill_ms percentile objects in StatJson are computed from
// these histograms whenever a component is bound to a registry, so the
// scrape output and the end-of-run report agree by construction.
#ifndef PFS_OBS_METRICS_H_
#define PFS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/time.h"

namespace pfs {

// Bucket scheme shared by recording, percentile math, and the text export:
// values < 2^kHistSubBits get unit-width buckets; above that, each power of
// two splits into kHistSubBuckets equal bins.
inline constexpr uint32_t kHistSubBits = 3;
inline constexpr uint32_t kHistSubBuckets = 1u << kHistSubBits;  // 8
inline constexpr size_t kHistBuckets =
    static_cast<size_t>(64 - kHistSubBits + 1) * kHistSubBuckets;  // covers all of uint64

// Bucket index of `v` (always < kHistBuckets).
size_t HistBucketIndex(uint64_t v);
// Exclusive upper bound of bucket `i` (the `le` boundary in scrape output);
// the last bucket reports UINT64_MAX.
uint64_t HistBucketHigh(size_t i);

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

namespace metrics_detail {

// One shard's slot of a scalar metric, padded so two shards never share a
// cache line. Only the owning shard writes it (relaxed load + store); the
// overflow slot for non-scheduler threads uses fetch_add instead.
struct alignas(64) ScalarCell {
  std::atomic<int64_t> v{0};
};

// One shard's slot of a histogram. No alignment games: the slot is several
// cache lines by itself, so cross-shard false sharing is limited to the
// edges and irrelevant next to the array's footprint.
struct HistCell {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> buckets[kHistBuckets]{};
};

// Single-writer bump: the owning shard is the only writer of its slot, so a
// relaxed load + store is a plain increment that scrapers can still read
// without a data race.
inline void BumpRelaxed(std::atomic<uint64_t>& cell, uint64_t k) {
  cell.store(cell.load(std::memory_order_relaxed) + k, std::memory_order_relaxed);
}

}  // namespace metrics_detail

class MetricRegistry;

// Monotonic event count. Inc() from the owning shard's loop; Total() from
// anywhere.
class CounterMetric {
 public:
  void Inc(uint64_t k = 1);
  uint64_t Total() const;

 private:
  friend class MetricRegistry;
  explicit CounterMetric(size_t shards) : cells_(shards + 1) {}
  std::vector<metrics_detail::ScalarCell> cells_;
};

// Point-in-time value. Each shard sets its own slot; Total() sums them, so
// per-shard quantities (queue depths, debt bytes) aggregate naturally.
class GaugeMetric {
 public:
  void Set(int64_t v);
  void Add(int64_t delta);
  int64_t Total() const;

 private:
  friend class MetricRegistry;
  explicit GaugeMetric(size_t shards) : cells_(shards + 1) {}
  std::vector<metrics_detail::ScalarCell> cells_;
};

// Log-bucketed distribution over uint64 samples (latencies in nanoseconds,
// sizes in requests/bytes). Record() from the owning shard; the read side
// aggregates the per-shard bins.
class HistogramMetric {
 public:
  void Record(uint64_t v);
  void RecordDuration(Duration d) {
    Record(d.nanos() > 0 ? static_cast<uint64_t>(d.nanos()) : 0);
  }

  // Aggregated over every shard slot, relaxed reads: a scrape racing the
  // writers sees each bin's latest published value.
  uint64_t Count() const;
  uint64_t Sum() const;
  double Mean() const;
  // Smallest bucket upper bound covering fraction `q` (in [0, 1]) of the
  // recorded samples; 0 when empty. Percentile error <= one bucket width.
  uint64_t Percentile(double q) const;
  // One bin per bucket, aggregated across shards (kHistBuckets entries).
  std::vector<uint64_t> Bins() const;

  // The four-field percentile object every latency-carrying StatJson uses
  // ("\"<key>\":{\"mean\":…,\"p50\":…,\"p95\":…,\"p99\":…}", milliseconds):
  // computing it here is what makes StatJson and the scrape output agree by
  // construction.
  std::string LatencyMsJsonObject(const std::string& key) const;

  // Export scale: multiplied into bucket bounds / sums for the text format
  // (1e-9 renders nanosecond samples as Prometheus-conventional seconds).
  double scale() const { return scale_; }

 private:
  friend class MetricRegistry;
  HistogramMetric(size_t shards, double scale) : scale_(scale), cells_(shards + 1) {}
  double scale_;
  std::vector<metrics_detail::HistCell> cells_;
};

// The registry: named families of metric instances, each instance keyed by a
// flat label string ("disk=\"d0\""). Registration happens during system
// assembly (single-threaded, before any scrape); Counter()/Gauge()/
// Histogram() return stable pointers the components keep for the run.
// Scrapes never touch component state, so a scrape during active load
// cannot violate shard affinity.
class MetricRegistry {
 public:
  // `shards` sizes every metric's slot array; `prefix` is prepended to every
  // family name ("pfs" -> "pfs_cache_hits_total").
  MetricRegistry(size_t shards, std::string prefix);

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  size_t shards() const { return shards_; }
  const std::string& prefix() const { return prefix_; }

  // Find-or-create: the same (name, labels) pair always returns the same
  // instance, so independently bound components may share a series. `name`
  // is the unprefixed family name; counters should end in "_total",
  // Prometheus-style. `labels` is the literal text between the braces
  // ("shard=\"0\"", "" for none).
  CounterMetric* Counter(const std::string& name, const std::string& help,
                         const std::string& labels = "");
  GaugeMetric* Gauge(const std::string& name, const std::string& help,
                     const std::string& labels = "");
  HistogramMetric* Histogram(const std::string& name, const std::string& help,
                             const std::string& labels = "", double scale = 1.0);

  // Read-side metric computed by `fn` at scrape time. `fn` MUST be callable
  // from any OS thread mid-run: read only std::atomic state (the scheduler's
  // relaxed stat counters are the intended source) — never walk component
  // structures.
  void AddCallback(const std::string& name, const std::string& help, MetricKind kind,
                   const std::string& labels, std::function<double()> fn);

  // Prometheus text exposition (version 0.0.4): # HELP / # TYPE per family,
  // one sample line per instance, histograms as cumulative _bucket/_sum/
  // _count series. Thread-safe; takes only the registration mutex (never
  // contended by writers).
  std::string PrometheusText() const;

  // Flat JSON object for the StatsSampler time series: scalar families map
  // to numbers, histograms to {count,sum,mean,p50,p95,p99} objects. Keys are
  // "<prefixed name>{<labels without quotes>}".
  std::string JsonSnapshot() const;

  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  struct Instance {
    std::string labels;
    std::unique_ptr<CounterMetric> counter;
    std::unique_ptr<GaugeMetric> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::function<double()> callback;
  };
  struct Family {
    std::string name;  // prefixed
    std::string help;
    MetricKind kind;
    bool callback = false;
    std::vector<std::unique_ptr<Instance>> instances;
  };

  Family* FindOrCreateFamily(const std::string& name, const std::string& help, MetricKind kind,
                             bool callback);
  Instance* FindOrCreateInstance(Family* family, const std::string& labels);

  const size_t shards_;
  const std::string prefix_;
  mutable std::mutex mu_;  // guards families_ layout, not metric values
  std::vector<std::unique_ptr<Family>> families_;
  mutable std::atomic<uint64_t> scrapes_{0};
};

// True when `prefix` is a valid Prometheus metric-name prefix
// ([a-zA-Z_][a-zA-Z0-9_]*): config validation and the scrape linter agree on
// this rule.
bool ValidMetricPrefix(const std::string& prefix);

}  // namespace pfs

#endif  // PFS_OBS_METRICS_H_
