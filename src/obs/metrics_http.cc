#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace pfs {

namespace {

// Full write with EINTR retry; gives up on any other error (the scraper
// hung up or stalled — nothing useful to do about it on a diagnostics port).
// MSG_NOSIGNAL: a scraper that disconnects mid-response (scrape timeout,
// curl --max-time) must surface as EPIPE here, not as a process-killing
// SIGPIPE. The accepted fd carries SO_SNDTIMEO (see HandleConnection), so a
// client that stops reading makes send() fail with EAGAIN after the timeout
// instead of wedging the listener thread — and Stop() — forever.
void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, int code, const char* reason, const std::string& content_type,
                   const std::string& body) {
  char header[256];
  int n = snprintf(header, sizeof(header),
                   "HTTP/1.0 %d %s\r\n"
                   "Content-Type: %s\r\n"
                   "Content-Length: %zu\r\n"
                   "Connection: close\r\n"
                   "\r\n",
                   code, reason, content_type.c_str(), body.size());
  WriteAll(fd, header, static_cast<size_t>(n));
  WriteAll(fd, body.data(), body.size());
}

}  // namespace

void MetricsHttpServer::Handle(const std::string& path, MetricsHttpHandler handler) {
  handlers_.emplace_back(path, std::move(handler));
}

Status MetricsHttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("metrics: socket() failed: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Loopback only: the scrape port exposes internal state and has no auth.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(requested_port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    Status status(ErrorCode::kIoError, std::string("metrics: bind/listen on port ") +
                                           std::to_string(requested_port_) +
                                           " failed: " + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  // Resolve the bound port (meaningful for an ephemeral bind of port 0).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }

  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return OkStatus();
}

void MetricsHttpServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::Serve() {
  // Nonblocking accept under a short poll: the 100 ms timeout bounds how
  // long Stop() waits for the thread to notice the flag.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Bound the write side the way the read side is bounded below: a client
  // that sends a GET but never drains the response would otherwise park the
  // listener thread in send() once the socket buffer fills.
  timeval snd_timeout{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_timeout, sizeof(snd_timeout));

  // One bounded read is enough: scrapers send a short GET and nothing we
  // serve looks at headers or a body. Poll so a dribbling client cannot
  // wedge the listener thread.
  char buf[2048];
  size_t used = 0;
  while (used < sizeof(buf) - 1) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) return;  // slow client: drop it
    ssize_t n = ::read(fd, buf + used, sizeof(buf) - 1 - used);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    used += static_cast<size_t>(n);
    buf[used] = '\0';
    if (strstr(buf, "\r\n") != nullptr || strchr(buf, '\n') != nullptr) break;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: "GET <path> HTTP/1.x". Anything else is a 405/400.
  if (strncmp(buf, "GET ", 4) != 0) {
    WriteResponse(fd, 405, "Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  const char* start = buf + 4;
  const char* end = start;
  while (*end != '\0' && *end != ' ' && *end != '\r' && *end != '\n' && *end != '?') ++end;
  std::string path(start, static_cast<size_t>(end - start));

  for (const auto& [handler_path, handler] : handlers_) {
    if (handler_path != path) continue;
    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    if (!handler(&body, &content_type)) {
      WriteResponse(fd, 503, "Service Unavailable", "text/plain", "unavailable\n");
      return;
    }
    WriteResponse(fd, 200, "OK", content_type, body);
    return;
  }
  WriteResponse(fd, 404, "Not Found", "text/plain", "unknown path\n");
}

}  // namespace pfs
