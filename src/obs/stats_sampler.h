// StatsSampler: a transient daemon that snapshots StatsRegistry::ReportJson()
// every N ms into a time-series array, so runs emit latency/throughput
// *curves* instead of one end-of-run scalar. Snapshots are cumulative (the
// sampler never calls ResetIntervalAll — interval semantics stay owned by
// whoever drives StatReport); consumers difference adjacent samples to get
// rates.
//
// Deliberately NOT a StatSource: registering it would recurse through
// ReportJson().
#ifndef PFS_OBS_STATS_SAMPLER_H_
#define PFS_OBS_STATS_SAMPLER_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sched/scheduler.h"
#include "stats/registry.h"

namespace pfs {

class SchedulerGroup;

class StatsSampler {
 public:
  StatsSampler(Scheduler* sched, StatsRegistry* stats, Duration interval);

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  Duration interval() const { return interval_; }

  // Sharded systems: sample each shard's shard-affine sources *on that
  // shard's loop* (via CallOn round trips) instead of reading foreign
  // counters directly. Call before Start().
  void set_group(SchedulerGroup* group) { group_ = group; }

  // Spawns the sampling daemon (transient: neither keeps Run() alive nor
  // leaves a finished record).
  void Start();

  // Takes one snapshot now; the daemon calls this every interval.
  void SampleNow();

  size_t sample_count() const { return samples_.size(); }

  // `[{"t_ms":<clock ms>,"stats":<ReportJson()>}, ...]`
  std::string SeriesJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  Task<> Loop();
  Task<> SampleSharded();

  Scheduler* sched_;
  StatsRegistry* stats_;
  Duration interval_;
  SchedulerGroup* group_ = nullptr;

  struct Sample {
    double t_ms;
    std::string stats_json;
  };
  std::vector<Sample> samples_;
  bool started_ = false;
};

}  // namespace pfs

#endif  // PFS_OBS_STATS_SAMPLER_H_
