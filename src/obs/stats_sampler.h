// StatsSampler: a transient daemon that snapshots StatsRegistry::ReportJson()
// every N ms into a time-series, so runs emit latency/throughput *curves*
// instead of one end-of-run scalar. Snapshots are cumulative (the sampler
// never calls ResetIntervalAll — interval semantics stay owned by whoever
// drives StatReport); consumers difference adjacent samples to get rates.
//
// With OpenOutput() the series also streams to disk incrementally: each
// sample appends one NDJSON line and the file is sync'd every `flush_every`
// samples, so a crashed or killed run keeps everything but the tail. The
// stream-and-sync work runs on a dedicated writer thread — fsync on the
// sampling coroutine would stall the shard's scheduler loop and distort the
// very latencies being sampled — so the sampler only enqueues lines.
//
// Deliberately NOT a StatSource: registering it would recurse through
// ReportJson().
#ifndef PFS_OBS_STATS_SAMPLER_H_
#define PFS_OBS_STATS_SAMPLER_H_

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "sched/scheduler.h"
#include "stats/registry.h"

namespace pfs {

class SchedulerGroup;
class MetricRegistry;

// One snapshot: the clock stamp plus the JSON fragments gathered at it.
struct SamplePoint {
  double t_ms;
  std::string stats_json;
  std::string metrics_json;  // empty when no MetricRegistry is attached
};

class StatsSampler {
 public:
  StatsSampler(Scheduler* sched, StatsRegistry* stats, Duration interval);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  Duration interval() const { return interval_; }

  // Sharded systems: sample each shard's shard-affine sources *on that
  // shard's loop* (via CallOn round trips) instead of reading foreign
  // counters directly. Call before Start().
  void set_group(SchedulerGroup* group) { group_ = group; }

  // Live metrics plane: when set, every sample carries a "metrics" object
  // (MetricRegistry::JsonSnapshot()) next to "stats". Call before Start().
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  // Streams samples to `path` as NDJSON on a writer thread, syncing every
  // `flush_every` samples (and on destruction). Call before Start().
  Status OpenOutput(const std::string& path, size_t flush_every);
  bool streaming() const { return out_ != nullptr; }

  // Spawns the sampling daemon (transient: neither keeps Run() alive nor
  // leaves a finished record).
  void Start();

  // Takes one snapshot now; the daemon calls this every interval.
  void SampleNow();

  size_t sample_count() const { return samples_.size(); }

  // `[{"t_ms":<clock ms>,"stats":<ReportJson()>}, ...]`
  std::string SeriesJson() const;
  // One `{"t_ms":...,"stats":...}` line per sample (NDJSON, the same shape
  // OpenOutput streams).
  Status WriteFile(const std::string& path) const;

 private:
  Task<> Loop();
  Task<> SampleSharded();
  // "{"t_ms":...,"stats":<json>[,"metrics":<snapshot>]}" for one sample.
  std::string LineJson(const SamplePoint& sample) const;
  void PushSample(double t_ms, std::string stats_json);
  // Writer-thread body: drains `pending_` into `out_`, syncing every
  // `flush_every_` lines, plus once more on shutdown.
  void WriterLoop();

  Scheduler* sched_;
  StatsRegistry* stats_;
  Duration interval_;
  SchedulerGroup* group_ = nullptr;
  MetricRegistry* metrics_ = nullptr;

  std::vector<SamplePoint> samples_;
  bool started_ = false;

  // Incremental NDJSON stream (OpenOutput). `out_` is touched only by the
  // writer thread once it starts; the sampling coroutine just enqueues
  // rendered lines under `mu_`.
  std::FILE* out_ = nullptr;
  size_t flush_every_ = 1;
  std::thread writer_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> pending_;
  bool writer_stop_ = false;
};

}  // namespace pfs

#endif  // PFS_OBS_STATS_SAMPLER_H_
