// Disk geometry: cylinders/heads/sectors addressing and rotational timing.
#ifndef PFS_DISK_GEOMETRY_H_
#define PFS_DISK_GEOMETRY_H_

#include <cstdint>

#include "sched/time.h"

namespace pfs {

struct Chs {
  uint32_t cylinder;
  uint32_t head;
  uint32_t sector;
};

struct DiskGeometry {
  uint32_t cylinders;
  uint32_t heads;
  uint32_t sectors_per_track;
  uint32_t sector_bytes;
  uint32_t rpm;

  uint64_t TotalSectors() const {
    return static_cast<uint64_t>(cylinders) * heads * sectors_per_track;
  }
  uint64_t TotalBytes() const { return TotalSectors() * sector_bytes; }

  uint64_t SectorsPerCylinder() const {
    return static_cast<uint64_t>(heads) * sectors_per_track;
  }

  // LBA layout: sectors within a track, tracks within a cylinder (head
  // order), cylinders outward — the classical mapping.
  Chs ToChs(uint64_t lba) const {
    const uint64_t per_cyl = SectorsPerCylinder();
    Chs chs;
    chs.cylinder = static_cast<uint32_t>(lba / per_cyl);
    const uint64_t in_cyl = lba % per_cyl;
    chs.head = static_cast<uint32_t>(in_cyl / sectors_per_track);
    chs.sector = static_cast<uint32_t>(in_cyl % sectors_per_track);
    return chs;
  }

  uint64_t ToLba(const Chs& chs) const {
    return static_cast<uint64_t>(chs.cylinder) * SectorsPerCylinder() +
           static_cast<uint64_t>(chs.head) * sectors_per_track + chs.sector;
  }

  // One full revolution (e.g. 4002 rpm -> 14.99 ms).
  Duration RotationTime() const { return Duration::Nanos(60LL * 1000000000LL / rpm); }

  // Time for one sector to pass under the head.
  Duration SectorTime() const { return RotationTime() / sectors_per_track; }

  // Media transfer rate in bytes/second.
  double MediaRate() const {
    return static_cast<double>(sector_bytes) / SectorTime().ToSecondsF();
  }
};

}  // namespace pfs

#endif  // PFS_DISK_GEOMETRY_H_
