// Seek-time models. The HP 97560 uses the classic two-range curve from
// Ruemmler & Wilkes, "An Introduction to Disk Drive Modeling" (IEEE Computer
// 1994): a + b*sqrt(d) for short seeks (arm acceleration dominated), a + b*d
// for long seeks (constant velocity).
#ifndef PFS_DISK_SEEK_MODEL_H_
#define PFS_DISK_SEEK_MODEL_H_

#include <cstdint>

#include "sched/time.h"

namespace pfs {

class SeekModel {
 public:
  virtual ~SeekModel() = default;
  virtual Duration SeekTime(uint32_t from_cylinder, uint32_t to_cylinder) const = 0;
};

class TwoRangeSeekModel final : public SeekModel {
 public:
  struct Params {
    uint32_t boundary;   // cylinder distance where the regimes switch
    double short_a_ms;   // short seeks: a + b*sqrt(d) milliseconds
    double short_b_ms;
    double long_a_ms;    // long seeks: a + b*d milliseconds
    double long_b_ms;
  };

  explicit TwoRangeSeekModel(Params params) : params_(params) {}

  Duration SeekTime(uint32_t from_cylinder, uint32_t to_cylinder) const override;

 private:
  Params params_;
};

// Fixed-cost model for unit tests and synthetic ablations.
class ConstantSeekModel final : public SeekModel {
 public:
  explicit ConstantSeekModel(Duration t) : t_(t) {}
  Duration SeekTime(uint32_t from, uint32_t to) const override {
    return from == to ? Duration() : t_;
  }

 private:
  Duration t_;
};

}  // namespace pfs

#endif  // PFS_DISK_SEEK_MODEL_H_
