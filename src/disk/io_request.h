// I/O-request structure exchanged between disk-drivers and disks (paper §4:
// "Simulation disk drivers package disk operations in I/O-request data
// structures [which] contain all the relevant information for the disk
// simulator ... and timing information to measure the performance").
//
// The same structure flows through the real (file-backed) driver, so the
// queue-scheduling and measurement code is shared between PFS and Patsy.
#ifndef PFS_DISK_IO_REQUEST_H_
#define PFS_DISK_IO_REQUEST_H_

#include <cstdint>
#include <span>

#include "core/status.h"
#include "obs/trace_context.h"
#include "sched/event.h"
#include "sched/time.h"

namespace pfs {

enum class IoOp : uint8_t { kRead, kWrite };

struct IoRequest {
  IoRequest(Scheduler* sched, IoOp op_in, uint64_t sector_in, uint32_t sector_count_in,
            std::span<std::byte> read_buf_in, std::span<const std::byte> write_buf_in)
      : op(op_in), sector(sector_in), sector_count(sector_count_in), read_buf(read_buf_in),
        write_buf(write_buf_in), done(sched) {}

  IoOp op;
  uint64_t sector;        // starting LBA
  uint32_t sector_count;  // length in sectors
  // Byte buffers for the real system; empty in a simulator, where helper
  // components account for transfer *time* instead of moving bytes.
  std::span<std::byte> read_buf;         // filled by a real read
  std::span<const std::byte> write_buf;  // consumed by a real write

  uint64_t byte_count(uint32_t sector_bytes) const {
    return static_cast<uint64_t>(sector_count) * sector_bytes;
  }

  // -- measurement (filled in as the request moves through the system) --
  TimePoint enqueue_time;   // entered the driver queue
  TimePoint dispatch_time;  // sent to the device
  TimePoint complete_time;  // completion delivered to the issuer
  Duration seek_time;       // mechanical breakdown, for the stats plug-ins
  Duration rotational_delay;
  bool served_from_disk_cache = false;

  // Identity of the client operation this request serves (obs/); empty when
  // tracing is off or the request comes from a background daemon.
  TraceContext trace;

  Status result;
  Notification done;
};

}  // namespace pfs

#endif  // PFS_DISK_IO_REQUEST_H_
