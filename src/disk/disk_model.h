// Simulated disk (paper §4, "Simulated disks"): a separate thread of control
// models the mechanism — command decode, seek, rotational delay, media
// transfer — and responds to the driver over the shared host/disk connection.
// The model knows heads, tracks, sectors, rotational speed, controller
// overhead and implements the HP 97560's cache policies: immediate-reported
// writes (complete once data is in the 128 KB disk cache) and 4 KB
// read-ahead when the queue drains.
#ifndef PFS_DISK_DISK_MODEL_H_
#define PFS_DISK_DISK_MODEL_H_

#include <deque>
#include <string>

#include "bus/connection.h"
#include "disk/geometry.h"
#include "disk/io_request.h"
#include "disk/seek_model.h"
#include "sched/event.h"
#include "sched/scheduler.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace pfs {

struct DiskParams {
  std::string model_name;
  DiskGeometry geometry;
  TwoRangeSeekModel::Params seek;
  Duration head_switch;          // head/track switch time
  Duration controller_overhead;  // SCSI command decode + setup
  uint32_t cache_bytes;          // on-board cache
  bool immediate_report_writes;  // complete writes from the cache
  uint32_t read_ahead_bytes;     // prefetch window when idle; 0 disables

  // HP 97560: 1.3 GB, 1962 cyl x 19 heads x 72 sectors x 512 B, 4002 rpm.
  // Seek curve and geometry from Ruemmler & Wilkes (IEEE Computer '94) and
  // Kotz et al. (Dartmouth TR94-220), the same sources the paper cites.
  static DiskParams Hp97560();

  // HP C3323A: the faster mid-90s 3.5" profile from the same Ruemmler &
  // Wilkes survey — 1.0 GB, 5400 rpm, quicker arm, bigger cache. Roughly
  // half the per-request mechanical latency of the 97560.
  static DiskParams HpC3323A();

  // Small, fast, deterministic disk for unit tests: constant seek, no cache.
  static DiskParams SyntheticTest();
};

class DiskModel : public StatSource {
 public:
  // `bus` is the host/disk connection used for the response phase; the
  // driver handles the command/data-out phase itself.
  DiskModel(Scheduler* sched, std::string name, DiskParams params, Connection* bus);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Spawns the mechanism daemon; call once before submitting requests.
  void Start();

  // Hands a decoded request to the disk. Charges controller overhead, then
  // either completes it from the on-board cache (immediate-reported write /
  // read-ahead hit is flagged for the mechanism) or queues it for the
  // mechanism. Called by the driver with the bus released.
  Task<> Submit(IoRequest* req);

  const DiskParams& params() const { return params_; }
  const std::string& name() const { return name_; }

  // StatSource
  std::string stat_name() const override { return "disk." + name_; }
  std::string StatReport(bool with_histograms) const override;
  void StatResetInterval() override;

  // Exposed counters for tests and experiment harnesses.
  uint64_t reads() const { return reads_.value(); }
  uint64_t writes() const { return writes_.value(); }
  uint64_t cache_hit_reads() const { return cache_hit_reads_.value(); }
  uint64_t immediate_writes() const { return immediate_writes_.value(); }
  uint64_t destages() const { return destages_.value(); }
  uint64_t prefetches() const { return prefetches_.value(); }
  const Histogram& rotational_delay_ms() const { return rot_delay_ms_; }
  const Histogram& seek_time_ms() const { return seek_ms_; }
  const LatencyHistogram& service_time() const { return service_time_; }

 private:
  struct InternalJob {
    uint64_t sector;
    uint32_t count;
  };

  Task<> Mechanism();
  Task<> ProcessExternal(IoRequest* req);
  // Seek + rotate + transfer for [sector, sector+count); fills the timing
  // breakdown out-params. Only external requests feed the seek/rotation
  // statistics plug-ins (`record_stats`); internal destage/prefetch work is
  // mechanically identical but not part of the observed request stream.
  Task<> MediaAccess(uint64_t sector, uint32_t count, bool record_stats, Duration* seek_out,
                     Duration* rot_out);
  Task<> Destage(const InternalJob& job);
  Task<> Prefetch();

  Duration RotationalDelayTo(uint32_t target_sector) const;
  bool ReadHitsCache(const IoRequest& req) const;

  Scheduler* sched_;
  std::string name_;
  DiskParams params_;
  TwoRangeSeekModel seek_model_;
  Connection* bus_;

  Event work_;
  std::deque<IoRequest*> external_;
  std::deque<InternalJob> destage_queue_;
  bool prefetch_armed_ = false;
  bool started_ = false;

  // Mechanical state.
  uint32_t current_cylinder_ = 0;
  uint32_t current_head_ = 0;

  // Cache state.
  uint64_t cache_used_bytes_ = 0;   // reserved by not-yet-destaged writes
  uint64_t read_ahead_start_ = 0;   // [start, end) sectors prefetched
  uint64_t read_ahead_end_ = 0;
  uint64_t last_read_end_ = 0;      // where the next prefetch would begin

  // Statistics.
  Counter reads_;
  Counter writes_;
  Counter cache_hit_reads_;
  Counter immediate_writes_;
  Counter destages_;
  Counter prefetches_;
  Histogram queue_depth_{0, 64, 64};
  Histogram rot_delay_ms_{0, 20, 40};
  Histogram seek_ms_{0, 30, 60};
  LatencyHistogram service_time_;
};

}  // namespace pfs

#endif  // PFS_DISK_DISK_MODEL_H_
