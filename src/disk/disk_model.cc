#include "disk/disk_model.h"

#include <algorithm>

#include "core/log.h"
#include "system/component_registry.h"

namespace pfs {

void RegisterBuiltinDiskModels() {
  // Keyed by DiskParams::model_name, so configs serialize by model name.
  DiskModelRegistry::Register("HP97560", [] { return DiskParams::Hp97560(); });
  DiskModelRegistry::Register("HPC3323A", [] { return DiskParams::HpC3323A(); });
  DiskModelRegistry::Register("SyntheticTest", [] { return DiskParams::SyntheticTest(); });
}

DiskParams DiskParams::Hp97560() {
  DiskParams p;
  p.model_name = "HP97560";
  p.geometry = DiskGeometry{/*cylinders=*/1962, /*heads=*/19, /*sectors_per_track=*/72,
                            /*sector_bytes=*/512, /*rpm=*/4002};
  p.seek = TwoRangeSeekModel::Params{/*boundary=*/383, /*short_a_ms=*/3.24, /*short_b_ms=*/0.400,
                                     /*long_a_ms=*/8.00, /*long_b_ms=*/0.008};
  p.head_switch = Duration::MillisF(1.6);
  // The paper reads the 2 ms latency floor as "SCSI-request decoding": the
  // minimal cost of any disk-serviced operation.
  p.controller_overhead = Duration::MillisF(2.0);
  p.cache_bytes = 128 * 1024;
  p.immediate_report_writes = true;
  p.read_ahead_bytes = 4 * 1024;
  return p;
}

DiskParams DiskParams::HpC3323A() {
  DiskParams p;
  p.model_name = "HPC3323A";
  // 2982 cyl x 7 heads x 96 sectors x 512 B ~= 1.0 GB at a fixed
  // sectors-per-track approximation of the drive's zoned geometry.
  p.geometry = DiskGeometry{/*cylinders=*/2982, /*heads=*/7, /*sectors_per_track=*/96,
                            /*sector_bytes=*/512, /*rpm=*/5400};
  // Faster arm than the 97560: ~2.5 ms short seeks, ~11 ms full stroke.
  p.seek = TwoRangeSeekModel::Params{/*boundary=*/616, /*short_a_ms=*/2.20, /*short_b_ms=*/0.300,
                                     /*long_a_ms=*/4.50, /*long_b_ms=*/0.0022};
  p.head_switch = Duration::MillisF(1.0);
  p.controller_overhead = Duration::MillisF(1.1);
  p.cache_bytes = 512 * 1024;
  p.immediate_report_writes = true;
  p.read_ahead_bytes = 64 * 1024;
  return p;
}

DiskParams DiskParams::SyntheticTest() {
  DiskParams p;
  p.model_name = "SyntheticTest";
  p.geometry = DiskGeometry{/*cylinders=*/64, /*heads=*/2, /*sectors_per_track=*/32,
                            /*sector_bytes=*/512, /*rpm=*/6000};
  // Constant 1 ms seek regardless of distance (b terms zero).
  p.seek = TwoRangeSeekModel::Params{/*boundary=*/1, /*short_a_ms=*/1.0, /*short_b_ms=*/0.0,
                                     /*long_a_ms=*/1.0, /*long_b_ms=*/0.0};
  p.head_switch = Duration();
  p.controller_overhead = Duration::Micros(100);
  p.cache_bytes = 0;
  p.immediate_report_writes = false;
  p.read_ahead_bytes = 0;
  return p;
}

DiskModel::DiskModel(Scheduler* sched, std::string name, DiskParams params, Connection* bus)
    : sched_(sched),
      name_(std::move(name)),
      params_(params),
      seek_model_(params.seek),
      bus_(bus),
      work_(sched) {}

void DiskModel::Start() {
  PFS_CHECK_MSG(!started_, "DiskModel started twice");
  started_ = true;
  sched_->SpawnDaemon("disk." + name_, Mechanism());
}

Duration DiskModel::RotationalDelayTo(uint32_t target_sector) const {
  const int64_t rotation_ns = params_.geometry.RotationTime().nanos();
  const int64_t sector_ns = params_.geometry.SectorTime().nanos();
  const int64_t now_in_rotation = sched_->Now().nanos() % rotation_ns;
  const int64_t target_start = static_cast<int64_t>(target_sector) * sector_ns;
  int64_t delay = target_start - now_in_rotation;
  if (delay < 0) {
    delay += rotation_ns;
  }
  return Duration::Nanos(delay);
}

bool DiskModel::ReadHitsCache(const IoRequest& req) const {
  return req.sector >= read_ahead_start_ &&
         req.sector + req.sector_count <= read_ahead_end_;
}

Task<> DiskModel::Submit(IoRequest* req) {
  PFS_CHECK_MSG(started_, "Submit before Start");
  PFS_CHECK(req->sector + req->sector_count <= params_.geometry.TotalSectors());
  queue_depth_.Record(static_cast<double>(external_.size()));

  // Command decode (the paper's 2 ms SCSI floor for disk-serviced requests).
  co_await sched_->Sleep(params_.controller_overhead);

  if (req->op == IoOp::kWrite) {
    writes_.Inc();
    const uint64_t bytes = req->byte_count(params_.geometry.sector_bytes);
    if (params_.immediate_report_writes && cache_used_bytes_ + bytes <= params_.cache_bytes) {
      // Immediate-reported write: data already crossed the bus into the
      // on-board cache; report success now, destage in the background.
      cache_used_bytes_ += bytes;
      destage_queue_.push_back(InternalJob{req->sector, req->sector_count});
      work_.Signal();
      immediate_writes_.Inc();
      req->served_from_disk_cache = true;
      req->complete_time = sched_->Now();
      service_time_.Record(req->complete_time - req->dispatch_time);
      req->result = OkStatus();
      req->done.Notify();
      co_return;
    }
  } else {
    reads_.Inc();
    if (ReadHitsCache(*req)) {
      req->served_from_disk_cache = true;
      cache_hit_reads_.Inc();
    }
  }
  external_.push_back(req);
  work_.Signal();
}

Task<> DiskModel::Mechanism() {
  for (;;) {
    while (external_.empty() && destage_queue_.empty() && !prefetch_armed_) {
      co_await work_.Wait();
    }
    if (!external_.empty()) {
      IoRequest* req = external_.front();
      external_.pop_front();
      co_await ProcessExternal(req);
      // Read-ahead policy: "when there are no more outstanding requests, the
      // disk reads the next 4KB following the last read".
      if (req->op == IoOp::kRead && external_.empty() && params_.read_ahead_bytes > 0) {
        prefetch_armed_ = true;
      }
      continue;
    }
    if (!destage_queue_.empty()) {
      const InternalJob job = destage_queue_.front();
      destage_queue_.pop_front();
      co_await Destage(job);
      continue;
    }
    if (prefetch_armed_) {
      prefetch_armed_ = false;
      co_await Prefetch();
    }
  }
}

Task<> DiskModel::MediaAccess(uint64_t sector, uint32_t count, bool record_stats,
                              Duration* seek_out, Duration* rot_out) {
  const Chs target = params_.geometry.ToChs(sector);

  // Seek (arm movement), with head switches folded into the larger of the
  // two when both occur.
  Duration seek = seek_model_.SeekTime(current_cylinder_, target.cylinder);
  if (target.head != current_head_) {
    seek = std::max(seek, params_.head_switch);
  }
  if (!seek.IsZero()) {
    co_await sched_->Sleep(seek);
  }
  current_cylinder_ = target.cylinder;
  current_head_ = target.head;
  *seek_out = seek;
  if (record_stats) {
    seek_ms_.Record(seek.ToMillisF());
  }

  // Rotational positioning, evaluated *after* the seek completed.
  const Duration rot = RotationalDelayTo(target.sector);
  if (!rot.IsZero()) {
    co_await sched_->Sleep(rot);
  }
  *rot_out = rot;
  if (record_stats) {
    rot_delay_ms_.Record(rot.ToMillisF());
  }

  // Media transfer; boundary crossings cost a head/track switch.
  const uint32_t spt = params_.geometry.sectors_per_track;
  const uint32_t boundaries = (target.sector + count - 1) / spt;
  Duration transfer = params_.geometry.SectorTime() * count + params_.head_switch * boundaries;
  co_await sched_->Sleep(transfer);

  const Chs end = params_.geometry.ToChs(sector + count - 1);
  current_cylinder_ = end.cylinder;
  current_head_ = end.head;
}

Task<> DiskModel::ProcessExternal(IoRequest* req) {
  if (!req->served_from_disk_cache) {
    co_await MediaAccess(req->sector, req->sector_count, /*record_stats=*/true,
                         &req->seek_time, &req->rotational_delay);
  }
  if (req->op == IoOp::kRead) {
    last_read_end_ = req->sector + req->sector_count;
  }

  // Response phase: reconnect to the host and transfer data (reads) or
  // status (writes). Status is a handful of bytes; model it as one sector's
  // worth of protocol traffic.
  const uint64_t response_bytes =
      req->op == IoOp::kRead ? req->byte_count(params_.geometry.sector_bytes) : 32;
  co_await bus_->Acquire();
  co_await bus_->Transfer(response_bytes);
  bus_->Release();

  req->complete_time = sched_->Now();
  service_time_.Record(req->complete_time - req->dispatch_time);
  req->result = OkStatus();
  req->done.Notify();
}

Task<> DiskModel::Destage(const InternalJob& job) {
  Duration seek;
  Duration rot;
  co_await MediaAccess(job.sector, job.count, /*record_stats=*/false, &seek, &rot);
  const uint64_t bytes = static_cast<uint64_t>(job.count) * params_.geometry.sector_bytes;
  PFS_CHECK(cache_used_bytes_ >= bytes);
  cache_used_bytes_ -= bytes;
  destages_.Inc();
}

Task<> DiskModel::Prefetch() {
  const uint32_t count =
      std::max<uint32_t>(1, params_.read_ahead_bytes / params_.geometry.sector_bytes);
  if (last_read_end_ + count > params_.geometry.TotalSectors()) {
    co_return;
  }
  Duration seek;
  Duration rot;
  co_await MediaAccess(last_read_end_, count, /*record_stats=*/false, &seek, &rot);
  read_ahead_start_ = last_read_end_;
  read_ahead_end_ = last_read_end_ + count;
  prefetches_.Inc();
}

std::string DiskModel::StatReport(bool with_histograms) const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "model=%s reads=%llu writes=%llu cache-hit-reads=%llu immediate-writes=%llu "
      "destages=%llu prefetches=%llu\nservice: %s\nrotational-delay(ms): %s\nseek(ms): %s\n"
      "queue-depth: %s\n",
      params_.model_name.c_str(), static_cast<unsigned long long>(reads_.value()),
      static_cast<unsigned long long>(writes_.value()),
      static_cast<unsigned long long>(cache_hit_reads_.value()),
      static_cast<unsigned long long>(immediate_writes_.value()),
      static_cast<unsigned long long>(destages_.value()),
      static_cast<unsigned long long>(prefetches_.value()), service_time_.Summary().c_str(),
      rot_delay_ms_.Summary().c_str(), seek_ms_.Summary().c_str(),
      queue_depth_.Summary().c_str());
  std::string out(buf);
  if (with_histograms) {
    out += "rotational-delay histogram (ms):\n" + rot_delay_ms_.BucketDump();
    out += "queue-depth histogram:\n" + queue_depth_.BucketDump();
  }
  return out;
}

void DiskModel::StatResetInterval() {
  rot_delay_ms_.Reset();
  seek_ms_.Reset();
  queue_depth_.Reset();
}

}  // namespace pfs
