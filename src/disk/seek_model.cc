#include "disk/seek_model.h"

#include <cmath>
#include <cstdlib>

namespace pfs {

Duration TwoRangeSeekModel::SeekTime(uint32_t from_cylinder, uint32_t to_cylinder) const {
  if (from_cylinder == to_cylinder) {
    return Duration();
  }
  const auto d = static_cast<uint32_t>(
      std::abs(static_cast<int64_t>(from_cylinder) - static_cast<int64_t>(to_cylinder)));
  double ms;
  if (d < params_.boundary) {
    ms = params_.short_a_ms + params_.short_b_ms * std::sqrt(static_cast<double>(d));
  } else {
    ms = params_.long_a_ms + params_.long_b_ms * static_cast<double>(d);
  }
  return Duration::MillisF(ms);
}

}  // namespace pfs
