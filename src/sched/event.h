// Event and Notification: the framework's synchronization primitives.
//
// Paper §2: "The synchronization primitives are based on events. Each thread
// can pick a unique event and block on it. Once a thread has blocked itself,
// another thread signals the event through the scheduler to make the thread
// runnable again."
//
// Event has condition-variable semantics (no memory): a Signal with no waiter
// is lost, so callers re-check their predicate in a loop. Notification is the
// sticky variant for one-shot completions (I/O done, thread exited): a Wait
// after Notify does not block.
#ifndef PFS_SCHED_EVENT_H_
#define PFS_SCHED_EVENT_H_

#include <coroutine>
#include <deque>

#include "core/check.h"

namespace pfs {

class Scheduler;
class Thread;

class Event {
 public:
  explicit Event(Scheduler* sched) : sched_(sched) { PFS_CHECK(sched != nullptr); }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // Awaitable: blocks the calling thread until a signal. Callers are expected
  // to re-check their predicate afterwards: `while (!pred) co_await e.Wait();`
  class Awaiter {
   public:
    explicit Awaiter(Event* event) : event_(event) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { event_->BlockOn(h); }
    void await_resume() const noexcept {}

   private:
    Event* event_;
  };

  Awaiter Wait() { return Awaiter(this); }

  // Wakes the longest-waiting thread, if any (FIFO). No-op with no waiters.
  void Signal();

  // Wakes all waiting threads.
  void Broadcast();

  size_t waiter_count() const { return waiters_.size(); }

 private:
  friend class Notification;
  friend class Scheduler;

  // Parks the current thread on this event; used by Awaiter and Notification.
  void BlockOn(std::coroutine_handle<> h);

  Scheduler* sched_;
  std::deque<Thread*> waiters_;
};

class Notification {
 public:
  explicit Notification(Scheduler* sched) : event_(sched) {}

  bool HasFired() const { return fired_; }

  // Fires the notification and wakes all current waiters. Idempotent.
  void Notify();

  class Awaiter {
   public:
    explicit Awaiter(Notification* n) : n_(n) {}
    bool await_ready() const noexcept { return n_->fired_; }
    void await_suspend(std::coroutine_handle<> h) { n_->event_.BlockOn(h); }
    void await_resume() const noexcept {}

   private:
    Notification* n_;
  };

  Awaiter Wait() { return Awaiter(this); }

 private:
  bool fired_ = false;
  Event event_;
};

}  // namespace pfs

#endif  // PFS_SCHED_EVENT_H_
