// The thread scheduler: cooperative coroutine threads over a virtual or real
// clock (paper §2, "Thread scheduler").
//
// One Scheduler instance drives one instantiated system — a Patsy simulator
// (virtual clock: time jumps to the next timer expiry whenever no thread is
// runnable) or an on-line PFS (real clock: timers expire in real time and
// external requests are injected from other OS threads via Post()).
//
// The default scheduling policy picks a *random* runnable thread, as in the
// paper; derived classes can override PickNext() to implement others.
#ifndef PFS_SCHED_SCHEDULER_H_
#define PFS_SCHED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "core/random.h"
#include "obs/trace_context.h"
#include "sched/event.h"
#include "sched/task.h"
#include "sched/time.h"

namespace pfs {

// Time source. VirtualClock advances only when the scheduler is idle;
// RealClock tracks the host's monotonic clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
  virtual bool is_virtual() const = 0;
  // Jumps virtual time forward; no-op for a real clock (real time advances on
  // its own while the scheduler sleeps).
  virtual void AdvanceTo(TimePoint t) = 0;
};

class VirtualClock final : public Clock {
 public:
  TimePoint Now() const override { return now_; }
  bool is_virtual() const override { return true; }
  void AdvanceTo(TimePoint t) override {
    if (t > now_) {
      now_ = t;
    }
  }

 private:
  TimePoint now_;
};

class RealClock final : public Clock {
 public:
  RealClock();
  // Shared-epoch construction: every shard of a SchedulerGroup reads the
  // same zero point, so cross-shard timestamps (trace spans, fault events)
  // are directly comparable.
  explicit RealClock(int64_t epoch_ns) : epoch_ns_(epoch_ns) {}
  static int64_t SteadyEpochNow();

  TimePoint Now() const override;
  bool is_virtual() const override { return false; }
  void AdvanceTo(TimePoint) override {}

 private:
  int64_t epoch_ns_;  // steady_clock reading at construction
};

enum class ThreadState : uint8_t {
  kRunnable,
  kRunning,
  kBlocked,   // waiting on an Event
  kDelayed,   // sleeping until wake_time
  kFinished,
};

const char* ThreadStateName(ThreadState s);

// One independent file-system process. Created via Scheduler::Spawn; the
// coroutine frame is released as soon as the thread finishes.
class Thread {
 public:
  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  ThreadState state() const { return state_; }
  bool daemon() const { return daemon_; }

  // Fired when the thread's body returns. Join with: co_await t->done().Wait()
  Notification& done() { return done_; }

  // Request-tracing context (obs/). Spawn copies it from the spawning
  // thread, so fan-out workers attribute their spans to the request that
  // spawned them; default-empty (null recorder) means tracing is off.
  TraceContext trace;

 private:
  friend class Scheduler;

  Thread(Scheduler* sched, uint64_t id, std::string name, bool daemon, Task<> body);

  uint64_t id_;
  std::string name_;
  bool daemon_;
  bool transient_ = false;  // record reclaimed on finish (SpawnTransient)
  size_t slot_ = 0;         // index in Scheduler::threads_
  Task<> body_;
  std::coroutine_handle<> resume_point_;
  ThreadState state_ = ThreadState::kRunnable;
  TimePoint wake_time_;
  Notification done_;
};

class SchedulerGroup;

// Mailbox-depth histogram: log2 buckets over the non-empty DrainPosted batch
// sizes (bucket 0 = depth 1, bucket i = (2^(i-1), 2^i]).
inline constexpr size_t kMailboxDepthBuckets = 17;

class Scheduler {
 public:
  // `seed` drives the random pick policy; two runs with the same seed and the
  // same workload interleave identically.
  explicit Scheduler(std::unique_ptr<Clock> clock, uint64_t seed = 1);
  virtual ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  static std::unique_ptr<Scheduler> CreateVirtual(uint64_t seed = 1);
  static std::unique_ptr<Scheduler> CreateReal(uint64_t seed = 1);

  TimePoint Now() const { return clock_->Now(); }
  bool is_virtual() const { return clock_->is_virtual(); }

  // Spawns an independent thread of control. Regular threads keep Run()
  // alive until they finish; daemons (cleaners, flush scanners, disk
  // mechanisms) do not.
  Thread* Spawn(std::string name, Task<> body) { return SpawnImpl(std::move(name), false, std::move(body)); }
  Thread* SpawnDaemon(std::string name, Task<> body) { return SpawnImpl(std::move(name), true, std::move(body)); }

  // Fire-and-forget: the Thread record is reclaimed as soon as the body
  // finishes, so per-request spawns (volume fan-out fragments, on-line
  // request handlers) do not grow `threads_` without bound. Contract: the
  // caller must NOT retain the returned pointer or join on done() — use an
  // Event of its own for completion (a reclaimed record may be reused).
  Thread* SpawnTransient(std::string name, Task<> body) {
    return SpawnImpl(std::move(name), false, std::move(body), true);
  }

  // A daemon whose record is reclaimed when its body finishes: the lifetime
  // for one-shot background jobs (a fault schedule that applies its last
  // event, a bounded rebuild pass) — they must not keep Run() alive, and a
  // plain SpawnDaemon would leave a finished record in the thread table for
  // the rest of the process. Same no-retain/no-join contract as
  // SpawnTransient.
  Thread* SpawnTransientDaemon(std::string name, Task<> body) {
    return SpawnImpl(std::move(name), true, std::move(body), true);
  }

  // Runs until no non-daemon work remains (or RequestStop). With
  // set_keep_alive(true) — the on-line server mode — Run() only returns on
  // RequestStop and otherwise blocks waiting for Post()ed work.
  void Run();

  // Runs for at most `d` of (virtual or real) time.
  void RunFor(Duration d);

  // Thread-safe: requests Run() to return at the next scheduling point.
  void RequestStop();

  // Thread-safe: executes `fn` on the scheduler loop (between thread steps).
  // This is how the on-line system injects external requests (paper §2:
  // "External events are also managed by the scheduler ... in a real
  // system"). `fn` must not block; typically it spawns a thread or signals an
  // event. Posting to a Close()d scheduler is a checked error.
  void Post(std::function<void()> fn);

  // Declares that no further Post() is coming: the owner has shut the loop
  // down for good (server stopped, system torn down). A Post() after Close()
  // used to be silently dropped — the enqueued work would never run; now it
  // aborts with a message naming the scheduler, so the lost-work bug is loud
  // at the call site instead of a hang somewhere downstream.
  void Close();
  bool closed() const { return closed_.load(); }

  void set_keep_alive(bool keep_alive) { keep_alive_ = keep_alive; }

  // The scheduler currently executing on this OS thread (set while a
  // coroutine step or a posted function runs), or nullptr outside scheduler
  // control. Cross-shard helpers use it to find the calling coroutine's home
  // shard.
  static Scheduler* Current();

  // -- sharding (SchedulerGroup) --------------------------------------------
  uint32_t shard_index() const { return shard_index_; }
  SchedulerGroup* group() { return group_; }

  // -- per-shard scheduling statistics (the "sched" StatSource and the live
  // metrics plane read these; each counter is written only from this
  // scheduler's own OS thread, as a relaxed atomic so a scrape thread can
  // read a torn-free value mid-run) -----------------------------------------
  uint64_t posts_received() const { return posts_received_.load(std::memory_order_relaxed); }
  uint64_t cross_posts_sent() const {
    return cross_posts_sent_.load(std::memory_order_relaxed);
  }
  uint64_t mailbox_drains() const { return mailbox_drains_.load(std::memory_order_relaxed); }
  int64_t idle_nanos() const { return idle_ns_.load(std::memory_order_relaxed); }
  uint64_t mailbox_depth_bucket(size_t i) const {
    return mailbox_depth_[i].load(std::memory_order_relaxed);
  }

  // Thread-safe in-flight accounting for work running on *other* OS threads
  // (the real disk driver's I/O executor). While any external op is pending,
  // Run() blocks for its completion Post() instead of declaring deadlock or
  // returning. Pair every Begin with exactly one End.
  void BeginExternalOp();
  void EndExternalOp();

  // Suspends the calling thread for `d`.
  auto Sleep(Duration d) { return SleepUntilAwaiter{this, Now() + d}; }
  auto SleepUntil(TimePoint t) { return SleepUntilAwaiter{this, t}; }

  // Reschedules the calling thread, giving others a chance to run.
  auto Yield() { return YieldAwaiter{this}; }

  Thread* current_thread() { return current_; }
  uint64_t context_switches() const {
    return context_switches_.load(std::memory_order_relaxed);
  }
  size_t live_thread_count() const;
  // All retained records, finished or not (transient ones drop out on
  // finish) — lets tests assert per-request spawns do not accumulate.
  size_t thread_record_count() const { return threads_.size(); }

  // Writes a one-line-per-thread state dump to stderr (deadlock diagnosis).
  void DumpThreads() const;

  // Teardown: destroys every coroutine frame (running or suspended) while
  // the rest of the system is still alive. Owners whose schedulers outlive
  // the components the threads reference (the usual member order) must call
  // this before those components are destroyed; frame destructors may
  // release locks and signal events, which is only safe then.
  void DestroyAllThreads();

 protected:
  // Index into the runnable set of the next thread to run. Default: uniform
  // random (the paper's policy). Override for other policies.
  virtual size_t PickNext(size_t runnable_count);

 private:
  friend class Event;
  friend class SchedulerGroup;

  struct SleepUntilAwaiter {
    Scheduler* sched;
    TimePoint wake;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sched->SuspendCurrentUntil(h, wake); }
    void await_resume() const noexcept {}
  };

  struct YieldAwaiter {
    Scheduler* sched;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sched->YieldCurrent(h); }
    void await_resume() const noexcept {}
  };

  struct DelayEntry {
    TimePoint wake;
    uint64_t seq;  // tie-breaker: FIFO among equal wake times
    Thread* thread;
    bool operator>(const DelayEntry& other) const {
      if (wake != other.wake) {
        return wake > other.wake;
      }
      return seq > other.seq;
    }
  };

  Thread* SpawnImpl(std::string name, bool daemon, Task<> body, bool transient = false);

  // Called from awaiters, always on the scheduler's OS thread.
  void SuspendCurrentUntil(std::coroutine_handle<> h, TimePoint wake);
  void YieldCurrent(std::coroutine_handle<> h);
  void BlockCurrentOn(std::coroutine_handle<> h, Event* event);
  void MakeRunnable(Thread* t);

  void RunOne();
  void WakeExpired();
  void DrainPosted();
  bool NonDaemonAlive() const;
  void FinishThread(Thread* t);

  // Real-clock idle waits (interruptible by Post/RequestStop).
  void WaitRealUntil(TimePoint t);
  void WaitRealForever();

  // SchedulerGroup hooks (see shard.h). Attach wires the shard into its
  // group's global-quiescence accounting; ResetStop lets the group reuse a
  // shard loop across multiple Run phases (setup, then the workload).
  void AttachToGroup(SchedulerGroup* group, uint32_t shard_index);
  void ResetStop() { stop_.store(false); }
  bool HasPosted() {
    std::lock_guard<std::mutex> lk(post_mu_);
    return !posted_.empty();
  }

  std::unique_ptr<Clock> clock_;
  Rng rng_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<Thread*> runnable_;
  std::priority_queue<DelayEntry, std::vector<DelayEntry>, std::greater<DelayEntry>> delayed_;
  Thread* current_ = nullptr;
  uint64_t next_thread_id_ = 1;
  uint64_t next_delay_seq_ = 0;
  // Relaxed atomic, single writer (this loop's OS thread): the live metrics
  // listener reads it from its own thread mid-run.
  std::atomic<uint64_t> context_switches_{0};
  size_t live_non_daemon_ = 0;
  bool keep_alive_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> pending_external_{0};

  std::mutex post_mu_;
  std::condition_variable post_cv_;
  std::deque<std::function<void()>> posted_;
  std::atomic<bool> closed_{false};
  // Posts still inside Post() on another OS thread; the destructor blocks on
  // post_cv_ until the count drains so a poster never touches a freed
  // scheduler. Guarded by post_mu_ (a condvar wait, not a spin: teardown
  // under TSAN used to burn a core yielding on an atomic).
  int posters_ = 0;

  // Sharding: set once by SchedulerGroup before any shard runs.
  SchedulerGroup* group_ = nullptr;
  uint32_t shard_index_ = 0;

  // Per-shard scheduling stats; written only from this scheduler's own OS
  // thread (cross_posts_sent_ is charged to the *sender's* scheduler).
  // Relaxed atomics (single writer) so the metrics scrape thread may read
  // them while the loops run.
  std::atomic<uint64_t> posts_received_{0};
  std::atomic<uint64_t> cross_posts_sent_{0};
  std::atomic<uint64_t> mailbox_drains_{0};
  std::atomic<int64_t> idle_ns_{0};
  std::atomic<uint64_t> mailbox_depth_[kMailboxDepthBuckets] = {};
};

}  // namespace pfs

#endif  // PFS_SCHED_SCHEDULER_H_
