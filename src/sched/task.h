// Task<T>: the lazy coroutine type for every "thread of control" in the
// framework and for every async sub-operation they perform.
//
// A spawned file-system process is a Task<void> owned by a sched::Thread.
// Sub-operations (cache fills, disk I/O, log appends) are Task<Result<T>>s
// awaited by their caller; completion resumes the caller directly via
// symmetric transfer, so an entire call chain suspends and resumes as one
// schedulable unit — exactly the paper's "independent file-system processes
// [with] a separate thread of control inside the system".
#ifndef PFS_SCHED_TASK_H_
#define PFS_SCHED_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/check.h"

namespace pfs {

template <typename T>
class Task;

namespace internal {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      // Resume whoever awaited us; a detached top-level task has no
      // continuation and parks here until its owner destroys it.
      std::coroutine_handle<> cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  // Library code is exception-free; anything escaping is a bug.
  void unhandled_exception() noexcept { std::terminate(); }
};

template <typename T>
struct TaskPromise final : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : h_(h) {}

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  bool valid() const { return h_ != nullptr; }
  bool done() const { return h_ != nullptr && h_.done(); }
  Handle handle() const { return h_; }

  // co_await support: starts the child coroutine via symmetric transfer and
  // resumes the awaiting coroutine when the child completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          PFS_CHECK_MSG(h.promise().value.has_value(), "task finished without a value");
          return std::move(*h.promise().value);
        }
      }
    };
    return Awaiter{h_};
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  Handle h_ = nullptr;
};

namespace internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace pfs

#endif  // PFS_SCHED_TASK_H_
