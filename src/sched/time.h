// Simulation time: Duration and TimePoint as strong int64 nanosecond types.
//
// The same types are used under the virtual clock (Patsy) and the real clock
// (PFS): framework code computes with Durations and never knows which clock
// is driving it. That symmetry is what lets cache/layout/driver code move
// between simulator and file-system unchanged (paper §2, thread scheduler).
#ifndef PFS_SCHED_TIME_H_
#define PFS_SCHED_TIME_H_

#include <compare>
#include <cstdint>

namespace pfs {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000000); }
  static constexpr Duration Minutes(int64_t m) { return Seconds(m * 60); }
  static constexpr Duration Hours(int64_t h) { return Seconds(h * 3600); }

  // From fractional seconds/milliseconds (rounded to whole nanoseconds).
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration MillisF(double ms) { return SecondsF(ms / 1e3); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) / 1e6; }

  constexpr bool IsZero() const { return ns_ == 0; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}

  int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromNanos(int64_t ns) { return TimePoint(ns); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.nanos()); }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::Nanos(ns_ - other.ns_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(int64_t ns) : ns_(ns) {}

  int64_t ns_ = 0;
};

}  // namespace pfs

#endif  // PFS_SCHED_TIME_H_
