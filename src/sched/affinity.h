// Shard-affinity checking: runtime ownership assertions for shard-pinned
// components.
//
// PR 8's sharded scheduler created a bug class the sanitizers are blind to:
// on the virtual clock every shard steps in deterministic lockstep on ONE OS
// thread, so a component touched from the wrong shard is a *logical* race —
// two shards interleave at scheduling points instead of instructions — that
// TSAN can never see. The contract is simple: a component pinned to shard S
// may only be entered from a coroutine (or posted function) running on S's
// scheduler loop; foreign shards must route through Scheduler::Post,
// CallOn, or a CrossShardDevice proxy, all of which land the work on the
// home loop before it touches the component.
//
// ShardAffine is the mixin that carries the pin, and PFS_ASSERT_SHARD() is
// the entry-point assertion. A violation aborts with both shard ids (home
// and caller) and the component's stat-source name, so the report reads as
// "who was touched from where", not just a stack trace.
//
// Cost model:
//   * Release builds (CMAKE_BUILD_TYPE=Release): the macro compiles to
//     nothing — hot paths pay zero cost, not even a branch.
//   * Every other build type: one load + two compares against a
//     process-wide cached enable flag. The checks are ON by default in
//     Debug builds; elsewhere they are armed with PFS_AFFINITY_CHECK=1 in
//     the environment (PFS_AFFINITY_CHECK=0 force-disables, Debug
//     included).
#ifndef PFS_SCHED_AFFINITY_H_
#define PFS_SCHED_AFFINITY_H_

#include "sched/scheduler.h"

namespace pfs {

// Process-wide switch for the compiled-in checks. Resolved once from the
// environment (PFS_AFFINITY_CHECK=1/0) with a build-type default, then
// cached; SetAffinityChecksForTesting overrides the cache so death tests
// can arm the checks without mutating the environment.
bool AffinityChecksEnabled();
void SetAffinityChecksForTesting(bool enabled);

// Mixin for components whose state belongs to exactly one scheduler shard.
// Bind once at construction (components receive their home scheduler there)
// and sprinkle PFS_ASSERT_SHARD() over the public entry points.
class ShardAffine {
 public:
  virtual ~ShardAffine() = default;

  // Pins the component to `home`'s loop. nullptr (or never binding) keeps
  // the component unpinned: every access passes, which is the right
  // behavior for components that predate sharding in a test harness.
  // `label` names the component in violation reports when it is not a
  // StatSource (StatSources report their stat_name(), which wins).
  void BindHomeShard(Scheduler* home, const char* label = nullptr) {
    affinity_home_ = home;
    if (label != nullptr) {
      affinity_label_ = label;
    }
  }
  Scheduler* home_shard() const { return affinity_home_; }

  // The assertion body behind PFS_ASSERT_SHARD(). Accesses from outside
  // scheduler control (the main thread during assembly and stat collection)
  // pass: only a coroutine or posted function running on the *wrong* loop
  // is a violation — that is the interleaving-at-scheduling-points race the
  // checks exist to catch.
  void AssertShardAffinityAt(const char* file, int line) const {
    if (!AffinityChecksEnabled()) {
      return;
    }
    Scheduler* current = Scheduler::Current();
    if (affinity_home_ == nullptr || current == nullptr || current == affinity_home_) {
      return;
    }
    ReportAffinityViolation(file, line, current);
  }

 private:
  // Aborts with home/caller shard ids and the component's stat-source name
  // (recovered via dynamic_cast, so the hot path stores no string).
  [[noreturn]] void ReportAffinityViolation(const char* file, int line,
                                            Scheduler* current) const;

  Scheduler* affinity_home_ = nullptr;
  const char* affinity_label_ = nullptr;  // static-storage label, not owned
};

// Entry-point assertion for ShardAffine components: use inside member
// functions (asserts on `this`). Compiled to nothing in Release builds.
#ifdef PFS_ENABLE_AFFINITY_CHECKS
#define PFS_ASSERT_SHARD() this->AssertShardAffinityAt(__FILE__, __LINE__)
// Same check against an explicit component (free functions, call sites
// outside the component's own members).
#define PFS_ASSERT_SHARD_OF(component) (component)->AssertShardAffinityAt(__FILE__, __LINE__)
#else
#define PFS_ASSERT_SHARD() ((void)0)
#define PFS_ASSERT_SHARD_OF(component) ((void)0)
#endif

}  // namespace pfs

#endif  // PFS_SCHED_AFFINITY_H_
