// Mutex and Semaphore built on Event, for threads that must serialize access
// to shared file-system state (inode updates, log frontier, NVRAM budget).
#ifndef PFS_SCHED_SYNC_H_
#define PFS_SCHED_SYNC_H_

#include <cstdint>
#include <utility>

#include "sched/event.h"
#include "sched/task.h"

namespace pfs {

// Cooperative mutex. `co_await m.Lock()` yields a Guard that releases on
// destruction, so lock scopes read like std::scoped_lock.
class Mutex {
 public:
  explicit Mutex(Scheduler* sched) : available_(sched) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  class [[nodiscard]] Guard {
   public:
    Guard() = default;
    explicit Guard(Mutex* m) : m_(m) {}
    Guard(Guard&& other) noexcept : m_(std::exchange(other.m_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        m_ = std::exchange(other.m_, nullptr);
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    // Explicit early unlock.
    void Release() {
      if (m_ != nullptr) {
        std::exchange(m_, nullptr)->Unlock();
      }
    }

   private:
    Mutex* m_ = nullptr;
  };

  Task<Guard> Lock();

  bool locked() const { return locked_; }

 private:
  void Unlock();

  bool locked_ = false;
  Event available_;
};

// Counting semaphore. Release may exceed the initial count (it is a plain
// counter, not a bounded resource pool).
class Semaphore {
 public:
  Semaphore(Scheduler* sched, int64_t initial) : count_(initial), nonzero_(sched) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  Task<> Acquire(int64_t n = 1);
  bool TryAcquire(int64_t n = 1);
  void Release(int64_t n = 1);

  int64_t available() const { return count_; }

 private:
  int64_t count_;
  Event nonzero_;
};

}  // namespace pfs

#endif  // PFS_SCHED_SYNC_H_
