#include "sched/sync.h"

namespace pfs {

Task<Mutex::Guard> Mutex::Lock() {
  while (locked_) {
    co_await available_.Wait();
  }
  locked_ = true;
  co_return Guard(this);
}

void Mutex::Unlock() {
  PFS_CHECK_MSG(locked_, "Unlock of unlocked mutex");
  locked_ = false;
  available_.Signal();
}

Task<> Semaphore::Acquire(int64_t n) {
  while (count_ < n) {
    co_await nonzero_.Wait();
  }
  count_ -= n;
}

bool Semaphore::TryAcquire(int64_t n) {
  if (count_ < n) {
    return false;
  }
  count_ -= n;
  return true;
}

void Semaphore::Release(int64_t n) {
  count_ += n;
  // Broadcast, not Signal: waiters may need different amounts and must all
  // re-evaluate their predicates.
  nonzero_.Broadcast();
}

}  // namespace pfs
