#include "sched/shard.h"

#include <chrono>
#include <thread>

#include "core/log.h"

namespace pfs {

namespace {
// Golden-ratio increment: decorrelates per-shard RNG streams while keeping
// them a pure function of the scenario seed.
constexpr uint64_t kShardSeedStride = 0x9E3779B97F4A7C15ull;
}  // namespace

SchedulerGroup::SchedulerGroup(size_t shards, bool virtual_clock, uint64_t seed) {
  PFS_CHECK_MSG(shards >= 1, "SchedulerGroup needs at least one shard");
  const int64_t epoch = virtual_clock ? 0 : RealClock::SteadyEpochNow();
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    std::unique_ptr<Clock> clock;
    if (virtual_clock) {
      clock = std::make_unique<VirtualClock>();
    } else {
      clock = std::make_unique<RealClock>(epoch);
    }
    auto s = std::make_unique<Scheduler>(std::move(clock),
                                         seed + static_cast<uint64_t>(i) * kShardSeedStride);
    s->AttachToGroup(this, static_cast<uint32_t>(i));
    shards_.push_back(std::move(s));
  }
}

SchedulerGroup::~SchedulerGroup() = default;

void SchedulerGroup::Run() {
  if (shards_[0]->is_virtual()) {
    RunLockstep();
  } else {
    RunThreaded(/*bounded=*/false, Duration());
  }
}

void SchedulerGroup::RunFor(Duration d) {
  if (shards_[0]->is_virtual()) {
    RunLockstepFor(d);
  } else {
    RunThreaded(/*bounded=*/true, d);
  }
}

void SchedulerGroup::RequestStop() {
  for (auto& s : shards_) {
    s->RequestStop();
  }
  NotifyPosted();
}

void SchedulerGroup::NoteWorkDone() {
  const int64_t prev = work_.fetch_sub(1);
  PFS_CHECK_MSG(prev > 0, "scheduler group work counter underflow");
  if (prev == 1) {
    // Take the lock so the notify cannot slot between the monitor's predicate
    // check and its wait (classic lost-wakeup).
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_all();
  }
}

void SchedulerGroup::NotifyPosted() {
  std::lock_guard<std::mutex> lk(mu_);
  cv_.notify_all();
}

bool SchedulerGroup::AnyStop() const {
  for (const auto& s : shards_) {
    if (s->stop_.load()) {
      return true;
    }
  }
  return false;
}

bool SchedulerGroup::AnyPosted() {
  for (auto& s : shards_) {
    if (s->HasPosted()) {
      return true;
    }
  }
  return false;
}

bool SchedulerGroup::AnyKeepAlive() const {
  for (const auto& s : shards_) {
    if (s->keep_alive_) {
      return true;
    }
  }
  return false;
}

bool SchedulerGroup::AnyNonDaemonAlive() const {
  for (const auto& s : shards_) {
    if (s->NonDaemonAlive()) {
      return true;
    }
  }
  return false;
}

bool SchedulerGroup::MinWake(TimePoint* out) const {
  bool have = false;
  for (const auto& s : shards_) {
    if (!s->delayed_.empty()) {
      const TimePoint w = s->delayed_.top().wake;
      if (!have || w < *out) {
        *out = w;
        have = true;
      }
    }
  }
  return have;
}

void SchedulerGroup::AdvanceAll(TimePoint t) {
  // Every shard's virtual clock advances to the same instant, so cross-shard
  // timestamps stay comparable and WakeExpired fires identically no matter
  // which shard hosts the timer.
  for (auto& s : shards_) {
    s->clock_->AdvanceTo(t);
  }
}

int64_t SchedulerGroup::TotalPendingExternal() const {
  int64_t n = 0;
  for (const auto& s : shards_) {
    n += s->pending_external_.load();
  }
  return n;
}

void SchedulerGroup::WaitForCrossShardWork(bool for_external) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return AnyStop() || AnyPosted() || (for_external && TotalPendingExternal() == 0);
  });
}

void SchedulerGroup::Sweep() {
  bool again = true;
  while (again) {
    again = false;
    for (auto& s : shards_) {
      for (;;) {
        s->DrainPosted();
        s->WakeExpired();
        if (s->stop_.load() || s->runnable_.empty()) {
          break;
        }
        s->RunOne();
      }
    }
    if (AnyStop()) {
      return;
    }
    // A later shard may have posted back to an earlier one; re-sweep until
    // every mailbox is empty so phase 2 sees true quiescence.
    again = AnyPosted();
  }
}

void SchedulerGroup::RunLockstep() {
  for (;;) {
    Sweep();
    if (AnyStop()) {
      return;
    }
    if (!AnyNonDaemonAlive() && !AnyKeepAlive()) {
      return;  // only daemon housekeeping remains, everywhere
    }
    TimePoint next;
    if (MinWake(&next)) {
      AdvanceAll(next);
      continue;
    }
    const bool external = TotalPendingExternal() > 0;
    if (external || AnyKeepAlive()) {
      WaitForCrossShardWork(external);
      continue;
    }
    for (auto& s : shards_) {
      s->DumpThreads();
    }
    PFS_CHECK_MSG(false, "scheduler group deadlock: all shards blocked with no timer pending");
  }
}

void SchedulerGroup::RunLockstepFor(Duration d) {
  const TimePoint deadline = shards_[0]->Now() + d;
  for (;;) {
    Sweep();
    if (AnyStop() || shards_[0]->Now() >= deadline) {
      return;
    }
    TimePoint next;
    if (MinWake(&next) && next <= deadline) {
      AdvanceAll(next);
      if (shards_[0]->Now() >= deadline) {
        // Mirror Scheduler::RunFor: threads due exactly at the deadline wake
        // (become runnable) but only run in a later Run()/RunFor() phase.
        for (auto& s : shards_) {
          s->DrainPosted();
          s->WakeExpired();
        }
        return;
      }
      continue;
    }
    if (TotalPendingExternal() > 0) {
      WaitForCrossShardWork(/*for_external=*/true);
      continue;
    }
    AdvanceAll(deadline);
    return;
  }
}

void SchedulerGroup::RunThreaded(bool bounded, Duration d) {
  std::vector<bool> prev_keep_alive(shards_.size());
  bool server_mode = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    prev_keep_alive[i] = shards_[i]->keep_alive_;
    // A caller that set keep_alive before Run() wants server semantics:
    // stay up while idle, exit only on RequestStop.
    server_mode = server_mode || prev_keep_alive[i];
    // keep_alive: a shard whose own work drains early must keep its loop
    // alive for cross-shard posts until the *group* is globally done.
    shards_[i]->set_keep_alive(true);
  }
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (auto& s : shards_) {
    threads.emplace_back([sp = s.get()] { sp->Run(); });
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto quiescent = [&] {
      return AnyStop() || (!server_mode && work_.load() == 0);
    };
    if (bounded) {
      cv_.wait_for(lk, std::chrono::nanoseconds(d.nanos()), quiescent);
    } else {
      cv_.wait(lk, quiescent);
    }
  }
  for (auto& s : shards_) {
    s->RequestStop();
  }
  for (auto& t : threads) {
    t.join();
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->ResetStop();
    shards_[i]->set_keep_alive(prev_keep_alive[i]);
  }
}

}  // namespace pfs
