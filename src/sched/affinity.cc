#include "sched/affinity.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stats/registry.h"

namespace pfs {

namespace {

// -1 = unresolved, 0 = off, 1 = on. Resolved once; SetAffinityChecksForTesting
// rewrites the cache directly.
std::atomic<int> g_affinity_checks{-1};

int ResolveFromEnvironment() {
  const char* env = std::getenv("PFS_AFFINITY_CHECK");
  if (env != nullptr && *env != '\0') {
    return std::strcmp(env, "0") == 0 ? 0 : 1;
  }
#ifdef NDEBUG
  return 0;  // default off outside Debug; arm with PFS_AFFINITY_CHECK=1
#else
  return 1;  // Debug builds check by default
#endif
}

}  // namespace

bool AffinityChecksEnabled() {
  int state = g_affinity_checks.load(std::memory_order_relaxed);
  if (state < 0) [[unlikely]] {
    state = ResolveFromEnvironment();
    g_affinity_checks.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetAffinityChecksForTesting(bool enabled) {
  g_affinity_checks.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ShardAffine::ReportAffinityViolation(const char* file, int line,
                                          Scheduler* current) const {
  // The component name comes from its StatSource identity when it has one;
  // the hot path deliberately stores nothing extra on the mixin.
  std::string name = affinity_label_ != nullptr ? affinity_label_ : "<unnamed component>";
  if (const auto* source = dynamic_cast<const StatSource*>(this); source != nullptr) {
    name = source->stat_name();
  }
  const Thread* thread = current->current_thread();
  std::fprintf(stderr,
               "PFS_ASSERT_SHARD failed at %s:%d: \"%s\" is pinned to shard %u but was "
               "entered from shard %u (thread \"%s\"); cross-shard access must go through "
               "Post/CallOn/CrossShardDevice\n",
               file, line, name.c_str(), affinity_home_->shard_index(),
               current->shard_index(), thread != nullptr ? thread->name().c_str() : "<posted fn>");
  std::abort();
}

}  // namespace pfs
