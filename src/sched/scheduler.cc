#include "sched/scheduler.h"

#include <thread>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/log.h"
#include "sched/shard.h"

namespace pfs {

namespace {
int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The scheduler whose loop is executing on this OS thread (set around every
// coroutine step and posted function). With sharding, multiple schedulers may
// take turns on one OS thread (lockstep mode), so this is per-step, not
// per-thread-lifetime.
thread_local Scheduler* g_current_scheduler = nullptr;
}  // namespace

RealClock::RealClock() : epoch_ns_(SteadyNowNanos()) {}

int64_t RealClock::SteadyEpochNow() { return SteadyNowNanos(); }

TimePoint RealClock::Now() const { return TimePoint::FromNanos(SteadyNowNanos() - epoch_ns_); }

Scheduler* Scheduler::Current() { return g_current_scheduler; }

const char* ThreadStateName(ThreadState s) {
  switch (s) {
    case ThreadState::kRunnable:
      return "runnable";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kDelayed:
      return "delayed";
    case ThreadState::kFinished:
      return "finished";
  }
  return "?";
}

Thread::Thread(Scheduler* sched, uint64_t id, std::string name, bool daemon, Task<> body)
    : id_(id),
      name_(std::move(name)),
      daemon_(daemon),
      body_(std::move(body)),
      resume_point_(body_.handle()),
      done_(sched) {}

void Event::BlockOn(std::coroutine_handle<> h) { sched_->BlockCurrentOn(h, this); }

void Event::Signal() {
  if (waiters_.empty()) {
    return;
  }
  Thread* t = waiters_.front();
  waiters_.pop_front();
  sched_->MakeRunnable(t);
}

void Event::Broadcast() {
  while (!waiters_.empty()) {
    Thread* t = waiters_.front();
    waiters_.pop_front();
    sched_->MakeRunnable(t);
  }
}

void Notification::Notify() {
  if (!fired_) {
    fired_ = true;
    event_.Broadcast();
  }
}

Scheduler::Scheduler(std::unique_ptr<Clock> clock, uint64_t seed)
    : clock_(std::move(clock)), rng_(seed) {
  PFS_CHECK(clock_ != nullptr);
}

Scheduler::~Scheduler() {
  // A completion thread may still be between "work queued" and "Post()
  // returned" when the loop drains that work and the owner tears us down;
  // wait those posters out so they never touch freed members. A condvar
  // wait, not a spin-yield: the final decrement in Post() notifies while
  // holding post_mu_, so once this predicate is observably true the poster
  // holds no lock and touches nothing further.
  std::unique_lock<std::mutex> lk(post_mu_);
  post_cv_.wait(lk, [this] { return posters_ == 0; });
}

std::unique_ptr<Scheduler> Scheduler::CreateVirtual(uint64_t seed) {
  return std::make_unique<Scheduler>(std::make_unique<VirtualClock>(), seed);
}

std::unique_ptr<Scheduler> Scheduler::CreateReal(uint64_t seed) {
  return std::make_unique<Scheduler>(std::make_unique<RealClock>(), seed);
}

Thread* Scheduler::SpawnImpl(std::string name, bool daemon, Task<> body, bool transient) {
  PFS_CHECK_MSG(body.valid(), "Spawn of an empty task");
  auto thread = std::unique_ptr<Thread>(
      new Thread(this, next_thread_id_++, std::move(name), daemon, std::move(body)));
  Thread* t = thread.get();
  t->transient_ = transient;
  t->slot_ = threads_.size();
  if (current_ != nullptr) {
    t->trace = current_->trace;  // spawned work belongs to the spawning request
  }
  threads_.push_back(std::move(thread));
  if (!daemon) {
    ++live_non_daemon_;
    if (group_ != nullptr) {
      group_->NoteWorkBegun();
    }
  }
  runnable_.push_back(t);
  return t;
}

void Scheduler::AttachToGroup(SchedulerGroup* group, uint32_t shard_index) {
  group_ = group;
  shard_index_ = shard_index;
}

size_t Scheduler::PickNext(size_t runnable_count) {
  // The paper's default policy: pick a random thread from the runnable set.
  return static_cast<size_t>(rng_.NextBelow(runnable_count));
}

void Scheduler::RunOne() {
  const size_t idx = PickNext(runnable_.size());
  PFS_CHECK(idx < runnable_.size());
  Thread* t = runnable_[idx];
  runnable_.erase(runnable_.begin() + static_cast<ptrdiff_t>(idx));

  t->state_ = ThreadState::kRunning;
  current_ = t;
  // Single-writer relaxed bump (this loop's own OS thread); a plain ++ would
  // be an RMW on the hottest path in the scheduler.
  context_switches_.store(context_switches_.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  std::coroutine_handle<> h = std::exchange(t->resume_point_, nullptr);
  PFS_CHECK_MSG(h != nullptr, "runnable thread with no resume point");
  Scheduler* prev = std::exchange(g_current_scheduler, this);
  h.resume();
  g_current_scheduler = prev;
  current_ = nullptr;

  if (t->body_.done()) {
    FinishThread(t);
  } else {
    // The thread must have parked itself via a scheduler awaitable.
    PFS_CHECK_MSG(t->state_ != ThreadState::kRunning,
                  "thread suspended outside scheduler control");
  }
}

void Scheduler::FinishThread(Thread* t) {
  t->state_ = ThreadState::kFinished;
  if (!t->daemon_) {
    PFS_CHECK(live_non_daemon_ > 0);
    --live_non_daemon_;
    if (group_ != nullptr) {
      group_->NoteWorkDone();
    }
  }
  t->done_.Notify();
  // Release the coroutine frame now; the Thread record stays for bookkeeping.
  t->body_ = Task<>();
  if (t->transient_) {
    // By the SpawnTransient contract no one holds this pointer, so the
    // record can be reclaimed (swap-with-back keeps the vector dense).
    const size_t slot = t->slot_;
    if (slot != threads_.size() - 1) {
      threads_[slot] = std::move(threads_.back());
      threads_[slot]->slot_ = slot;
    }
    threads_.pop_back();
  }
}

void Scheduler::SuspendCurrentUntil(std::coroutine_handle<> h, TimePoint wake) {
  Thread* t = current_;
  PFS_CHECK_MSG(t != nullptr, "Sleep outside a scheduler thread");
  t->resume_point_ = h;
  t->state_ = ThreadState::kDelayed;
  t->wake_time_ = wake;
  delayed_.push(DelayEntry{wake, next_delay_seq_++, t});
}

void Scheduler::YieldCurrent(std::coroutine_handle<> h) {
  Thread* t = current_;
  PFS_CHECK_MSG(t != nullptr, "Yield outside a scheduler thread");
  t->resume_point_ = h;
  t->state_ = ThreadState::kRunnable;
  runnable_.push_back(t);
}

void Scheduler::BlockCurrentOn(std::coroutine_handle<> h, Event* event) {
  Thread* t = current_;
  PFS_CHECK_MSG(t != nullptr, "Event wait outside a scheduler thread");
  t->resume_point_ = h;
  t->state_ = ThreadState::kBlocked;
  event->waiters_.push_back(t);
}

void Scheduler::MakeRunnable(Thread* t) {
  PFS_CHECK_MSG(t->state_ == ThreadState::kBlocked, "MakeRunnable on non-blocked thread");
  t->state_ = ThreadState::kRunnable;
  runnable_.push_back(t);
}

void Scheduler::WakeExpired() {
  const TimePoint now = Now();
  while (!delayed_.empty() && delayed_.top().wake <= now) {
    Thread* t = delayed_.top().thread;
    delayed_.pop();
    PFS_CHECK(t->state_ == ThreadState::kDelayed);
    t->state_ = ThreadState::kRunnable;
    runnable_.push_back(t);
  }
}

void Scheduler::DrainPosted() {
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    batch.swap(posted_);
  }
  if (batch.empty()) {
    return;
  }
  // Depth histogram: log2 bucket of the non-empty batch size.
  size_t bucket = 0;
  for (size_t d = batch.size(); d > 1; d = (d + 1) / 2) {
    ++bucket;
  }
  if (bucket >= kMailboxDepthBuckets) {
    bucket = kMailboxDepthBuckets - 1;
  }
  mailbox_depth_[bucket].store(mailbox_depth_[bucket].load(std::memory_order_relaxed) + 1,
                               std::memory_order_relaxed);
  mailbox_drains_.store(mailbox_drains_.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  posts_received_.store(posts_received_.load(std::memory_order_relaxed) + batch.size(),
                        std::memory_order_relaxed);
  Scheduler* prev = std::exchange(g_current_scheduler, this);
  for (auto& fn : batch) {
    fn();
    if (group_ != nullptr) {
      // Balances the NoteWorkBegun charged at Post() enqueue. Done *after* the
      // function ran, so anything it spawned is already counted and the group
      // cannot observe a spurious zero.
      group_->NoteWorkDone();
    }
  }
  g_current_scheduler = prev;
}

bool Scheduler::NonDaemonAlive() const { return live_non_daemon_ > 0; }

size_t Scheduler::live_thread_count() const {
  size_t n = 0;
  for (const auto& t : threads_) {
    if (t->state() != ThreadState::kFinished) {
      ++n;
    }
  }
  return n;
}

void Scheduler::DestroyAllThreads() {
  for (auto& t : threads_) {
    // Destroying a frame runs the destructors of its locals (lock guards,
    // buffers); those may legitimately signal events and mark other threads
    // runnable. Nothing is resumed.
    t->body_ = Task<>();
  }
  for (auto& t : threads_) {
    t->state_ = ThreadState::kFinished;
  }
  if (group_ != nullptr) {
    for (size_t i = 0; i < live_non_daemon_; ++i) {
      group_->NoteWorkDone();
    }
  }
  live_non_daemon_ = 0;
  runnable_.clear();
  while (!delayed_.empty()) {
    delayed_.pop();
  }
}

void Scheduler::DumpThreads() const {
  std::fprintf(stderr, "-- scheduler threads (now=%.6fs) --\n", Now().ToSecondsF());
  for (const auto& t : threads_) {
    if (t->state() == ThreadState::kFinished) {
      continue;
    }
    std::fprintf(stderr, "  [%llu] %-24s %s%s\n", static_cast<unsigned long long>(t->id()),
                 t->name().c_str(), ThreadStateName(t->state()), t->daemon() ? " (daemon)" : "");
  }
}

void Scheduler::WaitRealUntil(TimePoint t) {
  std::unique_lock<std::mutex> lk(post_mu_);
  const Duration remaining = t - Now();
  if (remaining <= Duration()) {
    return;
  }
  const int64_t wait_start = SteadyNowNanos();
  post_cv_.wait_for(lk, std::chrono::nanoseconds(remaining.nanos()),
                    [&] { return !posted_.empty() || stop_.load(); });
  idle_ns_.store(idle_ns_.load(std::memory_order_relaxed) + (SteadyNowNanos() - wait_start),
                 std::memory_order_relaxed);
}

void Scheduler::WaitRealForever() {
  std::unique_lock<std::mutex> lk(post_mu_);
  const int64_t wait_start = SteadyNowNanos();
  post_cv_.wait(lk, [&] { return !posted_.empty() || stop_.load(); });
  idle_ns_.store(idle_ns_.load(std::memory_order_relaxed) + (SteadyNowNanos() - wait_start),
                 std::memory_order_relaxed);
}

void Scheduler::Run() {
  for (;;) {
    DrainPosted();
    WakeExpired();
    if (stop_.load()) {
      return;
    }
    if (!runnable_.empty()) {
      RunOne();
      continue;
    }
    if (!NonDaemonAlive() && !keep_alive_) {
      return;  // only daemon housekeeping remains
    }
    if (!delayed_.empty()) {
      const TimePoint next = delayed_.top().wake;
      if (is_virtual()) {
        clock_->AdvanceTo(next);
      } else {
        WaitRealUntil(next);
      }
      continue;
    }
    // No runnable, no delayed. If I/O is in flight on another OS thread its
    // completion Post() is coming; block for it (virtual clock included —
    // simulated time simply does not advance while we wait).
    if (pending_external_.load() > 0) {
      WaitRealForever();
      continue;
    }
    // Otherwise, in a simulator this is a deadlock: blocked threads that
    // nothing can ever wake.
    if (is_virtual()) {
      DumpThreads();
      PFS_CHECK_MSG(false, "scheduler deadlock: threads blocked with no timer pending");
    }
    WaitRealForever();
  }
}

void Scheduler::RunFor(Duration d) {
  const TimePoint deadline = Now() + d;
  for (;;) {
    DrainPosted();
    WakeExpired();
    if (stop_.load() || Now() >= deadline) {
      return;
    }
    if (!runnable_.empty()) {
      RunOne();
      continue;
    }
    if (!delayed_.empty() && delayed_.top().wake <= deadline) {
      if (is_virtual()) {
        clock_->AdvanceTo(delayed_.top().wake);
      } else {
        WaitRealUntil(delayed_.top().wake);
      }
      continue;
    }
    if (pending_external_.load() > 0) {
      WaitRealForever();  // an I/O completion Post() is on its way
      continue;
    }
    // No work left before the deadline; run the clock out.
    if (is_virtual()) {
      clock_->AdvanceTo(deadline);
      return;
    }
    WaitRealUntil(deadline);  // may wake early for Post(); loop re-checks
  }
}

void Scheduler::RequestStop() {
  stop_.store(true);
  post_cv_.notify_all();
}

void Scheduler::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    ++posters_;
  }
  PFS_CHECK_MSG(!closed_.load(),
                "Post() to a closed scheduler: the loop has shut down and this "
                "work would never run");
  Scheduler* sender = Current();
  if (sender != nullptr && sender != this) {
    sender->cross_posts_sent_.store(
        sender->cross_posts_sent_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  if (group_ != nullptr) {
    group_->NoteWorkBegun();
  }
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    posted_.push_back(std::move(fn));
  }
  post_cv_.notify_all();
  if (group_ != nullptr) {
    group_->NotifyPosted();
  }
  // Drop the poster mark last, notifying while still inside the lock: the
  // destructor may free this scheduler the instant it observes zero, and
  // that observation requires post_mu_ — so this thread is provably done
  // with the object before the memory can go away.
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    --posters_;
    post_cv_.notify_all();
  }
}

void Scheduler::Close() { closed_.store(true); }

void Scheduler::BeginExternalOp() {
  pending_external_.fetch_add(1);
  if (group_ != nullptr) {
    group_->NoteWorkBegun();
  }
}

void Scheduler::EndExternalOp() {
  pending_external_.fetch_sub(1);
  if (group_ != nullptr) {
    group_->NoteWorkDone();
    // The lockstep loop may be parked on "all external ops finished" even
    // while other group work keeps the counter above zero — wake it
    // explicitly so that predicate gets re-evaluated.
    group_->NotifyPosted();
  }
}

}  // namespace pfs
