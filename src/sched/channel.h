// Bounded single-scheduler channel: the work-queue primitive between
// producer and consumer threads (disk drivers feeding disk mechanisms, the
// NFS front-end feeding worker threads, cleaners feeding writers).
#ifndef PFS_SCHED_CHANNEL_H_
#define PFS_SCHED_CHANNEL_H_

#include <deque>
#include <optional>

#include "core/check.h"
#include "sched/event.h"
#include "sched/task.h"

namespace pfs {

template <typename T>
class Channel {
 public:
  Channel(Scheduler* sched, size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), not_empty_(sched), not_full_(sched) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Blocks while full. Returns false if the channel was closed before the
  // item could be queued.
  Task<bool> Send(T item) {
    while (!closed_ && items_.size() >= capacity_) {
      co_await not_full_.Wait();
    }
    if (closed_) {
      co_return false;
    }
    items_.push_back(std::move(item));
    not_empty_.Signal();
    co_return true;
  }

  // Blocks while empty. Returns nullopt once the channel is closed and
  // drained.
  Task<std::optional<T>> Recv() {
    while (items_.empty() && !closed_) {
      co_await not_empty_.Wait();
    }
    if (items_.empty()) {
      co_return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.Signal();
    co_return item;
  }

  // Non-blocking variants.
  bool TrySend(T item) {
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.Signal();
    return true;
  }

  bool TryRecv(T* out) {
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.Signal();
    return true;
  }

  // Wakes all blocked senders (which fail) and receivers (which drain, then
  // observe closure).
  void Close() {
    closed_ = true;
    not_empty_.Broadcast();
    not_full_.Broadcast();
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool closed() const { return closed_; }

 private:
  size_t capacity_;
  std::deque<T> items_;
  bool closed_ = false;
  Event not_empty_;
  Event not_full_;
};

}  // namespace pfs

#endif  // PFS_SCHED_CHANNEL_H_
