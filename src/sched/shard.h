// Sharded scheduling: a SchedulerGroup owns N Scheduler shards, one per OS
// core, so independent filesystems/volume trees dispatch in true parallel.
//
// Execution model by clock type:
//   * Virtual clock (Patsy): shards step in deterministic lockstep on ONE OS
//     thread. Each outer round runs every shard, in shard-index order, to
//     quiescence at the shared current time, re-sweeping while cross-shard
//     posts are still in flight (two-phase: run-to-quiescence, then advance
//     every shard's clock to the global minimum next-event time). Same seed +
//     same config => identical interleaving, exactly like the single-loop
//     scheduler.
//   * Real clock (on-line PFS, benches): each shard runs free on its own OS
//     thread. A group-level work counter (live non-daemon threads + queued
//     posts + pending external ops, across all shards) tells the monitor when
//     everything has drained; it then stops and joins the shard threads.
//
// Cross-shard interaction goes exclusively through Scheduler::Post (each
// shard's MPSC mailbox): Events/Notifications are shard-local, so a coroutine
// on shard A never touches shard B's run queue directly. CallOn<T> packages
// the full round trip: post a transient to the target shard, run the body
// there, post the result back home.
#ifndef PFS_SCHED_SHARD_H_
#define PFS_SCHED_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "sched/scheduler.h"

namespace pfs {

class SchedulerGroup {
 public:
  // Builds `shards` schedulers. Shard i seeds its RNG with
  // seed + i * golden-ratio so shard streams are decorrelated but fully
  // determined by the scenario seed; shard 0's stream equals a standalone
  // Scheduler's with the same seed. Real clocks share one epoch so
  // cross-shard timestamps are comparable.
  SchedulerGroup(size_t shards, bool virtual_clock, uint64_t seed);
  ~SchedulerGroup();

  SchedulerGroup(const SchedulerGroup&) = delete;
  SchedulerGroup& operator=(const SchedulerGroup&) = delete;

  size_t size() const { return shards_.size(); }
  Scheduler* shard(size_t i) { return shards_[i].get(); }

  // Runs until no non-daemon work remains on any shard (or RequestStop).
  // Virtual clock: deterministic lockstep. Real clock: one OS thread per
  // shard. May be called again after it returns (e.g. setup phase, then the
  // workload) — threaded runs reset the shards' stop flags on exit.
  void Run();

  // Runs for at most `d` of (virtual or wall) time.
  void RunFor(Duration d);

  // Thread-safe: stops every shard at its next scheduling point.
  void RequestStop();

  // The shard index whose loop is executing on this OS thread (thread-local,
  // set around every coroutine step and posted function), or -1 outside
  // scheduler control. The runtime affinity checks (sched/affinity.h) and
  // diagnostics use it; note that in virtual-clock lockstep mode several
  // shards take turns on one OS thread, so this is per-step, not
  // per-thread-lifetime.
  static int CurrentShard() {
    Scheduler* current = Scheduler::Current();
    return current != nullptr ? static_cast<int>(current->shard_index()) : -1;
  }

  // -- hooks called by Scheduler (see scheduler.cc) --------------------------
  // Group-level quiescence accounting: +1 per live non-daemon thread, queued
  // post, and pending external op, across all shards.
  void NoteWorkBegun() { work_.fetch_add(1); }
  void NoteWorkDone();
  // Wakes the lockstep loop when it is parked waiting for cross-shard work.
  void NotifyPosted();

 private:
  void RunLockstep();
  void RunLockstepFor(Duration d);
  void RunThreaded(bool bounded, Duration d);

  // One phase-1 pass: every shard, in index order, runs to quiescence at the
  // current time; repeats while any mailbox is non-empty.
  void Sweep();
  bool AnyStop() const;
  bool AnyPosted();
  bool AnyKeepAlive() const;
  bool AnyNonDaemonAlive() const;
  bool MinWake(TimePoint* out) const;
  void AdvanceAll(TimePoint t);
  int64_t TotalPendingExternal() const;
  void WaitForCrossShardWork(bool for_external);

  std::vector<std::unique_ptr<Scheduler>> shards_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int64_t> work_{0};
};

namespace detail {

// Shared between the waiting coroutine (home shard) and the transient running
// the body (target shard). The Notification belongs to the home scheduler, so
// only the home shard ever touches it; the target hands the result back with
// a Post.
template <typename T>
struct XCallState {
  explicit XCallState(Scheduler* home) : done(home) {}
  std::optional<T> value;
  Notification done;
};

template <typename T, typename Fn>
Task<> XShardRun(Scheduler* home, std::shared_ptr<XCallState<T>> st, Fn fn) {
  st->value.emplace(co_await fn());
  home->Post([st] { st->done.Notify(); });
}

}  // namespace detail

// Runs `fn` (a callable returning Task<T>) on `target`'s shard and returns
// its result on `home`'s. Must be awaited from a coroutine scheduled on
// `home`. Same-shard calls collapse to a plain inline await — at
// system.shards = 1 every CallOn is exactly the direct call it replaced.
// The home shard counts the round trip as an external op, so its loop (and
// the lockstep barrier) will not declare deadlock while the result is in
// flight on another shard.
template <typename T, typename Fn>
Task<T> CallOn(Scheduler* home, Scheduler* target, Fn fn) {
  if (target == home || target == nullptr) {
    co_return co_await fn();
  }
  auto st = std::make_shared<detail::XCallState<T>>(home);
  home->BeginExternalOp();
  target->Post([target, home, st, fn]() mutable {
    target->SpawnTransient("xshard", detail::XShardRun<T, Fn>(home, st, std::move(fn)));
  });
  co_await st->done.Wait();
  home->EndExternalOp();
  co_return std::move(*st->value);
}

}  // namespace pfs

#endif  // PFS_SCHED_SHARD_H_
