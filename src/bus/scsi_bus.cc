#include "bus/scsi_bus.h"

#include "sched/scheduler.h"

namespace pfs {

ScsiBus::ScsiBus(Scheduler* sched, std::string name) : ScsiBus(sched, std::move(name), Params()) {}

ScsiBus::ScsiBus(Scheduler* sched, std::string name, Params params)
    : sched_(sched), name_(std::move(name)), params_(params), owner_(sched, 1) {}

Task<> ScsiBus::Acquire() {
  const TimePoint start = sched_->Now();
  co_await owner_.Acquire();
  acquisitions_.Inc();
  wait_time_us_.Record(static_cast<double>((sched_->Now() - start).micros()));
  acquired_at_ = sched_->Now();
  if (!params_.arbitration_delay.IsZero()) {
    co_await sched_->Sleep(params_.arbitration_delay);
  }
}

void ScsiBus::Release() {
  busy_time_ += sched_->Now() - acquired_at_;
  owner_.Release();
}

Duration ScsiBus::TransferTime(uint64_t bytes) const {
  // ns = bytes / (B/s) * 1e9, computed in integer space without overflow for
  // any realistic transfer size.
  return Duration::Nanos(
      static_cast<int64_t>(bytes * 1000000000ULL / params_.bandwidth_bytes_per_sec));
}

Task<> ScsiBus::Transfer(uint64_t bytes) {
  bytes_transferred_ += bytes;
  co_await sched_->Sleep(TransferTime(bytes));
}

double ScsiBus::Utilization() const {
  const Duration elapsed = sched_->Now() - TimePoint();
  if (elapsed.IsZero()) {
    return 0.0;
  }
  return busy_time_.ToSecondsF() / elapsed.ToSecondsF();
}

std::string ScsiBus::StatReport(bool with_histograms) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "acquisitions=%llu bytes=%llu busy=%.3fs utilization=%.1f%%\nwait: %s\n",
                static_cast<unsigned long long>(acquisitions_.value()),
                static_cast<unsigned long long>(bytes_transferred_), busy_time_.ToSecondsF(),
                Utilization() * 100.0, wait_time_us_.Summary().c_str());
  std::string out(buf);
  if (with_histograms) {
    out += "wait histogram (us):\n";
    out += wait_time_us_.BucketDump();
  }
  return out;
}

void ScsiBus::StatResetInterval() { wait_time_us_.Reset(); }

}  // namespace pfs
