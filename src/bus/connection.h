// Connections: the links between host and disk sub-system (paper §4).
//
// A connection is acquired for each protocol phase (command, data-in,
// data-out), released in between — modelling SCSI disconnect/reconnect — and
// charges the calling thread the time a transfer of N bytes would take. When
// several controllers contend, acquisition arbitrates among them and the
// losers wait; that is exactly how the paper simulates SCSI bus contention.
#ifndef PFS_BUS_CONNECTION_H_
#define PFS_BUS_CONNECTION_H_

#include <cstdint>

#include "sched/task.h"
#include "sched/time.h"

namespace pfs {

class Connection {
 public:
  virtual ~Connection() = default;

  // Wins arbitration for exclusive use of the connection; blocks while
  // another initiator holds it.
  virtual Task<> Acquire() = 0;

  // Releases the connection (disconnect); the next arbitration winner
  // proceeds.
  virtual void Release() = 0;

  // Occupies the (held) connection for the duration of an n-byte transfer.
  virtual Task<> Transfer(uint64_t bytes) = 0;

  virtual Duration TransferTime(uint64_t bytes) const = 0;
};

// Pass-through connection for the on-line system: a real host moves bytes
// over a real channel whose cost is already included in measured I/O time,
// so the framework charges nothing extra.
class NullConnection final : public Connection {
 public:
  Task<> Acquire() override { co_return; }
  void Release() override {}
  Task<> Transfer(uint64_t) override { co_return; }
  Duration TransferTime(uint64_t) const override { return Duration(); }
};

}  // namespace pfs

#endif  // PFS_BUS_CONNECTION_H_
