// SCSI-2 bus model: 10 MB/s shared medium, FIFO arbitration,
// disconnect/reconnect per phase (paper §4, "Connections").
#ifndef PFS_BUS_SCSI_BUS_H_
#define PFS_BUS_SCSI_BUS_H_

#include <string>

#include "bus/connection.h"
#include "sched/sync.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace pfs {

class ScsiBus final : public Connection, public StatSource {
 public:
  struct Params {
    // SCSI-2 fast: 10 MB/s (decimal megabytes, as the paper states).
    uint64_t bandwidth_bytes_per_sec = 10 * 1000 * 1000;
    // Arbitration + (re)selection overhead per acquisition.
    Duration arbitration_delay = Duration::Micros(10);
  };

  ScsiBus(Scheduler* sched, std::string name);  // default Params
  ScsiBus(Scheduler* sched, std::string name, Params params);

  Task<> Acquire() override;
  void Release() override;
  Task<> Transfer(uint64_t bytes) override;
  Duration TransferTime(uint64_t bytes) const override;

  // StatSource
  std::string stat_name() const override { return "bus." + name_; }
  std::string StatReport(bool with_histograms) const override;
  void StatResetInterval() override;

  const std::string& name() const { return name_; }
  uint64_t acquisitions() const { return acquisitions_.value(); }
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  Duration busy_time() const { return busy_time_; }

  // Utilization over the scheduler's lifetime so far, in [0,1].
  double Utilization() const;

 private:
  Scheduler* sched_;
  std::string name_;
  Params params_;
  Semaphore owner_;  // 1 = free

  Counter acquisitions_;
  uint64_t bytes_transferred_ = 0;
  Duration busy_time_;                 // time held (arbitration + transfers)
  TimePoint acquired_at_;
  Histogram wait_time_us_{0, 50000, 100};  // arbitration wait, microseconds
};

}  // namespace pfs

#endif  // PFS_BUS_SCSI_BUS_H_
