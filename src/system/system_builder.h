// SystemBuilder: assembles a complete file-server — scheduler + clock,
// drivers (simulated or file-backed), storage layouts, buffer cache, data
// mover, file systems, client interface — from one SystemConfig. The same
// builder produces the simulator stack (Patsy) and the on-line stack (PFS);
// the facades in patsy/ and online/ only add their mode-specific front ends
// (trace replay, NFS loopback + OS threads).
#ifndef PFS_SYSTEM_SYSTEM_BUILDER_H_
#define PFS_SYSTEM_SYSTEM_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "bus/scsi_bus.h"
#include "cache/buffer_cache.h"
#include "cache/data_mover.h"
#include "client/local_client.h"
#include "disk/disk_model.h"
#include "driver/disk_driver.h"
#include "driver/io_executor.h"
#include "fault/fault_injector.h"
#include "fault/rebuild_daemon.h"
#include "fs/file_system.h"
#include "layout/storage_layout.h"
#include "obs/stats_sampler.h"
#include "obs/trace.h"
#include "stats/registry.h"
#include "system/system_config.h"
#include "volume/volume.h"

namespace pfs {

// The assembled stack. Owns every component in dependency order; the
// destructor releases suspended coroutine frames (daemons, cut-off clients)
// while all components are still alive.
class System {
 public:
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Formats (config.format or a simulated backend) or mounts every file
  // system and starts the cache and layout daemons; runs the scheduler until
  // setup completes. Call once, before serving.
  Status Setup();

  const SystemConfig& config() const { return config_; }
  Scheduler* scheduler() { return sched_.get(); }
  LocalClient* client() { return client_.get(); }
  BufferCache* cache() { return cache_.get(); }
  StatsRegistry& stats() { return stats_; }

  int filesystem_count() const { return static_cast<int>(layouts_.size()); }
  StorageLayout* layout(int fs_index) { return layouts_[static_cast<size_t>(fs_index)].get(); }
  const std::string& mount_name(int fs_index) const {
    return mount_names_[static_cast<size_t>(fs_index)];
  }

  // Simulated topology (empty vectors for the file-backed backend).
  const std::vector<std::unique_ptr<ScsiBus>>& busses() const { return busses_; }
  const std::vector<std::unique_ptr<DiskModel>>& disks() const { return disks_; }
  // Every disk's driver, simulated or file-backed.
  const std::vector<std::unique_ptr<QueueingDiskDriver>>& drivers() const { return drivers_; }
  // The volume backing file system `fs_index` (what its layout reads and
  // writes through), and all per-fs volumes in mount order.
  Volume* volume(int fs_index) { return fs_volumes_[static_cast<size_t>(fs_index)].get(); }
  const std::vector<std::unique_ptr<Volume>>& volumes() const { return fs_volumes_; }

  // The fault subsystem. Every mirror fs-volume gets a RebuildDaemon
  // (nullptr for other kinds); the injector exists only when config.faults
  // is non-empty. Both are started by Setup().
  RebuildDaemon* rebuild_daemon(int fs_index) {
    return rebuild_daemons_[static_cast<size_t>(fs_index)].get();
  }
  FaultInjector* fault_injector() { return injector_.get(); }
  bool fault_quiescent() const {
    return injector_ == nullptr || injector_->quiescent();
  }

  std::string StatReport(bool with_histograms) { return stats_.ReportAll(with_histograms); }

  // The observability subsystem (config.trace.*). All three are null when
  // the corresponding knob is off: tracer/sink need trace.enabled, the
  // sampler needs trace.sample_ms > 0.
  TraceRecorder* tracer() { return tracer_.get(); }
  TraceSink* trace_sink() { return trace_sink_.get(); }
  StatsSampler* stats_sampler() { return sampler_.get(); }

  // Flushes the trace to config.trace.file as Chrome trace_event JSON and
  // the sampled time-series next to it (TraceSamplesPath). No-op for the
  // parts that are not configured. Call after the workload, while the
  // scheduler is still alive.
  Status ExportObservability();

 private:
  friend class SystemBuilder;
  System() = default;

  SystemConfig config_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<IoExecutor> executor_;  // file-backed only
  std::vector<std::unique_ptr<ScsiBus>> busses_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::vector<std::unique_ptr<QueueingDiskDriver>> drivers_;
  // Declaration order is destruction-safety order: layouts reference the
  // fs volumes, composite volumes reference their member slices, and every
  // slice references a driver.
  std::vector<std::unique_ptr<Volume>> volume_parts_;  // member slices of composites
  std::vector<std::unique_ptr<Volume>> fs_volumes_;    // one per file system
  std::vector<std::unique_ptr<StorageLayout>> layouts_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<DataMover> mover_;
  std::vector<std::unique_ptr<FileSystem>> filesystems_;
  // One slot per file system (null unless the volume is a mirror); the
  // injector references the daemons and the volumes, so both come after.
  std::vector<std::unique_ptr<RebuildDaemon>> rebuild_daemons_;
  std::unique_ptr<FaultInjector> injector_;
  // Tracing rides the scheduler's threads and the request path; the sink
  // drains the recorder's rings, so recorder outlives sink.
  std::unique_ptr<TraceRecorder> tracer_;
  std::unique_ptr<TraceSink> trace_sink_;
  std::unique_ptr<StatsSampler> sampler_;
  std::unique_ptr<LocalClient> client_;
  std::vector<std::string> mount_names_;
  StatsRegistry stats_;
};

class SystemBuilder {
 public:
  // Checks every policy name and the topology in one place; every config
  // error surfaces here as kInvalidArgument with a message naming the field.
  static Status Validate(const SystemConfig& config);

  // Validates, then assembles the stack. The returned system is constructed
  // but not yet set up; call System::Setup() next.
  static Result<std::unique_ptr<System>> Build(const SystemConfig& config);

  // The smallest partition (in file-system blocks) a file system of
  // `config.layout` can be formatted in; Validate rejects topologies that
  // slice any disk thinner than this.
  static uint64_t MinBlocksPerFilesystem(const SystemConfig& config);
};

}  // namespace pfs

#endif  // PFS_SYSTEM_SYSTEM_BUILDER_H_
