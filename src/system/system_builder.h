// SystemBuilder: assembles a complete file-server — scheduler shards + clock,
// drivers (simulated or file-backed), storage layouts, buffer caches, data
// movers, file systems, client interface — from one SystemConfig. The same
// builder produces the simulator stack (Patsy) and the on-line stack (PFS);
// the facades in patsy/ and online/ only add their mode-specific front ends
// (trace replay, NFS loopback + OS threads).
//
// Sharding (config.shards): every file system, its volume tree, layout,
// cache, and data mover are pinned to one scheduler shard; physical disks
// (whole busses under the simulator) belong to the shard of the first file
// system referencing them, and a file system reaching a foreign disk gets a
// CrossShardDevice proxy spliced into that volume slice. shards == 1 builds
// exactly the single-loop system of old.
#ifndef PFS_SYSTEM_SYSTEM_BUILDER_H_
#define PFS_SYSTEM_SYSTEM_BUILDER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bus/scsi_bus.h"
#include "cache/buffer_cache.h"
#include "cache/data_mover.h"
#include "client/local_client.h"
#include "disk/disk_model.h"
#include "driver/disk_driver.h"
#include "driver/io_executor.h"
#include "fault/fault_injector.h"
#include "fault/rebuild_daemon.h"
#include "fs/file_system.h"
#include "layout/storage_layout.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/sched_stats.h"
#include "obs/stats_sampler.h"
#include "obs/trace.h"
#include "sched/shard.h"
#include "stats/registry.h"
#include "system/system_config.h"
#include "volume/cross_shard_device.h"
#include "volume/volume.h"

namespace pfs {

// The assembled stack. Owns every component in dependency order; the
// destructor releases suspended coroutine frames (daemons, cut-off clients)
// while all components are still alive.
class System {
 public:
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Formats (config.format or a simulated backend) or mounts every file
  // system and starts the cache and layout daemons; runs the scheduler(s)
  // until setup completes. Call once, before serving.
  Status Setup();

  const SystemConfig& config() const { return config_; }

  // Shard 0's loop — the client front end and the observability components
  // live here. With shards == 1 this is the only loop, exactly the old
  // single-scheduler accessor.
  Scheduler* scheduler() { return group_ != nullptr ? group_->shard(0) : sched_.get(); }

  // -- shard topology -------------------------------------------------------
  int shard_count() const { return group_ != nullptr ? static_cast<int>(group_->size()) : 1; }
  Scheduler* shard_scheduler(int s) {
    return group_ != nullptr ? group_->shard(static_cast<size_t>(s)) : sched_.get();
  }
  // The shard file system `f` is pinned to, and that shard's loop. Spawn
  // workload threads that target file system f on fs_scheduler(f); reaching
  // it from another shard goes through LocalClient's cross-shard routing.
  int fs_shard(int f) const { return fs_shard_[static_cast<size_t>(f)]; }
  Scheduler* fs_scheduler(int f) { return shard_scheduler(fs_shard(f)); }
  SchedulerGroup* scheduler_group() { return group_.get(); }
  // Per-shard scheduler counters (steps, mailbox traffic, idle time) as a
  // StatSource; read after the shard threads have quiesced.
  SchedStats* sched_stats(int s) { return sched_stats_[static_cast<size_t>(s)].get(); }

  // Drives every shard to quiescence: deterministic lockstep on the virtual
  // clock, one OS thread per shard on the real clock. With shards == 1 these
  // are exactly Scheduler::Run()/RunFor().
  void RunToCompletion();
  void RunForDuration(Duration d);
  // Stops every shard's loop (thread-safe: callable from any OS thread).
  void RequestStop() {
    if (group_ != nullptr) {
      group_->RequestStop();
    } else {
      sched_->RequestStop();
    }
  }
  // Closes every shard: further Post() calls become checked errors instead
  // of silently enqueueing work that will never run. Call after the final
  // Run()/RunToCompletion() has returned.
  void CloseSchedulers() {
    for (int s = 0; s < shard_count(); ++s) {
      shard_scheduler(s)->Close();
    }
  }

  LocalClient* client() { return client_.get(); }
  // Shard 0's cache; sharded systems have one per shard.
  BufferCache* cache() { return caches_.empty() ? nullptr : caches_[0].get(); }
  BufferCache* shard_cache(int s) { return caches_[static_cast<size_t>(s)].get(); }
  StatsRegistry& stats() { return stats_; }

  int filesystem_count() const { return static_cast<int>(layouts_.size()); }
  StorageLayout* layout(int fs_index) { return layouts_[static_cast<size_t>(fs_index)].get(); }
  const std::string& mount_name(int fs_index) const {
    return mount_names_[static_cast<size_t>(fs_index)];
  }

  // Simulated topology (empty vectors for the file-backed backend).
  const std::vector<std::unique_ptr<ScsiBus>>& busses() const { return busses_; }
  const std::vector<std::unique_ptr<DiskModel>>& disks() const { return disks_; }
  // Every disk's driver, simulated or file-backed.
  const std::vector<std::unique_ptr<QueueingDiskDriver>>& drivers() const { return drivers_; }
  // The volume backing file system `fs_index` (what its layout reads and
  // writes through), and all per-fs volumes in mount order.
  Volume* volume(int fs_index) { return fs_volumes_[static_cast<size_t>(fs_index)].get(); }
  const std::vector<std::unique_ptr<Volume>>& volumes() const { return fs_volumes_; }

  // The fault subsystem. Every mirror fs-volume gets a RebuildDaemon
  // (nullptr for other kinds); injectors exist only when config.faults is
  // non-empty — one per shard that has scheduled events. Started by Setup().
  RebuildDaemon* rebuild_daemon(int fs_index) {
    return rebuild_daemons_[static_cast<size_t>(fs_index)].get();
  }
  // The first shard's injector (the only one with shards == 1).
  FaultInjector* fault_injector() {
    for (auto& injector : injectors_) {
      if (injector != nullptr) {
        return injector.get();
      }
    }
    return nullptr;
  }
  bool fault_quiescent() const {
    for (const auto& injector : injectors_) {
      if (injector != nullptr && !injector->quiescent()) {
        return false;
      }
    }
    return true;
  }

  std::string StatReport(bool with_histograms) { return stats_.ReportAll(with_histograms); }

  // The observability subsystem (config.trace.*). All three are null when
  // the corresponding knob is off: tracer/sink need trace.enabled, the
  // sampler needs trace.sample_ms > 0.
  TraceRecorder* tracer() { return tracer_.get(); }
  TraceSink* trace_sink() { return trace_sink_.get(); }
  StatsSampler* stats_sampler() { return sampler_.get(); }

  // Flushes the trace to config.trace.file as Chrome trace_event JSON and
  // the sampled time-series next to it (TraceSamplesPath). No-op for the
  // parts that are not configured. Call after the workload, while the
  // scheduler is still alive.
  Status ExportObservability();

  // The live metrics plane (config.metrics.*). Both null when
  // metrics.enabled is off; the HTTP server exists only after Setup().
  MetricRegistry* metrics() { return metrics_.get(); }
  MetricsHttpServer* metrics_http() { return metrics_http_.get(); }
  // The bound scrape port (resolves metrics.port == 0), 0 when no server.
  uint16_t metrics_port() const {
    return metrics_http_ != nullptr ? metrics_http_->port() : 0;
  }

 private:
  friend class SystemBuilder;
  System() = default;

  Status StartMetricsHttp();
  // Refreshes the /statz cache on `period` by gathering ReportJson on the
  // owning shards; the HTTP handler only ever reads the cached copy, so no
  // scrape can post into (or race with) the schedulers.
  Task<> StatzRefresher(Duration period);

  SystemConfig config_;
  // Exactly one of group_ (shards > 1) and sched_ (shards == 1) is set.
  // Both precede every component so the loops are destroyed last.
  std::unique_ptr<SchedulerGroup> group_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<IoExecutor> executor_;  // file-backed only
  std::vector<std::unique_ptr<ScsiBus>> busses_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::vector<std::unique_ptr<QueueingDiskDriver>> drivers_;
  // Declaration order is destruction-safety order: layouts reference the
  // fs volumes, composite volumes reference their member slices, and every
  // slice references a driver (possibly through a cross-shard proxy).
  std::vector<std::unique_ptr<CrossShardDevice>> cross_devices_;
  std::vector<std::unique_ptr<Volume>> volume_parts_;  // member slices of composites
  std::vector<std::unique_ptr<Volume>> fs_volumes_;    // one per file system
  std::vector<std::unique_ptr<StorageLayout>> layouts_;
  std::vector<std::unique_ptr<BufferCache>> caches_;  // one per shard
  std::vector<std::unique_ptr<DataMover>> movers_;    // one per shard
  std::vector<std::unique_ptr<FileSystem>> filesystems_;
  // One slot per file system (null unless the volume is a mirror); the
  // injectors reference the daemons and the volumes, so both come after.
  std::vector<std::unique_ptr<RebuildDaemon>> rebuild_daemons_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;  // one per shard, may be null
  // Tracing rides the scheduler's threads and the request path; the sink
  // drains the recorder's rings, so recorder outlives sink.
  std::unique_ptr<TraceRecorder> tracer_;
  std::unique_ptr<TraceSink> trace_sink_;
  std::unique_ptr<StatsSampler> sampler_;
  std::unique_ptr<LocalClient> client_;
  std::vector<std::string> mount_names_;
  std::vector<int> fs_shard_;  // one per file system
  std::vector<std::unique_ptr<SchedStats>> sched_stats_;  // one per shard
  StatsRegistry stats_;
  // Live metrics plane. Declared last on purpose: the HTTP server's scrape
  // thread reads the registry (and, via callbacks, scheduler atomics), so it
  // must be joined — and the registry freed — before anything above dies.
  std::unique_ptr<MetricRegistry> metrics_;
  mutable std::mutex statz_mu_;
  std::string statz_json_;  // last gathered ReportJson (see StatzRefresher)
  std::unique_ptr<MetricsHttpServer> metrics_http_;
};

class SystemBuilder {
 public:
  // Checks every policy name and the topology in one place; every config
  // error surfaces here as kInvalidArgument with a message naming the field.
  static Status Validate(const SystemConfig& config);

  // Validates, then assembles the stack. The returned system is constructed
  // but not yet set up; call System::Setup() next.
  static Result<std::unique_ptr<System>> Build(const SystemConfig& config);

  // The smallest partition (in file-system blocks) a file system of
  // `config.layout` can be formatted in; Validate rejects topologies that
  // slice any disk thinner than this.
  static uint64_t MinBlocksPerFilesystem(const SystemConfig& config);
};

}  // namespace pfs

#endif  // PFS_SYSTEM_SYSTEM_BUILDER_H_
