#include "system/component_registry.h"

#include <atomic>
#include <mutex>

namespace pfs {

void EnsureBuiltinComponentsRegistered() {
  // Not std::call_once: the registration hooks below call Register, which
  // itself calls back into this function (so user registrations made before
  // any lookup are ordered after the builtins and can shadow them). The
  // thread_local flag breaks that recursion; the mutex serializes threads.
  static std::atomic<bool> done{false};
  static thread_local bool registering = false;
  if (done.load(std::memory_order_acquire) || registering) {
    return;
  }
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (done.load(std::memory_order_relaxed)) {
    return;
  }
  registering = true;
  RegisterLfsLayout();
  RegisterFfsLayout();
  RegisterGuessingLayout();
  RegisterBuiltinCleaners();
  RegisterBuiltinReplacementPolicies();
  RegisterBuiltinFlushPolicies();
  RegisterBuiltinVolumeKinds();
  RegisterBuiltinQueuePolicies();
  RegisterBuiltinIoEngines();
  RegisterBuiltinDiskModels();
  RegisterBuiltinFaultActions();
  registering = false;
  done.store(true, std::memory_order_release);
}

}  // namespace pfs
