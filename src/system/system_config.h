// The declarative system description (the "cut-and-paste" knob): one value
// of SystemConfig names a complete file-server — topology (busses, disks,
// file systems), storage layout, cache and persistency policies, and the
// instantiation mode: simulated helper components (SCSI bus + disk models,
// virtual clock, time-accounting data mover) or the on-line ones (file-backed
// disks, real clock, real memory). SystemBuilder assembles either stack from
// the same description; PatsyServer and PfsServer are thin facades over it.
#ifndef PFS_SYSTEM_SYSTEM_CONFIG_H_
#define PFS_SYSTEM_SYSTEM_CONFIG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/data_mover.h"
#include "core/result.h"
#include "core/units.h"
#include "disk/disk_model.h"

namespace pfs {

// Which helper components back the framework components (paper §2: the
// framework is identical; only the helpers differ between PFS and Patsy).
enum class BackendKind : uint8_t {
  kSimulated,   // ScsiBus + DiskModel behind SimDiskDriver; no real bytes
  kFileBacked,  // Unix files behind FileBackedDriver; real bytes in the cache
};

enum class ClockKind : uint8_t {
  kAuto,     // virtual for kSimulated, real for kFileBacked
  kVirtual,  // time jumps to the next timer expiry when idle
  kReal,     // the host's monotonic clock
};

const char* BackendKindName(BackendKind k);
const char* ClockKindName(ClockKind k);

// One file system's storage volume: which disks back it and how they are
// composed. Disk indices refer to the flattened topology (bus-major order,
// the same numbering as System::drivers()). A disk referenced by several
// volumes is partitioned evenly among them.
struct VolumeSpec {
  std::string kind = "single";  // a registered volume kind (VolumeKindRegistry)
  std::vector<int> members;     // disk indices; "single" takes exactly one
  uint32_t stripe_unit_kb = 64;  // striped only: stripe unit size
  // Mirror only: member positions (0-based within `members`) failed out at
  // setup, so the volume starts degraded — the "mirrored-degraded" scenario.
  std::vector<int> failed_members;
};

// One scheduled fault event in a scenario ("fault<i>.*" keys): at `at_ms`
// on the system clock, apply `action` to member position `member` of
// file-system volume `volume`. Actions resolve by name through
// FaultActionRegistry ("fail", "return"); src/fault turns the validated
// list into a FaultSchedule the FaultInjector daemon replays.
struct FaultSpec {
  uint64_t at_ms = 0;
  int volume = 0;
  int member = 0;
  std::string action = "fail";
};

struct SystemConfig {
  // -- instantiation -------------------------------------------------------
  BackendKind backend = BackendKind::kSimulated;
  ClockKind clock = ClockKind::kAuto;
  uint64_t seed = 42;

  // -- scheduling ----------------------------------------------------------
  // OS-core shards ("system.shards"): each shard is its own scheduler loop
  // (run queue, timer wheel, RNG stream), and with a real clock its own OS
  // thread. 1 = today's single-loop scheduler, bit-for-bit. Virtual-clock
  // shards step in deterministic lockstep (see sched/shard.h).
  int shards = 1;
  // Explicit per-file-system pins ("fs<i>.shard"); -1 (or an index past the
  // end) means the round-robin default f % shards.
  std::vector<int> fs_shards;

  // The shard file system f is pinned to.
  int ShardForFs(int f) const {
    const size_t i = static_cast<size_t>(f);
    const int pinned = i < fs_shards.size() ? fs_shards[i] : -1;
    if (pinned >= 0) {
      return pinned;
    }
    return shards > 0 ? f % shards : 0;
  }

  // -- topology (defaults: the paper's Allspice rebuild) -------------------
  // Simulated: one ScsiBus per entry, entry = disks on that bus.
  // File-backed: busses are not modelled; the total is the disk count.
  std::vector<int> disks_per_bus = {4, 3, 3};
  int num_filesystems = 14;
  DiskParams disk_params = DiskParams::Hp97560();
  // Disk-queue scheduling policy name (round-trips with
  // QueueSchedPolicyName): FCFS, SSTF, SCAN, C-SCAN, LOOK, or C-LOOK.
  std::string queue_policy = "C-LOOK";

  // Per-file-system volumes (volumes[f] backs file system f). Empty: every
  // file system gets a single-disk volume, round-robin over the disks.
  std::vector<VolumeSpec> volumes;

  // -- fault schedule ------------------------------------------------------
  // Timestamped member faults the FaultInjector replays mid-run (timestamps
  // must be non-decreasing; targets must be mirror volumes). Empty: no
  // injector is built.
  std::vector<FaultSpec> faults;
  // Bandwidth cap on the RebuildDaemon's background copy I/O after a member
  // returns; 0 = uncapped (the rebuild contends at full speed).
  uint32_t rebuild_bw_kbps = 4096;

  // -- file-backed backend -------------------------------------------------
  // Disk 0 uses `image_path` verbatim; disk i > 0 appends ".i".
  std::string image_path;
  uint64_t image_bytes = 64 * kMiB;  // per disk
  bool format = true;                // format vs mount existing images
  int io_threads = 2;                // blocking-syscall pool size
  // Batch submission engine for file-backed I/O: "threadpool" (portable
  // preadv/pwritev) or "uring" (io_uring; falls back to threadpool when the
  // kernel lacks it). Registry-checked at parse time.
  std::string io_engine = "threadpool";

  // -- storage layout: "lfs" (paper default), "ffs", or "guessing" ---------
  std::string layout = "lfs";
  std::string cleaner = "greedy";  // greedy | cost-benefit
  uint32_t lfs_segment_blocks = 128;
  uint32_t max_inodes = 8192;

  // -- cache ---------------------------------------------------------------
  uint64_t cache_bytes = 48 * kMiB;
  std::string replacement = "LRU";           // LRU|RANDOM|LFU|SLRU|LRU-2
  std::string flush_policy = "write-delay";  // write-delay|ups|nvram-whole|nvram-partial
  uint64_t nvram_bytes = 2 * kMiB;
  bool async_flush = true;  // the §5.2 lesson, applied

  // -- observability -------------------------------------------------------
  struct TraceConfig {
    bool enabled = false;   // request tracing (spans, TraceSink, "trace" stats)
    std::string file;       // chrome trace_event export path ("" = no export)
    uint32_t sample_ms = 0;  // StatsSampler period; 0 = no time-series sampling
    uint32_t ring_capacity = 65536;  // spans per OS-thread ring buffer
  };
  TraceConfig trace;

  // Live metrics plane: the sharded MetricRegistry plus the HTTP scrape
  // listener (/metrics, /healthz, /statz on 127.0.0.1).
  struct MetricsConfig {
    bool enabled = false;  // build the registry, bind components, start HTTP
    uint32_t port = 0;     // TCP port; 0 = ephemeral (resolved after bind)
    // Prepended to every metric family name ("pfs" -> "pfs_cache_hits_total");
    // parse-checked against [a-zA-Z_][a-zA-Z0-9_]*.
    std::string prefix = "pfs";
  };
  MetricsConfig metrics;

  // -- simulated host (data-copy and per-op CPU accounting) ----------------
  HostModel host;

  // File system f is mounted at "/<mount_prefix><f>".
  std::string mount_prefix = "fs";

  bool simulated() const { return backend == BackendKind::kSimulated; }
  bool virtual_clock() const {
    return clock == ClockKind::kAuto ? simulated() : clock == ClockKind::kVirtual;
  }

  // The defaults above, spelled out: the rebuilt Sprite "Allspice" server of
  // §5.1 under the simulator.
  static SystemConfig AllspiceSim();

  // On-line server defaults: one file-backed disk, one LFS file system, a
  // small cache, real clock.
  static SystemConfig OnlineDefaults();

  // -- the textual scenario API --------------------------------------------
  // A scenario is a flat "key = value" text (one key per line, `#` comments,
  // dotted section prefixes: topology.*, volume<i>.*, image.*, layout.*,
  // cache.*, host.*). Parse rejects unknown keys, unknown component names
  // (enumerating the registered alternatives), malformed values, and
  // duplicate keys — each with the offending line number in the Status.
  // Every field ToString() emits round-trips: Parse(c.ToString()) rebuilds a
  // config equal to `c`. DiskParams round-trip by registered model name
  // (topology.disk_model); hand-mutated parameter structs do not serialize.
  static Result<SystemConfig> Parse(const std::string& text);
  std::string ToString() const;
};

// The largest accepted "system.shards" value.
inline constexpr int kMaxShards = 64;

// Effective per-file-system volume specs: config.volumes, or the default
// round-robin single-disk spec per file system when none are given. Shared
// by SystemBuilder's placement planning and the shard cross-checks.
std::vector<VolumeSpec> EffectiveVolumeSpecs(const SystemConfig& config);

// Which shard owns each physical disk (index = flattened bus-major disk
// index): the shard of the first file system whose volume references the
// disk. The simulated backend assigns whole busses at a time — one bus's
// DiskModel/driver coroutines all live on one loop — so every disk on a bus
// inherits the bus's first claimant. Unreferenced disks (and busses) fall to
// shard 0. A file system pinned elsewhere reaches foreign disks through a
// CrossShardDevice proxy.
std::vector<int> DiskShardOwners(const SystemConfig& config);

// Shard cross-checks shared by Parse (which maps `key` back to the scenario
// line that set it) and SystemBuilder::Validate (which reports `key`
// verbatim): shard counts in [1, kMaxShards], fs pins inside the shard and
// file-system ranges, virtual-clock-only simulated sharding, and
// shard-local mirror members.
struct ShardSpecError {
  std::string key;  // "system.shards" or "fs<i>.shard"
  std::string message;
};
std::optional<ShardSpecError> CheckShardSpecs(const SystemConfig& config);

// Reads and parses one scenario file; errors are prefixed with the path.
Result<SystemConfig> LoadScenarioFile(const std::string& path);

// The shared "--config <file>" command-line convention of the benches and
// examples: `scenario` is the loaded file when the flag was given, and
// `positional` collects every other argument in order. A --config with no
// value, or an unloadable file, is an error — a tool silently falling back
// to its default config would report the wrong system's results.
struct ScenarioArgs {
  std::optional<SystemConfig> scenario;
  std::vector<std::string> positional;
};
Result<ScenarioArgs> ParseScenarioArgs(int argc, char** argv);

}  // namespace pfs

#endif  // PFS_SYSTEM_SYSTEM_CONFIG_H_
