// The component registry: the run-time half of the paper's cut-and-paste
// property. Every pluggable family — storage layouts, log cleaners, cache
// replacement policies, flush policies, volume kinds, disk-queue policies,
// disk models — registers a named entry here, next to its implementation;
// SystemBuilder and SystemConfig::Parse resolve names through the registry
// instead of hard-coded string switches, so adding a component (or shadowing
// a builtin from user code) never touches the assembly layer.
//
// Extension recipe ("add a layout in three lines"):
//
//   LayoutRegistry::Register("mylayout", {
//       [](LayoutContext ctx) { return std::make_unique<MyLayout>(...); },
//       [](const SystemConfig&) { return MyLayout::kMinBlocks; }});
//
// Call Register from anywhere before the first Build/Parse — typically a
// registration function next to the implementation, or main() for one-off
// experiments. Registering an existing name replaces it.
#ifndef PFS_SYSTEM_COMPONENT_REGISTRY_H_
#define PFS_SYSTEM_COMPONENT_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cache/flush_policy.h"
#include "cache/replacement.h"
#include "core/result.h"
#include "core/status.h"
#include "disk/disk_model.h"
#include "driver/disk_driver.h"
#include "driver/io_engine.h"
#include "fault/fault_schedule.h"
#include "layout/cleaner.h"
#include "layout/storage_layout.h"
#include "layout/types.h"
#include "system/system_config.h"
#include "volume/volume.h"

namespace pfs {

// Registers every builtin component exactly once (thread-safe, idempotent);
// lookups call this lazily, so builtins are always visible. Implemented in
// component_registry.cc by forwarding to the per-family registration
// functions below, each of which lives next to its components.
void EnsureBuiltinComponentsRegistered();

void RegisterLfsLayout();                    // src/layout/lfs_layout.cc
void RegisterFfsLayout();                    // src/layout/ffs_layout.cc
void RegisterGuessingLayout();               // src/layout/guessing_layout.cc
void RegisterBuiltinCleaners();              // src/layout/cleaner.cc
void RegisterBuiltinReplacementPolicies();   // src/cache/replacement.cc
void RegisterBuiltinFlushPolicies();         // src/cache/flush_policy.cc
void RegisterBuiltinVolumeKinds();           // src/volume/volume.cc
void RegisterBuiltinQueuePolicies();         // src/driver/disk_driver.cc
                                             // RegisterBuiltinIoEngines:
                                             // src/driver/io_engine.cc
                                             // (declared in io_engine.h)
void RegisterBuiltinDiskModels();            // src/disk/disk_model.cc
                                             // RegisterBuiltinFaultActions:
                                             // src/fault/fault_schedule.cc
                                             // (declared in fault_schedule.h)

// One registry per component family; `Traits` names the family (for error
// messages) and the registered value type (a factory, a descriptor struct,
// or a plain enum value). Entries keep registration order, and their
// addresses stay stable across later registrations.
template <typename Traits>
class ComponentRegistry {
 public:
  using Value = typename Traits::Value;

  // Registers `name`, replacing an existing entry of the same name (so user
  // code can shadow a builtin — the builtins are registered first, even when
  // this is the process's first registry call). Register before concurrent
  // lookups begin: replacing an entry while another thread uses its Value is
  // a data race.
  static void Register(std::string name, Value value) {
    EnsureBuiltinComponentsRegistered();
    ComponentRegistry& r = Instance();
    std::lock_guard<std::mutex> lock(r.mu_);
    for (auto& entry : r.entries_) {
      if (entry.first == name) {
        entry.second = std::move(value);
        return;
      }
    }
    r.entries_.emplace_back(std::move(name), std::move(value));
  }

  // The entry registered under `name`, or nullptr. The pointer stays valid
  // for the process lifetime (re-registration replaces the Value in place —
  // see the caveat on Register).
  static const Value* Find(std::string_view name) {
    EnsureBuiltinComponentsRegistered();
    ComponentRegistry& r = Instance();
    std::lock_guard<std::mutex> lock(r.mu_);
    for (const auto& entry : r.entries_) {
      if (entry.first == name) {
        return &entry.second;
      }
    }
    return nullptr;
  }

  static bool Contains(std::string_view name) { return Find(name) != nullptr; }

  // Registered names, in registration order (builtins first).
  static std::vector<std::string> Names() {
    EnsureBuiltinComponentsRegistered();
    ComponentRegistry& r = Instance();
    std::lock_guard<std::mutex> lock(r.mu_);
    std::vector<std::string> names;
    names.reserve(r.entries_.size());
    for (const auto& entry : r.entries_) {
      names.push_back(entry.first);
    }
    return names;
  }

  // "lfs, ffs, guessing" — for error messages.
  static std::string NameList() {
    std::string out;
    for (const std::string& name : Names()) {
      if (!out.empty()) {
        out += ", ";
      }
      out += name;
    }
    return out;
  }

  // The uniform unknown-name error: names the config field, the family, the
  // offending value, and every registered alternative.
  static Status UnknownNameError(std::string_view field, std::string_view name) {
    return Status(ErrorCode::kInvalidArgument,
                  std::string(field) + ": unknown " + Traits::kFamily + " \"" +
                      std::string(name) + "\" (registered: " + NameList() + ")");
  }

 private:
  static ComponentRegistry& Instance() {
    static ComponentRegistry* instance = new ComponentRegistry();
    return *instance;
  }

  std::mutex mu_;
  // deque: stable element addresses while new entries are appended.
  std::deque<std::pair<std::string, Value>> entries_;
};

// ---------------------------------------------------------------------------
// Storage layouts ("lfs", "ffs", "guessing").
// ---------------------------------------------------------------------------

struct LayoutContext {
  Scheduler* sched;
  BlockDev dev;
  const SystemConfig* config;
  int fs_index;
};

struct LayoutFamily {
  static constexpr const char* kFamily = "layout";
  struct Value {
    // Builds file system `ctx.fs_index`'s layout over its volume.
    std::function<std::unique_ptr<StorageLayout>(LayoutContext ctx)> make;
    // Smallest partition (in file-system blocks) this layout formats in.
    std::function<uint64_t(const SystemConfig&)> min_partition_blocks;
    // Layout-specific config checks (e.g. LFS segment size); may be null.
    std::function<Status(const SystemConfig&)> validate;
  };
};
using LayoutRegistry = ComponentRegistry<LayoutFamily>;

// ---------------------------------------------------------------------------
// LFS log cleaners ("greedy", "cost-benefit").
// ---------------------------------------------------------------------------

struct CleanerFamily {
  static constexpr const char* kFamily = "cleaner";
  using Value = std::function<std::unique_ptr<CleanerPolicy>()>;
};
using CleanerRegistry = ComponentRegistry<CleanerFamily>;

// ---------------------------------------------------------------------------
// Cache replacement policies ("LRU", "RANDOM", "LFU", "SLRU", "LRU-2").
// ---------------------------------------------------------------------------

struct ReplacementFamily {
  static constexpr const char* kFamily = "replacement policy";
  using Value = std::function<std::unique_ptr<ReplacementPolicy>(uint64_t seed)>;
};
using ReplacementRegistry = ComponentRegistry<ReplacementFamily>;

// ---------------------------------------------------------------------------
// Cache flush (persistency) policies ("write-delay", "ups", "nvram-whole",
// "nvram-partial").
// ---------------------------------------------------------------------------

struct FlushPolicyOptions {
  uint64_t nvram_bytes = 4 * kMiB;
};

struct FlushPolicyFamily {
  static constexpr const char* kFamily = "flush policy";
  using Value = std::function<std::unique_ptr<FlushPolicy>(const FlushPolicyOptions&)>;
};
using FlushPolicyRegistry = ComponentRegistry<FlushPolicyFamily>;

// ---------------------------------------------------------------------------
// Volume kinds ("single", "concat", "striped", "mirror").
// ---------------------------------------------------------------------------

// One member slice a volume composes: a partition [start_sector,
// start_sector + nsectors) of a backing device (normally a disk driver).
struct VolumeSliceRef {
  BlockDevice* backing;
  uint64_t start_sector;
  uint64_t nsectors;
};

struct VolumeKindFamily {
  static constexpr const char* kFamily = "volume kind";
  struct Value {
    // Member-count bounds (a mirror of one disk has zero redundancy; a
    // stripe of one serializes on a single spindle).
    size_t min_members = 1;
    size_t max_members = SIZE_MAX;
    // Whether spec.failed_members may be non-empty (degraded-from-setup).
    bool allows_degraded_start = false;
    // Kind-specific spec checks beyond member counts; `field` prefixes error
    // messages ("volumes[3]"). May be null.
    std::function<Status(const VolumeSpec& spec, uint32_t sector_bytes,
                         const std::string& field)>
        validate;
    // Usable capacity (sectors) over member slices of the given sizes, or an
    // error when the spec cannot produce a usable volume.
    std::function<Result<uint64_t>(const std::vector<uint64_t>& member_sectors,
                                   const VolumeSpec& spec, uint32_t sector_bytes,
                                   const std::string& field)>
        capacity_sectors;
    // Assembles the volume named `name` over `slices`. Intermediate devices
    // the top volume references (per-member partition wrappers) are appended
    // to `parts`, which the caller keeps alive alongside the result.
    std::function<std::unique_ptr<Volume>(Scheduler* sched, const std::string& name,
                                          const std::vector<VolumeSliceRef>& slices,
                                          const VolumeSpec& spec, uint32_t sector_bytes,
                                          std::vector<std::unique_ptr<Volume>>* parts)>
        assemble;
  };
};
using VolumeKindRegistry = ComponentRegistry<VolumeKindFamily>;

// ---------------------------------------------------------------------------
// Disk-queue scheduling policies ("FCFS", ..., "C-LOOK"): plain enum values.
// ---------------------------------------------------------------------------

struct QueuePolicyFamily {
  static constexpr const char* kFamily = "queue policy";
  using Value = QueueSchedPolicy;
};
using QueuePolicyRegistry = ComponentRegistry<QueuePolicyFamily>;

// ---------------------------------------------------------------------------
// I/O engines ("threadpool", "uring"): how the file-backed driver's batches
// reach the kernel (io_engine.h). Factories, so every System owns its own
// engine instance (the uring engine holds kernel rings).
// ---------------------------------------------------------------------------

struct IoEngineFamily {
  static constexpr const char* kFamily = "io engine";
  using Value = std::function<std::unique_ptr<IoEngine>()>;
};
using IoEngineRegistry = ComponentRegistry<IoEngineFamily>;

// ---------------------------------------------------------------------------
// Simulated disk models ("HP97560", "SyntheticTest"): parameter factories,
// keyed by DiskParams::model_name so configs serialize by model name.
// ---------------------------------------------------------------------------

struct DiskModelFamily {
  static constexpr const char* kFamily = "disk model";
  using Value = std::function<DiskParams()>;
};
using DiskModelRegistry = ComponentRegistry<DiskModelFamily>;

// ---------------------------------------------------------------------------
// Fault actions ("fail", "return"): what a scheduled fault event does to its
// target mirror member (fault_schedule.h defines FaultAction).
// ---------------------------------------------------------------------------

struct FaultActionFamily {
  static constexpr const char* kFamily = "fault action";
  using Value = FaultAction;
};
using FaultActionRegistry = ComponentRegistry<FaultActionFamily>;

}  // namespace pfs

#endif  // PFS_SYSTEM_COMPONENT_REGISTRY_H_
