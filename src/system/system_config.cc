// SystemConfig's textual scenario API: Parse/ToString over a flat
// "key = value" format, so a complete file-server composition is a text file
// (examples/scenarios/) instead of compiled C++. Component names are checked
// against the registries at parse time, with the registered alternatives
// enumerated in every rejection.
#include "system/system_config.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "fault/fault_schedule.h"
#include "obs/metrics.h"
#include "system/component_registry.h"

namespace pfs {

const char* BackendKindName(BackendKind k) {
  switch (k) {
    case BackendKind::kSimulated:
      return "simulated";
    case BackendKind::kFileBacked:
      return "file-backed";
  }
  return "?";
}

const char* ClockKindName(ClockKind k) {
  switch (k) {
    case ClockKind::kAuto:
      return "auto";
    case ClockKind::kVirtual:
      return "virtual";
    case ClockKind::kReal:
      return "real";
  }
  return "?";
}

SystemConfig SystemConfig::AllspiceSim() { return SystemConfig{}; }

SystemConfig SystemConfig::OnlineDefaults() {
  SystemConfig config;
  config.backend = BackendKind::kFileBacked;
  config.seed = 1;
  config.disks_per_bus = {1};
  config.num_filesystems = 1;
  config.cache_bytes = 8 * kMiB;
  config.lfs_segment_blocks = 64;
  config.max_inodes = 4096;
  return config;
}

namespace {

Status LineError(int line, const std::string& message) {
  return Status(ErrorCode::kInvalidArgument, "line " + std::to_string(line) + ": " + message);
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

// "48MiB" / "64KiB" / "1GiB" / "123": byte counts take an optional binary
// suffix; every other number is plain digits.
Result<uint64_t> ParseBytes(const std::string& value) {
  uint64_t multiplier = 1;
  std::string digits = value;
  const auto suffix_at = value.find_first_not_of("0123456789");
  if (suffix_at != std::string::npos) {
    const std::string suffix = value.substr(suffix_at);
    digits = value.substr(0, suffix_at);
    if (suffix == "KiB") {
      multiplier = kKiB;
    } else if (suffix == "MiB") {
      multiplier = kMiB;
    } else if (suffix == "GiB") {
      multiplier = kGiB;
    } else {
      return Status(ErrorCode::kInvalidArgument,
                    "\"" + value + "\" is not a byte count (digits + optional KiB/MiB/GiB)");
    }
  }
  if (digits.empty()) {
    return Status(ErrorCode::kInvalidArgument, "\"" + value + "\" is not a byte count");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status(ErrorCode::kInvalidArgument, "\"" + value + "\" is not a number");
  }
  return static_cast<uint64_t>(parsed) * multiplier;
}

Result<uint64_t> ParseUint(const std::string& value) {
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    return Status(ErrorCode::kInvalidArgument,
                  "\"" + value + "\" is not a non-negative integer");
  }
  return ParseBytes(value);
}

// Bounded integer fields: a value the target type cannot hold is an error,
// never a silent truncation.
Result<uint64_t> ParseUintMax(const std::string& value, uint64_t max) {
  PFS_ASSIGN_OR_RETURN(const uint64_t parsed, ParseUint(value));
  if (parsed > max) {
    return Status(ErrorCode::kInvalidArgument,
                  "\"" + value + "\" is out of range (max " + std::to_string(max) + ")");
  }
  return parsed;
}

Result<bool> ParseBool(const std::string& value) {
  if (value == "true") {
    return true;
  }
  if (value == "false") {
    return false;
  }
  return Status(ErrorCode::kInvalidArgument,
                "\"" + value + "\" is not a boolean (true or false)");
}

// "4, 3, 3" -> {4, 3, 3}; used for disk lists and member lists.
Result<std::vector<int>> ParseIntList(const std::string& value) {
  std::vector<int> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string trimmed = Trim(item);
    PFS_ASSIGN_OR_RETURN(const uint64_t n, ParseUint(trimmed));
    if (n > INT32_MAX) {
      return Status(ErrorCode::kInvalidArgument, "\"" + trimmed + "\" is out of range");
    }
    out.push_back(static_cast<int>(n));
  }
  if (out.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "\"" + value + "\" is not a comma-separated integer list");
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  if (bytes != 0 && bytes % kGiB == 0) {
    return std::to_string(bytes / kGiB) + "GiB";
  }
  if (bytes != 0 && bytes % kMiB == 0) {
    return std::to_string(bytes / kMiB) + "MiB";
  }
  if (bytes != 0 && bytes % kKiB == 0) {
    return std::to_string(bytes / kKiB) + "KiB";
  }
  return std::to_string(bytes);
}

std::string JoinInts(const std::vector<int>& values) {
  std::string out;
  for (int v : values) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::to_string(v);
  }
  return out;
}

// "volume3.members" -> {3, "members"} for prefix "volume"; nullopt when the
// key is not a <prefix><i>.* key. Shared by the volume<i>.* and fault<i>.*
// sections.
struct IndexedKey {
  size_t index;
  std::string field;
};

std::optional<IndexedKey> ParseIndexedKey(const std::string& key, std::string_view prefix) {
  if (key.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  const size_t dot = key.find('.');
  if (dot == std::string::npos || dot <= prefix.size()) {
    return std::nullopt;
  }
  const std::string digits = key.substr(prefix.size(), dot - prefix.size());
  // The digit-count bound keeps stoull from throwing out_of_range; an index
  // this large is a typo, and the unknown-key error names the line.
  if (digits.size() > 6 || digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return IndexedKey{static_cast<size_t>(std::stoull(digits)), key.substr(dot + 1)};
}

// Which scenario line set each fault<i> field, so the post-parse
// cross-checks (CheckFaultSpecs) can point at the offending line.
struct FaultFieldLines {
  int at_ms = 0;
  int volume = 0;
  int member = 0;
  int action = 0;

  int ForField(std::string_view field) const {
    if (field == "at_ms") {
      return at_ms;
    }
    if (field == "volume") {
      return volume;
    }
    if (field == "member") {
      return member;
    }
    return action;
  }
};

}  // namespace

Result<SystemConfig> SystemConfig::Parse(const std::string& text) {
  SystemConfig config;
  std::set<std::string> seen_keys;
  std::map<size_t, VolumeSpec> volumes;
  size_t max_volume_index = 0;
  bool any_volume = false;
  std::map<size_t, FaultSpec> faults;
  std::map<size_t, FaultFieldLines> fault_lines;
  size_t max_fault_index = 0;
  bool any_fault = false;
  // Which line set system.shards / each fs<i>.shard, so the post-parse
  // CheckShardSpecs cross-checks can point at the offending line.
  int shards_line = 0;
  std::map<size_t, int> fs_shard_lines;

  std::stringstream lines(text);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(lines, raw_line)) {
    ++line_no;
    const size_t comment = raw_line.find('#');
    if (comment != std::string::npos) {
      raw_line.resize(comment);
    }
    const std::string line = Trim(raw_line);
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return LineError(line_no, "expected \"key = value\", got \"" + line + "\"");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return LineError(line_no, "empty key");
    }
    // "image.io_threads" is the legacy spelling of "system.io_threads"; fold
    // them together so a scenario can't set the same knob twice.
    const std::string canonical_key =
        key == "image.io_threads" ? std::string("system.io_threads") : key;
    if (!seen_keys.insert(canonical_key).second) {
      return LineError(line_no, "duplicate key \"" + key + "\"");
    }

    // Wraps a field parser so every value error carries the line number.
    auto fail = [&](const Status& status) { return LineError(line_no, status.message()); };

    if (key == "backend") {
      if (value == BackendKindName(BackendKind::kSimulated)) {
        config.backend = BackendKind::kSimulated;
      } else if (value == BackendKindName(BackendKind::kFileBacked)) {
        config.backend = BackendKind::kFileBacked;
      } else {
        return LineError(line_no, "backend: unknown backend \"" + value +
                                      "\" (expected simulated or file-backed)");
      }
    } else if (key == "clock") {
      if (value == ClockKindName(ClockKind::kAuto)) {
        config.clock = ClockKind::kAuto;
      } else if (value == ClockKindName(ClockKind::kVirtual)) {
        config.clock = ClockKind::kVirtual;
      } else if (value == ClockKindName(ClockKind::kReal)) {
        config.clock = ClockKind::kReal;
      } else {
        return LineError(line_no, "clock: unknown clock \"" + value +
                                      "\" (expected auto, virtual, or real)");
      }
    } else if (key == "seed") {
      auto parsed = ParseUint(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.seed = *parsed;
    } else if (key == "mount_prefix") {
      if (value.empty()) {
        return LineError(line_no, "mount_prefix: must not be empty");
      }
      config.mount_prefix = value;
    } else if (key == "topology.disks_per_bus") {
      auto parsed = ParseIntList(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.disks_per_bus = *parsed;
    } else if (key == "topology.num_filesystems") {
      auto parsed = ParseUintMax(value, INT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.num_filesystems = static_cast<int>(*parsed);
    } else if (key == "topology.disk_model") {
      const auto* model = DiskModelRegistry::Find(value);
      if (model == nullptr) {
        return fail(DiskModelRegistry::UnknownNameError(key, value));
      }
      config.disk_params = (*model)();
    } else if (key == "topology.queue_policy") {
      if (!QueuePolicyRegistry::Contains(value)) {
        return fail(QueuePolicyRegistry::UnknownNameError(key, value));
      }
      config.queue_policy = value;
    } else if (key == "image.path") {
      config.image_path = value;
    } else if (key == "image.bytes") {
      auto parsed = ParseBytes(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.image_bytes = *parsed;
    } else if (key == "image.format") {
      auto parsed = ParseBool(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.format = *parsed;
    } else if (key == "system.io_threads" || key == "image.io_threads") {
      auto parsed = ParseUintMax(value, INT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.io_threads = static_cast<int>(*parsed);
    } else if (key == "system.shards") {
      // Range-checked here for the value shape, and again in CheckShardSpecs
      // (which Validate also runs) so programmatic configs get the same
      // rejection.
      auto parsed = ParseUintMax(value, kMaxShards);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      if (*parsed < 1) {
        return LineError(line_no, "system.shards: at least one shard is required");
      }
      config.shards = static_cast<int>(*parsed);
      shards_line = line_no;
    } else if (key == "system.io_engine") {
      if (!IoEngineRegistry::Contains(value)) {
        return fail(IoEngineRegistry::UnknownNameError(key, value));
      }
      config.io_engine = value;
    } else if (key == "layout.name") {
      if (!LayoutRegistry::Contains(value)) {
        return fail(LayoutRegistry::UnknownNameError(key, value));
      }
      config.layout = value;
    } else if (key == "layout.cleaner") {
      if (!CleanerRegistry::Contains(value)) {
        return fail(CleanerRegistry::UnknownNameError(key, value));
      }
      config.cleaner = value;
    } else if (key == "layout.lfs_segment_blocks") {
      auto parsed = ParseUintMax(value, UINT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.lfs_segment_blocks = static_cast<uint32_t>(*parsed);
    } else if (key == "layout.max_inodes") {
      auto parsed = ParseUintMax(value, UINT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.max_inodes = static_cast<uint32_t>(*parsed);
    } else if (key == "cache.bytes") {
      auto parsed = ParseBytes(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.cache_bytes = *parsed;
    } else if (key == "cache.replacement") {
      if (!ReplacementRegistry::Contains(value)) {
        return fail(ReplacementRegistry::UnknownNameError(key, value));
      }
      config.replacement = value;
    } else if (key == "cache.flush_policy") {
      if (!FlushPolicyRegistry::Contains(value)) {
        return fail(FlushPolicyRegistry::UnknownNameError(key, value));
      }
      config.flush_policy = value;
    } else if (key == "cache.nvram_bytes") {
      auto parsed = ParseBytes(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.nvram_bytes = *parsed;
    } else if (key == "cache.async_flush") {
      auto parsed = ParseBool(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.async_flush = *parsed;
    } else if (key == "trace.enabled") {
      auto parsed = ParseBool(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.trace.enabled = *parsed;
    } else if (key == "trace.file") {
      config.trace.file = value;
    } else if (key == "trace.sample_ms") {
      auto parsed = ParseUintMax(value, UINT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.trace.sample_ms = static_cast<uint32_t>(*parsed);
    } else if (key == "trace.ring_capacity") {
      auto parsed = ParseUintMax(value, UINT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.trace.ring_capacity = static_cast<uint32_t>(*parsed);
    } else if (key == "metrics.enabled") {
      auto parsed = ParseBool(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.metrics.enabled = *parsed;
    } else if (key == "metrics.port") {
      auto parsed = ParseUintMax(value, 65535);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.metrics.port = static_cast<uint32_t>(*parsed);
    } else if (key == "metrics.prefix") {
      if (!ValidMetricPrefix(value)) {
        return fail(Status(ErrorCode::kInvalidArgument,
                           "metrics.prefix must match [a-zA-Z_][a-zA-Z0-9_]* (got \"" + value +
                               "\")"));
      }
      config.metrics.prefix = value;
    } else if (key == "host.mem_bandwidth_bytes_per_sec") {
      auto parsed = ParseBytes(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.host.mem_bandwidth_bytes_per_sec = *parsed;
    } else if (key == "host.per_op_cpu_ns") {
      auto parsed = ParseUint(value);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.host.per_op_cpu = Duration::Nanos(static_cast<int64_t>(*parsed));
    } else if (key == "fault.rebuild_bw_kbps") {
      auto parsed = ParseUintMax(value, UINT32_MAX);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      config.rebuild_bw_kbps = static_cast<uint32_t>(*parsed);
    } else if (auto fkey = ParseIndexedKey(key, "fault"); fkey.has_value()) {
      any_fault = true;
      max_fault_index = std::max(max_fault_index, fkey->index);
      FaultSpec& spec = faults[fkey->index];
      FaultFieldLines& field_lines = fault_lines[fkey->index];
      if (fkey->field == "at_ms") {
        // Bounded so the ms -> ns conversion can never overflow Duration.
        auto parsed = ParseUintMax(value, kMaxFaultAtMs);
        if (!parsed.ok()) {
          return fail(parsed.status());
        }
        spec.at_ms = *parsed;
        field_lines.at_ms = line_no;
      } else if (fkey->field == "volume") {
        auto parsed = ParseUintMax(value, INT32_MAX);
        if (!parsed.ok()) {
          return fail(parsed.status());
        }
        spec.volume = static_cast<int>(*parsed);
        field_lines.volume = line_no;
      } else if (fkey->field == "member") {
        auto parsed = ParseUintMax(value, INT32_MAX);
        if (!parsed.ok()) {
          return fail(parsed.status());
        }
        spec.member = static_cast<int>(*parsed);
        field_lines.member = line_no;
      } else if (fkey->field == "action") {
        // Checked here (not only post-parse) so an unknown action names its
        // own line and the registered alternatives.
        if (!FaultActionRegistry::Contains(value)) {
          return fail(FaultActionRegistry::UnknownNameError(key, value));
        }
        spec.action = value;
        field_lines.action = line_no;
      } else {
        return LineError(line_no, "unknown key \"" + key + "\" (fault keys: at_ms, "
                                  "volume, member, action)");
      }
    } else if (auto skey = ParseIndexedKey(key, "fs"); skey.has_value()) {
      if (skey->field != "shard") {
        return LineError(line_no, "unknown key \"" + key + "\" (fs keys: shard)");
      }
      auto parsed = ParseUintMax(value, kMaxShards - 1);
      if (!parsed.ok()) {
        return fail(parsed.status());
      }
      if (config.fs_shards.size() <= skey->index) {
        config.fs_shards.resize(skey->index + 1, -1);
      }
      config.fs_shards[skey->index] = static_cast<int>(*parsed);
      fs_shard_lines[skey->index] = line_no;
    } else if (auto vkey = ParseIndexedKey(key, "volume"); vkey.has_value()) {
      any_volume = true;
      max_volume_index = std::max(max_volume_index, vkey->index);
      VolumeSpec& spec = volumes[vkey->index];
      if (vkey->field == "kind") {
        if (!VolumeKindRegistry::Contains(value)) {
          return fail(VolumeKindRegistry::UnknownNameError(key, value));
        }
        spec.kind = value;
      } else if (vkey->field == "members") {
        auto parsed = ParseIntList(value);
        if (!parsed.ok()) {
          return fail(parsed.status());
        }
        spec.members = *parsed;
      } else if (vkey->field == "stripe_unit_kb") {
        auto parsed = ParseUintMax(value, UINT32_MAX);
        if (!parsed.ok()) {
          return fail(parsed.status());
        }
        spec.stripe_unit_kb = static_cast<uint32_t>(*parsed);
      } else if (vkey->field == "failed_members") {
        auto parsed = ParseIntList(value);
        if (!parsed.ok()) {
          return fail(parsed.status());
        }
        spec.failed_members = *parsed;
      } else {
        return LineError(line_no, "unknown key \"" + key + "\" (volume keys: kind, "
                                  "members, stripe_unit_kb, failed_members)");
      }
    } else {
      return LineError(line_no, "unknown key \"" + key + "\"");
    }
  }

  if (any_volume) {
    for (size_t i = 0; i <= max_volume_index; ++i) {
      if (volumes.find(i) == volumes.end()) {
        return Status(ErrorCode::kInvalidArgument,
                      "volume" + std::to_string(i) + ": missing (volume indices must be "
                      "contiguous from 0)");
      }
    }
    config.volumes.clear();
    for (size_t i = 0; i <= max_volume_index; ++i) {
      config.volumes.push_back(std::move(volumes[i]));
    }
  }
  if (any_fault) {
    for (size_t i = 0; i <= max_fault_index; ++i) {
      if (faults.find(i) == faults.end()) {
        return Status(ErrorCode::kInvalidArgument,
                      "fault" + std::to_string(i) + ": missing (fault indices must be "
                      "contiguous from 0)");
      }
      const FaultFieldLines& field_lines = fault_lines[i];
      for (const char* field : {"at_ms", "volume", "member", "action"}) {
        if (field_lines.ForField(field) == 0) {
          return Status(ErrorCode::kInvalidArgument,
                        "fault" + std::to_string(i) + "." + field +
                            ": missing (every fault needs at_ms, volume, member, action)");
        }
      }
    }
    config.faults.clear();
    for (size_t i = 0; i <= max_fault_index; ++i) {
      config.faults.push_back(std::move(faults[i]));
    }
    // Cross-field checks (volume/member ranges, mirror-kind targets,
    // monotonic timestamps) run against the finished config; errors point
    // back at the scenario line that set the offending field.
    if (auto error = CheckFaultSpecs(config); error.has_value()) {
      return LineError(fault_lines[error->fault].ForField(error->field),
                       "fault" + std::to_string(error->fault) + "." + error->field + ": " +
                           error->message);
    }
  }
  if (auto error = CheckShardSpecs(config); error.has_value()) {
    // Map the blamed key back to the line that set it. A violation can also
    // arise from a key the scenario never wrote (a round-robin default pin
    // conflicting with a mirror): blame the system.shards line then, since
    // sharding introduced the conflict.
    int line = 0;
    if (auto skey = ParseIndexedKey(error->key, "fs"); skey.has_value()) {
      if (auto it = fs_shard_lines.find(skey->index); it != fs_shard_lines.end()) {
        line = it->second;
      }
    } else if (error->key == "system.shards") {
      line = shards_line;
    }
    if (line == 0) {
      line = shards_line;
    }
    if (line == 0) {
      return Status(ErrorCode::kInvalidArgument, error->key + ": " + error->message);
    }
    return LineError(line, error->key + ": " + error->message);
  }
  return config;
}

std::string SystemConfig::ToString() const {
  std::ostringstream out;
  out << "# pfs scenario (SystemConfig::ToString)\n";
  out << "backend = " << BackendKindName(backend) << "\n";
  out << "clock = " << ClockKindName(clock) << "\n";
  out << "seed = " << seed << "\n";
  out << "mount_prefix = " << mount_prefix << "\n";
  out << "\n# scheduling\n";
  out << "system.shards = " << shards << "\n";
  for (size_t f = 0; f < fs_shards.size(); ++f) {
    if (fs_shards[f] >= 0) {
      out << "fs" << f << ".shard = " << fs_shards[f] << "\n";
    }
  }
  out << "\n# topology\n";
  out << "topology.disks_per_bus = " << JoinInts(disks_per_bus) << "\n";
  out << "topology.num_filesystems = " << num_filesystems << "\n";
  out << "topology.disk_model = " << disk_params.model_name << "\n";
  out << "topology.queue_policy = " << queue_policy << "\n";
  if (!volumes.empty()) {
    out << "\n# per-file-system volumes\n";
    for (size_t i = 0; i < volumes.size(); ++i) {
      const VolumeSpec& spec = volumes[i];
      const std::string prefix = "volume" + std::to_string(i);
      out << prefix << ".kind = " << spec.kind << "\n";
      out << prefix << ".members = " << JoinInts(spec.members) << "\n";
      out << prefix << ".stripe_unit_kb = " << spec.stripe_unit_kb << "\n";
      if (!spec.failed_members.empty()) {
        out << prefix << ".failed_members = " << JoinInts(spec.failed_members) << "\n";
      }
    }
  }
  out << "\n# fault schedule\n";
  out << "fault.rebuild_bw_kbps = " << rebuild_bw_kbps << "\n";
  for (size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& fault = faults[i];
    const std::string prefix = "fault" + std::to_string(i);
    out << prefix << ".at_ms = " << fault.at_ms << "\n";
    out << prefix << ".volume = " << fault.volume << "\n";
    out << prefix << ".member = " << fault.member << "\n";
    out << prefix << ".action = " << fault.action << "\n";
  }
  out << "\n# file-backed backend\n";
  out << "image.path = " << image_path << "\n";
  out << "image.bytes = " << FormatBytes(image_bytes) << "\n";
  out << "image.format = " << (format ? "true" : "false") << "\n";
  out << "system.io_threads = " << io_threads << "\n";
  out << "system.io_engine = " << io_engine << "\n";
  out << "\n# storage layout\n";
  out << "layout.name = " << layout << "\n";
  out << "layout.cleaner = " << cleaner << "\n";
  out << "layout.lfs_segment_blocks = " << lfs_segment_blocks << "\n";
  out << "layout.max_inodes = " << max_inodes << "\n";
  out << "\n# cache\n";
  out << "cache.bytes = " << FormatBytes(cache_bytes) << "\n";
  out << "cache.replacement = " << replacement << "\n";
  out << "cache.flush_policy = " << flush_policy << "\n";
  out << "cache.nvram_bytes = " << FormatBytes(nvram_bytes) << "\n";
  out << "cache.async_flush = " << (async_flush ? "true" : "false") << "\n";
  out << "\n# observability\n";
  out << "trace.enabled = " << (trace.enabled ? "true" : "false") << "\n";
  out << "trace.file = " << trace.file << "\n";
  out << "trace.sample_ms = " << trace.sample_ms << "\n";
  out << "trace.ring_capacity = " << trace.ring_capacity << "\n";
  out << "metrics.enabled = " << (metrics.enabled ? "true" : "false") << "\n";
  out << "metrics.port = " << metrics.port << "\n";
  out << "metrics.prefix = " << metrics.prefix << "\n";
  out << "\n# simulated host model\n";
  out << "host.mem_bandwidth_bytes_per_sec = " << host.mem_bandwidth_bytes_per_sec << "\n";
  out << "host.per_op_cpu_ns = " << host.per_op_cpu.nanos() << "\n";
  return out.str();
}

std::vector<VolumeSpec> EffectiveVolumeSpecs(const SystemConfig& config) {
  if (!config.volumes.empty()) {
    return config.volumes;
  }
  int total_disks = 0;
  for (int n : config.disks_per_bus) {
    total_disks += n;
  }
  std::vector<VolumeSpec> specs(
      static_cast<size_t>(std::max(config.num_filesystems, 0)));
  if (total_disks <= 0) {
    return specs;
  }
  for (int f = 0; f < config.num_filesystems; ++f) {
    specs[static_cast<size_t>(f)].members = {f % total_disks};
  }
  return specs;
}

std::vector<int> DiskShardOwners(const SystemConfig& config) {
  int total_disks = 0;
  for (int n : config.disks_per_bus) {
    total_disks += n;
  }
  std::vector<int> owner(static_cast<size_t>(std::max(total_disks, 0)), -1);
  const std::vector<VolumeSpec> specs = EffectiveVolumeSpecs(config);
  const int fs_count =
      std::min(config.num_filesystems, static_cast<int>(specs.size()));
  for (int f = 0; f < fs_count; ++f) {
    const int s = config.ShardForFs(f);
    for (int d : specs[static_cast<size_t>(f)].members) {
      if (d >= 0 && d < total_disks && owner[static_cast<size_t>(d)] < 0) {
        owner[static_cast<size_t>(d)] = s;
      }
    }
  }
  if (config.simulated()) {
    // Whole busses at a time: the first claimed disk on a bus claims the bus,
    // so one bus's DiskModel/ScsiBus/driver coroutines stay on one loop.
    size_t base = 0;
    for (int n : config.disks_per_bus) {
      int bus_owner = -1;
      for (int d = 0; d < n; ++d) {
        if (owner[base + static_cast<size_t>(d)] >= 0) {
          bus_owner = owner[base + static_cast<size_t>(d)];
          break;
        }
      }
      for (int d = 0; d < n; ++d) {
        owner[base + static_cast<size_t>(d)] = bus_owner;
      }
      base += static_cast<size_t>(n);
    }
  }
  for (int& o : owner) {
    if (o < 0) {
      o = 0;
    }
  }
  return owner;
}

std::optional<ShardSpecError> CheckShardSpecs(const SystemConfig& config) {
  if (config.shards < 1 || config.shards > kMaxShards) {
    return ShardSpecError{"system.shards",
                          "must be between 1 and " + std::to_string(kMaxShards) + ", got " +
                              std::to_string(config.shards)};
  }
  const std::string valid_shards =
      config.shards == 1 ? std::string("the only valid shard is 0")
                         : "valid shards are 0.." + std::to_string(config.shards - 1);
  for (size_t f = 0; f < config.fs_shards.size(); ++f) {
    const int s = config.fs_shards[f];
    if (s < 0) {
      continue;  // round-robin default
    }
    const std::string key = "fs" + std::to_string(f) + ".shard";
    if (static_cast<int>(f) >= config.num_filesystems) {
      return ShardSpecError{key, "file system index " + std::to_string(f) +
                                     " outside topology.num_filesystems = " +
                                     std::to_string(config.num_filesystems)};
    }
    if (s >= config.shards) {
      return ShardSpecError{key, "shard " + std::to_string(s) +
                                     " does not exist (system.shards = " +
                                     std::to_string(config.shards) + "; " + valid_shards + ")"};
    }
  }
  if (config.shards == 1) {
    return std::nullopt;  // single loop: nothing can cross shards
  }
  if (config.simulated() && !config.virtual_clock()) {
    return ShardSpecError{"system.shards",
                          "the sharded simulated backend needs the virtual clock (a real "
                          "clock would step disk mechanisms on multiple loops "
                          "nondeterministically)"};
  }
  // A mirror's members must all live on the mirror's own shard: mirror writes
  // fan out to every member and the rebuild daemon copies member-to-member,
  // so a cross-shard member would put every replica write through a proxy
  // round trip — reject it as a layout error instead.
  const std::vector<VolumeSpec> specs = EffectiveVolumeSpecs(config);
  if (static_cast<int>(specs.size()) != config.num_filesystems) {
    return std::nullopt;  // malformed volume list: PlanVolumes reports it
  }
  const std::vector<int> owners = DiskShardOwners(config);
  for (int f = 0; f < config.num_filesystems; ++f) {
    const VolumeSpec& spec = specs[static_cast<size_t>(f)];
    if (spec.kind != "mirror") {
      continue;
    }
    const int fs_shard = config.ShardForFs(f);
    for (int d : spec.members) {
      if (d < 0 || d >= static_cast<int>(owners.size())) {
        continue;  // out-of-range member: PlanVolumes reports it
      }
      if (owners[static_cast<size_t>(d)] != fs_shard) {
        return ShardSpecError{
            "fs" + std::to_string(f) + ".shard",
            "mirror volume" + std::to_string(f) + " member disk " + std::to_string(d) +
                " is owned by shard " + std::to_string(owners[static_cast<size_t>(d)]) +
                " but the mirror is pinned to shard " + std::to_string(fs_shard) +
                "; mirror members must be shard-local (" + valid_shards + ")"};
      }
    }
  }
  return std::nullopt;
}

Result<ScenarioArgs> ParseScenarioArgs(int argc, char** argv) {
  ScenarioArgs out;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--config") {
      if (i + 1 >= argc) {
        return Status(ErrorCode::kInvalidArgument,
                      "--config: missing scenario file argument");
      }
      PFS_ASSIGN_OR_RETURN(SystemConfig config, LoadScenarioFile(argv[++i]));
      out.scenario = std::move(config);
    } else {
      out.positional.emplace_back(argv[i]);
    }
  }
  return out;
}

Result<SystemConfig> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(ErrorCode::kNotFound, path + ": cannot open scenario file");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = SystemConfig::Parse(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.code(), path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace pfs
