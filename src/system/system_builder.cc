#include "system/system_builder.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "driver/file_backed_driver.h"
#include "driver/sim_disk_driver.h"
#include "system/component_registry.h"

namespace pfs {
namespace {

Status Invalid(const std::string& message) {
  return Status(ErrorCode::kInvalidArgument, message);
}

int TotalDisks(const SystemConfig& config) {
  int total = 0;
  for (int n : config.disks_per_bus) {
    total += n;
  }
  return total;
}

// File-system blocks one disk offers, from the backend's sector geometry.
uint64_t DiskBlocks(const SystemConfig& config) {
  const uint32_t sector_bytes = config.simulated() ? config.disk_params.geometry.sector_bytes
                                                   : FileBackedDriver::kSectorBytes;
  const uint64_t total_sectors = config.simulated()
                                     ? config.disk_params.geometry.TotalSectors()
                                     : config.image_bytes / sector_bytes;
  if (sector_bytes == 0 || kDefaultBlockSize % sector_bytes != 0) {
    return 0;
  }
  return total_sectors / (kDefaultBlockSize / sector_bytes);
}

// Where file system f's volume lives on the disks: one block-aligned slice
// per member reference. Disks referenced by several volumes are partitioned
// evenly, which reduces to the seed's round-robin partitioning when no
// volume specs are given.
struct SlicePlan {
  int disk;
  uint64_t start_sector;
  uint64_t nsectors;
};

struct VolumePlan {
  VolumeSpec spec;
  std::vector<SlicePlan> slices;
  uint64_t fs_blocks = 0;  // file-system blocks the finished volume offers
};

Result<std::vector<VolumePlan>> PlanVolumes(const SystemConfig& config) {
  const int total_disks = TotalDisks(config);
  const uint32_t sector_bytes = config.simulated() ? config.disk_params.geometry.sector_bytes
                                                   : FileBackedDriver::kSectorBytes;
  const uint32_t spb = kDefaultBlockSize / sector_bytes;
  const uint64_t disk_blocks = DiskBlocks(config);

  const bool defaulted = config.volumes.empty();
  std::vector<VolumeSpec> specs = EffectiveVolumeSpecs(config);
  if (!defaulted && static_cast<int>(specs.size()) != config.num_filesystems) {
    return Invalid("volumes: " + std::to_string(specs.size()) + " volume spec(s) for " +
                   std::to_string(config.num_filesystems) + " file systems");
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    const VolumeSpec& spec = specs[i];
    const std::string prefix = "volumes[" + std::to_string(i) + "]";
    const VolumeKindFamily::Value* kind = VolumeKindRegistry::Find(spec.kind);
    if (kind == nullptr) {
      return VolumeKindRegistry::UnknownNameError(prefix + ".kind", spec.kind);
    }
    if (spec.members.empty()) {
      return Invalid(prefix + ".members: at least one disk is required");
    }
    if (spec.members.size() < kind->min_members) {
      return Invalid(prefix + ".members: kind \"" + spec.kind + "\" needs at least " +
                     std::to_string(kind->min_members) + " disks, got " +
                     std::to_string(spec.members.size()));
    }
    if (spec.members.size() > kind->max_members) {
      return Invalid(prefix + ".members: kind \"" + spec.kind + "\" takes at most " +
                     std::to_string(kind->max_members) + " disk(s), got " +
                     std::to_string(spec.members.size()));
    }
    if (!spec.failed_members.empty() && !kind->allows_degraded_start) {
      return Invalid(prefix + ".failed_members: kind \"" + spec.kind +
                     "\" cannot start degraded (only mirrors can)");
    }
    for (size_t m = 0; m < spec.members.size(); ++m) {
      const int d = spec.members[m];
      if (d < 0 || d >= total_disks) {
        return Invalid(prefix + ".members: disk index " + std::to_string(d) +
                       " outside the topology's " + std::to_string(total_disks) + " disk(s)");
      }
      // A repeated disk gives a mirror with zero redundancy and a stripe
      // that serializes on one spindle — always a misconfiguration.
      for (size_t prev = 0; prev < m; ++prev) {
        if (spec.members[prev] == d) {
          return Invalid(prefix + ".members: disk " + std::to_string(d) + " listed twice");
        }
      }
    }
    if (kind->validate != nullptr) {
      PFS_RETURN_IF_ERROR(kind->validate(spec, sector_bytes, prefix));
    }
  }

  // Evenly partition each disk among the volumes that reference it.
  std::vector<uint64_t> refs(static_cast<size_t>(total_disks), 0);
  for (const VolumeSpec& spec : specs) {
    for (int d : spec.members) {
      ++refs[static_cast<size_t>(d)];
    }
  }
  std::vector<uint64_t> next_slot(static_cast<size_t>(total_disks), 0);
  std::vector<VolumePlan> plans;
  plans.reserve(specs.size());
  const uint64_t min_blocks = SystemBuilder::MinBlocksPerFilesystem(config);
  for (size_t i = 0; i < specs.size(); ++i) {
    VolumePlan plan;
    plan.spec = specs[i];
    for (int d : plan.spec.members) {
      const uint64_t slice_blocks = disk_blocks / refs[static_cast<size_t>(d)];
      if (slice_blocks == 0) {
        return Invalid("volumes: disk " + std::to_string(d) + " split " +
                       std::to_string(refs[static_cast<size_t>(d)]) +
                       " ways leaves zero blocks per slice");
      }
      const uint64_t start_block = slice_blocks * next_slot[static_cast<size_t>(d)]++;
      plan.slices.push_back({d, start_block * spb, slice_blocks * spb});
    }
    // Capacity via the volume kinds' own formulas, so Validate can never
    // accept a config whose constructed volume sizes itself differently.
    std::vector<uint64_t> slice_sectors;
    for (const SlicePlan& s : plan.slices) {
      slice_sectors.push_back(s.nsectors);
    }
    const VolumeKindFamily::Value& kind = *VolumeKindRegistry::Find(plan.spec.kind);
    PFS_ASSIGN_OR_RETURN(const uint64_t capacity,
                         kind.capacity_sectors(slice_sectors, plan.spec, sector_bytes,
                                               "volumes[" + std::to_string(i) + "]"));
    plan.fs_blocks = capacity / spb;
    if (plan.fs_blocks < min_blocks) {
      if (defaulted) {
        return Invalid("num_filesystems: " + std::to_string(config.num_filesystems) + " " +
                       config.layout + " file systems over " + std::to_string(total_disks) +
                       " disk(s) leave " + std::to_string(plan.fs_blocks) +
                       " blocks per partition; the layout needs " +
                       std::to_string(min_blocks));
      }
      return Invalid("volumes[" + std::to_string(i) + "]: " + plan.spec.kind +
                     " volume offers " + std::to_string(plan.fs_blocks) + " blocks; the " +
                     config.layout + " layout needs " + std::to_string(min_blocks));
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::unique_ptr<StorageLayout> MakeLayout(Scheduler* sched, BlockDev dev,
                                          const SystemConfig& config, int fs_index,
                                          StatsRegistry* stats) {
  const LayoutFamily::Value& family = *LayoutRegistry::Find(config.layout);
  std::unique_ptr<StorageLayout> layout =
      family.make(LayoutContext{sched, std::move(dev), &config, fs_index});
  layout->BindHomeShard(sched, "layout");
  if (auto* source = dynamic_cast<StatSource*>(layout.get()); source != nullptr) {
    stats->Register(source, sched);
  }
  return layout;
}

}  // namespace

uint64_t SystemBuilder::MinBlocksPerFilesystem(const SystemConfig& config) {
  const LayoutFamily::Value* family = LayoutRegistry::Find(config.layout);
  if (family == nullptr) {
    return 0;  // Validate reports the unknown layout name itself
  }
  return family->min_partition_blocks(config);
}

namespace {

// Everything except volume placement (PlanVolumes covers that, and both
// Validate and Build need the plan, so it is computed once per caller).
Status ValidateStack(const SystemConfig& config) {
  if (config.disks_per_bus.empty()) {
    return Invalid("disks_per_bus: at least one bus is required");
  }
  for (int n : config.disks_per_bus) {
    if (n < 0) {
      return Invalid("disks_per_bus: negative disk count");
    }
  }
  const int total_disks = TotalDisks(config);
  if (total_disks == 0) {
    return Invalid("disks_per_bus: topology has zero disks");
  }
  if (config.num_filesystems < 1) {
    return Invalid("num_filesystems: at least one file system is required");
  }
  const LayoutFamily::Value* layout = LayoutRegistry::Find(config.layout);
  if (layout == nullptr) {
    return LayoutRegistry::UnknownNameError("layout", config.layout);
  }
  if (!QueuePolicyRegistry::Contains(config.queue_policy)) {
    return QueuePolicyRegistry::UnknownNameError("queue_policy", config.queue_policy);
  }
  if (!CleanerRegistry::Contains(config.cleaner)) {
    return CleanerRegistry::UnknownNameError("cleaner", config.cleaner);
  }
  if (!ReplacementRegistry::Contains(config.replacement)) {
    return ReplacementRegistry::UnknownNameError("replacement", config.replacement);
  }
  if (!FlushPolicyRegistry::Contains(config.flush_policy)) {
    return FlushPolicyRegistry::UnknownNameError("flush_policy", config.flush_policy);
  }
  if (layout->validate != nullptr) {
    PFS_RETURN_IF_ERROR(layout->validate(config));
  }
  if (config.cache_bytes < kDefaultBlockSize) {
    return Invalid("cache_bytes: smaller than one block");
  }
  if (!config.simulated()) {
    if (config.image_path.empty()) {
      return Invalid("image_path: required for the file-backed backend");
    }
    if (config.io_threads < 1) {
      return Invalid("io_threads: the file-backed backend needs at least one");
    }
    if (!IoEngineRegistry::Contains(config.io_engine)) {
      return IoEngineRegistry::UnknownNameError("io_engine", config.io_engine);
    }
  }
  if (DiskBlocks(config) == 0) {
    return Invalid("disk geometry: block size is not a multiple of the sector size");
  }
  if (config.trace.enabled && config.trace.ring_capacity == 0) {
    return Invalid("trace.ring_capacity: tracing needs at least one span slot");
  }
  if (auto fault_error = CheckFaultSpecs(config); fault_error.has_value()) {
    return Invalid("faults[" + std::to_string(fault_error->fault) + "]." +
                   fault_error->field + ": " + fault_error->message);
  }
  // Shard placement checks (Parse maps the same errors back to scenario
  // lines; programmatic configs get them here, keyed verbatim).
  if (auto shard_error = CheckShardSpecs(config); shard_error.has_value()) {
    return Invalid(shard_error->key + ": " + shard_error->message);
  }
  return OkStatus();
}

}  // namespace

Status SystemBuilder::Validate(const SystemConfig& config) {
  PFS_RETURN_IF_ERROR(ValidateStack(config));
  // Volume placement subsumes the partition-size check: every file system's
  // volume (explicit, or the default round-robin single-disk slice) must
  // still hold a formattable file system.
  return PlanVolumes(config).status();
}

Result<std::unique_ptr<System>> SystemBuilder::Build(const SystemConfig& config) {
  PFS_RETURN_IF_ERROR(ValidateStack(config));
  PFS_ASSIGN_OR_RETURN(std::vector<VolumePlan> plans, PlanVolumes(config));
  const QueueSchedPolicy queue_policy = *QueuePolicyRegistry::Find(config.queue_policy);
  const int nshards = config.shards;
  const std::vector<int> disk_owners = DiskShardOwners(config);
  auto system = std::unique_ptr<System>(new System());
  System& sys = *system;
  sys.config_ = config;
  if (nshards > 1) {
    sys.group_ = std::make_unique<SchedulerGroup>(static_cast<size_t>(nshards),
                                                  config.virtual_clock(), config.seed);
  } else {
    sys.sched_ = config.virtual_clock() ? Scheduler::CreateVirtual(config.seed)
                                        : Scheduler::CreateReal(config.seed);
  }
  auto shard_sched = [&sys](int s) -> Scheduler* {
    return sys.group_ != nullptr ? sys.group_->shard(static_cast<size_t>(s))
                                 : sys.sched_.get();
  };
  for (int s = 0; s < nshards; ++s) {
    auto sched_stats = std::make_unique<SchedStats>(shard_sched(s));
    sys.stats_.Register(sched_stats.get(), shard_sched(s));
    sys.sched_stats_.push_back(std::move(sched_stats));
  }

  // Drivers: the only place where the two backends diverge structurally.
  // Each disk lives on its owning shard (whole busses at a time under the
  // simulator — DiskShardOwners guarantees bus-uniform owners there).
  if (config.simulated()) {
    int disk_index = 0;
    for (size_t b = 0; b < config.disks_per_bus.size(); ++b) {
      const int bus_owner =
          config.disks_per_bus[b] > 0 ? disk_owners[static_cast<size_t>(disk_index)] : 0;
      Scheduler* bus_sched = shard_sched(bus_owner);
      auto bus = std::make_unique<ScsiBus>(bus_sched, std::string("scsi") + std::to_string(b));
      for (int d = 0; d < config.disks_per_bus[b]; ++d) {
        const std::string name = std::string("d") + std::to_string(disk_index);
        auto disk = std::make_unique<DiskModel>(bus_sched, name, config.disk_params, bus.get());
        disk->Start();
        auto driver =
            std::make_unique<SimDiskDriver>(bus_sched, name, disk.get(), bus.get(),
                                            queue_policy);
        driver->Start();
        sys.stats_.Register(disk.get(), bus_sched);
        sys.stats_.Register(driver.get(), bus_sched);
        sys.disks_.push_back(std::move(disk));
        sys.drivers_.push_back(std::move(driver));
        ++disk_index;
      }
      sys.stats_.Register(bus.get(), bus_sched);
      sys.busses_.push_back(std::move(bus));
    }
  } else {
    auto engine = (*IoEngineRegistry::Find(config.io_engine))();
    sys.executor_ = std::make_unique<IoExecutor>(config.io_threads, std::move(engine));
    const int total_disks = TotalDisks(config);
    for (int i = 0; i < total_disks; ++i) {
      const std::string path =
          i == 0 ? config.image_path : config.image_path + "." + std::to_string(i);
      Scheduler* disk_sched = shard_sched(disk_owners[static_cast<size_t>(i)]);
      PFS_ASSIGN_OR_RETURN(
          std::unique_ptr<FileBackedDriver> driver,
          FileBackedDriver::Create(disk_sched, std::string("d") + std::to_string(i), path,
                                   config.image_bytes, sys.executor_.get(), queue_policy));
      driver->Start();
      sys.stats_.Register(driver.get(), disk_sched);
      sys.drivers_.push_back(std::move(driver));
    }
  }

  // Caches and data movers, one per shard: simulated caches track identity
  // only, real caches hold real bytes (paper §2). The configured capacity is
  // the whole server's budget, split evenly across shards.
  BufferCache::Config cache_config;
  cache_config.capacity_bytes =
      std::max<uint64_t>(config.cache_bytes / static_cast<uint64_t>(nshards),
                         kDefaultBlockSize);
  cache_config.allocate_memory = !config.simulated();
  cache_config.async_flush = config.async_flush;
  for (int s = 0; s < nshards; ++s) {
    auto cache = std::make_unique<BufferCache>(
        shard_sched(s), cache_config,
        (*ReplacementRegistry::Find(config.replacement))(config.seed +
                                                         static_cast<uint64_t>(s)),
        (*FlushPolicyRegistry::Find(config.flush_policy))(
            FlushPolicyOptions{config.nvram_bytes}));
    if (nshards > 1) {
      cache->set_stat_suffix(".shard" + std::to_string(s));
    }
    sys.stats_.Register(cache.get(), shard_sched(s));
    sys.caches_.push_back(std::move(cache));
    if (config.simulated()) {
      sys.movers_.push_back(std::make_unique<SimDataMover>(shard_sched(s), config.host));
    } else {
      auto mover = std::make_unique<RealDataMover>();
      mover->BindHomeShard(shard_sched(s), "data_mover");
      sys.movers_.push_back(std::move(mover));
    }
  }

  // Observability: the recorder hands out trace ids at the client roots, the
  // sink drains the per-thread rings into histograms + an exportable trace,
  // and the sampler snapshots the whole registry on a period (hopping to
  // each shard for its shard-affine sources when sharded).
  if (config.trace.enabled) {
    sys.tracer_ = std::make_unique<TraceRecorder>(shard_sched(0), config.trace.ring_capacity);
    sys.trace_sink_ = std::make_unique<TraceSink>(sys.tracer_.get());
    sys.stats_.Register(sys.trace_sink_.get());
  }
  if (config.trace.sample_ms > 0) {
    sys.sampler_ = std::make_unique<StatsSampler>(shard_sched(0), &sys.stats_,
                                                  Duration::Millis(config.trace.sample_ms));
    if (sys.group_ != nullptr) {
      sys.sampler_->set_group(sys.group_.get());
    }
    if (!config.trace.file.empty()) {
      // Stream samples incrementally (fsync every 8) so an interrupted run
      // keeps its curve; ExportObservability skips the end-of-run rewrite.
      PFS_RETURN_IF_ERROR(
          sys.sampler_->OpenOutput(TraceSamplesPath(config.trace.file), /*flush_every=*/8));
    }
  }

  // File systems over their volumes, each pinned to its shard. The default
  // plan reduces to the seed's round-robin slices (the paper's server had 14
  // file systems on 10 disks); explicit volume specs compose slices into
  // concat/striped/mirror devices. A slice whose disk belongs to another
  // shard gets a CrossShardDevice proxy.
  sys.client_ = std::make_unique<LocalClient>(shard_sched(0));
  sys.client_->set_trace_recorder(sys.tracer_.get());
  for (int f = 0; f < config.num_filesystems; ++f) {
    const VolumePlan& plan = plans[static_cast<size_t>(f)];
    const int fshard = config.ShardForFs(f);
    Scheduler* fsched = shard_sched(fshard);
    sys.fs_shard_.push_back(fshard);
    const std::string vol_name = config.mount_prefix + std::to_string(f);
    std::vector<VolumeSliceRef> slices;
    for (const SlicePlan& s : plan.slices) {
      BlockDevice* backing = sys.drivers_[static_cast<size_t>(s.disk)].get();
      const int owner = disk_owners[static_cast<size_t>(s.disk)];
      if (owner != fshard) {
        auto proxy =
            std::make_unique<CrossShardDevice>(fsched, shard_sched(owner), backing);
        backing = proxy.get();
        sys.cross_devices_.push_back(std::move(proxy));
      }
      slices.push_back(VolumeSliceRef{backing, s.start_sector, s.nsectors});
    }
    const VolumeKindFamily::Value& kind = *VolumeKindRegistry::Find(plan.spec.kind);
    std::unique_ptr<Volume> top =
        kind.assemble(fsched, vol_name, slices, plan.spec, sys.drivers_[0]->sector_bytes(),
                      &sys.volume_parts_);
    sys.stats_.Register(top.get(), fsched);
    BlockDev dev(top.get(), kDefaultBlockSize);
    sys.fs_volumes_.push_back(std::move(top));
    auto layout = MakeLayout(fsched, std::move(dev), config, f, &sys.stats_);
    auto fs = std::make_unique<FileSystem>(fsched, layout.get(),
                                           sys.caches_[static_cast<size_t>(fshard)].get(),
                                           sys.movers_[static_cast<size_t>(fshard)].get());
    std::string mount = config.mount_prefix + std::to_string(f);
    sys.client_->AddMount(mount, fs.get());
    sys.mount_names_.push_back(std::move(mount));
    sys.layouts_.push_back(std::move(layout));
    sys.filesystems_.push_back(std::move(fs));
  }

  // The fault subsystem: every mirror gets a RebuildDaemon (so programmatic
  // callers can fail/return members without a schedule); injectors are built
  // only when the config carries fault events — one per shard whose volumes
  // have events, each replaying its shard's slice of the schedule on that
  // shard's loop.
  sys.rebuild_daemons_.resize(sys.fs_volumes_.size());
  for (size_t f = 0; f < sys.fs_volumes_.size(); ++f) {
    auto* mirror = dynamic_cast<MirrorVolume*>(sys.fs_volumes_[f].get());
    if (mirror == nullptr) {
      continue;
    }
    Scheduler* fsched = shard_sched(sys.fs_shard_[f]);
    RebuildDaemon::Options options;
    options.bw_kbps = config.rebuild_bw_kbps;
    options.copy_real_data = !config.simulated();
    sys.rebuild_daemons_[f] = std::make_unique<RebuildDaemon>(fsched, mirror, options);
    sys.stats_.Register(sys.rebuild_daemons_[f].get(), fsched);
  }
  if (!config.faults.empty()) {
    // Validated above (CheckFaultSpecs), so resolution cannot fail.
    PFS_ASSIGN_OR_RETURN(const FaultSchedule schedule, FaultSchedule::FromConfig(config));
    std::vector<std::vector<FaultInjector::PlannedEvent>> per_shard(
        static_cast<size_t>(nshards));
    for (const FaultEvent& event : schedule.events()) {
      auto* mirror = dynamic_cast<MirrorVolume*>(sys.fs_volumes_[event.volume].get());
      PFS_CHECK_MSG(mirror != nullptr, "fault event targets a non-mirror volume");
      const int s = sys.fs_shard_[static_cast<size_t>(event.volume)];
      per_shard[static_cast<size_t>(s)].push_back(
          {event, mirror, sys.rebuild_daemons_[event.volume].get()});
    }
    sys.injectors_.resize(static_cast<size_t>(nshards));
    for (int s = 0; s < nshards; ++s) {
      if (per_shard[static_cast<size_t>(s)].empty()) {
        continue;
      }
      auto injector = std::make_unique<FaultInjector>(
          shard_sched(s), std::move(per_shard[static_cast<size_t>(s)]));
      if (nshards > 1) {
        injector->set_stat_suffix(".shard" + std::to_string(s));
      }
      sys.stats_.Register(injector.get(), shard_sched(s));
      sys.injectors_[static_cast<size_t>(s)] = std::move(injector);
    }
  }

  // Live metrics plane: one registry sized to the shard count, every
  // component bound to it. Scheduler counters are exposed as callbacks over
  // their (relaxed) atomics — no extra writes on the hot loop.
  if (config.metrics.enabled) {
    sys.metrics_ = std::make_unique<MetricRegistry>(static_cast<size_t>(nshards),
                                                    config.metrics.prefix);
    MetricRegistry* reg = sys.metrics_.get();
    for (int s = 0; s < nshards; ++s) {
      Scheduler* sched = shard_sched(s);
      char labels[32];
      std::snprintf(labels, sizeof(labels), "shard=\"%d\"", s);
      reg->AddCallback("sched_steps_total", "Coroutine resumes", MetricKind::kCounter, labels,
                       [sched] { return static_cast<double>(sched->context_switches()); });
      reg->AddCallback("sched_posts_total", "Cross-shard posts received", MetricKind::kCounter,
                       labels,
                       [sched] { return static_cast<double>(sched->posts_received()); });
      reg->AddCallback("sched_cross_posts_total", "Cross-shard posts sent",
                       MetricKind::kCounter, labels,
                       [sched] { return static_cast<double>(sched->cross_posts_sent()); });
      reg->AddCallback("sched_mailbox_drains_total", "Mailbox drain passes",
                       MetricKind::kCounter, labels,
                       [sched] { return static_cast<double>(sched->mailbox_drains()); });
      reg->AddCallback("sched_idle_seconds_total", "Real time spent waiting for work",
                       MetricKind::kCounter, labels,
                       [sched] { return static_cast<double>(sched->idle_nanos()) * 1e-9; });
    }
    for (auto& driver : sys.drivers_) {
      driver->BindMetrics(reg);
    }
    for (size_t s = 0; s < sys.caches_.size(); ++s) {
      sys.caches_[s]->BindMetrics(reg, static_cast<uint32_t>(s));
    }
    for (auto& volume : sys.fs_volumes_) {
      volume->BindMetrics(reg);
    }
    for (auto& rebuild : sys.rebuild_daemons_) {
      if (rebuild != nullptr) {
        rebuild->BindMetrics(reg);
      }
    }
    for (size_t s = 0; s < sys.injectors_.size(); ++s) {
      if (sys.injectors_[s] != nullptr) {
        sys.injectors_[s]->BindMetrics(reg, static_cast<uint32_t>(s));
      }
    }
    sys.client_->BindMetrics(reg);
    if (sys.sampler_ != nullptr) {
      sys.sampler_->set_metrics(reg);
    }
  }
  return system;
}

System::~System() {
  // Suspended threads (daemons, or clients cut off by a bounded run) hold
  // references into the components destroyed below; release their frames
  // while everything is still alive. Shard threads are already joined by the
  // time a System dies, so walking every shard here is single-threaded.
  if (group_ != nullptr) {
    for (size_t s = 0; s < group_->size(); ++s) {
      group_->shard(s)->DestroyAllThreads();
    }
  } else if (sched_ != nullptr) {
    sched_->DestroyAllThreads();
  }
}

void System::RunToCompletion() {
  if (group_ != nullptr) {
    group_->Run();
  } else {
    sched_->Run();
  }
}

void System::RunForDuration(Duration d) {
  if (group_ != nullptr) {
    group_->RunFor(d);
  } else {
    sched_->RunFor(d);
  }
}

namespace {

Task<> SetupLayouts(std::vector<StorageLayout*> layouts, bool format, Status* out) {
  for (StorageLayout* layout : layouts) {
    // Two separate co_awaits: GCC 12 miscompiles `cond ? co_await a
    // : co_await b` (temporaries in the frame are double-destroyed).
    Status status = OkStatus();
    if (format) {
      status = co_await layout->Format();
    } else {
      status = co_await layout->Mount();
    }
    if (!status.ok()) {
      *out = status;
      co_return;
    }
  }
  *out = OkStatus();
}

}  // namespace

Status System::Setup() {
  const bool format = config_.simulated() || config_.format;
  if (group_ == nullptr) {
    Status result(ErrorCode::kAborted);
    std::vector<StorageLayout*> all;
    for (auto& layout : layouts_) {
      all.push_back(layout.get());
    }
    sched_->Spawn("system.setup", SetupLayouts(std::move(all), format, &result));
    sched_->Run();
    PFS_RETURN_IF_ERROR(result);
  } else {
    // One setup coroutine per shard, formatting that shard's layouts on that
    // shard's loop (a layout can only be driven from its own shard).
    std::vector<Status> results(group_->size(), OkStatus());
    for (size_t s = 0; s < group_->size(); ++s) {
      std::vector<StorageLayout*> shard_layouts;
      for (size_t f = 0; f < layouts_.size(); ++f) {
        if (fs_shard_[f] == static_cast<int>(s)) {
          shard_layouts.push_back(layouts_[f].get());
        }
      }
      if (shard_layouts.empty()) {
        continue;
      }
      results[s] = Status(ErrorCode::kAborted);
      group_->shard(s)->Spawn(
          "system.setup." + std::to_string(s),
          SetupLayouts(std::move(shard_layouts), format, &results[s]));
    }
    group_->Run();
    for (const Status& result : results) {
      PFS_RETURN_IF_ERROR(result);
    }
  }
  for (auto& cache : caches_) {
    cache->Start();
  }
  for (auto& layout : layouts_) {
    layout->Start();
  }
  for (auto& rebuild : rebuild_daemons_) {
    if (rebuild != nullptr) {
      rebuild->Start();
    }
  }
  for (auto& injector : injectors_) {
    if (injector != nullptr) {
      injector->Start();
    }
  }
  if (trace_sink_ != nullptr) {
    // Drain on the sampling period when one is set, else often enough that
    // a default ring never wraps under ordinary load.
    const uint32_t drain_ms = config_.trace.sample_ms > 0 ? config_.trace.sample_ms : 100;
    trace_sink_->Start(Duration::Millis(drain_ms));
  }
  if (sampler_ != nullptr) {
    sampler_->Start();
  }
  if (metrics_ != nullptr) {
    PFS_RETURN_IF_ERROR(StartMetricsHttp());
  }
  return OkStatus();
}

Status System::StartMetricsHttp() {
  metrics_http_ =
      std::make_unique<MetricsHttpServer>(static_cast<uint16_t>(config_.metrics.port));
  MetricRegistry* reg = metrics_.get();
  metrics_http_->Handle("/metrics", [reg](std::string* body, std::string* content_type) {
    *body = reg->PrometheusText();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  });
  metrics_http_->Handle("/healthz", [this](std::string* body, std::string* content_type) {
    // Liveness + per-shard progress from atomics only: always safe, even
    // after the schedulers have closed.
    std::string out = "{\"ok\":true,\"scrapes\":" + std::to_string(metrics_->scrapes()) +
                      ",\"shards\":[";
    for (int s = 0; s < shard_count(); ++s) {
      Scheduler* sched = shard_scheduler(s);
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s{\"shard\":%d,\"steps\":%llu,\"posts\":%llu}",
                    s == 0 ? "" : ",", s,
                    static_cast<unsigned long long>(sched->context_switches()),
                    static_cast<unsigned long long>(sched->posts_received()));
      out += buf;
    }
    out += "]}";
    *body = std::move(out);
    *content_type = "application/json";
    return true;
  });
  metrics_http_->Handle("/statz", [this](std::string* body, std::string* content_type) {
    std::lock_guard<std::mutex> lock(statz_mu_);
    if (statz_json_.empty()) {
      return false;  // first refresh has not landed yet -> 503
    }
    *body = statz_json_;
    *content_type = "application/json";
    return true;
  });
  PFS_RETURN_IF_ERROR(metrics_http_->Start());
  const uint32_t period_ms = config_.trace.sample_ms > 0 ? config_.trace.sample_ms : 500;
  scheduler()->SpawnTransientDaemon("obs.statz", StatzRefresher(Duration::Millis(period_ms)));
  return OkStatus();
}

Task<> System::StatzRefresher(Duration period) {
  Scheduler* home = scheduler();
  for (;;) {
    std::string json;
    if (group_ == nullptr) {
      json = stats_.ReportJson();
    } else {
      json = "{";
      for (size_t s = 0; s < group_->size(); ++s) {
        Scheduler* shard = group_->shard(s);
        StatsRegistry* stats = &stats_;
        Scheduler* h = home;
        // Named thunk, not a temporary in the co_await expression (GCC 12
        // double-destroys non-trivial coroutine-argument temporaries).
        auto body = [stats, shard, h]() -> Task<std::string> {
          co_return stats->ReportJsonOwned(shard, /*include_unowned=*/shard == h);
        };
        std::string frag = co_await CallOn<std::string>(home, shard, body);
        if (!frag.empty()) {
          if (json.size() > 1) {
            json += ",";
          }
          json += frag;
        }
      }
      json += "}";
    }
    {
      std::lock_guard<std::mutex> lock(statz_mu_);
      statz_json_ = std::move(json);
    }
    co_await home->Sleep(period);
  }
}

Status System::ExportObservability() {
  if (trace_sink_ != nullptr && !config_.trace.file.empty()) {
    PFS_RETURN_IF_ERROR(trace_sink_->WriteChromeTrace(config_.trace.file));
    if (sampler_ != nullptr && !sampler_->streaming()) {
      PFS_RETURN_IF_ERROR(sampler_->WriteFile(TraceSamplesPath(config_.trace.file)));
    }
  }
  return OkStatus();
}

}  // namespace pfs
