#!/usr/bin/env python3
"""Validator for Prometheus text-format scrapes from the /metrics endpoint.

Checks that a scrape is structurally sound, not just greppable:

  * text-format syntax: every non-comment line is `name{labels} value` with a
    legal metric name, balanced label braces, quoted label values, and a
    numeric value;
  * every sample belongs to a family announced by `# HELP` + `# TYPE` lines
    (in that order, once per family), and the naming lint holds: every family
    name starts with the expected prefix ("pfs_" by default);
  * histogram hygiene: per series, `_bucket` cumulative counts are
    non-decreasing with increasing `le`, the mandatory `le="+Inf"` bucket is
    present, and `_sum`/`_count` exist with `_count` equal to the +Inf bucket;
  * with a second scrape file, counter monotonicity: no counter series moves
    backwards between the first and second scrape.

Usage:
  python3 tools/metrics_check.py scrape1.txt [scrape2.txt] [--prefix pfs]
  python3 tools/metrics_check.py --self-test

Exit status: 0 = valid, 1 = any violation (all violations are listed).
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
LINE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+\S+)?$")

HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def base_family(name, types):
    """The family a sample line belongs to: histogram samples use the family
    name plus a _bucket/_sum/_count suffix."""
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix) and types.get(name[: -len(suffix)]) == "histogram":
            return name[: -len(suffix)]
    return name


def parse_scrape(text, label):
    """Returns (families, samples, errors): families maps name -> type,
    samples maps (metric name, label string) -> value in file order."""
    errors = []
    helps = set()
    types = {}
    samples = {}
    order = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        where = "%s:%d" % (label, lineno)
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            name = parts[2]
            if not NAME_RE.match(name):
                errors.append("%s: bad metric name %r in %s" % (where, name, parts[1]))
                continue
            if parts[1] == "HELP":
                if name in helps:
                    errors.append("%s: duplicate # HELP for %s" % (where, name))
                helps.add(name)
            else:
                if name in types:
                    errors.append("%s: duplicate # TYPE for %s" % (where, name))
                if name not in helps:
                    errors.append("%s: # TYPE %s precedes its # HELP" % (where, name))
                if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram",
                                                      "summary", "untyped"):
                    errors.append("%s: # TYPE %s: unknown type" % (where, name))
                    continue
                types[name] = parts[3]
            continue
        m = LINE_RE.match(line)
        if m is None:
            errors.append("%s: unparseable sample line %r" % (where, raw))
            continue
        name, labels = m.group(1), m.group(3)
        if labels:
            stripped = LABEL_RE.sub("", labels).replace(",", "").strip()
            if stripped:
                errors.append("%s: malformed labels %r" % (where, labels))
                continue
        value = parse_value(m.group(4))
        if value is None:
            errors.append("%s: non-numeric value %r" % (where, m.group(4)))
            continue
        family = base_family(name, types)
        if family not in types:
            errors.append("%s: sample %s has no preceding # TYPE" % (where, name))
        key = (name, labels or "")
        if key in samples:
            errors.append("%s: duplicate series %s{%s}" % (where, name, labels or ""))
        samples[key] = value
        order.append(key)
    return types, samples, order, errors


def check_prefix(types, prefix, label):
    want = prefix + "_"
    return ["%s: family %s does not start with %r" % (label, name, want)
            for name in sorted(types) if not name.startswith(want)]


def check_histograms(types, samples, order, label):
    """Bucket counts must be cumulative (non-decreasing in le), +Inf must be
    present, and _count must equal the +Inf bucket."""
    errors = []
    series = {}  # (family, labels-without-le) -> [(le, value)]
    for (name, labels) in order:
        if not name.endswith("_bucket"):
            continue
        family = name[: -len("_bucket")]
        if types.get(family) != "histogram":
            continue
        le = None
        rest = []
        for lm in LABEL_RE.finditer(labels):
            if lm.group(1) == "le":
                le = parse_value(lm.group(2))
            else:
                rest.append(lm.group(0))
        if le is None:
            errors.append("%s: %s{%s}: bucket without a numeric le label"
                          % (label, name, labels))
            continue
        series.setdefault((family, ",".join(rest)), []).append((le, samples[(name, labels)]))
    for (family, rest), buckets in sorted(series.items()):
        where = "%s: %s{%s}" % (label, family, rest)
        les = [le for le, _ in buckets]
        if sorted(les) != les:
            errors.append("%s: bucket le values out of order" % where)
        prev = -1.0
        for le, v in sorted(buckets):
            if v < prev:
                errors.append("%s: cumulative bucket count decreases at le=%g (%g < %g)"
                              % (where, le, v, prev))
            prev = v
        if not any(math.isinf(le) for le, _ in buckets):
            errors.append('%s: missing le="+Inf" bucket' % where)
            continue
        inf_count = max(v for le, v in buckets if math.isinf(le))
        for suffix in ("_sum", "_count"):
            if (family + suffix, rest) not in samples:
                errors.append("%s: missing %s%s" % (where, family, suffix))
        count = samples.get((family + "_count", rest))
        if count is not None and count != inf_count:
            errors.append("%s: _count %g != +Inf bucket %g" % (where, count, inf_count))
    return errors


def check_monotonic(first, second):
    """Counter series must not move backwards between two scrapes of the same
    live registry. Series present in only one scrape are fine (a component
    may register lazily), as long as shared ones never decrease."""
    types1, samples1, _, _ = first
    types2, samples2, order2, _ = second
    errors = []
    for key in order2:
        name, labels = key
        family = base_family(name, types2)
        kind = types2.get(family)
        counter_like = kind == "counter" or (kind == "histogram" and
                                             not name.endswith("_sum"))
        if not counter_like or key not in samples1:
            continue
        if samples2[key] < samples1[key]:
            errors.append("counter %s{%s} went backwards across scrapes: %g -> %g"
                          % (name, labels, samples1[key], samples2[key]))
    return errors


GOOD_SCRAPE_1 = """\
# HELP pfs_cache_hits_total Buffer cache hits.
# TYPE pfs_cache_hits_total counter
pfs_cache_hits_total{shard="0"} 10
pfs_cache_hits_total{shard="1"} 4
# HELP pfs_disk_queue_depth Requests waiting in the driver queue.
# TYPE pfs_disk_queue_depth gauge
pfs_disk_queue_depth{disk="d0"} 3
# HELP pfs_client_op_seconds Client op latency.
# TYPE pfs_client_op_seconds histogram
pfs_client_op_seconds_bucket{op="read",le="0.001"} 5
pfs_client_op_seconds_bucket{op="read",le="0.004"} 9
pfs_client_op_seconds_bucket{op="read",le="+Inf"} 9
pfs_client_op_seconds_sum{op="read"} 0.0123
pfs_client_op_seconds_count{op="read"} 9
"""

GOOD_SCRAPE_2 = GOOD_SCRAPE_1.replace(
    'pfs_cache_hits_total{shard="0"} 10', 'pfs_cache_hits_total{shard="0"} 25')

BAD_SCRAPES = [
    # Sample with no # TYPE announcement.
    ("orphan sample", "pfs_lonely_total 3\n", "no preceding # TYPE"),
    # Family outside the prefix namespace.
    ("bad prefix",
     "# HELP other_thing_total x\n# TYPE other_thing_total counter\nother_thing_total 1\n",
     "does not start with"),
    # Non-numeric value.
    ("bad value",
     "# HELP pfs_x_total x\n# TYPE pfs_x_total counter\npfs_x_total nope\n",
     "non-numeric value"),
    # Cumulative bucket counts must not decrease.
    ("non-cumulative buckets",
     "# HELP pfs_h_seconds x\n# TYPE pfs_h_seconds histogram\n"
     'pfs_h_seconds_bucket{le="1"} 5\npfs_h_seconds_bucket{le="2"} 3\n'
     'pfs_h_seconds_bucket{le="+Inf"} 5\npfs_h_seconds_sum 1\npfs_h_seconds_count 5\n',
     "cumulative bucket count decreases"),
    # +Inf is mandatory.
    ("missing +Inf",
     "# HELP pfs_h_seconds x\n# TYPE pfs_h_seconds histogram\n"
     'pfs_h_seconds_bucket{le="1"} 5\npfs_h_seconds_sum 1\npfs_h_seconds_count 5\n',
     'missing le="\\+Inf"'),
    # _count must equal the +Inf bucket.
    ("count mismatch",
     "# HELP pfs_h_seconds x\n# TYPE pfs_h_seconds histogram\n"
     'pfs_h_seconds_bucket{le="+Inf"} 5\npfs_h_seconds_sum 1\npfs_h_seconds_count 4\n',
     "_count 4 != \\+Inf bucket 5"),
    # Same series twice in one scrape.
    ("duplicate series",
     "# HELP pfs_x_total x\n# TYPE pfs_x_total counter\npfs_x_total 1\npfs_x_total 2\n",
     "duplicate series"),
    # Garbage line.
    ("garbage line",
     "# HELP pfs_x_total x\n# TYPE pfs_x_total counter\n{pfs_x_total} = 1\n",
     "unparseable sample line"),
]


def check_file(text, label, prefix):
    parsed = parse_scrape(text, label)
    types, samples, order, errors = parsed
    errors = list(errors)
    errors += check_prefix(types, prefix, label)
    errors += check_histograms(types, samples, order, label)
    return parsed, errors


def self_test():
    failures = []
    _, errors = check_file(GOOD_SCRAPE_1, "good1", "pfs")
    if errors:
        failures.append("good scrape flagged: %s" % errors)
    first, errors1 = check_file(GOOD_SCRAPE_1, "s1", "pfs")
    second, errors2 = check_file(GOOD_SCRAPE_2, "s2", "pfs")
    if errors1 or errors2 or check_monotonic(first, second):
        failures.append("monotonic pair flagged: %s" % (errors1 + errors2))
    if not check_monotonic(second, first):  # reversed: counters go backwards
        failures.append("regressing counters not flagged")
    for name, text, want in BAD_SCRAPES:
        _, errors = check_file(text, name, "pfs")
        if not any(re.search(want, e) for e in errors):
            failures.append("%s: expected /%s/, got %s" % (name, want, errors))
    for f in failures:
        print("FAIL:", f, file=sys.stderr)
    if not failures:
        print("self-test: %d bad fixtures + 2 good fixtures: ok" % len(BAD_SCRAPES))
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scrapes", nargs="*", metavar="SCRAPE",
                        help="one scrape to validate, or two to also check "
                             "counter monotonicity between them")
    parser.add_argument("--prefix", default="pfs",
                        help="required metric-name prefix (default: pfs)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not 1 <= len(args.scrapes) <= 2:
        parser.error("expected one or two scrape files (or --self-test)")

    errors = []
    parsed = []
    for path in args.scrapes:
        try:
            with open(path) as f:
                text = f.read()
        except OSError as e:
            print("FAIL: %s: %s" % (path, e), file=sys.stderr)
            return 1
        result, file_errors = check_file(text, path, args.prefix)
        parsed.append(result)
        errors += file_errors
        types, samples, _, _ = result
        print("%s: %d famil%s, %d series" % (path, len(types),
                                             "y" if len(types) == 1 else "ies",
                                             len(samples)))
    if len(parsed) == 2 and not errors:
        errors += check_monotonic(parsed[0], parsed[1])

    if errors:
        for err in errors[:50]:
            print("FAIL:", err, file=sys.stderr)
        if len(errors) > 50:
            print("... and %d more" % (len(errors) - 50), file=sys.stderr)
        return 1
    print("valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
