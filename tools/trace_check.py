#!/usr/bin/env python3
"""Validator for Chrome trace_event files exported by the obs/ subsystem.

Checks that an exported trace is structurally sound, not just parseable:

  * the document is one JSON object with a non-empty "traceEvents" array;
  * every event is a complete ("ph":"X") span with numeric ts/dur >= 0, an
    integer tid, a known stage name, and a positive args.trace_id;
  * trace-id hygiene: every span's trace id belongs to some client root
    (a "client.op" span) — background daemons must not leak spans;
  * per-tid nesting: within one scheduler thread, spans form a proper stack
    (a span that starts inside another ends inside it too) — clock
    monotonicity and correct begin/end pairing fall out of this.

Usage:
  python3 tools/trace_check.py trace.json [--require STAGE]...

Each --require STAGE (repeatable) additionally demands at least one span of
that stage, e.g. --require client.op --require volume.fragment makes sure a
striped scenario actually exercised the fan-out path.

Exit status: 0 = valid, 1 = any violation (all violations are listed).
"""

import argparse
import json
import sys

KNOWN_STAGES = frozenset([
    "client.op",
    "cache.fill",
    "volume.request",
    "volume.fragment",
    "driver.queue",
    "driver.io",
    "driver.batch",
])

# ts/dur are microseconds with nanosecond resolution (three decimals); one
# picosecond of slack absorbs float formatting, nothing more.
EPS = 1e-6


def check_events(events):
    errors = []
    for i, ev in enumerate(events):
        where = "event %d" % i
        if ev.get("ph") != "X":
            errors.append("%s: ph=%r, want complete spans ('X')" % (where, ev.get("ph")))
            continue
        name = ev.get("name")
        if name not in KNOWN_STAGES:
            errors.append("%s: unknown stage name %r" % (where, name))
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                errors.append("%s (%s): %s=%r, want a number >= 0" % (where, name, key, v))
        if not isinstance(ev.get("tid"), int):
            errors.append("%s (%s): tid=%r, want an integer" % (where, name, ev.get("tid")))
        trace_id = ev.get("args", {}).get("trace_id")
        if not isinstance(trace_id, int) or trace_id <= 0:
            errors.append("%s (%s): args.trace_id=%r, want a positive integer"
                          % (where, name, trace_id))
    return errors


def check_trace_ids(events):
    roots = set(ev["args"]["trace_id"] for ev in events if ev["name"] == "client.op")
    if not roots:
        return ["no client.op spans: every trace needs client roots"]
    errors = []
    for i, ev in enumerate(events):
        trace_id = ev["args"]["trace_id"]
        if trace_id not in roots:
            errors.append("event %d (%s): trace id %d has no client.op root "
                          "(leaked from a background daemon?)" % (i, ev["name"], trace_id))
    return errors


def check_nesting(events):
    """Within each tid, spans must form a stack: sorted by (start, -duration)
    so enclosing spans come first, every span must end within the open span
    it started inside."""
    errors = []
    by_tid = {}
    for i, ev in enumerate(events):
        by_tid.setdefault(ev["tid"], []).append((ev["ts"], -ev["dur"], i, ev))
    for tid, rows in sorted(by_tid.items()):
        rows.sort(key=lambda r: (r[0], r[1]))
        stack = []  # (end, index, name) of open spans
        for ts, neg_dur, i, ev in rows:
            end = ts - neg_dur
            while stack and stack[-1][0] <= ts + EPS:
                stack.pop()
            if stack and end > stack[-1][0] + EPS:
                errors.append(
                    "tid %d: event %d (%s, %.3f..%.3f) overlaps event %d (%s, ends %.3f) "
                    "without nesting" % (tid, i, ev["name"], ts, end,
                                         stack[-1][1], stack[-1][2], stack[-1][0]))
                continue  # don't push the malformed span
            stack.append((end, i, ev["name"]))
    return errors


def check_required(events, required):
    counts = {}
    for ev in events:
        counts[ev["name"]] = counts.get(ev["name"], 0) + 1
    errors = []
    for stage in required:
        if stage not in KNOWN_STAGES:
            errors.append("--require %s: not a known stage (%s)"
                          % (stage, ", ".join(sorted(KNOWN_STAGES))))
        elif counts.get(stage, 0) == 0:
            errors.append("required stage %s: no spans recorded" % stage)
    return errors, counts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--require", action="append", default=[], metavar="STAGE",
                        help="demand at least one span of STAGE (repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("FAIL: %s: %s" % (args.trace, e), file=sys.stderr)
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("FAIL: %s: traceEvents missing or empty" % args.trace, file=sys.stderr)
        return 1

    errors = check_events(events)
    if not errors:
        # Id and nesting checks index into fields the structural pass vouched
        # for; skip them when the events themselves are malformed.
        errors += check_trace_ids(events)
        errors += check_nesting(events)
    required_errors, counts = check_required(events, args.require)
    errors += required_errors

    for stage in sorted(counts):
        print("%-16s %6d span(s)" % (stage, counts[stage]))
    if errors:
        for err in errors[:50]:
            print("FAIL:", err, file=sys.stderr)
        if len(errors) > 50:
            print("... and %d more" % (len(errors) - 50), file=sys.stderr)
        return 1
    print("%s: %d event(s) across %d thread(s): valid"
          % (args.trace, len(events), len(set(ev["tid"] for ev in events))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
