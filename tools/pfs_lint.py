#!/usr/bin/env python3
"""pfs_lint: concurrency lint for the PFS/Patsy source tree.

Three rules, all derived from bugs this codebase has actually hit (or is
structurally exposed to):

  coro-arg-temporary   A non-trivial temporary (most often a lambda thunk) is
                       passed as an argument to a coroutine call inside a
                       co_await full-expression. GCC 12 double-destroys such
                       temporaries (the PR 8 miscompile); the repo idiom is to
                       hoist the thunk into a named local first.

  ref-capture-escape   A lambda with by-reference captures escapes the current
                       stack frame through Spawn/Post/CallOn. The lambda runs
                       on another shard's loop (or later on this one), after
                       the referents may be gone.

  blocking-in-coro     A blocking OS-level synchronisation call
                       (std::mutex::lock, condition_variable::wait,
                       this_thread::sleep_for, ...) inside a coroutine body.
                       Blocking the OS thread stalls every coroutine on the
                       shard; use the cooperative sched/sync.h primitives.

Suppression: append `// pfs-lint: allow(<rule>)` to the flagged line, or put
it on the line directly above. Several rules may be listed, comma-separated.
Use a suppression only with a comment explaining why the pattern is safe.

Engines:
  text    Pure-Python lexical engine. Always available; no dependencies.
  clang   AST engine on top of libclang (python3-clang). Preferred when the
          bindings are installed AND it reproduces the bundled fixture
          expectations (`--engine auto` verifies this before trusting it,
          falling back to `text` otherwise).

Usage:
  pfs_lint.py [--engine auto|clang|text] [--root DIR] [paths...]
  pfs_lint.py --self-test

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import bisect
import os
import re
import sys

RULE_CORO_TEMP = "coro-arg-temporary"
RULE_REF_ESCAPE = "ref-capture-escape"
RULE_BLOCKING = "blocking-in-coro"
ALL_RULES = (RULE_CORO_TEMP, RULE_REF_ESCAPE, RULE_BLOCKING)

# Calls that move a callable to another execution context.
ESCAPE_CALLS = (
    "Post",
    "Spawn",
    "SpawnDaemon",
    "SpawnTransient",
    "SpawnTransientDaemon",
    "CallOn",
)

# Blocking members of std synchronisation types.
BLOCKING_MEMBERS = ("lock", "unlock", "try_lock_until", "wait", "wait_for", "wait_until")
BLOCKING_FREE = ("sleep_for", "sleep_until")

MESSAGES = {
    RULE_CORO_TEMP: (
        "non-trivial temporary passed to coroutine '{callee}' inside a co_await "
        "expression; GCC 12 double-destroys it — hoist it into a named local"
    ),
    RULE_REF_ESCAPE: (
        "lambda with by-reference capture(s) {captures} escapes through "
        "'{callee}'; the referents may be gone when it runs"
    ),
    RULE_BLOCKING: (
        "blocking call '{callee}' inside coroutine '{coro}' stalls the whole "
        "shard; use the cooperative primitives in sched/sync.h"
    ),
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


# ---------------------------------------------------------------------------
# Shared lexical helpers
# ---------------------------------------------------------------------------


def scrub_source(text):
    """Blanks comments and string/char literal contents (newlines survive, so
    offsets and line numbers are unchanged)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            for k in range(i + 1, j - 1):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out)


SUPPRESS_RE = re.compile(r"//\s*pfs-lint:\s*allow\(([^)]*)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([\w,\s-]+)")


def parse_suppressions(text):
    """Maps line number -> set of rule names allowed on that line (and,
    by the reporting convention, the line after it)."""
    allowed = {}
    for lineno, line in enumerate(text.split("\n"), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allowed[lineno] = rules
    return allowed


def line_starts(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def offset_to_line(starts, offset):
    return bisect.bisect_right(starts, offset)


def match_paren(text, open_pos):
    """Returns the offset just past the parenthesis group opening at
    open_pos (text[open_pos] must be '(' / '[' / '{' / '<')."""
    pairs = {"(": ")", "[": "]", "{": "}", "<": ">"}
    close = pairs[text[open_pos]]
    opener = text[open_pos]
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == opener:
            depth += 1
        elif c == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def split_top_args(argtext):
    """Splits a call's argument text on top-level commas. Returns a list of
    (offset_in_argtext, arg_string)."""
    args = []
    depth = 0
    start = 0
    for i, c in enumerate(argtext):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            # Heuristic: treat as template bracket only when nested inside a
            # call already; '<' as less-than inside an arg list is rare in
            # this codebase and never contains a top-level comma.
            pass
        elif c == "," and depth == 0:
            args.append((start, argtext[start:i]))
            start = i + 1
    if argtext[start:].strip():
        args.append((start, argtext[start:]))
    return args


def find_lambdas(argtext):
    """Yields (offset, capture_list_text) for every lambda literal inside
    argtext."""
    i = 0
    n = len(argtext)
    while i < n:
        if argtext[i] == "[":
            end = match_paren(argtext, i)
            captures = argtext[i + 1 : end - 1]
            j = end
            while j < n and argtext[j].isspace():
                j += 1
            # A lambda introducer is followed by a parameter list, a body, a
            # template parameter list, or 'mutable'/'->' in rare spellings.
            if j < n and (argtext[j] in "({<" or argtext.startswith("mutable", j)):
                yield (i, captures)
                i = end
                continue
        i += 1


def by_ref_captures(capture_text):
    """Returns the list of by-reference items in a lambda capture list."""
    refs = []
    for _, item in split_top_args(capture_text):
        item = item.strip()
        if item == "&" or (item.startswith("&") and not item.startswith("&&")):
            refs.append(item)
    return refs


# ---------------------------------------------------------------------------
# Text engine
# ---------------------------------------------------------------------------

CORO_DECL_RE = re.compile(r"\bTask<[^;{}()]*>\s+(?:[\w~]+\s*::\s*)*([A-Za-z_]\w*)\s*\(")
# Temporaries the text engine is confident about: std:: class objects built in
# place. Exemptions: std::move/forward (forward an existing named object) and
# the trivially-destructible views/utilities (the GCC 12 bug only
# double-destroys temporaries with non-trivial destructors). Braced aggregate
# temporaries of project types (BlockId{...}, LogItem{...}) are deliberately
# NOT flagged: they are trivially destructible structs throughout this tree,
# and only the clang engine can actually prove triviality.
STD_TEMP_RE = re.compile(
    r"^std::(?!move\b|forward\b|span\b|string_view\b|byte\b|chrono\b|min\b|max\b|clamp\b"
    r"|get\b|as_bytes\b|as_writable_bytes\b|data\b|size\b|begin\b|end\b)[\w:]+\s*[<({]"
)


class TextEngine:
    name = "text"

    def __init__(self, files):
        # path -> (raw, scrubbed, line_starts, suppressions)
        self.files = {}
        for path in files:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                raw = f.read()
            self.files[path] = (raw, scrub_source(raw), line_starts(raw), parse_suppressions(raw))
        self.coroutines = self._index_coroutines()
        if self.coroutines:
            self.coro_call_re = re.compile(
                r"\b(%s)\s*(?:<[^;(){}]*>)?\s*\(" % "|".join(sorted(self.coroutines))
            )
        else:
            self.coro_call_re = None
        self.escape_call_re = re.compile(
            r"\b(%s)\s*(?:<[^;(){}]*>)?\s*\(" % "|".join(ESCAPE_CALLS)
        )

    def _index_coroutines(self):
        names = set()
        for _, scrubbed, _, _ in self.files.values():
            for m in CORO_DECL_RE.finditer(scrubbed):
                names.add(m.group(1))
        return names

    def analyze(self):
        findings = []
        for path, (_, scrubbed, starts, _) in sorted(self.files.items()):
            findings += self._check_coro_temporaries(path, scrubbed, starts)
            findings += self._check_ref_escapes(path, scrubbed, starts)
            findings += self._check_blocking(path, scrubbed, starts)
        return findings

    # -- coro-arg-temporary -------------------------------------------------

    def _check_coro_temporaries(self, path, text, starts):
        if self.coro_call_re is None:
            return []
        findings = []
        for m in re.finditer(r"\bco_await\b", text):
            stmt_end = self._statement_end(text, m.end())
            span = text[m.end() : stmt_end]
            for call in self.coro_call_re.finditer(span):
                callee = call.group(1)
                open_pos = span.index("(", call.end() - 1)
                close = match_paren(span, open_pos)
                argtext = span[open_pos + 1 : close - 1]
                for arg_off, arg in split_top_args(argtext):
                    stripped = arg.strip()
                    lead = arg_off + (len(arg) - len(arg.lstrip()))
                    is_temp = stripped.startswith("[") or STD_TEMP_RE.match(stripped)
                    if not is_temp:
                        continue
                    offset = m.end() + open_pos + 1 + lead
                    findings.append(
                        Finding(
                            path,
                            offset_to_line(starts, offset),
                            RULE_CORO_TEMP,
                            MESSAGES[RULE_CORO_TEMP].format(callee=callee),
                        )
                    )
        return findings

    @staticmethod
    def _statement_end(text, pos):
        depth = 0
        n = len(text)
        i = pos
        while i < n:
            c = text[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                if depth == 0:
                    return i
                depth -= 1
            elif c == ";" and depth == 0:
                return i
            i += 1
        return n

    # -- ref-capture-escape -------------------------------------------------

    def _check_ref_escapes(self, path, text, starts):
        findings = []
        for m in self.escape_call_re.finditer(text):
            callee = m.group(1)
            open_pos = text.index("(", m.end() - 1)
            close = match_paren(text, open_pos)
            argtext = text[open_pos + 1 : close - 1]
            for lam_off, captures in find_lambdas(argtext):
                refs = by_ref_captures(captures)
                if not refs:
                    continue
                offset = open_pos + 1 + lam_off
                findings.append(
                    Finding(
                        path,
                        offset_to_line(starts, offset),
                        RULE_REF_ESCAPE,
                        MESSAGES[RULE_REF_ESCAPE].format(
                            captures=",".join(refs), callee=callee
                        ),
                    )
                )
        return findings

    # -- blocking-in-coro ---------------------------------------------------

    BLOCKING_RE = re.compile(
        r"(?:\.|->)\s*(%s)\s*\(|\b(?:std::this_thread::)?(%s)\s*\("
        % ("|".join(BLOCKING_MEMBERS), "|".join(BLOCKING_FREE))
    )
    CORO_DEF_RE = re.compile(r"\bTask<[^;{}()]*>\s+((?:[\w~]+\s*::\s*)*[A-Za-z_]\w*)\s*\(")

    def _check_blocking(self, path, text, starts):
        findings = []
        for m in self.CORO_DEF_RE.finditer(text):
            coro = m.group(1).replace(" ", "")
            open_pos = text.index("(", m.end() - 1)
            params_end = match_paren(text, open_pos)
            # Skip qualifiers between the parameter list and the body; a ';'
            # first means this was only a declaration.
            i = params_end
            n = len(text)
            while i < n and text[i] not in "{;":
                i += 1
            if i >= n or text[i] == ";":
                continue
            body_end = match_paren(text, i)
            body = text[i:body_end]
            for b in self.BLOCKING_RE.finditer(body):
                callee = b.group(1) or b.group(2)
                offset = i + b.start()
                findings.append(
                    Finding(
                        path,
                        offset_to_line(starts, offset),
                        RULE_BLOCKING,
                        MESSAGES[RULE_BLOCKING].format(callee=callee, coro=coro),
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# Clang engine
# ---------------------------------------------------------------------------


class ClangEngine:
    name = "clang"

    def __init__(self, files, include_dirs):
        import clang.cindex as cindex  # noqa: import checked by available()

        self.cindex = cindex
        self.files = sorted(files)
        self.fileset = {os.path.realpath(p) for p in files}
        self.args = ["-x", "c++", "-std=c++20"]
        for d in include_dirs:
            self.args += ["-I", d]
        self.suppress_cache = {}

    @staticmethod
    def available():
        """Returns None when usable, else a reason string."""
        try:
            import clang.cindex as cindex
        except ImportError:
            return "python3-clang bindings not installed"
        try:
            cindex.Index.create()
        except Exception as e:  # libclang.so missing or ABI mismatch
            return "libclang unavailable: %s" % e
        return None

    def analyze(self):
        index = self.cindex.Index.create()
        findings = {}
        # Parse every file independently; headers are still covered when a
        # .cc includes them (findings dedup on (path, line, rule)).
        for path in self.files:
            try:
                tu = index.parse(path, args=self.args)
            except self.cindex.TranslationUnitLoadError:
                continue
            for f in self._walk_tu(tu):
                findings[f.key()] = f
        return list(findings.values())

    def _in_scope(self, location):
        if location.file is None:
            return None
        real = os.path.realpath(location.file.name)
        return real if real in self.fileset else None

    def _walk_tu(self, tu):
        K = self.cindex.CursorKind
        fn_kinds = {K.FUNCTION_DECL, K.CXX_METHOD, K.FUNCTION_TEMPLATE, K.CONSTRUCTOR}
        out = []

        def visit(cursor):
            if cursor.kind in fn_kinds and self._returns_task(cursor):
                body = self._body_of(cursor)
                if body is not None:
                    out.extend(self._check_coro_body(cursor, body))
            for child in cursor.get_children():
                visit(child)

        visit(tu.cursor)
        out.extend(self._check_escapes(tu.cursor))
        return [f for f in out if f is not None]

    def _returns_task(self, cursor):
        try:
            spelling = cursor.result_type.spelling
        except Exception:
            return False
        return "Task<" in spelling

    def _call_returns_task(self, cursor):
        try:
            return "Task<" in cursor.type.spelling
        except Exception:
            return False

    def _body_of(self, cursor):
        K = self.cindex.CursorKind
        for child in cursor.get_children():
            if child.kind == K.COMPOUND_STMT:
                return child
        return None

    def _check_coro_body(self, fn, body):
        K = self.cindex.CursorKind
        findings = []
        coro_name = fn.spelling

        def visit(cursor):
            if cursor.kind in (K.CALL_EXPR, K.CXX_MEMBER_CALL_EXPR):
                name = cursor.spelling
                if name in BLOCKING_MEMBERS or name in BLOCKING_FREE:
                    ref = cursor.referenced
                    qualified = self._qualified(ref) if ref is not None else ""
                    if qualified.startswith("std::"):
                        findings.append(
                            self._finding(
                                cursor.location,
                                RULE_BLOCKING,
                                MESSAGES[RULE_BLOCKING].format(callee=name, coro=coro_name),
                            )
                        )
                if self._call_returns_task(cursor):
                    findings.extend(self._check_call_args(cursor))
            for child in cursor.get_children():
                visit(child)

        visit(body)
        return findings

    def _check_call_args(self, call):
        K = self.cindex.CursorKind
        TK = self.cindex.TypeKind
        findings = []
        for arg in call.get_arguments():
            node = self._peel(arg)
            if node is None:
                continue
            if node.kind == K.LAMBDA_EXPR:
                findings.append(
                    self._finding(
                        node.location,
                        RULE_CORO_TEMP,
                        MESSAGES[RULE_CORO_TEMP].format(callee=call.spelling),
                    )
                )
                continue
            if node.kind in (K.CALL_EXPR, K.CXX_TEMPORARY_OBJECT_EXPR, K.INIT_LIST_EXPR):
                try:
                    ctype = node.type.get_canonical()
                except Exception:
                    continue
                if ctype.kind in (TK.LVALUEREFERENCE, TK.RVALUEREFERENCE, TK.POINTER):
                    continue
                if ctype.kind != TK.RECORD or self._trivially_destructible(ctype):
                    continue
                findings.append(
                    self._finding(
                        node.location,
                        RULE_CORO_TEMP,
                        MESSAGES[RULE_CORO_TEMP].format(callee=call.spelling),
                    )
                )
        return findings

    def _trivially_destructible(self, ctype, depth=0):
        """True when destroying a temporary of this record type is a no-op —
        the GCC 12 double-destroy is only observable otherwise. Conservative:
        any declared destructor counts as non-trivial."""
        if depth > 8:
            return False
        K = self.cindex.CursorKind
        TK = self.cindex.TypeKind
        decl = ctype.get_declaration()
        if decl is None or decl.kind == K.NO_DECL_FOUND:
            return True
        for child in decl.get_children():
            if child.kind == K.DESTRUCTOR:
                return False
            if child.kind in (K.FIELD_DECL, K.CXX_BASE_SPECIFIER):
                ft = child.type.get_canonical()
                if ft.kind == TK.RECORD and not self._trivially_destructible(ft, depth + 1):
                    return False
        return True

    def _peel(self, node):
        """Strips implicit wrapper nodes so the materialized expression's own
        kind is visible."""
        K = self.cindex.CursorKind
        while node is not None and node.kind in (K.UNEXPOSED_EXPR, K.CXX_FUNCTIONAL_CAST_EXPR):
            children = list(node.get_children())
            if len(children) != 1:
                return node
            node = children[0]
        return node

    def _check_escapes(self, root):
        K = self.cindex.CursorKind
        findings = []

        def visit(cursor):
            if cursor.kind in (K.CALL_EXPR, K.CXX_MEMBER_CALL_EXPR) and cursor.spelling in ESCAPE_CALLS:
                for arg in cursor.get_arguments():
                    for lam in self._find_lambdas(arg):
                        refs = self._lambda_ref_captures(lam)
                        if refs:
                            findings.append(
                                self._finding(
                                    lam.location,
                                    RULE_REF_ESCAPE,
                                    MESSAGES[RULE_REF_ESCAPE].format(
                                        captures=",".join(refs), callee=cursor.spelling
                                    ),
                                )
                            )
            for child in cursor.get_children():
                visit(child)

        visit(root)
        return findings

    def _find_lambdas(self, cursor):
        K = self.cindex.CursorKind
        out = []

        def visit(node):
            if node.kind == K.LAMBDA_EXPR:
                out.append(node)
                return  # nested lambdas belong to the inner context
            for child in node.get_children():
                visit(child)

        visit(cursor)
        return out

    def _lambda_ref_captures(self, lam):
        # The python bindings do not expose capture kinds; read the capture
        # list straight from the tokens.
        tokens = [t.spelling for t in lam.get_tokens()]
        if not tokens or tokens[0] != "[":
            return []
        depth = 0
        captured = []
        for i, tok in enumerate(tokens):
            if tok == "[":
                depth += 1
            elif tok == "]":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1 and tok == "&":
                nxt = tokens[i + 1] if i + 1 < len(tokens) else "]"
                if nxt in (",", "]"):
                    captured.append("&")
                elif re.match(r"^[A-Za-z_]\w*$", nxt):
                    captured.append("&" + nxt)
        return captured

    def _qualified(self, cursor):
        parts = []
        node = cursor
        while node is not None and node.kind != self.cindex.CursorKind.TRANSLATION_UNIT:
            if node.spelling:
                parts.append(node.spelling)
            node = node.semantic_parent
        return "::".join(reversed(parts))

    def _finding(self, location, rule, message):
        path = self._in_scope(location)
        if path is None:
            return None
        return Finding(path, location.line, rule, message)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(full):
            for dirpath, _, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(full):
            files.append(full)
        else:
            raise FileNotFoundError(full)
    return sorted(set(os.path.realpath(f) for f in files))


def apply_suppressions(findings, engine_files):
    kept = []
    suppress_maps = {}
    for f in findings:
        if f is None:
            continue
        if f.path not in suppress_maps:
            try:
                with open(f.path, "r", encoding="utf-8", errors="replace") as fh:
                    suppress_maps[f.path] = parse_suppressions(fh.read())
            except OSError:
                suppress_maps[f.path] = {}
        allowed = suppress_maps[f.path]
        rules_here = allowed.get(f.line, set()) | allowed.get(f.line - 1, set())
        if f.rule in rules_here or "all" in rules_here:
            continue
        kept.append(f)
    return kept


def run_engine(engine_name, files, include_dirs, fixture_dir):
    """Resolves the engine to use and returns (engine_label, findings)."""
    if engine_name in ("clang", "auto"):
        reason = ClangEngine.available()
        if reason is None:
            if engine_name == "clang" or clang_passes_fixtures(fixture_dir, include_dirs):
                eng = ClangEngine(files, include_dirs)
                return "clang", eng.analyze()
            print("pfs_lint: clang engine failed fixture validation; using text engine",
                  file=sys.stderr)
        elif engine_name == "clang":
            print("pfs_lint: clang engine unavailable (%s)" % reason, file=sys.stderr)
            sys.exit(2)
        else:
            print("pfs_lint: clang engine unavailable (%s); using text engine" % reason,
                  file=sys.stderr)
    eng = TextEngine(files)
    return "text", eng.analyze()


def expected_findings(fixture_files):
    expected = set()
    for path in fixture_files:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f.read().split("\n"), start=1):
                m = EXPECT_RE.search(line)
                if m:
                    for rule in m.group(1).split(","):
                        rule = rule.strip()
                        if rule:
                            expected.add((os.path.realpath(path), lineno, rule))
    return expected


def fixture_result(engine_cls, fixture_files, include_dirs):
    if engine_cls is ClangEngine:
        eng = ClangEngine(fixture_files, include_dirs)
    else:
        eng = TextEngine(fixture_files)
    findings = apply_suppressions(eng.analyze(), fixture_files)
    return {f.key() for f in findings}


def clang_passes_fixtures(fixture_dir, include_dirs):
    try:
        files = collect_files(fixture_dir, ["."])
        return fixture_result(ClangEngine, files, include_dirs + [fixture_dir]) == expected_findings(files)
    except Exception:
        return False


def self_test(fixture_dir, include_dirs):
    files = collect_files(fixture_dir, ["."])
    expected = expected_findings(files)
    if not expected:
        print("pfs_lint self-test: no expectations found in %s" % fixture_dir)
        return 1
    status = 0

    def check(label, got):
        nonlocal status
        missing = expected - got
        spurious = got - expected
        if missing or spurious:
            status = 1
            print("pfs_lint self-test [%s]: FAIL" % label)
            for path, line, rule in sorted(missing):
                print("  missing:  %s:%d [%s]" % (os.path.relpath(path, fixture_dir), line, rule))
            for path, line, rule in sorted(spurious):
                print("  spurious: %s:%d [%s]" % (os.path.relpath(path, fixture_dir), line, rule))
        else:
            print("pfs_lint self-test [%s]: ok (%d expected findings)" % (label, len(expected)))

    check("text", fixture_result(TextEngine, files, include_dirs))
    reason = ClangEngine.available()
    if reason is None:
        check("clang", fixture_result(ClangEngine, files, include_dirs + [fixture_dir]))
    else:
        print("pfs_lint self-test [clang]: skipped (%s)" % reason)
    return status


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--engine", choices=("auto", "clang", "text"), default="auto")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the directory above this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the engines against the bundled fixtures")
    args = parser.parse_args()

    script_dir = os.path.dirname(os.path.realpath(__file__))
    root = os.path.realpath(args.root) if args.root else os.path.dirname(script_dir)
    fixture_dir = os.path.join(script_dir, "lint_fixtures")
    include_dirs = [os.path.join(root, "src")]

    if args.self_test:
        sys.exit(self_test(fixture_dir, include_dirs))

    paths = args.paths or ["src"]
    try:
        files = collect_files(root, paths)
    except FileNotFoundError as e:
        print("pfs_lint: no such file or directory: %s" % e, file=sys.stderr)
        sys.exit(2)
    if not files:
        print("pfs_lint: nothing to lint", file=sys.stderr)
        sys.exit(2)

    label, findings = run_engine(args.engine, files, include_dirs, fixture_dir)
    findings = apply_suppressions(findings, files)
    findings.sort(key=lambda f: f.key())
    for f in findings:
        rel = os.path.relpath(f.path, root)
        print("%s:%d: [%s] %s" % (rel, f.line, f.rule, f.message))
    summary = "pfs_lint (%s engine): %d file(s), %d finding(s)" % (label, len(files), len(findings))
    print(summary, file=sys.stderr)
    sys.exit(1 if findings else 0)


if __name__ == "__main__":
    main()
