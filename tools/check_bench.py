#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json runs against a committed baseline.

The bench binaries append one JSON object per result line to BENCH_<name>.json
(`--json`). The baseline file lists checks, each naming a bench file, a match
filter selecting one line, a dotted metric path, the expected value, the
direction that counts as a regression, and a per-check tolerance:

  deterministic simulated metrics use the default 0.15;
  wall-clock metrics carry a wider, explicitly stored tolerance (or are
  omitted entirely) because they depend on the host.

A check may instead set "check": "exists" — it then only asserts the dotted
metric is present and numeric in the matched line (schema gate for fields
like latency percentiles whose values are host-dependent).

A check may carry "skip_if": {"metric": ..., "below": N} — it is skipped
when the matched line's metric is numeric and below N. Used to gate
host-shape-dependent expectations, e.g. multi-core speedups that only
materialize when the runner actually has the cores ("host_cores").

Every bench file a baseline names must exist AND contain at least one
parsable JSON line — a bench that crashed on startup (empty or truncated
output file) is a hard failure, not a silently skipped gate.

Usage:
  python3 tools/check_bench.py --baseline bench/baselines/BENCH_baseline.json [--dir DIR]
  python3 tools/check_bench.py --baseline ... --update   # rewrite expectations
  python3 tools/check_bench.py --self-test               # exercise failure paths

Exit status: 0 = every check within tolerance, 1 = regression or missing data.
"""

import argparse
import json
import os
import sys
import tempfile

DEFAULT_TOLERANCE = 0.15


def load_lines(path):
    """Returns (json_objects, parse_errors) for a one-object-per-line bench
    file. Unparsable lines become errors, not exceptions: a bench that died
    mid-write must fail the gate with a message, not a traceback."""
    lines = []
    errors = []
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except ValueError as e:
                errors.append("%s:%d: unparsable bench line (%s)" % (path, lineno, e))
    return lines, errors


def validate_bench_files(baseline, bench_dir):
    """Upfront pass over every bench file the baseline names. Returns
    (cache, failures): cache maps path -> parsed lines for files that are
    usable; failures explains every file that is not. A named bench that
    produced no JSON lines fails here, once, with a message saying which
    bench — instead of one cryptic 'no line matches' per dependent check."""
    cache = {}
    failures = []
    for check in baseline["checks"]:
        path = os.path.join(bench_dir, check["file"])
        if path in cache or any(f.startswith(path + ":") for f in failures):
            continue
        if not os.path.exists(path):
            failures.append("%s: bench file missing — the bench did not run" % path)
            continue
        lines, errors = load_lines(path)
        failures.extend(errors)
        if not lines:
            failures.append(
                "%s: bench produced no JSON result lines — it crashed or exited "
                "before emitting results" % path)
            continue
        cache[path] = lines
    return cache, failures


def dig(obj, dotted):
    """Looks up a dotted path ("volume.coalesced") in nested dicts."""
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def find_line(lines, match):
    """Returns the unique line whose fields equal every pair in `match`."""
    hits = [ln for ln in lines if all(dig(ln, k) == v for k, v in match.items())]
    if len(hits) == 1:
        return hits[0], None
    if not hits:
        return None, "no line matches %s" % json.dumps(match)
    return None, "%d lines match %s" % (len(hits), json.dumps(match))


def run_checks(baseline, bench_dir, update):
    cache, failures = validate_bench_files(baseline, bench_dir)
    for check in baseline["checks"]:
        name = check["name"]
        path = os.path.join(bench_dir, check["file"])
        if path not in cache:
            continue  # already failed in validate_bench_files
        line, err = find_line(cache[path], check["match"])
        if err:
            failures.append("%s: %s" % (name, err))
            continue
        skip = check.get("skip_if")
        if skip is not None:
            gate = dig(line, skip["metric"])
            if isinstance(gate, (int, float)) and gate < skip["below"]:
                print("%-40s skipped (%s=%s < %s)"
                      % (name, skip["metric"], gate, skip["below"]))
                continue
        value = dig(line, check["metric"])
        if check.get("check") == "exists":
            # Presence gate, no value comparison: shields schema fields (e.g.
            # the percentile keys) from silently vanishing out of StatJson.
            ok = isinstance(value, (int, float))
            print("%-40s %s %s" % (name, check["metric"],
                                   "present" if ok else "MISSING"))
            if not ok:
                failures.append("%s: metric %s missing or non-numeric"
                                % (name, check["metric"]))
            continue
        if not isinstance(value, (int, float)):
            failures.append("%s: metric %s missing or non-numeric" % (name, check["metric"]))
            continue
        if update:
            check["value"] = round(float(value), 4)
            continue
        expected = float(check["value"])
        tolerance = float(check.get("tolerance", DEFAULT_TOLERANCE))
        direction = check.get("direction", "higher")
        if direction == "higher":
            floor = expected * (1.0 - tolerance)
            ok = value >= floor
            bound = ">= %.4f" % floor
        elif direction == "lower":
            ceil = expected * (1.0 + tolerance)
            ok = value <= ceil
            bound = "<= %.4f" % ceil
        else:
            failures.append("%s: unknown direction %r" % (name, direction))
            continue
        status = "ok" if ok else "REGRESSION"
        print("%-40s %s=%.4f (baseline %.4f, want %s) %s"
              % (name, check["metric"], value, expected, bound, status))
        if not ok:
            failures.append("%s: %s=%.4f outside %s (baseline %.4f, tolerance %.0f%%)"
                            % (name, check["metric"], value, bound, expected,
                               tolerance * 100))
    return failures


def self_test():
    """Exercises the gate's failure paths against synthetic bench files. In
    particular: a baseline naming a bench file that exists but holds no JSON
    lines (the crashed-bench shape) MUST produce a non-zero failure set."""
    baseline = {"checks": [
        {"name": "good", "file": "BENCH_ok.json", "match": {"bench": "a"},
         "metric": "iops", "value": 100.0, "direction": "higher"},
        {"name": "empty", "file": "BENCH_empty.json", "match": {"bench": "a"},
         "metric": "iops", "value": 100.0, "direction": "higher"},
        {"name": "missing", "file": "BENCH_missing.json", "match": {"bench": "a"},
         "metric": "iops", "value": 100.0, "direction": "higher"},
        {"name": "garbled", "file": "BENCH_garbled.json", "match": {"bench": "a"},
         "metric": "iops", "value": 100.0, "direction": "higher"},
    ]}
    failed = []

    def expect(label, cond):
        print("check_bench self-test: %-38s %s" % (label, "ok" if cond else "FAIL"))
        if not cond:
            failed.append(label)

    with tempfile.TemporaryDirectory() as d:
        with open(os.path.join(d, "BENCH_ok.json"), "w") as f:
            f.write('{"bench": "a", "iops": 100.0}\n')
        open(os.path.join(d, "BENCH_empty.json"), "w").close()
        with open(os.path.join(d, "BENCH_garbled.json"), "w") as f:
            f.write('{"bench": "a", "iops": 1\n')  # truncated mid-write

        failures = run_checks(baseline, d, update=False)
        text = "\n".join(failures)
        expect("passing check stays quiet", not any("good" in f for f in failures))
        expect("empty bench file fails", "no JSON result lines" in text)
        expect("missing bench file fails", "bench file missing" in text)
        expect("garbled bench line fails", "unparsable bench line" in text)
        expect("empty bench still fails under --update",
               any("no JSON result lines" in f
                   for f in run_checks(baseline, d, update=True)))

        regress = {"checks": [
            {"name": "slow", "file": "BENCH_ok.json", "match": {"bench": "a"},
             "metric": "iops", "value": 200.0, "direction": "higher"},
        ]}
        expect("regression beyond tolerance fails",
               any("outside" in f for f in run_checks(regress, d, update=False)))
    return 1 if failed else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="baseline JSON file")
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json runs")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the current run files")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the gate's failure paths and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline:
        parser.error("--baseline is required unless --self-test is given")

    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = run_checks(baseline, args.dir, args.update)

    if args.update:
        if failures:
            for failure in failures:
                print("ERROR:", failure, file=sys.stderr)
            return 1
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print("baseline updated:", args.baseline)
        return 0

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("all %d bench checks within tolerance" % len(baseline["checks"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
