#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json runs against a committed baseline.

The bench binaries append one JSON object per result line to BENCH_<name>.json
(`--json`). The baseline file lists checks, each naming a bench file, a match
filter selecting one line, a dotted metric path, the expected value, the
direction that counts as a regression, and a per-check tolerance:

  deterministic simulated metrics use the default 0.15;
  wall-clock metrics carry a wider, explicitly stored tolerance (or are
  omitted entirely) because they depend on the host.

A check may instead set "check": "exists" — it then only asserts the dotted
metric is present and numeric in the matched line (schema gate for fields
like latency percentiles whose values are host-dependent).

A check may carry "skip_if": {"metric": ..., "below": N} — it is skipped
when the matched line's metric is numeric and below N. Used to gate
host-shape-dependent expectations, e.g. multi-core speedups that only
materialize when the runner actually has the cores ("host_cores").

Usage:
  python3 tools/check_bench.py --baseline bench/baselines/BENCH_baseline.json [--dir DIR]
  python3 tools/check_bench.py --baseline ... --update   # rewrite expectations

Exit status: 0 = every check within tolerance, 1 = regression or missing data.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.15


def load_lines(path):
    """Returns the list of JSON objects in a one-object-per-line bench file."""
    lines = []
    with open(path) as f:
        for raw in f:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines


def dig(obj, dotted):
    """Looks up a dotted path ("volume.coalesced") in nested dicts."""
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def find_line(lines, match):
    """Returns the unique line whose fields equal every pair in `match`."""
    hits = [ln for ln in lines if all(dig(ln, k) == v for k, v in match.items())]
    if len(hits) == 1:
        return hits[0], None
    if not hits:
        return None, "no line matches %s" % json.dumps(match)
    return None, "%d lines match %s" % (len(hits), json.dumps(match))


def run_checks(baseline, bench_dir, update):
    failures = []
    cache = {}
    for check in baseline["checks"]:
        name = check["name"]
        path = os.path.join(bench_dir, check["file"])
        if path not in cache:
            if not os.path.exists(path):
                failures.append("%s: bench file %s not found" % (name, path))
                continue
            cache[path] = load_lines(path)
        line, err = find_line(cache[path], check["match"])
        if err:
            failures.append("%s: %s" % (name, err))
            continue
        skip = check.get("skip_if")
        if skip is not None:
            gate = dig(line, skip["metric"])
            if isinstance(gate, (int, float)) and gate < skip["below"]:
                print("%-40s skipped (%s=%s < %s)"
                      % (name, skip["metric"], gate, skip["below"]))
                continue
        value = dig(line, check["metric"])
        if check.get("check") == "exists":
            # Presence gate, no value comparison: shields schema fields (e.g.
            # the percentile keys) from silently vanishing out of StatJson.
            ok = isinstance(value, (int, float))
            print("%-40s %s %s" % (name, check["metric"],
                                   "present" if ok else "MISSING"))
            if not ok:
                failures.append("%s: metric %s missing or non-numeric"
                                % (name, check["metric"]))
            continue
        if not isinstance(value, (int, float)):
            failures.append("%s: metric %s missing or non-numeric" % (name, check["metric"]))
            continue
        if update:
            check["value"] = round(float(value), 4)
            continue
        expected = float(check["value"])
        tolerance = float(check.get("tolerance", DEFAULT_TOLERANCE))
        direction = check.get("direction", "higher")
        if direction == "higher":
            floor = expected * (1.0 - tolerance)
            ok = value >= floor
            bound = ">= %.4f" % floor
        elif direction == "lower":
            ceil = expected * (1.0 + tolerance)
            ok = value <= ceil
            bound = "<= %.4f" % ceil
        else:
            failures.append("%s: unknown direction %r" % (name, direction))
            continue
        status = "ok" if ok else "REGRESSION"
        print("%-40s %s=%.4f (baseline %.4f, want %s) %s"
              % (name, check["metric"], value, expected, bound, status))
        if not ok:
            failures.append("%s: %s=%.4f outside %s (baseline %.4f, tolerance %.0f%%)"
                            % (name, check["metric"], value, bound, expected,
                               tolerance * 100))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="baseline JSON file")
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json runs")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the current run files")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = run_checks(baseline, args.dir, args.update)

    if args.update:
        if failures:
            for failure in failures:
                print("ERROR:", failure, file=sys.stderr)
            return 1
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print("baseline updated:", args.baseline)
        return 0

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("all %d bench checks within tolerance" % len(baseline["checks"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
