// Minimal stand-in for the PFS coroutine world so the lint fixtures parse as
// real C++20 under the clang engine. Shapes mirror src/sched: Task<> is the
// coroutine handle type, Sleep() returns a plain awaiter (NOT a coroutine),
// Post/Spawn/CallOn are the escape points.
#ifndef PFS_LINT_FIXTURE_PRELUDE_H_
#define PFS_LINT_FIXTURE_PRELUDE_H_

#include <chrono>
#include <condition_variable>
#include <coroutine>
#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>

namespace pfs {

template <typename T = void>
struct Task {
  struct promise_type {
    Task<T> get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_value(T) {}
    void unhandled_exception() {}
  };
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() const { return T{}; }
};

template <>
struct Task<void> {
  struct promise_type {
    Task<void> get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const {}
};

struct Duration {
  static Duration Millis(long ms) { return Duration{ms * 1000000}; }
  long ns = 0;
};

// Awaiter factory: like Scheduler::Sleep in the real tree, NOT a coroutine —
// temporaries in its arguments are destroyed normally.
struct SleepAwaiter {
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

class Scheduler {
 public:
  SleepAwaiter Sleep(Duration) { return {}; }
  void Post(std::function<void()> fn);
  void Spawn(std::string name, Task<> t);
  void SpawnDaemon(std::string name, Task<> t);
};

template <typename T, typename Fn>
Task<T> CallOn(Scheduler* home, Scheduler* target, Fn fn);

}  // namespace pfs

#endif  // PFS_LINT_FIXTURE_PRELUDE_H_
