// Fixture: coro-arg-temporary. Non-trivial temporaries passed to a coroutine
// inside a co_await full-expression — the PR 8 GCC 12 double-destroy shape.
#include "fixture_prelude.h"

namespace pfs {

Task<int> Consume(std::string tag);

Task<int> LambdaTemporary(Scheduler* home, Scheduler* target) {
  int x = 1;
  co_return co_await CallOn<int>(home, target, [x] { return x; });  // expect: coro-arg-temporary
}

Task<int> StdTemporary() {
  co_return co_await Consume(std::string("hot"));  // expect: coro-arg-temporary
}

Task<int> HoistedThunkIsFine(Scheduler* home, Scheduler* target) {
  int x = 1;
  auto body = [x] { return x; };
  co_return co_await CallOn<int>(home, target, body);
}

}  // namespace pfs
