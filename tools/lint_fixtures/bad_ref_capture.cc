// Fixture: ref-capture-escape. By-reference lambda captures handed to another
// execution context through Post; the referents are stack locals that may be
// gone when the lambda runs.
#include "fixture_prelude.h"

namespace pfs {

void ExplicitRefEscapes(Scheduler* sched) {
  int counter = 0;
  sched->Post([&counter] { counter++; });  // expect: ref-capture-escape
}

void DefaultRefEscapes(Scheduler* sched) {
  int counter = 0;
  sched->Post([&] { counter++; });  // expect: ref-capture-escape
}

void ByValueIsFine(Scheduler* sched) {
  int counter = 0;
  sched->Post([counter] { (void)counter; });
}

}  // namespace pfs
