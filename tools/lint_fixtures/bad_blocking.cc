// Fixture: blocking-in-coro. OS-level blocking primitives inside coroutine
// bodies stall every coroutine sharing the shard's loop.
#include "fixture_prelude.h"

namespace pfs {

Task<> HoldsOsMutex(std::mutex& mu) {
  mu.lock();  // expect: blocking-in-coro
  mu.unlock();  // expect: blocking-in-coro
  co_return;
}

Task<> WaitsOnCondvar(std::condition_variable& cv, std::mutex& mu) {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk);  // expect: blocking-in-coro
  co_return;
}

Task<> SleepsTheOsThread() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect: blocking-in-coro
  co_return;
}

void NotACoroutine(std::mutex& mu) {
  mu.lock();
  mu.unlock();
}

}  // namespace pfs
