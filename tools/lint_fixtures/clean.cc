// Fixture: the accepted idioms. Every pattern here must stay quiet under both
// engines — this file is the false-positive regression test.
#include "fixture_prelude.h"

namespace pfs {

Task<int> Fetch(int* p);

// The repo idiom for cross-shard thunks: hoist to a named local, then await.
Task<int> HoistedThunk(Scheduler* home, Scheduler* target) {
  int x = 2;
  auto body = [x] { return x; };
  co_return co_await CallOn<int>(home, target, body);
}

// Trivial temporaries (scalars, pointers) do not trip the GCC 12 bug.
Task<int> TrivialArgument(Scheduler* home) {
  (void)home;
  co_return co_await Fetch(nullptr);
}

// Trivially-destructible temporaries are safe too — the miscompile only
// double-destroys temporaries whose destructors observably run twice.
// std::span views and project aggregates like BlockId{...} are the idiomatic
// argument types across the device/layout/cache interfaces.
struct BlockId {
  unsigned fs = 0;
  unsigned long ino = 0;
  unsigned long block = 0;
};
Task<int> Lookup(BlockId id, int mode);
Task<long> WriteThrough(std::span<const std::byte> data);

Task<int> TrivialAggregateTemporary() {
  co_return co_await Lookup(BlockId{1, 2, 3}, 0);
}

Task<long> TrivialViewTemporary(const std::byte* p, unsigned long n) {
  co_return co_await WriteThrough(std::span<const std::byte>(p, n));
}

// Sleep returns an awaiter, not a coroutine: its argument temporaries are
// destroyed at the end of the full-expression like any other call's.
Task<> AwaiterFactoryArgs(Scheduler* sched) {
  co_await sched->Sleep(Duration::Millis(1));
  co_return;
}

// By-value captures may escape freely.
void PostsByValue(Scheduler* sched) {
  int counter = 1;
  sched->Post([counter] { (void)counter; });
}

// A by-ref capture with a provably synchronous handoff can be suppressed —
// always with a justification comment.
void SynchronousHandoff(Scheduler* sched, std::mutex& mu) {
  bool done = false;
  // The caller spins until the posted fn runs, so &done stays valid.
  // pfs-lint: allow(ref-capture-escape)
  sched->Post([&done] { done = true; });
  while (!done) {
    std::lock_guard<std::mutex> lk(mu);
  }
}

// RAII guards in coroutines are the accepted pattern for sub-microsecond
// critical sections (see LocalClient::fd_mu_); only explicit .lock()/.wait()
// calls are flagged.
Task<int> GuardedInCoroutine(std::mutex& mu, int& v) {
  std::lock_guard<std::mutex> lk(mu);
  co_return ++v;
}

// Blocking primitives outside coroutine bodies are the scheduler's own
// business (Run loops, ~Scheduler teardown).
int PlainFunctionMayBlock(std::mutex& mu, int& v) {
  mu.lock();
  int out = ++v;
  mu.unlock();
  return out;
}

}  // namespace pfs
