// Unit tests for src/driver: queue scheduling policies, the simulated driver
// end-to-end, and the real file-backed driver.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <numeric>

#include "bus/scsi_bus.h"
#include "disk/disk_model.h"
#include "driver/disk_driver.h"
#include "driver/file_backed_driver.h"
#include "driver/io_engine.h"
#include "driver/io_executor.h"
#include "driver/sim_disk_driver.h"
#include "core/units.h"
#include "sched/scheduler.h"

namespace pfs {
namespace {

struct SimFixture {
  explicit SimFixture(QueueSchedPolicy policy = QueueSchedPolicy::kClook,
                      DiskParams params = DiskParams::Hp97560()) {
    sched = Scheduler::CreateVirtual(42);
    ScsiBus::Params bus_params;
    bus_params.arbitration_delay = Duration();
    bus = std::make_unique<ScsiBus>(sched.get(), "scsi0", bus_params);
    disk = std::make_unique<DiskModel>(sched.get(), "d0", params, bus.get());
    disk->Start();
    driver = std::make_unique<SimDiskDriver>(sched.get(), "d0", disk.get(), bus.get(), policy);
    driver->Start();
  }

  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<ScsiBus> bus;
  std::unique_ptr<DiskModel> disk;
  std::unique_ptr<SimDiskDriver> driver;
};

Task<> DoRead(DiskDriver* d, uint64_t sector, Status* out) {
  *out = co_await d->Read(sector, 8, {});
}

Task<> DoWrite(DiskDriver* d, uint64_t sector, Status* out) {
  *out = co_await d->Write(sector, 8, {});
}

TEST(SimDriverTest, ReadCompletesOk) {
  SimFixture f;
  Status status(ErrorCode::kAborted);
  f.sched->Spawn("r", DoRead(f.driver.get(), 5000, &status));
  f.sched->Run();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(f.driver->ops_completed(), 1u);
  EXPECT_GT(f.sched->Now(), TimePoint() + Duration::Millis(2));
}

TEST(SimDriverTest, ParallelRequestsAllComplete) {
  SimFixture f;
  std::vector<Status> statuses(16, Status(ErrorCode::kAborted));
  for (int i = 0; i < 16; ++i) {
    f.sched->Spawn("r", DoRead(f.driver.get(), 1000 + i * 97, &statuses[i]));
  }
  f.sched->Run();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(f.driver->ops_completed(), 16u);
  // With 16 concurrent requests, the queue must have been observed non-empty.
  EXPECT_GT(f.driver->queue_length_hist().max(), 0.0);
}

TEST(SimDriverTest, MixedReadWriteQueue) {
  SimFixture f;
  std::vector<Status> statuses(8, Status(ErrorCode::kAborted));
  for (int i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      f.sched->Spawn("r", DoRead(f.driver.get(), 2000 + i * 131, &statuses[i]));
    } else {
      f.sched->Spawn("w", DoWrite(f.driver.get(), 4000 + i * 131, &statuses[i]));
    }
  }
  f.sched->Run();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(f.disk->reads() + f.disk->writes(), 8u);
}

// Collects dispatch order by observing per-request completion sequence under
// a policy, with requests pre-loaded while the worker is kept busy.
struct OrderProbe {
  std::vector<uint64_t> completion_order;
};

Task<> OrderedRead(DiskDriver* d, uint64_t sector, OrderProbe* probe) {
  const Status s = co_await d->Read(sector, 8, {});
  PFS_CHECK(s.ok());
  probe->completion_order.push_back(sector);
}

TEST(SimDriverTest, ClookServicesAscendingThenWraps) {
  // Use the synthetic disk (constant seek) so ordering is purely the
  // policy's. Load the queue in one scheduler step, then run.
  SimFixture f(QueueSchedPolicy::kClook, DiskParams::SyntheticTest());
  OrderProbe probe;
  // First a far request to move the head to sector 3000; then while it is
  // being serviced, queue out-of-order requests.
  f.sched->Spawn("warm", OrderedRead(f.driver.get(), 3000, &probe));
  f.sched->RunFor(Duration::Micros(150));  // warm request dispatched, not yet done
  for (uint64_t s : {3500ull, 1000ull, 3200ull, 2000ull}) {
    f.sched->Spawn("r", OrderedRead(f.driver.get(), s, &probe));
  }
  f.sched->Run();
  ASSERT_EQ(probe.completion_order.size(), 5u);
  EXPECT_EQ(probe.completion_order[0], 3000u);
  // C-LOOK from head=3000: ascending 3200, 3500, then wrap to 1000, 2000.
  EXPECT_EQ(probe.completion_order[1], 3200u);
  EXPECT_EQ(probe.completion_order[2], 3500u);
  EXPECT_EQ(probe.completion_order[3], 1000u);
  EXPECT_EQ(probe.completion_order[4], 2000u);
}

TEST(SimDriverTest, SstfPicksNearest) {
  SimFixture f(QueueSchedPolicy::kSstf, DiskParams::SyntheticTest());
  OrderProbe probe;
  f.sched->Spawn("warm", OrderedRead(f.driver.get(), 2000, &probe));
  f.sched->RunFor(Duration::Micros(150));
  for (uint64_t s : {100ull, 1900ull, 3900ull}) {
    f.sched->Spawn("r", OrderedRead(f.driver.get(), s, &probe));
  }
  f.sched->Run();
  ASSERT_EQ(probe.completion_order.size(), 4u);
  // From head=2000 SSTF picks 1900 (d=100), then 100 (d=1800) vs 3900
  // (d=2000) -> 100, then 3900.
  EXPECT_EQ(probe.completion_order[1], 1900u);
  EXPECT_EQ(probe.completion_order[2], 100u);
  EXPECT_EQ(probe.completion_order[3], 3900u);
}

Task<> SequentialReads(DiskDriver* d, std::vector<uint64_t> sectors, OrderProbe* probe) {
  for (uint64_t s : sectors) {
    co_await OrderedRead(d, s, probe);
  }
}

TEST(SimDriverTest, FcfsPreservesArrivalOrder) {
  SimFixture f(QueueSchedPolicy::kFcfs, DiskParams::SyntheticTest());
  OrderProbe probe;
  // One issuing thread awaits each read in turn, so arrival order is exactly
  // {3500, 1000, 3200} and FCFS must complete them in that order even though
  // it is not the sector-sorted order.
  f.sched->Spawn("seq", SequentialReads(f.driver.get(), {3500, 1000, 3200}, &probe));
  f.sched->Run();
  EXPECT_EQ(probe.completion_order, (std::vector<uint64_t>{3500, 1000, 3200}));
}

TEST(SimDriverTest, ScanSweepsBothDirections) {
  SimFixture f(QueueSchedPolicy::kLook, DiskParams::SyntheticTest());
  OrderProbe probe;
  f.sched->Spawn("warm", OrderedRead(f.driver.get(), 2000, &probe));
  f.sched->RunFor(Duration::Micros(150));
  for (uint64_t s : {2500ull, 1500ull, 3000ull, 500ull}) {
    f.sched->Spawn("r", OrderedRead(f.driver.get(), s, &probe));
  }
  f.sched->Run();
  ASSERT_EQ(probe.completion_order.size(), 5u);
  // LOOK from head=2000 going up: 2500, 3000; reverse: 1500, 500.
  EXPECT_EQ(probe.completion_order[1], 2500u);
  EXPECT_EQ(probe.completion_order[2], 3000u);
  EXPECT_EQ(probe.completion_order[3], 1500u);
  EXPECT_EQ(probe.completion_order[4], 500u);
}

TEST(SimDriverTest, StatReportHasPolicy) {
  SimFixture f;
  Status status;
  f.sched->Spawn("r", DoRead(f.driver.get(), 5000, &status));
  f.sched->Run();
  EXPECT_NE(f.driver->StatReport(false).find("policy=C-LOOK"), std::string::npos);
}

TEST(QueuePolicyNamesTest, AllNamed) {
  EXPECT_STREQ(QueueSchedPolicyName(QueueSchedPolicy::kFcfs), "FCFS");
  EXPECT_STREQ(QueueSchedPolicyName(QueueSchedPolicy::kSstf), "SSTF");
  EXPECT_STREQ(QueueSchedPolicyName(QueueSchedPolicy::kScan), "SCAN");
  EXPECT_STREQ(QueueSchedPolicyName(QueueSchedPolicy::kCscan), "C-SCAN");
  EXPECT_STREQ(QueueSchedPolicyName(QueueSchedPolicy::kLook), "LOOK");
  EXPECT_STREQ(QueueSchedPolicyName(QueueSchedPolicy::kClook), "C-LOOK");
}

TEST(QueuePolicyNamesTest, NamesRoundTripThroughParse) {
  for (QueueSchedPolicy p :
       {QueueSchedPolicy::kFcfs, QueueSchedPolicy::kSstf, QueueSchedPolicy::kScan,
        QueueSchedPolicy::kCscan, QueueSchedPolicy::kLook, QueueSchedPolicy::kClook}) {
    const auto parsed = QueueSchedPolicyFromName(QueueSchedPolicyName(p));
    ASSERT_TRUE(parsed.has_value()) << QueueSchedPolicyName(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(QueueSchedPolicyFromName("clook").has_value());  // case-sensitive
  EXPECT_FALSE(QueueSchedPolicyFromName("").has_value());
  EXPECT_NE(QueueSchedPolicyNames().find("C-SCAN"), std::string::npos);
}

class FileDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/pfs_filedriver_test.img";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

Task<> WriteThenRead(DiskDriver* d, bool* ok) {
  std::vector<std::byte> out(4096);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i & 0xff);
  }
  Status ws = co_await d->Write(16, 8, out);
  PFS_CHECK(ws.ok());
  std::vector<std::byte> in(4096);
  Status rs = co_await d->Read(16, 8, in);
  PFS_CHECK(rs.ok());
  *ok = std::equal(out.begin(), out.end(), in.begin());
}

TEST_F(FileDriverTest, RoundTripsBytes) {
  auto sched = Scheduler::CreateVirtual();
  IoExecutor executor(2);
  auto driver_or = FileBackedDriver::Create(sched.get(), "real0", path_, 1 * kMiB, &executor);
  ASSERT_TRUE(driver_or.ok());
  auto driver = std::move(driver_or).value();
  driver->Start();
  bool ok = false;
  sched->Spawn("wr", WriteThenRead(driver.get(), &ok));
  sched->Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(driver->ops_completed(), 2u);
  EXPECT_EQ(driver->total_sectors(), 1 * kMiB / 512);
}

TEST_F(FileDriverTest, PersistsAcrossReopen) {
  IoExecutor executor(2);
  {
    auto sched = Scheduler::CreateVirtual();
    auto driver =
        std::move(FileBackedDriver::Create(sched.get(), "real0", path_, 1 * kMiB, &executor))
            .value();
    driver->Start();
    bool ok = false;
    sched->Spawn("w", [](DiskDriver* d, bool* done) -> Task<> {
      std::vector<std::byte> buf(512, std::byte{0x5a});
      Status s = co_await d->Write(3, 1, buf);
      *done = s.ok();
    }(driver.get(), &ok));
    sched->Run();
    ASSERT_TRUE(ok);
  }
  {
    auto sched = Scheduler::CreateVirtual();
    auto driver =
        std::move(FileBackedDriver::Create(sched.get(), "real0", path_, 1 * kMiB, &executor))
            .value();
    driver->Start();
    bool ok = false;
    sched->Spawn("r", [](DiskDriver* d, bool* done) -> Task<> {
      std::vector<std::byte> buf(512);
      Status s = co_await d->Read(3, 1, buf);
      *done = s.ok() && buf[0] == std::byte{0x5a} && buf[511] == std::byte{0x5a};
    }(driver.get(), &ok));
    sched->Run();
    EXPECT_TRUE(ok);
  }
}

TEST_F(FileDriverTest, DrainsTheQueueIntoBatches) {
  auto sched = Scheduler::CreateVirtual();
  IoExecutor executor(2);
  auto driver =
      std::move(FileBackedDriver::Create(sched.get(), "real0", path_, 1 * kMiB, &executor))
          .value();
  driver->Start();

  constexpr int kOps = 16;
  std::vector<Status> statuses(kOps, Status(ErrorCode::kAborted));
  std::vector<std::vector<std::byte>> bufs(kOps, std::vector<std::byte>(4096));
  for (int i = 0; i < kOps; ++i) {
    sched->Spawn("r", [](DiskDriver* d, uint64_t sector, std::span<std::byte> buf,
                         Status* out) -> Task<> {
      *out = co_await d->Read(sector, 8, buf);
    }(driver.get(), static_cast<uint64_t>(i) * 8, bufs[static_cast<size_t>(i)],
      &statuses[static_cast<size_t>(i)]));
  }
  sched->Run();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(driver->ops_completed(), static_cast<uint64_t>(kOps));
  // While one batch was at the engine the rest of the requests queued up, so
  // at least one later dispatch carried several requests.
  EXPECT_LT(driver->batches(), static_cast<uint64_t>(kOps));
  EXPECT_GE(driver->batch_size_hist().max(), 2.0);

  const std::string json = driver->StatJson();
  EXPECT_NE(json.find("\"batches\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reqs_per_batch\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine\":\"threadpool\""), std::string::npos) << json;
  EXPECT_STREQ(driver->engine_name(), "threadpool");
}

// Runs one write-then-read byte pattern through an engine directly (no
// scheduler): the blocking RunBatch contract.
void EngineRoundTrip(IoEngine* engine, const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 64 * 1024), 0);

  std::vector<std::byte> a(4096), b(4096);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::byte>(i & 0xff);
    b[i] = static_cast<std::byte>((i * 7) & 0xff);
  }
  std::vector<BatchIo> writes(2);
  writes[0].op = IoOp::kWrite;
  writes[0].fd = fd;
  writes[0].offset = 0;
  writes[0].write_buf = a;
  writes[1].op = IoOp::kWrite;
  writes[1].fd = fd;
  writes[1].offset = 4096;  // contiguous with the first: vectored path
  writes[1].write_buf = b;
  engine->RunBatch(writes);
  EXPECT_TRUE(writes[0].result.ok()) << writes[0].result.ToString();
  EXPECT_TRUE(writes[1].result.ok()) << writes[1].result.ToString();

  std::vector<std::byte> back_a(4096), back_b(4096);
  std::vector<BatchIo> reads(2);
  reads[0].fd = fd;
  reads[0].offset = 4096;  // out of order: non-contiguous path
  reads[0].read_buf = back_b;
  reads[1].fd = fd;
  reads[1].offset = 0;
  reads[1].read_buf = back_a;
  engine->RunBatch(reads);
  EXPECT_TRUE(reads[0].result.ok()) << reads[0].result.ToString();
  EXPECT_TRUE(reads[1].result.ok()) << reads[1].result.ToString();
  EXPECT_EQ(back_a, a);
  EXPECT_EQ(back_b, b);
  ::close(fd);
}

TEST_F(FileDriverTest, ThreadPoolEngineRoundTrips) {
  ThreadPoolIoEngine engine;
  EngineRoundTrip(&engine, path_);
}

TEST_F(FileDriverTest, UringEngineRoundTrips) {
  if (!UringIoEngine::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  UringIoEngine engine;
  EngineRoundTrip(&engine, path_);
}

TEST_F(FileDriverTest, EngineFailsReadsPastEofInsteadOfShortening) {
  // A read crossing the end of the file gets a real EOF error, not silently
  // partial data — the short-transfer loop turns a 0-byte pread into a
  // Status (and the same loop finishes genuinely short transfers).
  const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 512), 0);

  std::vector<std::byte> buf(4096);
  BatchIo desc;
  desc.fd = fd;
  desc.offset = 0;
  desc.read_buf = buf;
  ThreadPoolIoEngine engine;
  engine.RunBatch({&desc, 1});
  EXPECT_FALSE(desc.result.ok());
  EXPECT_NE(desc.result.ToString().find("EOF"), std::string::npos)
      << desc.result.ToString();

  if (UringIoEngine::Available()) {
    desc.result = OkStatus();
    UringIoEngine uring;
    uring.RunBatch({&desc, 1});
    EXPECT_FALSE(desc.result.ok());
    EXPECT_NE(desc.result.ToString().find("EOF"), std::string::npos)
        << desc.result.ToString();
  }
  ::close(fd);
}

TEST_F(FileDriverTest, EngineReportsWriteErrors) {
  // Write through a read-only descriptor: every affected descriptor gets the
  // errno, none is left kAborted or falsely OK.
  const int rw = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(rw, 0);
  ASSERT_EQ(::ftruncate(rw, 4096), 0);
  ::close(rw);
  const int fd = ::open(path_.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);

  std::vector<std::byte> buf(512, std::byte{0x42});
  std::vector<BatchIo> descs(2);
  for (BatchIo& d : descs) {
    d.op = IoOp::kWrite;
    d.fd = fd;
    d.write_buf = buf;
  }
  descs[1].offset = 512;
  ThreadPoolIoEngine engine;
  engine.RunBatch(descs);
  EXPECT_FALSE(descs[0].result.ok());
  EXPECT_FALSE(descs[1].result.ok());
  ::close(fd);
}

TEST_F(FileDriverTest, CreateFailsOnBadPath) {
  auto sched = Scheduler::CreateVirtual();
  IoExecutor executor(1);
  auto driver_or = FileBackedDriver::Create(sched.get(), "bad", "/nonexistent-dir/x.img",
                                            1 * kMiB, &executor);
  EXPECT_FALSE(driver_or.ok());
  EXPECT_EQ(driver_or.code(), ErrorCode::kIoError);
}

}  // namespace
}  // namespace pfs
