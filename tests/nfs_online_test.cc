// Tests for the NFS-style front-end (XDR codec, loopback RPC) and the
// on-line PFS server (real clock, file-backed disk, cross-thread requests).
#include <gtest/gtest.h>

#include <cstdio>

#include "nfs/nfs.h"
#include "nfs/xdr.h"
#include "online/pfs_server.h"
#include "online/recording_client.h"
#include "patsy/patsy.h"

namespace pfs {
namespace {

TEST(XdrTest, ScalarsRoundTripBigEndian) {
  std::vector<std::byte> buf;
  XdrEncoder enc(&buf);
  enc.PutU32(0x01020304);
  enc.PutU64(0x0102030405060708ULL);
  enc.PutBool(true);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x01);  // network byte order
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x04);
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.TakeU32().value(), 0x01020304u);
  EXPECT_EQ(dec.TakeU64().value(), 0x0102030405060708ULL);
  EXPECT_TRUE(dec.TakeBool().value());
}

TEST(XdrTest, StringsArePadded) {
  std::vector<std::byte> buf;
  XdrEncoder enc(&buf);
  enc.PutString("abcde");  // 4 (len) + 5 + 3 pad = 12
  EXPECT_EQ(buf.size(), 12u);
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.TakeString().value(), "abcde");
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(XdrTest, ShortBufferIsCorrupt) {
  std::vector<std::byte> buf(2);
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.TakeU32().code(), ErrorCode::kCorrupt);
}

// NFS over a simulated Patsy server: the RPC boundary works identically
// off-line (virtual clock) and on-line.
TEST(NfsTest, EndToEndOverLoopback) {
  PatsyConfig config;
  config.disks_per_bus = {1};
  config.num_filesystems = 1;
  config.cache_bytes = 2 * kMiB;
  config.flush_policy = "ups";
  PatsyServer server(config);
  ASSERT_TRUE(server.Setup().ok());

  NfsLoopback loopback(server.scheduler(), 16);
  NfsServer nfs(server.scheduler(), server.client(), &loopback, 2);
  nfs.Start();
  NfsClient client(server.scheduler(), &loopback);

  Status result(ErrorCode::kAborted);
  server.scheduler()->Spawn("nfs.test", [](NfsClient* c, Status* out) -> Task<> {
    OpenOptions create;
    create.create = true;
    auto fd = co_await c->Open("/fs0/rpc.txt", create);
    if (!fd.ok()) {
      *out = fd.status();
      co_return;
    }
    auto wrote = co_await c->Write(*fd, 0, 9000, {});
    PFS_CHECK(wrote.ok() && *wrote == 9000);
    auto attrs = co_await c->FStat(*fd);
    PFS_CHECK(attrs.ok() && attrs->size == 9000);
    auto read = co_await c->Read(*fd, 0, 9000, {});
    PFS_CHECK(read.ok() && *read == 9000);
    PFS_CHECK((co_await c->Close(*fd)).ok());

    PFS_CHECK((co_await c->Mkdir("/fs0/dir")).ok());
    auto entries = co_await c->ReadDir("/fs0");
    PFS_CHECK(entries.ok() && entries->size() == 2);
    auto stat = co_await c->Stat("/fs0/rpc.txt");
    PFS_CHECK(stat.ok());
    PFS_CHECK((co_await c->Unlink("/fs0/rpc.txt")).ok());
    auto gone = co_await c->Stat("/fs0/rpc.txt");
    PFS_CHECK(gone.code() == ErrorCode::kNotFound);
    *out = co_await c->SyncAll();
  }(&client, &result));
  server.scheduler()->Run();
  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_GT(nfs.requests_served(), 5u);
}

TEST(NfsTest, ErrorsCrossTheWire) {
  PatsyConfig config;
  config.disks_per_bus = {1};
  config.num_filesystems = 1;
  config.flush_policy = "ups";
  PatsyServer server(config);
  ASSERT_TRUE(server.Setup().ok());
  NfsLoopback loopback(server.scheduler(), 16);
  NfsServer nfs(server.scheduler(), server.client(), &loopback, 1);
  nfs.Start();
  NfsClient client(server.scheduler(), &loopback);

  ErrorCode code = ErrorCode::kOk;
  server.scheduler()->Spawn("nfs.err", [](NfsClient* c, ErrorCode* out) -> Task<> {
    auto fd = co_await c->Open("/fs0/missing", OpenOptions{});
    *out = fd.code();
  }(&client, &code));
  server.scheduler()->Run();
  EXPECT_EQ(code, ErrorCode::kNotFound);
}

class OnlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = testing::TempDir() + "/pfs_online_test.img";
    std::remove(image_.c_str());
  }
  void TearDown() override { std::remove(image_.c_str()); }

  std::string image_;
};

TEST_F(OnlineTest, ServesRequestsFromOtherThreads) {
  PfsServerConfig config;
  config.image_path = image_;
  config.image_bytes = 16 * kMiB;
  auto server_or = PfsServer::Start(config);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).value();

  const Status status = server->Submit([](ClientInterface* c) -> Task<Status> {
    OpenOptions create;
    create.create = true;
    auto fd = co_await c->Open("/fs0/online.txt", create);
    PFS_CO_RETURN_IF_ERROR(fd.status());
    std::vector<std::byte> data(8192, std::byte{0x42});
    auto wrote = co_await c->Write(*fd, 0, data.size(), data);
    PFS_CO_RETURN_IF_ERROR(wrote.status());
    std::vector<std::byte> back(8192);
    auto read = co_await c->Read(*fd, 0, back.size(), back);
    PFS_CO_RETURN_IF_ERROR(read.status());
    if (back != data) {
      co_return Status(ErrorCode::kCorrupt, "read-back mismatch");
    }
    co_return co_await c->Close(*fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(server->Stop().ok());
}

TEST_F(OnlineTest, DataPersistsAcrossServerRestart) {
  PfsServerConfig config;
  config.image_path = image_;
  config.image_bytes = 16 * kMiB;
  {
    auto server = std::move(PfsServer::Start(config)).value();
    const Status status = server->Submit([](ClientInterface* c) -> Task<Status> {
      OpenOptions create;
      create.create = true;
      auto fd = co_await c->Open("/fs0/persist.txt", create);
      PFS_CO_RETURN_IF_ERROR(fd.status());
      std::vector<std::byte> data(4096);
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i % 251);
      }
      auto wrote = co_await c->Write(*fd, 0, data.size(), data);
      PFS_CO_RETURN_IF_ERROR(wrote.status());
      co_return co_await c->Close(*fd);
    });
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(server->Stop().ok());
  }
  {
    config.format = false;  // remount the existing image
    auto server_or = PfsServer::Start(config);
    ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
    auto server = std::move(server_or).value();
    const Status status = server->Submit([](ClientInterface* c) -> Task<Status> {
      auto fd = co_await c->Open("/fs0/persist.txt", OpenOptions{});
      PFS_CO_RETURN_IF_ERROR(fd.status());
      std::vector<std::byte> back(4096);
      auto read = co_await c->Read(*fd, 0, back.size(), back);
      PFS_CO_RETURN_IF_ERROR(read.status());
      for (size_t i = 0; i < back.size(); ++i) {
        if (back[i] != static_cast<std::byte>(i % 251)) {
          co_return Status(ErrorCode::kCorrupt, "persisted data mismatch");
        }
      }
      co_return co_await c->Close(*fd);
    });
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(server->Stop().ok());
  }
}

TEST_F(OnlineTest, RecordedTraceReplaysInPatsy) {
  // The paper's symbiosis: record on-line, replay off-line.
  PfsServerConfig config;
  config.image_path = image_;
  config.image_bytes = 16 * kMiB;
  config.record_trace = true;
  auto server = std::move(PfsServer::Start(config)).value();
  const Status status = server->Submit([](ClientInterface* c) -> Task<Status> {
    OpenOptions create;
    create.create = true;
    for (int i = 0; i < 5; ++i) {
      auto fd = co_await c->Open("/fs0/f" + std::to_string(i), create);
      PFS_CO_RETURN_IF_ERROR(fd.status());
      auto wrote = co_await c->Write(*fd, 0, 4096, {});
      PFS_CO_RETURN_IF_ERROR(wrote.status());
      PFS_CO_RETURN_IF_ERROR(co_await c->Close(*fd));
    }
    co_return OkStatus();
  });
  ASSERT_TRUE(status.ok());
  std::vector<TraceRecord> trace = server->TakeRecordedTrace();
  ASSERT_TRUE(server->Stop().ok());
  ASSERT_GE(trace.size(), 15u);  // 5 x (open, write, close)

  // Replay in the simulator from the same system description: both
  // instantiations mount /fs0, so the trace needs no path rewriting.
  PatsyConfig sim = config;
  sim.backend = BackendKind::kSimulated;
  sim.flush_policy = "ups";
  auto result = RunTraceSimulation(sim, std::move(trace));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->ops, 15u);
  EXPECT_EQ(result->errors, 0u);
}

}  // namespace
}  // namespace pfs
