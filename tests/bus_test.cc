// Unit tests for src/bus: SCSI bus timing, arbitration, contention stats.
#include <gtest/gtest.h>

#include "bus/connection.h"
#include "bus/scsi_bus.h"
#include "sched/scheduler.h"

namespace pfs {
namespace {

TEST(ScsiBusTest, TransferTimeMatchesBandwidth) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus bus(sched.get(), "scsi0");
  // 10 MB/s decimal: 10,000 bytes take 1 ms.
  EXPECT_EQ(bus.TransferTime(10000), Duration::Millis(1));
  EXPECT_EQ(bus.TransferTime(0), Duration());
  // 4 KB block: 409.6 us.
  EXPECT_EQ(bus.TransferTime(4096).micros(), 409);
}

Task<> UseBus(Scheduler* s, ScsiBus* bus, uint64_t bytes, int* completed) {
  co_await bus->Acquire();
  co_await bus->Transfer(bytes);
  bus->Release();
  ++(*completed);
  (void)s;
}

TEST(ScsiBusTest, SingleTransferAdvancesClock) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus::Params params;
  params.arbitration_delay = Duration();
  ScsiBus bus(sched.get(), "scsi0", params);
  int completed = 0;
  sched->Spawn("xfer", UseBus(sched.get(), &bus, 10000, &completed));
  sched->Run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(1));
  EXPECT_EQ(bus.bytes_transferred(), 10000u);
  EXPECT_EQ(bus.acquisitions(), 1u);
}

TEST(ScsiBusTest, ContentionSerializesInitiators) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus::Params params;
  params.arbitration_delay = Duration();
  ScsiBus bus(sched.get(), "scsi0", params);
  int completed = 0;
  // Four initiators, 10,000 bytes (1 ms) each: the bus serializes them, so
  // total virtual time is exactly 4 ms.
  for (int i = 0; i < 4; ++i) {
    sched->Spawn("xfer", UseBus(sched.get(), &bus, 10000, &completed));
  }
  sched->Run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(4));
}

TEST(ScsiBusTest, ArbitrationDelayCharged) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus::Params params;
  params.arbitration_delay = Duration::Micros(10);
  ScsiBus bus(sched.get(), "scsi0", params);
  int completed = 0;
  sched->Spawn("xfer", UseBus(sched.get(), &bus, 10000, &completed));
  sched->Run();
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(1) + Duration::Micros(10));
}

TEST(ScsiBusTest, UtilizationReflectsBusyTime) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus::Params params;
  params.arbitration_delay = Duration();
  ScsiBus bus(sched.get(), "scsi0", params);
  int completed = 0;
  sched->Spawn("xfer", UseBus(sched.get(), &bus, 10000, &completed));
  sched->Run();
  // Bus was held for the full 1 ms of the run.
  EXPECT_NEAR(bus.Utilization(), 1.0, 0.01);
  EXPECT_EQ(bus.busy_time(), Duration::Millis(1));
}

TEST(ScsiBusTest, StatReportMentionsTraffic) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus bus(sched.get(), "scsi0");
  int completed = 0;
  sched->Spawn("xfer", UseBus(sched.get(), &bus, 4096, &completed));
  sched->Run();
  const std::string report = bus.StatReport(false);
  EXPECT_NE(report.find("bytes=4096"), std::string::npos);
  EXPECT_EQ(bus.stat_name(), "bus.scsi0");
}

Task<> HoldBus(Scheduler* s, ScsiBus* bus, Duration hold, std::vector<int>* order, int id) {
  co_await bus->Acquire();
  order->push_back(id);
  co_await s->Sleep(hold);
  bus->Release();
}

TEST(ScsiBusTest, DisconnectReconnectInterleavesPhases) {
  auto sched = Scheduler::CreateVirtual();
  ScsiBus::Params params;
  params.arbitration_delay = Duration();
  ScsiBus bus(sched.get(), "scsi0", params);
  std::vector<int> order;
  // Holder 1 takes the bus at t=0 for 1 ms; holder 2 spawned immediately
  // after queues behind it (FIFO via semaphore + event ordering).
  sched->Spawn("h1", HoldBus(sched.get(), &bus, Duration::Millis(1), &order, 1));
  sched->Spawn("h2", HoldBus(sched.get(), &bus, Duration::Millis(1), &order, 2));
  sched->Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(2));
}

TEST(NullConnectionTest, IsFree) {
  auto sched = Scheduler::CreateVirtual();
  NullConnection conn;
  EXPECT_EQ(conn.TransferTime(1 << 20), Duration());
  int completed = 0;
  sched->Spawn("xfer", [](Connection* c, int* done) -> Task<> {
    co_await c->Acquire();
    co_await c->Transfer(1 << 20);
    c->Release();
    ++(*done);
  }(&conn, &completed));
  sched->Run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(sched->Now(), TimePoint());
}

}  // namespace
}  // namespace pfs
