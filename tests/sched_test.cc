// Unit tests for src/sched: tasks, events, scheduler semantics under virtual
// and real clocks, sync primitives, channels.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sched/channel.h"
#include "sched/event.h"
#include "sched/scheduler.h"
#include "sched/shard.h"
#include "sched/sync.h"
#include "sched/task.h"
#include "sched/time.h"

namespace pfs {
namespace {

TEST(TimeTest, DurationConversions) {
  EXPECT_EQ(Duration::Millis(3).micros(), 3000);
  EXPECT_EQ(Duration::Seconds(2).millis(), 2000);
  EXPECT_EQ(Duration::Micros(5).nanos(), 5000);
  EXPECT_EQ(Duration::Minutes(2).millis(), 120000);
  EXPECT_EQ(Duration::Hours(1).millis(), 3600000);
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).ToSecondsF(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::SecondsF(0.25).ToMillisF(), 250.0);
  EXPECT_EQ(Duration::MillisF(1.5).micros(), 1500);
}

TEST(TimeTest, DurationArithmeticAndComparison) {
  const Duration a = Duration::Millis(5);
  const Duration b = Duration::Millis(3);
  EXPECT_EQ((a + b).millis(), 8);
  EXPECT_EQ((a - b).millis(), 2);
  EXPECT_EQ((a * 4).millis(), 20);
  EXPECT_EQ((a / 5).millis(), 1);
  EXPECT_LT(b, a);
  EXPECT_TRUE(Duration().IsZero());
}

TEST(TimeTest, TimePointArithmetic) {
  const TimePoint t0 = TimePoint::FromNanos(1000);
  const TimePoint t1 = t0 + Duration::Micros(2);
  EXPECT_EQ((t1 - t0).nanos(), 2000);
  EXPECT_GT(t1, t0);
}

Task<int> ReturnValue(int v) { co_return v; }

Task<int> AddViaSubtasks(int a, int b) {
  const int x = co_await ReturnValue(a);
  const int y = co_await ReturnValue(b);
  co_return x + y;
}

Task<> StoreResult(int* out) { *out = co_await AddViaSubtasks(20, 22); }

TEST(TaskTest, NestedAwaitChains) {
  auto sched = Scheduler::CreateVirtual();
  int result = 0;
  sched->Spawn("adder", StoreResult(&result));
  sched->Run();
  EXPECT_EQ(result, 42);
}

Task<> SleepAndRecord(Scheduler* s, std::vector<int>* order, int id, Duration d) {
  co_await s->Sleep(d);
  order->push_back(id);
}

TEST(SchedulerTest, VirtualTimeOrdersByWakeTime) {
  auto sched = Scheduler::CreateVirtual();
  std::vector<int> order;
  sched->Spawn("late", SleepAndRecord(sched.get(), &order, 3, Duration::Millis(30)));
  sched->Spawn("early", SleepAndRecord(sched.get(), &order, 1, Duration::Millis(10)));
  sched->Spawn("mid", SleepAndRecord(sched.get(), &order, 2, Duration::Millis(20)));
  sched->Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(30));
}

TEST(SchedulerTest, VirtualTimeJumpsWhenIdle) {
  auto sched = Scheduler::CreateVirtual();
  std::vector<int> order;
  sched->Spawn("sleeper", SleepAndRecord(sched.get(), &order, 1, Duration::Hours(10)));
  sched->Run();
  // Ten simulated hours pass instantly; virtual time is exact.
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Hours(10));
}

Task<> NestedSleeps(Scheduler* s, std::vector<int64_t>* times) {
  co_await s->Sleep(Duration::Millis(1));
  times->push_back((s->Now() - TimePoint()).millis());
  co_await s->Sleep(Duration::Millis(2));
  times->push_back((s->Now() - TimePoint()).millis());
}

TEST(SchedulerTest, SequentialSleepsAccumulate) {
  auto sched = Scheduler::CreateVirtual();
  std::vector<int64_t> times;
  sched->Spawn("t", NestedSleeps(sched.get(), &times));
  sched->Run();
  EXPECT_EQ(times, (std::vector<int64_t>{1, 3}));
}

TEST(SchedulerTest, DeterministicForSeed) {
  auto run_once = [](uint64_t seed) {
    auto sched = Scheduler::CreateVirtual(seed);
    auto order = std::make_unique<std::vector<int>>();
    // All three runnable at t=0; random policy decides the order.
    for (int i = 0; i < 3; ++i) {
      sched->Spawn("t", SleepAndRecord(sched.get(), order.get(), i, Duration()));
    }
    sched->Run();
    return *order;
  };
  EXPECT_EQ(run_once(77), run_once(77));
}

TEST(SchedulerTest, RandomPolicyDependsOnSeed) {
  // With 12 threads the probability that two different seeds produce the
  // identical permutation is 1/12! — treat a collision as failure.
  auto run_once = [](uint64_t seed) {
    auto sched = Scheduler::CreateVirtual(seed);
    auto order = std::make_unique<std::vector<int>>();
    for (int i = 0; i < 12; ++i) {
      sched->Spawn("t", SleepAndRecord(sched.get(), order.get(), i, Duration()));
    }
    sched->Run();
    return *order;
  };
  EXPECT_NE(run_once(1), run_once(2));
}

Task<> WaitOnEvent(Event* e, int* hits) {
  co_await e->Wait();
  ++(*hits);
}

Task<> SignalLater(Scheduler* s, Event* e, bool broadcast) {
  co_await s->Sleep(Duration::Millis(1));
  if (broadcast) {
    e->Broadcast();
  } else {
    e->Signal();
  }
}

TEST(EventTest, SignalWakesExactlyOne) {
  auto sched = Scheduler::CreateVirtual();
  Event e(sched.get());
  int hits = 0;
  sched->SpawnDaemon("w1", WaitOnEvent(&e, &hits));
  sched->SpawnDaemon("w2", WaitOnEvent(&e, &hits));
  sched->Spawn("signaler", SignalLater(sched.get(), &e, /*broadcast=*/false));
  sched->Run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(e.waiter_count(), 1u);
}

TEST(EventTest, BroadcastWakesAll) {
  auto sched = Scheduler::CreateVirtual();
  Event e(sched.get());
  int hits = 0;
  sched->SpawnDaemon("w1", WaitOnEvent(&e, &hits));
  sched->SpawnDaemon("w2", WaitOnEvent(&e, &hits));
  sched->SpawnDaemon("w3", WaitOnEvent(&e, &hits));
  sched->Spawn("signaler", SignalLater(sched.get(), &e, /*broadcast=*/true));
  sched->Run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(e.waiter_count(), 0u);
}

TEST(EventTest, SignalWithNoWaitersIsLost) {
  auto sched = Scheduler::CreateVirtual();
  Event e(sched.get());
  e.Signal();  // nobody listening; nothing happens
  int hits = 0;
  sched->SpawnDaemon("w", WaitOnEvent(&e, &hits));
  sched->Spawn("signaler", SignalLater(sched.get(), &e, false));
  sched->Run();
  EXPECT_EQ(hits, 1);
}

Task<> WaitNotification(Notification* n, int* hits) {
  co_await n->Wait();
  ++(*hits);
}

TEST(NotificationTest, StickyAfterNotify) {
  auto sched = Scheduler::CreateVirtual();
  Notification n(sched.get());
  n.Notify();
  EXPECT_TRUE(n.HasFired());
  int hits = 0;
  // Waiting after the fact completes immediately.
  sched->Spawn("w", WaitNotification(&n, &hits));
  sched->Run();
  EXPECT_EQ(hits, 1);
}

Task<> JoinThread(Thread* t, int* joined) {
  co_await t->done().Wait();
  ++(*joined);
}

Task<> ShortTask(Scheduler* s) { co_await s->Sleep(Duration::Millis(5)); }

TEST(SchedulerTest, JoinViaDoneNotification) {
  auto sched = Scheduler::CreateVirtual();
  Thread* worker = sched->Spawn("worker", ShortTask(sched.get()));
  int joined = 0;
  sched->Spawn("joiner", JoinThread(worker, &joined));
  sched->Run();
  EXPECT_EQ(joined, 1);
  EXPECT_EQ(worker->state(), ThreadState::kFinished);
}

Task<> Forever(Scheduler* s) {
  for (;;) {
    co_await s->Sleep(Duration::Seconds(10));
  }
}

TEST(SchedulerTest, DaemonsDoNotKeepRunAlive) {
  auto sched = Scheduler::CreateVirtual();
  sched->SpawnDaemon("housekeeper", Forever(sched.get()));
  sched->Spawn("worker", ShortTask(sched.get()));
  sched->Run();  // must return once worker is done
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(5));
}

TEST(SchedulerTest, TransientDaemonIsReclaimedAndDoesNotKeepRunAlive) {
  // The one-shot background-job lifetime (fault injectors, bounded rebuild
  // passes): a transient daemon neither keeps Run() alive while it sleeps
  // nor leaves a finished record in the thread table once its body returns.
  auto sched = Scheduler::CreateVirtual();
  const size_t baseline = sched->thread_record_count();
  sched->SpawnTransientDaemon("oneshot", ShortTask(sched.get()));  // 5ms body
  sched->SpawnTransientDaemon("sleeper", Forever(sched.get()));
  sched->Spawn("worker", [](Scheduler* s) -> Task<> {
    co_await s->Sleep(Duration::Millis(20));
  }(sched.get()));
  sched->Run();  // returns when worker finishes, sleeper still parked
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(20));
  // oneshot finished mid-run and was reclaimed; worker's record is retained
  // (regular spawn), sleeper's is still live.
  EXPECT_EQ(sched->thread_record_count(), baseline + 2);
}

TEST(SchedulerTest, RunForBoundsVirtualTime) {
  auto sched = Scheduler::CreateVirtual();
  sched->SpawnDaemon("housekeeper", Forever(sched.get()));
  sched->RunFor(Duration::Seconds(35));
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Seconds(35));
}

Task<> CriticalSection(Scheduler* s, Mutex* m, int* active, int* max_active, int* done) {
  Mutex::Guard guard = co_await m->Lock();
  ++(*active);
  *max_active = std::max(*max_active, *active);
  co_await s->Sleep(Duration::Millis(1));
  --(*active);
  ++(*done);
}

TEST(MutexTest, MutualExclusion) {
  auto sched = Scheduler::CreateVirtual();
  Mutex m(sched.get());
  int active = 0;
  int max_active = 0;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    sched->Spawn("cs", CriticalSection(sched.get(), &m, &active, &max_active, &done));
  }
  sched->Run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(max_active, 1);
  EXPECT_FALSE(m.locked());
}

Task<> GuardReleaseEarly(Scheduler* s, Mutex* m, bool* observed_unlocked) {
  Mutex::Guard guard = co_await m->Lock();
  guard.Release();
  *observed_unlocked = !m->locked();
  co_await s->Sleep(Duration::Millis(1));
}

TEST(MutexTest, GuardEarlyRelease) {
  auto sched = Scheduler::CreateVirtual();
  Mutex m(sched.get());
  bool observed_unlocked = false;
  sched->Spawn("t", GuardReleaseEarly(sched.get(), &m, &observed_unlocked));
  sched->Run();
  EXPECT_TRUE(observed_unlocked);
}

Task<> AcquireN(Scheduler* s, Semaphore* sem, int64_t n, int* done) {
  co_await sem->Acquire(n);
  co_await s->Sleep(Duration::Millis(1));
  sem->Release(n);
  ++(*done);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  auto sched = Scheduler::CreateVirtual();
  Semaphore sem(sched.get(), 2);
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    sched->Spawn("a", AcquireN(sched.get(), &sem, 1, &done));
  }
  sched->Run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(sem.available(), 2);
  // 6 tasks, 2 at a time, 1ms each => exactly 3ms of virtual time.
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Millis(3));
}

TEST(SemaphoreTest, TryAcquire) {
  auto sched = Scheduler::CreateVirtual();
  Semaphore sem(sched.get(), 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

Task<> Producer(Channel<int>* ch, int n) {
  for (int i = 0; i < n; ++i) {
    const bool sent = co_await ch->Send(i);
    PFS_CHECK(sent);
  }
  ch->Close();
}

Task<> Consumer(Channel<int>* ch, std::vector<int>* out) {
  for (;;) {
    std::optional<int> v = co_await ch->Recv();
    if (!v.has_value()) {
      break;
    }
    out->push_back(*v);
  }
}

TEST(ChannelTest, DeliversInOrderThroughBoundedBuffer) {
  auto sched = Scheduler::CreateVirtual();
  Channel<int> ch(sched.get(), 2);  // capacity below item count forces blocking
  std::vector<int> out;
  sched->Spawn("producer", Producer(&ch, 20));
  sched->Spawn("consumer", Consumer(&ch, &out));
  sched->Run();
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(ChannelTest, TryVariants) {
  auto sched = Scheduler::CreateVirtual();
  Channel<int> ch(sched.get(), 1);
  EXPECT_TRUE(ch.TrySend(1));
  EXPECT_FALSE(ch.TrySend(2));  // full
  int v = 0;
  EXPECT_TRUE(ch.TryRecv(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(ch.TryRecv(&v));  // empty
}

Task<> SendToClosed(Channel<int>* ch, bool* result) { *result = co_await ch->Send(1); }

TEST(ChannelTest, SendToClosedFails) {
  auto sched = Scheduler::CreateVirtual();
  Channel<int> ch(sched.get(), 1);
  ch.Close();
  bool result = true;
  sched->Spawn("s", SendToClosed(&ch, &result));
  sched->Run();
  EXPECT_FALSE(result);
}

TEST(SchedulerTest, PostExecutesOnLoop) {
  auto sched = Scheduler::CreateVirtual();
  int ran = 0;
  sched->Post([&] { ++ran; });
  sched->Run();
  EXPECT_EQ(ran, 1);
}

Task<> YieldingCounter(Scheduler* s, int* counter, int n) {
  for (int i = 0; i < n; ++i) {
    ++(*counter);
    co_await s->Yield();
  }
}

TEST(SchedulerTest, YieldInterleavesThreads) {
  auto sched = Scheduler::CreateVirtual();
  int c1 = 0;
  int c2 = 0;
  sched->Spawn("y1", YieldingCounter(sched.get(), &c1, 50));
  sched->Spawn("y2", YieldingCounter(sched.get(), &c2, 50));
  sched->Run();
  EXPECT_EQ(c1, 50);
  EXPECT_EQ(c2, 50);
  // Yields do not advance virtual time.
  EXPECT_EQ(sched->Now(), TimePoint());
  EXPECT_GE(sched->context_switches(), 100u);
}

TEST(SchedulerTest, RealClockSleepTakesWallTime) {
  auto sched = Scheduler::CreateReal();
  std::vector<int> order;
  sched->Spawn("t", SleepAndRecord(sched.get(), &order, 1, Duration::Millis(20)));
  const auto t0 = std::chrono::steady_clock::now();
  sched->Run();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 18);
}

TEST(SchedulerTest, RealClockPostFromOtherOsThread) {
  auto sched = Scheduler::CreateReal();
  sched->set_keep_alive(true);
  int ran = 0;
  std::thread injector([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sched->Post([&] { ++ran; });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sched->RequestStop();
  });
  sched->Run();
  injector.join();
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerTest, LiveThreadCountTracksFinish) {
  auto sched = Scheduler::CreateVirtual();
  sched->Spawn("a", ShortTask(sched.get()));
  sched->Spawn("b", ShortTask(sched.get()));
  EXPECT_EQ(sched->live_thread_count(), 2u);
  sched->Run();
  EXPECT_EQ(sched->live_thread_count(), 0u);
}

// -- Post-after-shutdown contract -------------------------------------------

TEST(SchedulerTest, PostBetweenRunsStillExecutes) {
  // Run() returning does not mean the loop is gone: work posted between runs
  // must execute on the next Run(), not vanish.
  auto sched = Scheduler::CreateVirtual();
  sched->Spawn("a", ShortTask(sched.get()));
  sched->Run();
  int ran = 0;
  sched->Post([&] { ++ran; });
  sched->Run();
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerDeathTest, PostAfterCloseIsACheckedError) {
  // Once the owner declares the loop down for good (Close()), a straggler
  // Post() — the old silent-drop race — must fail loudly instead of
  // enqueueing work that will never run.
  auto sched = Scheduler::CreateVirtual();
  sched->Spawn("a", ShortTask(sched.get()));
  sched->Run();
  sched->Close();
  EXPECT_DEATH(sched->Post([] {}), "closed scheduler");
}

// -- SchedulerGroup: sharded loops ------------------------------------------

// `tag` by value: the coroutine frame outlives the caller's argument.
Task<> PingAcrossShards(Scheduler* home, Scheduler* target, int rounds,
                        std::vector<std::string>* log, std::string tag) {
  for (int i = 0; i < rounds; ++i) {
    co_await home->Sleep(Duration::Micros(100 + 37 * i));
    auto body = [target, i]() -> Task<int> {
      co_await target->Sleep(Duration::Micros(50));
      co_return i * 10 + static_cast<int>(target->shard_index());
    };
    const int got = co_await CallOn<int>(home, target, body);
    log->push_back(tag + ":" + std::to_string(got));
  }
}

std::vector<std::string> RunLockstepPingMesh(uint64_t seed) {
  SchedulerGroup group(4, /*virtual_clock=*/true, seed);
  // Lockstep runs every shard on this OS thread, so one shared log is safe
  // and captures the global interleaving.
  std::vector<std::string> log;
  for (size_t s = 0; s < group.size(); ++s) {
    Scheduler* home = group.shard(s);
    Scheduler* target = group.shard((s + 1) % group.size());
    home->Spawn("ping" + std::to_string(s),
                PingAcrossShards(home, target, 5, &log, "s" + std::to_string(s)));
  }
  group.Run();
  return log;
}

TEST(SchedulerGroupTest, LockstepCrossShardRunsAreDeterministic) {
  const std::vector<std::string> a = RunLockstepPingMesh(99);
  const std::vector<std::string> b = RunLockstepPingMesh(99);
  EXPECT_EQ(a.size(), 20u);  // 4 shards x 5 rounds
  EXPECT_EQ(a, b);
}

TEST(SchedulerGroupTest, CallOnReturnsValueAndCountsCrossPosts) {
  SchedulerGroup group(2, /*virtual_clock=*/true, 7);
  Scheduler* home = group.shard(0);
  Scheduler* target = group.shard(1);
  int result = 0;
  home->Spawn("caller", [](Scheduler* h, Scheduler* t, int* out) -> Task<> {
    auto body = [t]() -> Task<int> {
      co_await t->Sleep(Duration::Millis(1));
      co_return 41 + static_cast<int>(t->shard_index());
    };
    *out = co_await CallOn<int>(h, t, body);
  }(home, target, &result));
  group.Run();
  EXPECT_EQ(result, 42);
  // The hop out and the completion hop home both went through mailboxes.
  EXPECT_GE(target->posts_received(), 1u);
  EXPECT_GE(home->posts_received(), 1u);
  EXPECT_GE(target->cross_posts_sent(), 1u);
}

TEST(SchedulerGroupTest, SameShardCallOnCollapsesInline) {
  SchedulerGroup group(2, /*virtual_clock=*/true, 7);
  Scheduler* home = group.shard(0);
  int result = 0;
  home->Spawn("caller", [](Scheduler* h, int* out) -> Task<> {
    auto body = [h]() -> Task<int> { co_return static_cast<int>(h->shard_index()) + 1; };
    *out = co_await CallOn<int>(h, h, body);
  }(home, &result));
  group.Run();
  EXPECT_EQ(result, 1);
  EXPECT_EQ(home->posts_received(), 0u);  // no mailbox round trip
}

TEST(SchedulerGroupTest, ThreadedRealClockShardsCompleteAcrossOsThreads) {
  SchedulerGroup group(2, /*virtual_clock=*/false, 3);
  int results[2] = {0, 0};
  for (int s = 0; s < 2; ++s) {
    Scheduler* home = group.shard(static_cast<size_t>(s));
    Scheduler* target = group.shard(static_cast<size_t>(1 - s));
    home->Spawn("w" + std::to_string(s), [](Scheduler* h, Scheduler* t, int* out) -> Task<> {
      co_await h->Sleep(Duration::Millis(2));
      auto body = [t]() -> Task<int> {
        co_await t->Sleep(Duration::Millis(1));
        co_return static_cast<int>(t->shard_index()) + 100;
      };
      *out = co_await CallOn<int>(h, t, body);
    }(home, target, &results[s]));
  }
  group.Run();
  EXPECT_EQ(results[0], 101);
  EXPECT_EQ(results[1], 100);
}

TEST(SchedulerGroupTest, GroupOfOneMatchesStandaloneSchedule) {
  // shards = 1 must reproduce the single-scheduler world exactly: the same
  // seed yields the same interleaving as a standalone Scheduler.
  const auto spawn_all = [](Scheduler* sched, std::vector<int>* order) {
    for (int id = 0; id < 4; ++id) {
      sched->Spawn("t" + std::to_string(id),
                   [](Scheduler* s, int me, std::vector<int>* log) -> Task<> {
                     for (int i = 0; i < 8; ++i) {
                       log->push_back(me);
                       co_await s->Yield();
                     }
                   }(sched, id, order));
    }
  };
  std::vector<int> a;
  auto standalone = Scheduler::CreateVirtual(12345);
  spawn_all(standalone.get(), &a);
  standalone->Run();

  std::vector<int> b;
  SchedulerGroup group(1, /*virtual_clock=*/true, 12345);
  spawn_all(group.shard(0), &b);
  group.Run();
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pfs
