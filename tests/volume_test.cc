// Unit tests for src/volume: address-mapping round-trips for striped,
// concatenated, and mirrored volumes over an in-memory fake device, mirror
// degraded-mode behavior, and the volumes' statistics.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "sched/scheduler.h"
#include "volume/volume.h"

namespace pfs {
namespace {

constexpr uint32_t kSector = 512;

// Byte-holding BlockDevice that completes inline: pure address-mapping
// checks, no disk model underneath.
class MemDevice final : public BlockDevice {
 public:
  explicit MemDevice(uint64_t nsectors) : data_(nsectors * kSector, std::byte{0}) {}

  Task<Status> Read(uint64_t sector, uint32_t count, std::span<std::byte> out) override {
    ++reads;
    if (fail) {
      co_return Status(ErrorCode::kIoError, "injected member failure");
    }
    PFS_CHECK((sector + count) * kSector <= data_.size());
    if (!out.empty()) {
      std::memcpy(out.data(), data_.data() + sector * kSector, count * kSector);
    }
    co_return OkStatus();
  }

  Task<Status> Write(uint64_t sector, uint32_t count,
                     std::span<const std::byte> in) override {
    ++writes;
    if (fail) {
      co_return Status(ErrorCode::kIoError, "injected member failure");
    }
    PFS_CHECK((sector + count) * kSector <= data_.size());
    if (!in.empty()) {
      std::memcpy(data_.data() + sector * kSector, in.data(), count * kSector);
    }
    co_return OkStatus();
  }

  uint64_t total_sectors() const override { return data_.size() / kSector; }
  uint32_t sector_bytes() const override { return kSector; }
  size_t QueueDepthHint() const override { return hint; }

  std::byte at(uint64_t sector, uint64_t byte) const { return data_[sector * kSector + byte]; }

  size_t hint = 0;
  bool fail = false;
  int reads = 0;
  int writes = 0;

 private:
  std::vector<std::byte> data_;
};

// Runs one volume operation to completion on a virtual-clock scheduler.
Status RunIo(Scheduler* sched, Task<Status> op) {
  Status result(ErrorCode::kAborted);
  sched->Spawn("io", [](Task<Status> t, Status* out) -> Task<> {
    *out = co_await std::move(t);
  }(std::move(op), &result));
  sched->Run();
  return result;
}

std::vector<std::byte> Pattern(uint32_t sectors, uint8_t salt = 0) {
  std::vector<std::byte> buf(sectors * kSector);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i / kSector + salt) & 0xff);
  }
  return buf;
}

TEST(SingleDiskVolumeTest, SliceOffsetsIntoBacking) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice disk(64);
  SingleDiskVolume vol(sched.get(), "v", &disk, /*start_sector=*/16, /*nsectors=*/32);
  EXPECT_EQ(vol.total_sectors(), 32u);

  auto data = Pattern(4);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 4, data)).ok());
  EXPECT_EQ(disk.at(16, 0), data[0]);  // volume sector 0 = backing sector 16

  std::vector<std::byte> back(4 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 4, back)).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(vol.member_reads(0), 1u);
  EXPECT_EQ(vol.member_writes(0), 1u);
}

TEST(ConcatVolumeTest, SplitsAcrossTheMemberBoundary) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(8);
  MemDevice b(8);
  ConcatVolume vol(sched.get(), "v", {&a, &b});
  ASSERT_EQ(vol.total_sectors(), 16u);

  // Sectors 6..10 straddle the boundary: 2 on `a`, 2 on `b`.
  auto data = Pattern(4, 7);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(6, 4, data)).ok());
  EXPECT_EQ(a.at(6, 0), data[0]);
  EXPECT_EQ(a.at(7, 0), data[kSector]);
  EXPECT_EQ(b.at(0, 0), data[2 * kSector]);
  EXPECT_EQ(b.at(1, 0), data[3 * kSector]);

  std::vector<std::byte> back(4 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(6, 4, back)).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(vol.member_reads(0), 1u);
  EXPECT_EQ(vol.member_reads(1), 1u);
  EXPECT_GT(vol.fanout_width().max(), 1.0);
}

TEST(StripedVolumeTest, MapSectorRoundRobinsUnits) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MemDevice c(16);
  StripedVolume vol(sched.get(), "v", {&a, &b, &c}, /*stripe_unit_sectors=*/4);
  EXPECT_EQ(vol.total_sectors(), 48u);
  EXPECT_EQ(vol.MapSector(0), (std::pair<size_t, uint64_t>{0, 0}));
  EXPECT_EQ(vol.MapSector(3), (std::pair<size_t, uint64_t>{0, 3}));
  EXPECT_EQ(vol.MapSector(4), (std::pair<size_t, uint64_t>{1, 0}));
  EXPECT_EQ(vol.MapSector(8), (std::pair<size_t, uint64_t>{2, 0}));
  EXPECT_EQ(vol.MapSector(12), (std::pair<size_t, uint64_t>{0, 4}));  // second stripe
  EXPECT_EQ(vol.MapSector(47), (std::pair<size_t, uint64_t>{2, 15}));
}

TEST(StripedVolumeTest, WriteReadRoundTripAndPlacement) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);

  // One request covering the whole volume: every sector lands where
  // MapSector says, and reading it back restores the pattern.
  auto data = Pattern(32, 3);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 32, data)).ok());
  for (uint64_t s = 0; s < 32; ++s) {
    const auto [member, member_sector] = vol.MapSector(s);
    const MemDevice& dev = member == 0 ? a : b;
    EXPECT_EQ(dev.at(member_sector, 0), data[s * kSector]) << "sector " << s;
  }
  std::vector<std::byte> back(32 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 32, back)).ok());
  EXPECT_EQ(back, data);

  // The large request split and touched both members.
  EXPECT_EQ(vol.requests(), 2u);
  EXPECT_GT(vol.member_reads(0), 0u);
  EXPECT_GT(vol.member_reads(1), 0u);
  EXPECT_EQ(vol.fanout_width().max(), 2.0);
}

TEST(StripedVolumeTest, EmptySpansSimulatedMode) {
  // The simulated backend passes empty spans; splitting must not touch them.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);
  EXPECT_TRUE(RunIo(sched.get(), vol.Write(0, 24, {})).ok());
  EXPECT_TRUE(RunIo(sched.get(), vol.Read(2, 9, {})).ok());
}

TEST(MirrorVolumeTest, WritesAllMembersReadsBalance) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MirrorVolume vol(sched.get(), "v", {&a, &b});
  EXPECT_EQ(vol.total_sectors(), 16u);

  auto data = Pattern(4, 9);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(2, 4, data)).ok());
  for (uint64_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.at(2 + s, 0), data[s * kSector]);
    EXPECT_EQ(b.at(2 + s, 0), data[s * kSector]);
  }

  // Equal queue depths: reads rotate over the members instead of pinning
  // member 0 (the mirror read balance the stats report).
  std::vector<std::byte> back(4 * kSector);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(RunIo(sched.get(), vol.Read(2, 4, back)).ok());
    EXPECT_EQ(back, data);
  }
  EXPECT_EQ(vol.member_reads(0), 3u);
  EXPECT_EQ(vol.member_reads(1), 3u);
}

TEST(MirrorVolumeTest, ReadsPreferTheShortestQueue) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MirrorVolume vol(sched.get(), "v", {&a, &b});
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 2, Pattern(2))).ok());

  a.hint = 5;  // member 0 busy
  std::vector<std::byte> back(2 * kSector);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 2, back)).ok());
  }
  EXPECT_EQ(vol.member_reads(0), 0u);
  EXPECT_EQ(vol.member_reads(1), 4u);
}

TEST(MirrorVolumeTest, DegradedReadsAndRebuildDebt) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MirrorVolume vol(sched.get(), "v", {&a, &b});
  auto data = Pattern(4, 5);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 4, data)).ok());

  // Member 0 fails: reads keep working from member 1, and writes it misses
  // are counted as rebuild debt.
  ASSERT_TRUE(vol.SetMemberFailed(0, true).ok());
  EXPECT_EQ(vol.live_member_count(), 1u);
  std::vector<std::byte> back(4 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 4, back)).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(a.reads, 0);

  auto fresh = Pattern(4, 6);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 4, fresh)).ok());
  EXPECT_EQ(vol.missed_writes(), 1u);
  EXPECT_EQ(vol.member_missed_writes(0), 1u);
  EXPECT_EQ(b.at(0, 0), fresh[0]);
  EXPECT_NE(a.at(0, 0), fresh[0]);  // stale: member 0 missed the write

  // The degraded-mode counters reach the machine-readable stats too,
  // including the outstanding rebuild debt (4 sectors = 2048 bytes).
  const std::string json = vol.StatJson();
  EXPECT_NE(json.find("\"live_members\":1"), std::string::npos);
  EXPECT_NE(json.find("\"missed_writes\":1"), std::string::npos);
  EXPECT_NE(json.find("\"degraded_reads\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rebuild_debt_bytes\":2048"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reinstate_refusals\":0"), std::string::npos) << json;

  // Both members failed: reads and writes surface an I/O error.
  ASSERT_TRUE(vol.SetMemberFailed(1, true).ok());
  EXPECT_EQ(RunIo(sched.get(), vol.Read(0, 4, back)).code(), ErrorCode::kIoError);
  EXPECT_EQ(RunIo(sched.get(), vol.Write(0, 4, fresh)).code(), ErrorCode::kIoError);

  // Member 1 carries no rebuild debt and comes back; member 0 missed a
  // write, so reinstating it (no rebuild exists yet) is refused — its stale
  // blocks must not rotate into reads.
  ASSERT_TRUE(vol.SetMemberFailed(1, false).ok());
  EXPECT_EQ(vol.SetMemberFailed(0, false).code(), ErrorCode::kUnsupported);
  EXPECT_TRUE(vol.member_failed(0));
  EXPECT_EQ(vol.reinstate_refusals(), 1u);  // the refusal itself is observable
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 4, back)).ok());
  EXPECT_EQ(back, fresh);
}

TEST(MirrorVolumeTest, FallsBackWhenAMemberErrorsUnmarked) {
  // A member that fails without being marked (returns kIoError) is retried
  // on the survivors.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MirrorVolume vol(sched.get(), "v", {&a, &b});
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 2, Pattern(2, 4))).ok());

  a.fail = true;
  b.hint = 1;  // steer the first attempt at the broken member 0
  std::vector<std::byte> back(2 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 2, back)).ok());
  EXPECT_EQ(back, Pattern(2, 4));
  EXPECT_GT(a.reads, 0);  // attempted, failed over

  // The erroring member is failed out (a survivor has the data), so later
  // reads stop paying a doomed attempt on it — and the fallback read shows
  // up in the fan-out histogram as having touched both members.
  EXPECT_TRUE(vol.member_failed(0));
  EXPECT_EQ(vol.fanout_width().max(), 2.0);
  const int attempts_before = a.reads;
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 2, back)).ok());
  EXPECT_EQ(a.reads, attempts_before);
}

TEST(MirrorVolumeTest, AllMembersErroringDoesNotBrickTheVolume) {
  // One transient glitch hitting every replica at once must not mark the
  // whole mirror failed: nothing diverged (no member took the write), so
  // the volume recovers as soon as the members do.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MirrorVolume vol(sched.get(), "v", {&a, &b});
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 2, Pattern(2, 1))).ok());

  a.fail = true;
  b.fail = true;
  EXPECT_EQ(RunIo(sched.get(), vol.Write(0, 2, Pattern(2, 2))).code(),
            ErrorCode::kIoError);
  EXPECT_EQ(RunIo(sched.get(), vol.Read(0, 2, {})).code(), ErrorCode::kIoError);
  EXPECT_EQ(vol.live_member_count(), 2u);  // still live: transient, no divergence
  EXPECT_EQ(vol.missed_writes(), 0u);

  a.fail = false;
  b.fail = false;
  std::vector<std::byte> back(2 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 2, Pattern(2, 3))).ok());
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 2, back)).ok());
  EXPECT_EQ(back, Pattern(2, 3));
}

TEST(MirrorVolumeTest, WriteErrorFailsTheMemberOutInsteadOfDiverging) {
  // A live member whose write errors while a replica succeeds must leave the
  // mirror degraded: otherwise later reads alternate between old and new
  // data depending on which member they pick.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MirrorVolume vol(sched.get(), "v", {&a, &b});
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 2, Pattern(2, 1))).ok());

  b.fail = true;  // transient error, not marked by anyone
  auto fresh = Pattern(2, 2);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 2, fresh)).ok());  // a persisted it
  EXPECT_TRUE(vol.member_failed(1));
  EXPECT_EQ(vol.live_member_count(), 1u);
  EXPECT_EQ(vol.missed_writes(), 1u);

  // Every read now comes from the member that has the new data.
  b.fail = false;
  std::vector<std::byte> back(2 * kSector);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 2, back)).ok());
    EXPECT_EQ(back, fresh);
  }
  EXPECT_EQ(b.reads, 0);
}

TEST(VolumeFanoutTest, TransientWorkersAreReclaimed) {
  // Fan-out workers are transient scheduler threads: a long run of split
  // requests must not grow the scheduler's thread table per fragment.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(64);
  MemDevice b(64);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);

  constexpr int kOps = 50;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 32, {})).ok());  // 8 fragments each
  }
  EXPECT_GT(vol.requests(), 0u);
  // One retained record per RunIo joiner; the 8 * kOps fragment workers are
  // all reclaimed.
  EXPECT_LE(sched->thread_record_count(), static_cast<size_t>(kOps) + 4);
}

TEST(StripedVolumeTest, MapCoalescesAdjacentUnitsPerMember) {
  // 16 sectors over 2 members at 4-sector units = 4 units, 2 per member.
  // Each member's units are member-contiguous, so coalescing folds the 4
  // fragments into 2 — one per member — with caller-buffer segments.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);

  auto fragments = vol.Map(0, 16);
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0].member, 0u);
  EXPECT_EQ(fragments[0].sector, 0u);
  EXPECT_EQ(fragments[0].count, 8u);
  ASSERT_EQ(fragments[0].segments.size(), 2u);
  EXPECT_EQ(fragments[0].segments[0].byte_offset, 0u);
  EXPECT_EQ(fragments[0].segments[0].count, 4u);
  EXPECT_EQ(fragments[0].segments[1].byte_offset, 8 * kSector);  // unit 2
  EXPECT_EQ(fragments[0].segments[1].count, 4u);
  EXPECT_EQ(fragments[1].member, 1u);
  EXPECT_EQ(fragments[1].sector, 0u);
  EXPECT_EQ(fragments[1].count, 8u);
  ASSERT_EQ(fragments[1].segments.size(), 2u);
  EXPECT_EQ(fragments[1].segments[0].byte_offset, 4 * kSector);  // unit 1
  EXPECT_EQ(fragments[1].segments[1].byte_offset, 12 * kSector);  // unit 3
}

TEST(StripedVolumeTest, MapSingleSectorStaysSingleFragment) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);

  auto fragments = vol.Map(5, 1);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].member, 1u);
  EXPECT_EQ(fragments[0].sector, 1u);
  EXPECT_EQ(fragments[0].count, 1u);
  EXPECT_TRUE(fragments[0].segments.empty());  // contiguous, no bounce needed
  EXPECT_EQ(vol.coalesced_fragments(), 0u);
}

TEST(StripedVolumeTest, MapWrapsAcrossAllMembersAtExactUnitMultiples) {
  // 12 sectors over 3 members at 2-sector units = 6 units, exactly 2 per
  // member; every member's pair of units merges into one fragment.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  MemDevice c(16);
  StripedVolume vol(sched.get(), "v", {&a, &b, &c}, 2);

  auto fragments = vol.Map(0, 12);
  ASSERT_EQ(fragments.size(), 3u);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(fragments[m].member, m);
    EXPECT_EQ(fragments[m].sector, 0u);
    EXPECT_EQ(fragments[m].count, 4u);
    ASSERT_EQ(fragments[m].segments.size(), 2u);
    EXPECT_EQ(fragments[m].segments[0].byte_offset, m * 2 * kSector);
    EXPECT_EQ(fragments[m].segments[1].byte_offset, (m + 3) * 2 * kSector);
  }
  EXPECT_EQ(vol.coalesced_fragments(), 3u);  // 6 fragments merged down to 3
}

TEST(StripedVolumeTest, CoalescingSendsOneRequestPerMember) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);

  // 16 sectors = 2 units per member: one gathered write per member, one
  // scattered read per member, and the pattern survives the bounce buffer.
  auto data = Pattern(16, 11);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 16, data)).ok());
  EXPECT_EQ(a.writes, 1);
  EXPECT_EQ(b.writes, 1);
  for (uint64_t s = 0; s < 16; ++s) {
    const auto [member, member_sector] = vol.MapSector(s);
    const MemDevice& dev = member == 0 ? a : b;
    EXPECT_EQ(dev.at(member_sector, 0), data[s * kSector]) << "sector " << s;
    EXPECT_EQ(dev.at(member_sector, kSector - 1), data[s * kSector + kSector - 1]);
  }

  std::vector<std::byte> back(16 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), vol.Read(0, 16, back)).ok());
  EXPECT_EQ(a.reads, 1);
  EXPECT_EQ(b.reads, 1);
  EXPECT_EQ(back, data);
  EXPECT_GT(vol.coalesced_fragments(), 0u);
  EXPECT_EQ(vol.bounce_bytes(), 2u * 16 * kSector);  // both directions bounced
}

TEST(StripedVolumeTest, CoalescingOffMatchesCoalescingOn) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume on(sched.get(), "on", {&a, &b}, 4);
  MemDevice c(16);
  MemDevice d(16);
  StripedVolume off(sched.get(), "off", {&c, &d}, 4);
  off.set_coalesce(false);

  auto data = Pattern(16, 13);
  ASSERT_TRUE(RunIo(sched.get(), on.Write(0, 16, data)).ok());
  ASSERT_TRUE(RunIo(sched.get(), off.Write(0, 16, data)).ok());

  // Same bytes in the same member sectors, different request counts: the
  // uncoalesced volume sent one request per stripe unit.
  for (uint64_t s = 0; s < 16; ++s) {
    const auto [member, member_sector] = on.MapSector(s);
    const MemDevice& dev_on = member == 0 ? a : b;
    const MemDevice& dev_off = member == 0 ? c : d;
    EXPECT_EQ(dev_on.at(member_sector, 0), dev_off.at(member_sector, 0));
  }
  EXPECT_EQ(a.writes + b.writes, 2);
  EXPECT_EQ(c.writes + d.writes, 4);
  EXPECT_EQ(off.coalesced_fragments(), 0u);
  EXPECT_EQ(off.bounce_bytes(), 0u);

  std::vector<std::byte> back_on(16 * kSector);
  std::vector<std::byte> back_off(16 * kSector);
  ASSERT_TRUE(RunIo(sched.get(), on.Read(0, 16, back_on)).ok());
  ASSERT_TRUE(RunIo(sched.get(), off.Read(0, 16, back_off)).ok());
  EXPECT_EQ(back_on, data);
  EXPECT_EQ(back_off, data);
}

TEST(StripedVolumeTest, CoalescedEmptySpansSkipTheBounce) {
  // Simulated mode: empty caller spans coalesce (fewer member requests) but
  // never allocate a bounce buffer — no real bytes move.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 16, {})).ok());
  EXPECT_EQ(a.writes, 1);
  EXPECT_EQ(b.writes, 1);
  EXPECT_GT(vol.coalesced_fragments(), 0u);
  EXPECT_EQ(vol.bounce_bytes(), 0u);
}

TEST(ConcatVolumeTest, MapDoesNotMergeAcrossMembers) {
  // Concat fragments on different members stay separate; within one member a
  // run is already contiguous, so nothing needs merging either.
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(8);
  MemDevice b(8);
  ConcatVolume vol(sched.get(), "v", {&a, &b});
  auto fragments = vol.Map(6, 4);
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0].member, 0u);
  EXPECT_EQ(fragments[1].member, 1u);
  EXPECT_TRUE(fragments[0].segments.empty());
  EXPECT_TRUE(fragments[1].segments.empty());
  EXPECT_EQ(vol.coalesced_fragments(), 0u);
}

TEST(VolumeStatsTest, ReportAndJson) {
  auto sched = Scheduler::CreateVirtual(1);
  MemDevice a(16);
  MemDevice b(16);
  StripedVolume vol(sched.get(), "v", {&a, &b}, 4);
  ASSERT_TRUE(RunIo(sched.get(), vol.Write(0, 16, Pattern(16))).ok());

  EXPECT_EQ(vol.stat_name(), "volume.v");
  const std::string report = vol.StatReport(false);
  EXPECT_NE(report.find("kind=striped"), std::string::npos);
  EXPECT_NE(report.find("member 1:"), std::string::npos);
  const std::string json = vol.StatJson();
  EXPECT_NE(json.find("\"kind\":\"striped\""), std::string::npos);
  EXPECT_NE(json.find("\"split_requests\":1"), std::string::npos);

  StatsRegistry registry;
  registry.Register(&vol);
  const std::string all = registry.ReportJson();
  EXPECT_EQ(all.find("{\"volume.v\":{"), 0u);
  EXPECT_EQ(all.back(), '}');
}

}  // namespace
}  // namespace pfs
