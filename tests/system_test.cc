// Tests for the shared assembly layer: one SystemConfig instantiates both
// the simulated stack and the file-backed stack, the same workload produces
// identical logical results on each, and invalid descriptions are rejected
// with a clear Status instead of divergent per-server parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "client/client_interface.h"
#include "online/pfs_server.h"
#include "system/system_builder.h"

namespace pfs {
namespace {

// What a workload leaves behind, as the client sees it: directory listing,
// file sizes, operation successes. Identical across backends by design.
struct WorkloadResult {
  std::vector<std::string> entries;
  std::vector<uint64_t> sizes;
  uint64_t ops_ok = 0;
};

Task<Status> RunWorkload(ClientInterface* c, WorkloadResult* out) {
  OpenOptions create;
  create.create = true;
  PFS_CO_RETURN_IF_ERROR(co_await c->Mkdir("/fs0/dir"));
  ++out->ops_ok;
  for (int i = 0; i < 6; ++i) {
    auto fd = co_await c->Open("/fs0/dir/f" + std::to_string(i), create);
    PFS_CO_RETURN_IF_ERROR(fd.status());
    const uint64_t bytes = 1024 + static_cast<uint64_t>(i) * 3000;
    auto wrote = co_await c->Write(*fd, 0, bytes, {});
    PFS_CO_RETURN_IF_ERROR(wrote.status());
    auto read = co_await c->Read(*fd, 0, bytes / 2, {});
    PFS_CO_RETURN_IF_ERROR(read.status());
    PFS_CO_RETURN_IF_ERROR(co_await c->Close(*fd));
    ++out->ops_ok;
  }
  // Churn: delete one file, rename another, and use the second mount.
  PFS_CO_RETURN_IF_ERROR(co_await c->Unlink("/fs0/dir/f0"));
  ++out->ops_ok;
  PFS_CO_RETURN_IF_ERROR(co_await c->Rename("/fs0/dir/f1", "/fs0/dir/g1"));
  ++out->ops_ok;
  {
    auto fd = co_await c->Open("/fs1/other", create);
    PFS_CO_RETURN_IF_ERROR(fd.status());
    auto wrote = co_await c->Write(*fd, 0, 8192, {});
    PFS_CO_RETURN_IF_ERROR(wrote.status());
    PFS_CO_RETURN_IF_ERROR(co_await c->Close(*fd));
    ++out->ops_ok;
  }
  auto entries = co_await c->ReadDir("/fs0/dir");
  PFS_CO_RETURN_IF_ERROR(entries.status());
  for (const DirEntry& e : *entries) {
    out->entries.push_back(e.name);
    auto attrs = co_await c->Stat("/fs0/dir/" + e.name);
    PFS_CO_RETURN_IF_ERROR(attrs.status());
    out->sizes.push_back(attrs->size);
  }
  std::vector<size_t> order(out->entries.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return out->entries[a] < out->entries[b];
  });
  WorkloadResult sorted;
  for (size_t i : order) {
    sorted.entries.push_back(out->entries[i]);
    sorted.sizes.push_back(out->sizes[i]);
  }
  out->entries = std::move(sorted.entries);
  out->sizes = std::move(sorted.sizes);
  co_return co_await c->SyncAll();
}

// Two disks, two LFS file systems — enough topology to exercise the
// round-robin partitioner in both backends.
SystemConfig SmallConfig() {
  SystemConfig config;
  config.disks_per_bus = {2};
  config.num_filesystems = 2;
  config.cache_bytes = 2 * kMiB;
  config.lfs_segment_blocks = 64;
  config.max_inodes = 1024;
  config.flush_policy = "ups";
  config.image_bytes = 8 * kMiB;
  return config;
}

// PFS_TEST_SHARDS re-runs the plain-topology suites on a sharded scheduler
// (CI sets it to 4 for a second ctest pass). Configs with explicit volume
// specs keep their own shard count: mirrors must stay shard-local, which a
// blanket override could violate.
int EnvShards() {
  const char* env = std::getenv("PFS_TEST_SHARDS");
  if (env == nullptr) {
    return 1;
  }
  const int n = std::atoi(env);
  return n >= 1 ? n : 1;
}

Result<WorkloadResult> RunOn(const SystemConfig& config, bool coalesce = true) {
  SystemConfig cfg = config;
  if (cfg.volumes.empty() && cfg.shards == 1) {
    cfg.shards = EnvShards();
  }
  PFS_ASSIGN_OR_RETURN(std::unique_ptr<System> system, SystemBuilder::Build(cfg));
  PFS_RETURN_IF_ERROR(system->Setup());
  for (int i = 0; i < cfg.num_filesystems; ++i) {
    system->volume(i)->set_coalesce(coalesce);
  }
  WorkloadResult result;
  Status status(ErrorCode::kAborted);
  system->scheduler()->Spawn("test.workload",
                             [](System* sys, WorkloadResult* out, Status* st) -> Task<> {
                               *st = co_await RunWorkload(sys->client(), out);
                             }(system.get(), &result, &status));
  system->RunToCompletion();
  PFS_RETURN_IF_ERROR(status);
  return result;
}

// Like RunOn, but also captures the registry's JSON report so sharded runs
// can be compared byte-for-byte.
struct RunReport {
  WorkloadResult result;
  std::string stats_json;
};

Result<RunReport> RunReported(const SystemConfig& config) {
  PFS_ASSIGN_OR_RETURN(std::unique_ptr<System> system, SystemBuilder::Build(config));
  PFS_RETURN_IF_ERROR(system->Setup());
  RunReport report;
  Status status(ErrorCode::kAborted);
  system->scheduler()->Spawn("test.workload",
                             [](System* sys, WorkloadResult* out, Status* st) -> Task<> {
                               *st = co_await RunWorkload(sys->client(), out);
                             }(system.get(), &report.result, &status));
  system->RunToCompletion();
  PFS_RETURN_IF_ERROR(status);
  report.stats_json = system->stats().ReportJson();
  return report;
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = testing::TempDir() + "/pfs_system_test.img";
    RemoveImages();
  }
  void TearDown() override { RemoveImages(); }
  void RemoveImages() {
    std::remove(image_.c_str());
    for (int d = 1; d < 4; ++d) {
      std::remove((image_ + "." + std::to_string(d)).c_str());
    }
  }

  std::string image_;
};

TEST_F(SystemTest, SameConfigSameResultsOnBothBackends) {
  SystemConfig config = SmallConfig();
  config.image_path = image_;

  config.backend = BackendKind::kSimulated;
  auto sim = RunOn(config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  config.backend = BackendKind::kFileBacked;
  auto real = RunOn(config);
  ASSERT_TRUE(real.ok()) << real.status().ToString();

  EXPECT_EQ(sim->entries, real->entries);
  EXPECT_EQ(sim->sizes, real->sizes);
  EXPECT_EQ(sim->ops_ok, real->ops_ok);
  EXPECT_EQ(sim->entries,
            (std::vector<std::string>{"f2", "f3", "f4", "f5", "g1"}));
}

TEST_F(SystemTest, StripedAndMirroredVolumesSameResultsOnBothBackends) {
  // fs0 striped over both disks, fs1 mirrored over both: the workload's
  // logical results must not depend on the backend — the volume layer is
  // below the cache, so the same splitting code runs in both stacks.
  SystemConfig config = SmallConfig();
  config.image_path = image_;
  config.image_bytes = 16 * kMiB;
  VolumeSpec striped;
  striped.kind = "striped";
  striped.members = {0, 1};
  striped.stripe_unit_kb = 16;
  VolumeSpec mirror;
  mirror.kind = "mirror";
  mirror.members = {0, 1};
  config.volumes = {striped, mirror};

  config.backend = BackendKind::kSimulated;
  auto sim = RunOn(config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  config.backend = BackendKind::kFileBacked;
  auto real = RunOn(config);
  ASSERT_TRUE(real.ok()) << real.status().ToString();

  EXPECT_EQ(sim->entries, real->entries);
  EXPECT_EQ(sim->sizes, real->sizes);
  EXPECT_EQ(sim->ops_ok, real->ops_ok);
  EXPECT_EQ(sim->entries, (std::vector<std::string>{"f2", "f3", "f4", "f5", "g1"}));
}

TEST_F(SystemTest, BothEnginesAndCoalescingModesSameResults) {
  // The batched path must be invisible to the file system: file-backed
  // striped runs under the threadpool engine, the uring engine (falling back
  // where unavailable), and with coalescing disabled all produce the same
  // logical results as each other and as the simulation.
  SystemConfig config = SmallConfig();
  config.image_path = image_;
  config.image_bytes = 16 * kMiB;
  VolumeSpec striped;
  striped.kind = "striped";
  striped.members = {0, 1};
  striped.stripe_unit_kb = 16;
  VolumeSpec mirror;
  mirror.kind = "mirror";
  mirror.members = {0, 1};
  config.volumes = {striped, mirror};

  config.backend = BackendKind::kSimulated;
  auto sim = RunOn(config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  config.backend = BackendKind::kFileBacked;
  config.io_engine = "threadpool";
  auto pool = RunOn(config);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();

  auto pool_uncoalesced = RunOn(config, /*coalesce=*/false);
  ASSERT_TRUE(pool_uncoalesced.ok()) << pool_uncoalesced.status().ToString();

  config.io_engine = "uring";
  auto uring = RunOn(config);
  ASSERT_TRUE(uring.ok()) << uring.status().ToString();

  EXPECT_EQ(sim->entries, pool->entries);
  EXPECT_EQ(sim->sizes, pool->sizes);
  EXPECT_EQ(pool->entries, pool_uncoalesced->entries);
  EXPECT_EQ(pool->sizes, pool_uncoalesced->sizes);
  EXPECT_EQ(pool->ops_ok, pool_uncoalesced->ops_ok);
  EXPECT_EQ(pool->entries, uring->entries);
  EXPECT_EQ(pool->sizes, uring->sizes);
  EXPECT_EQ(pool->ops_ok, uring->ops_ok);
}

TEST_F(SystemTest, StripedVolumeFansOutOverTheMembers) {
  SystemConfig config = SmallConfig();
  config.backend = BackendKind::kSimulated;
  config.num_filesystems = 1;
  VolumeSpec striped;
  striped.kind = "striped";
  striped.members = {0, 1};
  striped.stripe_unit_kb = 16;
  config.volumes = {striped};

  auto system_or = SystemBuilder::Build(config);
  ASSERT_TRUE(system_or.ok()) << system_or.status().ToString();
  std::unique_ptr<System> system = std::move(system_or).value();
  ASSERT_TRUE(system->Setup().ok());
  Status status(ErrorCode::kAborted);
  system->scheduler()->Spawn("wl", [](System* sys, Status* st) -> Task<> {
    OpenOptions create;
    create.create = true;
    auto fd = co_await sys->client()->Open("/fs0/big", create);
    if (!fd.ok()) {
      *st = fd.status();
      co_return;
    }
    auto wrote = co_await sys->client()->Write(*fd, 0, 2 * kMiB, {});
    if (!wrote.ok()) {
      *st = wrote.status();
      co_return;
    }
    *st = co_await sys->client()->Close(*fd);
    if (st->ok()) {
      *st = co_await sys->client()->SyncAll();
    }
  }(system.get(), &status));
  system->scheduler()->Run();
  ASSERT_TRUE(status.ok()) << status.ToString();

  // The LFS segment writes were split across both member disks.
  Volume* volume = system->volume(0);
  EXPECT_STREQ(volume->kind(), "striped");
  EXPECT_GT(volume->member_writes(0), 0u);
  EXPECT_GT(volume->member_writes(1), 0u);
  EXPECT_GT(system->drivers()[0]->ops_completed(), 0u);
  EXPECT_GT(system->drivers()[1]->ops_completed(), 0u);
  // And the volume reports as a stat source in the registry.
  EXPECT_NE(system->StatReport(false).find("volume.fs0"), std::string::npos);
}

TEST_F(SystemTest, FileBackedStacksAllThreeLayouts) {
  for (const char* layout : {"lfs", "ffs", "guessing"}) {
    SystemConfig config = SmallConfig();
    config.image_path = image_;
    config.backend = BackendKind::kFileBacked;
    config.layout = layout;
    config.image_bytes = 16 * kMiB;  // one FFS cylinder group per partition
    auto result = RunOn(config);
    ASSERT_TRUE(result.ok()) << layout << ": " << result.status().ToString();
    EXPECT_EQ(result->ops_ok, 10u) << layout;
    TearDown();  // fresh images per layout
  }
}

TEST_F(SystemTest, OnlineServerRunsMultiDiskFfsTopology) {
  PfsServerConfig config;
  config.image_path = image_;
  config.image_bytes = 16 * kMiB;
  config.disks_per_bus = {2};
  config.num_filesystems = 2;
  config.layout = "ffs";
  auto server_or = PfsServer::Start(config);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).value();
  ASSERT_EQ(server->filesystem_count(), 2);
  EXPECT_STREQ(server->layout(0)->layout_name(), "ffs");
  EXPECT_STREQ(server->layout(1)->layout_name(), "ffs");
  const Status status = server->Submit([](ClientInterface* c) -> Task<Status> {
    OpenOptions create;
    create.create = true;
    for (const char* path : {"/fs0/a", "/fs1/b"}) {
      auto fd = co_await c->Open(path, create);
      PFS_CO_RETURN_IF_ERROR(fd.status());
      std::vector<std::byte> data(4096, std::byte{0x5a});
      auto wrote = co_await c->Write(*fd, 0, data.size(), data);
      PFS_CO_RETURN_IF_ERROR(wrote.status());
      std::vector<std::byte> back(4096);
      auto read = co_await c->Read(*fd, 0, back.size(), back);
      PFS_CO_RETURN_IF_ERROR(read.status());
      if (back != data) {
        co_return Status(ErrorCode::kCorrupt, "read-back mismatch");
      }
      PFS_CO_RETURN_IF_ERROR(co_await c->Close(*fd));
    }
    co_return OkStatus();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(server->Stop().ok());
}

// -- Sharded scheduler: determinism and backend equivalence ----------------

TEST_F(SystemTest, ShardedRunsAreDeterministic) {
  // Four shards in virtual-clock lockstep: two runs of the same seed produce
  // byte-identical stats reports, including the per-shard sched sources.
  SystemConfig config = SmallConfig();
  config.backend = BackendKind::kSimulated;
  config.disks_per_bus = {2, 2};
  config.num_filesystems = 4;
  config.shards = 4;

  auto a = RunReported(config);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = RunReported(config);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a->result.entries, b->result.entries);
  EXPECT_EQ(a->result.sizes, b->result.sizes);
  EXPECT_EQ(a->result.ops_ok, b->result.ops_ok);
  EXPECT_EQ(a->stats_json, b->stats_json);
  EXPECT_NE(a->stats_json.find("sched.shard0"), std::string::npos);
  EXPECT_NE(a->stats_json.find("sched.shard3"), std::string::npos);
  EXPECT_NE(a->stats_json.find("mailbox_depth"), std::string::npos);
}

TEST_F(SystemTest, ShardedStripedAndMirroredAcrossShardCounts) {
  // The shard count is a performance knob, not a semantic one: striped fs0 on
  // shard 0 and mirrored fs1 on another shard produce the same logical
  // results at shards = 1, 2, 4 on both backends. The mirror's members are
  // kept shard-local (disks 2 and 3 are only referenced by fs1), as the
  // validator requires.
  std::vector<WorkloadResult> results;
  for (int shards : {1, 2, 4}) {
    for (BackendKind backend : {BackendKind::kSimulated, BackendKind::kFileBacked}) {
      SystemConfig config = SmallConfig();
      config.image_path = image_;
      config.image_bytes = 16 * kMiB;
      config.disks_per_bus = {2, 2};
      config.shards = shards;
      config.fs_shards = {0, std::min(1, shards - 1)};
      VolumeSpec striped;
      striped.kind = "striped";
      striped.members = {0, 1};
      striped.stripe_unit_kb = 16;
      VolumeSpec mirror;
      mirror.kind = "mirror";
      mirror.members = {2, 3};
      config.volumes = {striped, mirror};
      config.backend = backend;
      auto r = RunOn(config);
      ASSERT_TRUE(r.ok()) << "shards=" << shards << " backend="
                          << (backend == BackendKind::kSimulated ? "sim" : "file") << ": "
                          << r.status().ToString();
      results.push_back(std::move(*r));
      RemoveImages();  // fresh images per combination
    }
  }
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].entries, results[i].entries) << "run " << i;
    EXPECT_EQ(results[0].sizes, results[i].sizes) << "run " << i;
    EXPECT_EQ(results[0].ops_ok, results[i].ops_ok) << "run " << i;
  }
  EXPECT_EQ(results[0].entries,
            (std::vector<std::string>{"f2", "f3", "f4", "f5", "g1"}));
}

// -- Validation: every config error surfaces in one place ------------------

TEST(SystemValidateTest, RejectsZeroDisks) {
  SystemConfig config;
  config.disks_per_bus = {};
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);
  config.disks_per_bus = {0, 0};
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);
  EXPECT_FALSE(SystemBuilder::Build(config).ok());
}

TEST(SystemValidateTest, RejectsUnknownNames) {
  SystemConfig config;
  config.layout = "zfs";
  const Status layout_status = SystemBuilder::Validate(config);
  EXPECT_EQ(layout_status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(layout_status.ToString().find("layout"), std::string::npos);

  config = SystemConfig{};
  config.flush_policy = "sometimes";
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);

  config = SystemConfig{};
  config.replacement = "MRU";
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);

  config = SystemConfig{};
  config.cleaner = "lazy";
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);

  config = SystemConfig{};
  config.queue_policy = "ELEVATOR";
  const Status queue_status = SystemBuilder::Validate(config);
  EXPECT_EQ(queue_status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(queue_status.ToString().find("queue_policy"), std::string::npos);
  EXPECT_NE(queue_status.ToString().find("C-LOOK"), std::string::npos);
}

TEST(SystemValidateTest, AcceptsEveryQueuePolicyName) {
  for (const char* name : {"FCFS", "SSTF", "SCAN", "C-SCAN", "LOOK", "C-LOOK"}) {
    SystemConfig config;
    config.queue_policy = name;
    EXPECT_TRUE(SystemBuilder::Validate(config).ok()) << name;
  }
}

TEST(SystemValidateTest, RejectsBadVolumeSpecs) {
  SystemConfig base;
  base.disks_per_bus = {2};
  base.num_filesystems = 2;

  SystemConfig config = base;
  VolumeSpec spec;
  spec.members = {0};
  config.volumes = {spec};  // 1 spec for 2 file systems
  Status status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("volumes"), std::string::npos);

  config = base;
  spec = VolumeSpec{};
  spec.kind = "raid6";
  spec.members = {0};
  config.volumes = {spec, spec};
  status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("kind"), std::string::npos);

  config = base;
  spec = VolumeSpec{};
  spec.members = {0, 7};  // disk 7 does not exist
  spec.kind = "mirror";
  config.volumes = {spec, spec};
  status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("members"), std::string::npos);

  config = base;
  spec = VolumeSpec{};
  spec.kind = "single";
  spec.members = {0, 1};  // single takes exactly one
  config.volumes = {spec, spec};
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);

  config = base;
  spec = VolumeSpec{};
  spec.kind = "striped";
  spec.members = {0, 1};
  spec.stripe_unit_kb = 0;
  config.volumes = {spec, spec};
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);

  // A stripe unit smaller than (or not a multiple of) the sector must be a
  // Status error, not a divide-by-zero.
  config = base;
  config.disk_params.geometry.sector_bytes = 4096;
  spec.stripe_unit_kb = 1;
  config.volumes = {spec, spec};
  status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("stripe_unit_kb"), std::string::npos);

  // The same disk twice in one volume: a mirror with zero redundancy.
  config = base;
  spec = VolumeSpec{};
  spec.kind = "mirror";
  spec.members = {0, 0};
  config.volumes = {spec, spec};
  status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("twice"), std::string::npos);
}

TEST(SystemValidateTest, AcceptsVolumeSpecsThatFit) {
  SystemConfig config;
  config.disks_per_bus = {3};
  config.num_filesystems = 2;
  VolumeSpec striped;
  striped.kind = "striped";
  striped.members = {0, 1, 2};
  VolumeSpec concat;
  concat.kind = "concat";
  concat.members = {0, 2};
  config.volumes = {striped, concat};
  EXPECT_TRUE(SystemBuilder::Validate(config).ok())
      << SystemBuilder::Validate(config).ToString();
}

TEST(SystemValidateTest, RejectsMoreFilesystemsThanDisksCanHold) {
  SystemConfig config;
  config.backend = BackendKind::kFileBacked;
  config.image_path = "/tmp/pfs_validate_test.img";
  config.disks_per_bus = {1};
  config.image_bytes = 8 * kMiB;
  config.num_filesystems = 64;  // 8 MiB / 64 partitions << an LFS minimum
  const Status status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("num_filesystems"), std::string::npos);
}

TEST(SystemValidateTest, RejectsFileBackedWithoutImagePath) {
  SystemConfig config = SystemConfig::OnlineDefaults();
  EXPECT_EQ(SystemBuilder::Validate(config).code(), ErrorCode::kInvalidArgument);
  config.image_path = "/tmp/pfs_validate_test2.img";
  EXPECT_TRUE(SystemBuilder::Validate(config).ok());
}

TEST(SystemValidateTest, RejectsShardPinOutsideTheShardRange) {
  // The parse error carries the offending line and enumerates the range.
  auto parsed = SystemConfig::Parse(
      "backend = simulated\n"
      "topology.disks_per_bus = 2\n"
      "topology.num_filesystems = 2\n"
      "system.shards = 2\n"
      "fs0.shard = 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
  const std::string msg = parsed.status().ToString();
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("valid shards are 0..1"), std::string::npos) << msg;

  // Same rejection for a programmatic config, through Validate.
  SystemConfig config;
  config.disks_per_bus = {2};
  config.num_filesystems = 2;
  config.shards = 2;
  config.fs_shards = {5};
  const Status status = SystemBuilder::Validate(config);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid shards are 0..1"), std::string::npos);

  // With one shard the enumeration degenerates to the only legal value.
  config.shards = 1;
  config.fs_shards = {1};
  const Status one = SystemBuilder::Validate(config);
  EXPECT_EQ(one.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(one.ToString().find("the only valid shard is 0"), std::string::npos);
}

TEST(SystemValidateTest, RejectsCrossShardMirrorMembers) {
  // disk 0 is owned by fs0's shard; a mirror on another shard may not
  // reference it — every replica write would cross shards.
  auto parsed = SystemConfig::Parse(
      "backend = simulated\n"
      "topology.disks_per_bus = 1, 1\n"
      "topology.num_filesystems = 2\n"
      "system.shards = 2\n"
      "fs0.shard = 0\n"
      "fs1.shard = 1\n"
      "volume0.kind = single\n"
      "volume0.members = 0\n"
      "volume1.kind = mirror\n"
      "volume1.members = 0, 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
  const std::string msg = parsed.status().ToString();
  EXPECT_NE(msg.find("mirror"), std::string::npos) << msg;
  EXPECT_NE(msg.find("shard-local"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 6"), std::string::npos) << msg;
}

TEST(SystemValidateTest, RejectsShardedSimulationOnTheRealClock) {
  auto parsed = SystemConfig::Parse(
      "backend = simulated\n"
      "clock = real\n"
      "topology.disks_per_bus = 2\n"
      "topology.num_filesystems = 2\n"
      "system.shards = 2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(parsed.status().ToString().find("virtual clock"), std::string::npos)
      << parsed.status().ToString();
}

TEST(SystemValidateTest, PatsyAndOnlineShareOneDescription) {
  // The cut-and-paste property as an API: the same value validates for both
  // instantiations, and each facade only flips the backend.
  SystemConfig shared = SystemConfig::OnlineDefaults();
  shared.image_path = "/tmp/pfs_validate_test3.img";
  EXPECT_TRUE(SystemBuilder::Validate(shared).ok());
  SystemConfig sim = shared;
  sim.backend = BackendKind::kSimulated;
  EXPECT_TRUE(SystemBuilder::Validate(sim).ok());
  EXPECT_TRUE(sim.virtual_clock());
  EXPECT_FALSE(shared.virtual_clock());
}

}  // namespace
}  // namespace pfs
