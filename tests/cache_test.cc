// Unit tests for src/cache: buffer cache mechanics, replacement policies,
// and the flush (persistency) policies the paper experiments with.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cache/buffer_cache.h"
#include "cache/data_mover.h"
#include "cache/flush_policy.h"
#include "cache/replacement.h"
#include "sched/scheduler.h"

namespace pfs {
namespace {

// Storage stand-in: charges a fixed latency per operation and records write
// traffic so tests can observe what reached "disk".
class FakeHandler : public BlockIoHandler {
 public:
  explicit FakeHandler(Scheduler* sched) : sched_(sched) {}

  Task<Status> FillBlock(const BlockId& id, CacheBlock* block) override {
    (void)block;
    ++fills;
    filled.push_back(id);
    co_await sched_->Sleep(Duration::Millis(1));
    co_return OkStatus();
  }

  Task<Status> WriteBlocks(uint64_t ino, std::span<CacheBlock* const> blocks) override {
    ++write_calls;
    blocks_written += blocks.size();
    for (const CacheBlock* b : blocks) {
      written.push_back(b->id);
      (void)ino;
    }
    co_await sched_->Sleep(Duration::Millis(2));
    co_return OkStatus();
  }

  int fills = 0;
  int write_calls = 0;
  size_t blocks_written = 0;
  std::vector<BlockId> filled;
  std::vector<BlockId> written;

 private:
  Scheduler* sched_;
};

struct CacheFixture {
  explicit CacheFixture(BufferCache::Config config = DefaultConfig(),
                        std::unique_ptr<ReplacementPolicy> repl = nullptr,
                        std::unique_ptr<FlushPolicy> flush = nullptr) {
    sched = Scheduler::CreateVirtual(7);
    handler = std::make_unique<FakeHandler>(sched.get());
    if (repl == nullptr) {
      repl = std::make_unique<LruReplacement>();
    }
    if (flush == nullptr) {
      flush = std::make_unique<UpsPolicy>();
    }
    cache = std::make_unique<BufferCache>(sched.get(), config, std::move(repl),
                                          std::move(flush));
    cache->RegisterHandler(1, handler.get());
    cache->Start();
  }

  static BufferCache::Config DefaultConfig() {
    BufferCache::Config c;
    c.block_size = 4096;
    c.capacity_bytes = 8 * 4096;  // 8 blocks: small enough to force eviction
    return c;
  }

  static BlockId Id(uint64_t ino, uint64_t blk) { return BlockId{1, ino, blk}; }

  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<FakeHandler> handler;
  std::unique_ptr<BufferCache> cache;
};

Task<> TouchBlock(BufferCache* cache, BlockId id, GetMode mode, bool dirty, Status* out) {
  auto r = co_await cache->GetBlock(id, mode);
  if (!r.ok()) {
    *out = r.status();
    co_return;
  }
  CacheBlock* b = *r;
  if (dirty) {
    const Status s = co_await cache->MarkDirty(b);
    if (!s.ok()) {
      cache->Release(b);
      *out = s;
      co_return;
    }
  }
  cache->Release(b);
  *out = OkStatus();
}

TEST(BufferCacheTest, MissFillsThenHits) {
  CacheFixture f;
  Status s1;
  Status s2;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* a, Status* b) -> Task<> {
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(10, 0), GetMode::kRead, false, a);
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(10, 0), GetMode::kRead, false, b);
  }(&f, &s1, &s2));
  f.sched->Run();
  EXPECT_TRUE(s1.ok());
  EXPECT_TRUE(s2.ok());
  EXPECT_EQ(f.handler->fills, 1);
  EXPECT_EQ(f.cache->hits(), 1u);
  EXPECT_EQ(f.cache->misses(), 1u);
}

TEST(BufferCacheTest, OverwriteModeSkipsFill) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(10, 0), GetMode::kOverwrite, true,
                        out);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(f.handler->fills, 0);
  EXPECT_EQ(f.cache->dirty_count(), 1u);
}

TEST(BufferCacheTest, ConcurrentMissesShareOneFill) {
  CacheFixture f;
  std::vector<Status> statuses(4);
  for (int i = 0; i < 4; ++i) {
    f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(10, 0), GetMode::kRead, false, out);
    }(&f, &statuses[i]));
  }
  f.sched->Run();
  for (const auto& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(f.handler->fills, 1);
}

TEST(BufferCacheTest, LruEvictsOldestClean) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    // Fill all 8 slots with clean blocks, then touch block 0 to refresh it,
    // then bring in a 9th: the victim must be block 1 (the LRU).
    for (uint64_t i = 0; i < 8; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kRead, false, out);
    }
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 0), GetMode::kRead, false, out);
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(2, 0), GetMode::kRead, false, out);
    // Re-access 0: must still be cached (refreshed). Re-access 1: refetched.
    const int fills_before = fx->handler->fills;
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 0), GetMode::kRead, false, out);
    PFS_CHECK(fx->handler->fills == fills_before);
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 1), GetMode::kRead, false, out);
    PFS_CHECK(fx->handler->fills == fills_before + 1);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  EXPECT_GE(f.cache->evictions(), 1u);
}

TEST(BufferCacheTest, DirtyBlocksNotEvictedWithoutFlush) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    // Dirty all 8 blocks, then request a 9th; the UPS policy must flush the
    // oldest dirty block to make space.
    for (uint64_t i = 0; i < 8; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kOverwrite, true,
                          out);
    }
    PFS_CHECK(fx->handler->write_calls == 0);  // UPS: nothing written yet
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(2, 0), GetMode::kRead, false, out);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  EXPECT_GE(f.handler->write_calls, 1);
  EXPECT_GE(f.cache->blocks_flushed(), 1u);
}

TEST(BufferCacheTest, FlushFileGroupsAllDirtyBlocks) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    for (uint64_t i = 0; i < 5; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(7, i), GetMode::kOverwrite, true,
                          out);
    }
    const Status fs = co_await fx->cache->FlushFile(1, 7);
    PFS_CHECK(fs.ok());
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  // All five blocks in a single WriteBlocks call, sorted by block number.
  EXPECT_EQ(f.handler->write_calls, 1);
  EXPECT_EQ(f.handler->blocks_written, 5u);
  for (size_t i = 1; i < f.handler->written.size(); ++i) {
    EXPECT_LT(f.handler->written[i - 1].block_no, f.handler->written[i].block_no);
  }
  EXPECT_EQ(f.cache->dirty_count(), 0u);
}

TEST(BufferCacheTest, InvalidateAbsorbsDirtyData) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    for (uint64_t i = 0; i < 4; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(9, i), GetMode::kOverwrite, true,
                          out);
    }
    // Delete the file: its dirty blocks die in memory, no disk writes.
    fx->cache->InvalidateFile(1, 9);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(f.handler->write_calls, 0);
  EXPECT_EQ(f.cache->absorbed_dirty_blocks(), 4u);
  EXPECT_EQ(f.cache->dirty_count(), 0u);
  EXPECT_EQ(f.cache->free_count(), f.cache->total_blocks());
}

TEST(BufferCacheTest, TruncateInvalidatesTail) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    for (uint64_t i = 0; i < 6; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(9, i), GetMode::kOverwrite, true,
                          out);
    }
    fx->cache->InvalidateFile(1, 9, /*from_block=*/3);
  }(&f, &s));
  f.sched->Run();
  EXPECT_EQ(f.cache->dirty_count(), 3u);
  EXPECT_EQ(f.cache->absorbed_dirty_blocks(), 3u);
}

TEST(BufferCacheTest, RedirtyDuringFlushStaysDirty) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(3, 0), GetMode::kOverwrite, true,
                        out);
    // Start the flush but do not wait for it; re-dirty while the write is in
    // flight (handler sleeps 2 ms). The block must be unpinned when the
    // flush starts — pinned blocks are never flushed.
    Scheduler* sched = fx->cache->scheduler();
    sched->Spawn("flusher", [](BufferCache* c) -> Task<> {
      (void)co_await c->FlushOldest(false);
    }(fx->cache.get()));
    co_await sched->Sleep(Duration::Millis(1));  // flush now in flight
    CacheBlock* block = *(co_await fx->cache->GetBlock(CacheFixture::Id(3, 0), GetMode::kRead));
    const Status ms = co_await fx->cache->MarkDirty(block);
    PFS_CHECK(ms.ok());
    fx->cache->Release(block);
  }(&f, &s));
  f.sched->Run();
  // The write completed but the block saw a newer version: still dirty.
  EXPECT_EQ(f.handler->write_calls, 1);
  EXPECT_EQ(f.cache->dirty_count(), 1u);
}

TEST(BufferCacheTest, SyncAllDrains) {
  CacheFixture f;
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    for (uint64_t ino = 1; ino <= 3; ++ino) {
      for (uint64_t b = 0; b < 2; ++b) {
        co_await TouchBlock(fx->cache.get(), CacheFixture::Id(ino, b), GetMode::kOverwrite,
                            true, out);
      }
    }
    const Status ss = co_await fx->cache->SyncAll();
    PFS_CHECK(ss.ok());
  }(&f, &s));
  f.sched->Run();
  EXPECT_EQ(f.cache->dirty_count(), 0u);
  EXPECT_EQ(f.handler->blocks_written, 6u);
}

TEST(FlushPolicyTest, WriteDelayFlushesAfterMaxAge) {
  WriteDelayPolicy::Options opts;
  opts.max_age = Duration::Seconds(30);
  opts.scan_interval = Duration::Seconds(5);
  CacheFixture f(CacheFixture::DefaultConfig(), nullptr,
                 std::make_unique<WriteDelayPolicy>(opts));
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 0), GetMode::kOverwrite, true,
                        out);
  }(&f, &s));
  f.sched->RunFor(Duration::Seconds(20));
  EXPECT_EQ(f.handler->write_calls, 0);  // younger than 30 s
  f.sched->RunFor(Duration::Seconds(20));
  EXPECT_EQ(f.handler->write_calls, 1);  // aged out and flushed
  EXPECT_EQ(f.cache->dirty_count(), 0u);
}

TEST(FlushPolicyTest, UpsKeepsDirtyDataIndefinitely) {
  CacheFixture f;  // UPS policy by default
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 0), GetMode::kOverwrite, true,
                        out);
  }(&f, &s));
  f.sched->RunFor(Duration::Hours(1));
  // An hour later: still dirty, never written.
  EXPECT_EQ(f.handler->write_calls, 0);
  EXPECT_EQ(f.cache->dirty_count(), 1u);
}

TEST(FlushPolicyTest, NvramBoundsDirtyBytes) {
  // NVRAM budget of 3 blocks; writing 6 blocks must drain along the way.
  NvramPolicy::Options opts;
  opts.nvram_bytes = 3 * 4096;
  opts.whole_file = false;
  CacheFixture f(CacheFixture::DefaultConfig(), nullptr, std::make_unique<NvramPolicy>(opts));
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    for (uint64_t i = 0; i < 6; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kOverwrite, true,
                          out);
    }
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  // At least 3 blocks had to be written to keep dirty <= 3 blocks.
  EXPECT_GE(f.handler->blocks_written, 3u);
  EXPECT_LE(f.cache->dirty_count(), 3u);
}

TEST(FlushPolicyTest, NvramWholeFileFlushWritesFileAtOnce) {
  NvramPolicy::Options opts;
  opts.nvram_bytes = 3 * 4096;
  opts.whole_file = true;
  CacheFixture f(CacheFixture::DefaultConfig(), nullptr, std::make_unique<NvramPolicy>(opts));
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    // Three dirty blocks of one file fill NVRAM; the fourth write (other
    // file) forces a whole-file flush of the first file.
    for (uint64_t i = 0; i < 3; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kOverwrite, true,
                          out);
    }
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(2, 0), GetMode::kOverwrite, true,
                        out);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(f.handler->write_calls, 1);
  EXPECT_EQ(f.handler->blocks_written, 3u);  // whole file 1 in one call
}

TEST(FlushPolicyTest, FactoryNames) {
  EXPECT_EQ(MakeFlushPolicy("write-delay")->name(), "write-delay-30s");
  EXPECT_EQ(MakeFlushPolicy("ups")->name(), "ups-write-saving");
  EXPECT_EQ(MakeFlushPolicy("nvram-whole")->name(), "nvram-whole-file");
  EXPECT_EQ(MakeFlushPolicy("nvram-partial")->name(), "nvram-partial-file");
}

TEST(BufferCacheTest, AsyncFlushRelievesAllocator) {
  BufferCache::Config config = CacheFixture::DefaultConfig();
  config.async_flush = true;
  config.flusher_target_blocks = 2;
  CacheFixture f(config);
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    for (uint64_t i = 0; i < 8; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kOverwrite, true,
                          out);
    }
    // Cache is now all-dirty; the next allocation wakes the flusher daemon.
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(2, 0), GetMode::kRead, false, out);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
  EXPECT_GE(f.handler->write_calls, 1);
}

TEST(ReplacementTest, EvictFirstHintEvictsStreamBlocksFirst) {
  CacheFixture f;
  f.cache->SetFileHint(1, 99, FileCacheHint::kEvictFirst);
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    // 4 normal blocks, then 4 stream blocks, then 1 more normal block: the
    // stream blocks must be evicted before the normal ones.
    for (uint64_t i = 0; i < 4; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kRead, false, out);
    }
    for (uint64_t i = 0; i < 4; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(99, i), GetMode::kRead, false, out);
    }
    const int fills_before = fx->handler->fills;
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(2, 0), GetMode::kRead, false, out);
    // All four normal blocks must still hit.
    for (uint64_t i = 0; i < 4; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kRead, false, out);
    }
    PFS_CHECK(fx->handler->fills == fills_before + 1);  // only the new block missed
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
}

TEST(ReplacementTest, LfuKeepsHotBlocks) {
  CacheFixture f(CacheFixture::DefaultConfig(), std::make_unique<LfuReplacement>());
  Status s;
  f.sched->Spawn("t", [](CacheFixture* fx, Status* out) -> Task<> {
    // Access block (1,0) many times, fill the rest once each, then overflow.
    for (int rep = 0; rep < 10; ++rep) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 0), GetMode::kRead, false, out);
    }
    for (uint64_t i = 1; i < 8; ++i) {
      co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, i), GetMode::kRead, false, out);
    }
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(2, 0), GetMode::kRead, false, out);
    // The hot block must have survived.
    const int fills_before = fx->handler->fills;
    co_await TouchBlock(fx->cache.get(), CacheFixture::Id(1, 0), GetMode::kRead, false, out);
    PFS_CHECK(fx->handler->fills == fills_before);
  }(&f, &s));
  f.sched->Run();
  EXPECT_TRUE(s.ok());
}

TEST(ReplacementTest, FactoryMakesAllPolicies) {
  for (const char* name : {"LRU", "RANDOM", "LFU", "SLRU", "LRU-2"}) {
    auto policy = MakeReplacementPolicy(name, 3);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), name);
  }
}

TEST(DataMoverTest, SimMoverChargesCopyTime) {
  auto sched = Scheduler::CreateVirtual();
  HostModel host;
  host.mem_bandwidth_bytes_per_sec = 50'000'000;
  SimDataMover mover(sched.get(), host);
  sched->Spawn("t", [](DataMover* m) -> Task<> {
    co_await m->Move({}, {}, 50'000'000);  // 1 second worth
  }(&mover));
  sched->Run();
  EXPECT_EQ(sched->Now(), TimePoint() + Duration::Seconds(1));
}

TEST(DataMoverTest, RealMoverCopiesBytes) {
  auto sched = Scheduler::CreateVirtual();
  RealDataMover mover;
  std::vector<std::byte> src(64, std::byte{0x7});
  std::vector<std::byte> dst(64);
  sched->Spawn("t", [](DataMover* m, std::span<std::byte> d,
                       std::span<const std::byte> s) -> Task<> {
    co_await m->Move(d, s, 64);
  }(&mover, dst, src));
  sched->Run();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(sched->Now(), TimePoint());  // no artificial delay
}

TEST(BufferCacheTest, StatReportShowsPolicies) {
  CacheFixture f;
  const std::string report = f.cache->StatReport(false);
  EXPECT_NE(report.find("policy=ups-write-saving"), std::string::npos);
  EXPECT_NE(report.find("repl=LRU"), std::string::npos);
}

}  // namespace
}  // namespace pfs
