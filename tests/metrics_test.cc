// Tests for the live metrics plane (obs/metrics, obs/metrics_http): the HDR
// bucket scheme, per-shard cell aggregation under a real sharded scheduler,
// registry dedup and exposition formats, end-to-end counter exactness in a
// sharded striped system on both backends, and scraping the HTTP endpoint
// over a real socket while the workload is running.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "sched/affinity.h"
#include "sched/shard.h"
#include "system/system_builder.h"

namespace pfs {
namespace {

// -- HDR bucket scheme ------------------------------------------------------

TEST(HistBucketTest, IndexAndBoundRoundTrip) {
  // Every value maps into a bucket whose bound is >= the value, and the
  // previous bucket's bound is < the value (the bucket is the tightest one).
  std::vector<uint64_t> probes = {0, 1, 7, 8, 9, 100, 1023, 1024, 4096};
  for (uint64_t base : {uint64_t{1} << 20, uint64_t{1} << 40, uint64_t{1} << 62}) {
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + base / 3);
  }
  probes.push_back(UINT64_MAX);
  for (uint64_t v : probes) {
    const size_t i = HistBucketIndex(v);
    ASSERT_LT(i, kHistBuckets) << v;
    EXPECT_GE(HistBucketHigh(i), v) << v;
    if (i > 0) {
      EXPECT_LT(HistBucketHigh(i - 1), v) << v;
    }
  }
  EXPECT_EQ(HistBucketHigh(kHistBuckets - 1), UINT64_MAX);
}

TEST(HistBucketTest, RelativeWidthAtMostOneEighth) {
  // Above the unit buckets, bucket width / lower bound <= 1/8 = 12.5%: the
  // advertised bound on percentile error.
  for (size_t i = kHistSubBuckets + 1; i < kHistBuckets - 1; ++i) {
    const double lo = static_cast<double>(HistBucketHigh(i - 1)) + 1;
    const double hi = static_cast<double>(HistBucketHigh(i));
    EXPECT_LE(hi - lo + 1, lo / 8 + 1) << "bucket " << i;
  }
}

// -- Histogram percentiles --------------------------------------------------

TEST(HistogramMetricTest, PercentileWithinOneBucketOfExact) {
  MetricRegistry reg(1, "pfs");
  HistogramMetric* h = reg.Histogram("t_seconds", "test");
  const int n = 10000;
  for (int i = 1; i <= n; ++i) {
    h->Record(static_cast<uint64_t>(i));
  }
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(n));
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    // The exact q-quantile of {1..n} is the ceil(q*n)-th value; the metric
    // reports a bucket upper bound, so the answer must land in the exact
    // value's bucket (or the adjacent one when the quantile sits on an edge).
    const uint64_t exact = static_cast<uint64_t>(
        std::max<int64_t>(1, static_cast<int64_t>(q * n + 0.9999)));
    const uint64_t got = h->Percentile(q);
    const auto exact_bucket = static_cast<int64_t>(HistBucketIndex(exact));
    const auto got_bucket = static_cast<int64_t>(HistBucketIndex(got));
    EXPECT_LE(std::abs(got_bucket - exact_bucket), 1)
        << "q=" << q << " exact=" << exact << " got=" << got;
    EXPECT_GE(got, exact) << "q=" << q;  // cumulative counts never undershoot
  }
  EXPECT_NEAR(h->Mean(), (n + 1) / 2.0, (n + 1) / 2.0 * 0.125);
}

TEST(HistogramMetricTest, EmptyHistogramReportsZero) {
  MetricRegistry reg(1, "pfs");
  HistogramMetric* h = reg.Histogram("t_seconds", "test");
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Percentile(0.99), 0u);
  EXPECT_DOUBLE_EQ(h->Mean(), 0.0);
}

// -- Per-shard cells under a real sharded scheduler -------------------------

TEST(MetricShardingTest, CountersAggregateAcrossShardsAndOverflow) {
  SchedulerGroup group(4, /*virtual_clock=*/true, 42);
  MetricRegistry reg(group.size(), "pfs");
  CounterMetric* counter = reg.Counter("events_total", "test");
  GaugeMetric* gauge = reg.Gauge("depth", "test");
  HistogramMetric* hist = reg.Histogram("lat_seconds", "test");
  // This thread is outside scheduler control: it writes the overflow slot.
  counter->Inc(7);
  for (size_t s = 0; s < group.size(); ++s) {
    Scheduler* shard = group.shard(s);
    shard->Spawn("writer" + std::to_string(s),
                 [](Scheduler* sched, size_t idx, CounterMetric* c, GaugeMetric* g,
                    HistogramMetric* h) -> Task<> {
                   for (size_t i = 0; i < (idx + 1) * 100; ++i) {
                     c->Inc();
                     h->Record(idx + 1);
                   }
                   g->Set(static_cast<int64_t>(idx + 1));
                   co_await sched->Sleep(Duration::Micros(10));
                 }(shard, s, counter, gauge, hist));
  }
  group.Run();
  EXPECT_EQ(counter->Total(), 7u + 100 + 200 + 300 + 400);
  EXPECT_EQ(gauge->Total(), 1 + 2 + 3 + 4);
  EXPECT_EQ(hist->Count(), 1000u);
  EXPECT_EQ(hist->Sum(), 100u * 1 + 200 * 2 + 300 * 3 + 400 * 4);
}

// -- Registry shape ---------------------------------------------------------

TEST(MetricRegistryTest, FindOrCreateDedupsFamiliesAndInstances) {
  MetricRegistry reg(2, "pfs");
  CounterMetric* a = reg.Counter("ops_total", "ops", "op=\"read\"");
  CounterMetric* b = reg.Counter("ops_total", "ops", "op=\"read\"");
  CounterMetric* c = reg.Counter("ops_total", "ops", "op=\"write\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Inc(3);
  c->Inc(5);
  const std::string text = reg.PrometheusText();
  // One family announcement, two sample lines.
  EXPECT_EQ(text.find("# TYPE pfs_ops_total counter"),
            text.rfind("# TYPE pfs_ops_total counter"));
  EXPECT_NE(text.find("pfs_ops_total{op=\"read\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("pfs_ops_total{op=\"write\"} 5"), std::string::npos) << text;
  EXPECT_EQ(reg.scrapes(), 1u);
}

TEST(MetricRegistryTest, PrometheusHistogramHasCumulativeBucketsAndInf) {
  MetricRegistry reg(1, "pfs");
  HistogramMetric* h = reg.Histogram("io_seconds", "io latency", "", 1e-9);
  h->Record(1000);   // 1 us
  h->Record(1000);
  h->Record(50000);  // 50 us
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE pfs_io_seconds histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("pfs_io_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("pfs_io_seconds_count 3"), std::string::npos) << text;
  // The le bounds are scaled into seconds: every bound must be < 1.
  for (size_t pos = text.find("le=\""); pos != std::string::npos;
       pos = text.find("le=\"", pos + 1)) {
    const std::string bound = text.substr(pos + 4, text.find('"', pos + 4) - pos - 4);
    if (bound != "+Inf") {
      EXPECT_LT(std::stod(bound), 1.0) << bound;
    }
  }
}

TEST(MetricRegistryTest, JsonSnapshotIsFlatObject) {
  MetricRegistry reg(1, "pfs");
  reg.Counter("hits_total", "hits", "shard=\"0\"")->Inc(4);
  reg.Histogram("lat_seconds", "lat")->Record(100);
  const std::string json = reg.JsonSnapshot();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"pfs_hits_total{shard=0}\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pfs_lat_seconds\":{\"count\":1"), std::string::npos) << json;
}

TEST(MetricRegistryTest, ValidMetricPrefixRule) {
  EXPECT_TRUE(ValidMetricPrefix("pfs"));
  EXPECT_TRUE(ValidMetricPrefix("_x9"));
  EXPECT_FALSE(ValidMetricPrefix(""));
  EXPECT_FALSE(ValidMetricPrefix("9pfs"));
  EXPECT_FALSE(ValidMetricPrefix("pfs-x"));
}

// -- End-to-end: sharded striped system, both backends ----------------------

// Two striped file systems pinned to different shards of a 4-shard group.
SystemConfig StripedShardedConfig(const std::string& image) {
  SystemConfig config;
  config.disks_per_bus = {2, 2};
  config.num_filesystems = 2;
  config.shards = 4;
  config.fs_shards = {0, 3};
  VolumeSpec fs0;
  fs0.kind = "striped";
  fs0.members = {0, 1};
  fs0.stripe_unit_kb = 16;
  VolumeSpec fs1;
  fs1.kind = "striped";
  fs1.members = {2, 3};
  fs1.stripe_unit_kb = 16;
  config.volumes = {fs0, fs1};
  config.cache_bytes = 2 * kMiB;
  config.lfs_segment_blocks = 64;
  config.max_inodes = 1024;
  config.flush_policy = "ups";
  config.image_path = image;
  config.image_bytes = 16 * kMiB;
  config.metrics.enabled = true;
  config.metrics.port = 0;  // ephemeral: parallel ctest runs must not collide
  return config;
}

// `ops` rounds of open/write/read/close alternating between the two mounts,
// then one SyncAll: the exact per-op counts the registry must report.
Task<Status> CountedWorkload(System* sys, int ops) {
  LocalClient* client = sys->client();
  OpenOptions create;
  create.create = true;
  for (int i = 0; i < ops; ++i) {
    const std::string path =
        "/" + sys->mount_name(i % 2) + "/m" + std::to_string(i % 8);
    auto fd = co_await client->Open(path, create);
    PFS_CO_RETURN_IF_ERROR(fd.status());
    auto wrote = co_await client->Write(*fd, 0, 4096 + (i % 4) * 1024, {});
    PFS_CO_RETURN_IF_ERROR(wrote.status());
    auto read = co_await client->Read(*fd, 0, 4096, {});
    PFS_CO_RETURN_IF_ERROR(read.status());
    PFS_CO_RETURN_IF_ERROR(co_await client->Close(*fd));
  }
  co_return co_await client->SyncAll();
}

class MetricsSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = testing::TempDir() + "/pfs_metrics_test.img";
    RemoveImages();
  }
  void TearDown() override { RemoveImages(); }
  void RemoveImages() {
    std::remove(image_.c_str());
    for (int d = 1; d < 4; ++d) {
      std::remove((image_ + "." + std::to_string(d)).c_str());
    }
  }
  std::string image_;
};

TEST_F(MetricsSystemTest, ShardedCountersEqualExactOpCountsOnBothBackends) {
  for (BackendKind backend : {BackendKind::kSimulated, BackendKind::kFileBacked}) {
    SystemConfig config = StripedShardedConfig(image_);
    config.backend = backend;
    auto built = SystemBuilder::Build(config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    System& sys = **built;
    ASSERT_TRUE(sys.Setup().ok());
    ASSERT_NE(sys.metrics(), nullptr);

    const int ops = 64;
    Status status(ErrorCode::kAborted);
    sys.scheduler()->Spawn("test.workload", [](System* s, int n, Status* out) -> Task<> {
      *out = co_await CountedWorkload(s, n);
    }(&sys, ops, &status));
    sys.RunToCompletion();
    ASSERT_TRUE(status.ok()) << status.ToString();

    // The op counters are per-op-label instances of one family; the two file
    // systems live on different shards, so each total spans multiple cells.
    MetricRegistry* reg = sys.metrics();
    EXPECT_EQ(reg->Counter("client_ops_total", "", "op=\"open\"")->Total(),
              static_cast<uint64_t>(ops));
    EXPECT_EQ(reg->Counter("client_ops_total", "", "op=\"write\"")->Total(),
              static_cast<uint64_t>(ops));
    EXPECT_EQ(reg->Counter("client_ops_total", "", "op=\"read\"")->Total(),
              static_cast<uint64_t>(ops));
    EXPECT_EQ(reg->Counter("client_ops_total", "", "op=\"sync_all\"")->Total(), 1u);
    // Per-shard cache counters agree with each cache's own legacy counters:
    // both count the same events, and the registry instance is labeled with
    // the owning shard.
    uint64_t traffic = 0;
    for (int s = 0; s < sys.shard_count(); ++s) {
      const std::string label = "shard=\"" + std::to_string(s) + "\"";
      const uint64_t hits = reg->Counter("cache_hits_total", "", label)->Total();
      const uint64_t misses = reg->Counter("cache_misses_total", "", label)->Total();
      EXPECT_EQ(hits, sys.shard_cache(s)->hits()) << "shard " << s;
      EXPECT_EQ(misses, sys.shard_cache(s)->misses()) << "shard " << s;
      traffic += hits + misses;
    }
    EXPECT_GT(traffic, 0u);
    RemoveImages();
  }
}

// -- Scraping over a live socket --------------------------------------------

// Blocking one-shot HTTP GET against 127.0.0.1:port; empty string on error.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST_F(MetricsSystemTest, ScrapeDuringActiveLoadIsAffinitySafe) {
  // Shard-ownership assertions armed even in Release: a scrape that touched
  // component state from the HTTP thread would die here, not in CI's
  // sanitizer job.
  SetAffinityChecksForTesting(true);
  SystemConfig config = StripedShardedConfig(image_);
  config.backend = BackendKind::kSimulated;
  auto built = SystemBuilder::Build(config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  System& sys = **built;
  ASSERT_TRUE(sys.Setup().ok());
  const uint16_t port = sys.metrics_port();
  ASSERT_NE(port, 0);

  Status status(ErrorCode::kAborted);
  sys.scheduler()->Spawn("test.workload", [](System* s, int n, Status* out) -> Task<> {
    *out = co_await CountedWorkload(s, n);
  }(&sys, 400, &status));

  // Scrape continuously from a foreign OS thread while the shards run.
  std::atomic<bool> done{false};
  std::vector<std::string> scrapes;
  std::string health;
  std::thread scraper([&] {
    // At least two scrapes even if the lockstep run finishes first: the
    // server stays up until System teardown, so late scrapes still count.
    while (!done.load(std::memory_order_relaxed) || scrapes.size() < 2) {
      const std::string body = Body(HttpGet(port, "/metrics"));
      if (!body.empty()) {
        scrapes.push_back(body);
      }
      if (health.empty()) {
        health = Body(HttpGet(port, "/healthz"));
      }
    }
  });
  sys.RunToCompletion();
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  SetAffinityChecksForTesting(false);
  ASSERT_TRUE(status.ok()) << status.ToString();

  ASSERT_GE(scrapes.size(), 2u);
  for (const std::string& body : scrapes) {
    EXPECT_NE(body.find("# TYPE pfs_client_ops_total counter"), std::string::npos);
  }
  // Counters are monotonic between the first and last mid-run scrape: the
  // open counter's parsed value must not decrease.
  auto open_count = [](const std::string& body) -> double {
    const std::string needle = "pfs_client_ops_total{op=\"open\"} ";
    const size_t pos = body.find(needle);
    return pos == std::string::npos ? 0.0 : std::stod(body.substr(pos + needle.size()));
  };
  EXPECT_LE(open_count(scrapes.front()), open_count(scrapes.back()));
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos) << health;
  EXPECT_NE(health.find("\"shards\""), std::string::npos) << health;
  EXPECT_GE(sys.metrics()->scrapes(), 2u);

  // The end-of-run percentile objects in StatJson come from the same
  // histograms the scrape rendered, so the keys must be present.
  const std::string stats = sys.stats().ReportJson();
  EXPECT_NE(stats.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(stats.find("\"fill_ms\""), std::string::npos);
}

TEST(MetricsHttpTest, UnknownPathIs404AndStopIsIdempotent) {
  MetricsHttpServer server(0);
  server.Handle("/metrics", [](std::string* body, std::string* type) {
    *body = "# HELP pfs_x_total x\n# TYPE pfs_x_total counter\npfs_x_total 1\n";
    *type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  const std::string ok = HttpGet(server.port(), "/metrics");
  EXPECT_NE(ok.find("200"), std::string::npos);
  EXPECT_NE(Body(ok).find("pfs_x_total 1"), std::string::npos);
  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace pfs
