// Unit tests for src/disk: geometry math, seek models, and the simulated
// disk mechanism (rotation, cache policies, timing structure).
#include <gtest/gtest.h>

#include <memory>

#include "bus/scsi_bus.h"
#include "disk/disk_model.h"
#include "disk/geometry.h"
#include "disk/seek_model.h"
#include "sched/scheduler.h"

namespace pfs {
namespace {

TEST(GeometryTest, Hp97560Capacity) {
  const DiskGeometry g = DiskParams::Hp97560().geometry;
  // 1962 * 19 * 72 * 512 = ~1.28 GiB, the HP 97560's 1.3 GB.
  EXPECT_EQ(g.TotalSectors(), 1962ull * 19 * 72);
  EXPECT_NEAR(static_cast<double>(g.TotalBytes()) / 1e9, 1.374, 0.01);
}

TEST(GeometryTest, ChsRoundTrip) {
  const DiskGeometry g{100, 4, 32, 512, 6000};
  for (uint64_t lba : {0ull, 1ull, 31ull, 32ull, 127ull, 128ull, 12799ull}) {
    const Chs chs = g.ToChs(lba);
    EXPECT_EQ(g.ToLba(chs), lba);
    EXPECT_LT(chs.cylinder, g.cylinders);
    EXPECT_LT(chs.head, g.heads);
    EXPECT_LT(chs.sector, g.sectors_per_track);
  }
}

TEST(GeometryTest, ChsLayoutOrder) {
  const DiskGeometry g{100, 4, 32, 512, 6000};
  // Sector 32 is track 2 (head 1) of cylinder 0.
  const Chs chs = g.ToChs(32);
  EXPECT_EQ(chs.cylinder, 0u);
  EXPECT_EQ(chs.head, 1u);
  EXPECT_EQ(chs.sector, 0u);
  // One full cylinder = 128 sectors.
  const Chs next_cyl = g.ToChs(128);
  EXPECT_EQ(next_cyl.cylinder, 1u);
}

TEST(GeometryTest, RotationTiming) {
  const DiskGeometry g = DiskParams::Hp97560().geometry;
  // 4002 rpm -> 14.99 ms per revolution.
  EXPECT_NEAR(g.RotationTime().ToMillisF(), 14.99, 0.01);
  EXPECT_NEAR(g.SectorTime().ToMillisF(), 14.99 / 72, 0.01);
  // Media rate ~2.46 MB/s for the HP 97560.
  EXPECT_NEAR(g.MediaRate() / 1e6, 2.46, 0.05);
}

TEST(SeekModelTest, TwoRangeCurve) {
  TwoRangeSeekModel model(DiskParams::Hp97560().seek);
  EXPECT_EQ(model.SeekTime(100, 100), Duration());
  // Short seek: 3.24 + 0.4*sqrt(1).
  EXPECT_NEAR(model.SeekTime(100, 101).ToMillisF(), 3.64, 0.01);
  // Long seek: 8.00 + 0.008*1000.
  EXPECT_NEAR(model.SeekTime(0, 1000).ToMillisF(), 16.0, 0.01);
  // Symmetric.
  EXPECT_EQ(model.SeekTime(0, 1000), model.SeekTime(1000, 0));
  // Monotone at the regime boundary.
  EXPECT_LE(model.SeekTime(0, 382).ToMillisF(), model.SeekTime(0, 383).ToMillisF() + 3.3);
}

TEST(SeekModelTest, ConstantModel) {
  ConstantSeekModel model(Duration::Millis(5));
  EXPECT_EQ(model.SeekTime(3, 3), Duration());
  EXPECT_EQ(model.SeekTime(3, 99), Duration::Millis(5));
}

struct DiskFixture {
  explicit DiskFixture(DiskParams params = DiskParams::Hp97560()) {
    sched = Scheduler::CreateVirtual(42);
    ScsiBus::Params bus_params;
    bus_params.arbitration_delay = Duration();
    bus = std::make_unique<ScsiBus>(sched.get(), "scsi0", bus_params);
    disk = std::make_unique<DiskModel>(sched.get(), "d0", params, bus.get());
    disk->Start();
  }

  // Issues one request through the disk (driver protocol inlined) and
  // returns its total service latency.
  Duration RunOne(IoOp op, uint64_t sector, uint32_t count) {
    Duration latency;
    sched->Spawn("issuer", Issue(this, op, sector, count, &latency));
    sched->Run();
    return latency;
  }

  static Task<> Issue(DiskFixture* f, IoOp op, uint64_t sector, uint32_t count,
                      Duration* latency) {
    IoRequest req(f->sched.get(), op, sector, count, {}, {});
    req.enqueue_time = f->sched->Now();
    req.dispatch_time = f->sched->Now();
    // Driver command/data-out phase.
    co_await f->bus->Acquire();
    co_await f->bus->Transfer(32 + (op == IoOp::kWrite ? count * 512ull : 0));
    f->bus->Release();
    co_await f->disk->Submit(&req);
    co_await req.done.Wait();
    *latency = f->sched->Now() - req.enqueue_time;
  }

  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<ScsiBus> bus;
  std::unique_ptr<DiskModel> disk;
};

TEST(DiskModelTest, ReadHasMechanicalLatency) {
  DiskFixture f;
  const Duration latency = f.RunOne(IoOp::kRead, 72 * 19 * 500, 8);
  // Decode (2 ms) + seek + rotation + transfer + bus: must exceed the 2 ms
  // floor and stay under decode + max seek + full rotation + transfer slack.
  EXPECT_GT(latency, Duration::Millis(2));
  EXPECT_LT(latency, Duration::Millis(45));
  EXPECT_EQ(f.disk->reads(), 1u);
}

TEST(DiskModelTest, ImmediateReportedWriteCompletesFast) {
  DiskFixture f;
  const Duration latency = f.RunOne(IoOp::kWrite, 72 * 19 * 500, 8);
  // Bus (0.44 ms) + decode (2 ms): no mechanical wait before completion.
  EXPECT_LT(latency, Duration::Millis(3));
  EXPECT_EQ(f.disk->immediate_writes(), 1u);
  // The destage still happens in the background.
  f.sched->RunFor(Duration::Seconds(1));
  EXPECT_EQ(f.disk->destages(), 1u);
}

TEST(DiskModelTest, WriteThroughWhenCacheDisabled) {
  DiskParams p = DiskParams::Hp97560();
  p.immediate_report_writes = false;
  DiskFixture f(p);
  const Duration latency = f.RunOne(IoOp::kWrite, 72 * 19 * 500, 8);
  // Full mechanical path.
  EXPECT_GT(latency, Duration::Millis(5));
  EXPECT_EQ(f.disk->immediate_writes(), 0u);
  EXPECT_EQ(f.disk->destages(), 0u);
}

TEST(DiskModelTest, WriteBurstOverflowsCacheAndStalls) {
  DiskFixture f;
  // 128 KB cache = 32 * 4 KB writes; the 40th write must wait for destage.
  Duration total;
  f.sched->Spawn("burst", [](DiskFixture* fx, Duration* out) -> Task<> {
    const TimePoint start = fx->sched->Now();
    for (int i = 0; i < 40; ++i) {
      Duration lat;
      co_await DiskFixture::Issue(fx, IoOp::kWrite, 72ull * 19 * (10 + i * 3), 8, &lat);
    }
    *out = fx->sched->Now() - start;
  }(&f, &total));
  f.sched->Run();
  EXPECT_EQ(f.disk->writes(), 40u);
  // If all writes were immediate, 40 * ~2.4 ms = ~97 ms. Cache pressure must
  // push total beyond that.
  EXPECT_GT(total, Duration::Millis(120));
  EXPECT_GT(f.disk->destages(), 0u);
}

TEST(DiskModelTest, ReadAheadServesSequentialReads) {
  DiskFixture f;
  std::vector<Duration> latencies(3);
  f.sched->Spawn("seq", [](DiskFixture* fx, std::vector<Duration>* lats) -> Task<> {
    // Sequential 4 KB reads; after the first, the idle disk prefetches the
    // next 8 sectors, so the second read hits the on-board cache.
    co_await DiskFixture::Issue(fx, IoOp::kRead, 1000, 8, &(*lats)[0]);
    // Give the disk a beat to prefetch (queue empty -> read-ahead).
    co_await fx->sched->Sleep(Duration::Millis(30));
    co_await DiskFixture::Issue(fx, IoOp::kRead, 1008, 8, &(*lats)[1]);
    co_await fx->sched->Sleep(Duration::Millis(30));
    co_await DiskFixture::Issue(fx, IoOp::kRead, 1016, 8, &(*lats)[2]);
  }(&f, &latencies));
  f.sched->Run();
  EXPECT_GE(f.disk->prefetches(), 1u);
  EXPECT_GE(f.disk->cache_hit_reads(), 1u);
  // A cache-hit read costs decode + bus only: well under 3 ms.
  EXPECT_LT(latencies[1], Duration::Millis(3));
  // The first read paid the mechanical price.
  EXPECT_GT(latencies[0], Duration::Millis(3));
}

TEST(DiskModelTest, RotationalDelayBoundedByOneRevolution) {
  DiskFixture f;
  f.sched->Spawn("rnd", [](DiskFixture* fx) -> Task<> {
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
      Duration lat;
      const uint64_t sector = rng.NextBelow(fx->disk->params().geometry.TotalSectors() - 8);
      co_await DiskFixture::Issue(fx, IoOp::kRead, sector, 8, &lat);
    }
  }(&f));
  f.sched->Run();
  const Histogram& rot = f.disk->rotational_delay_ms();
  EXPECT_EQ(rot.count(), 50u);
  EXPECT_LE(rot.max(), f.disk->params().geometry.RotationTime().ToMillisF() + 0.01);
  EXPECT_GE(rot.min(), 0.0);
  // Mean rotational delay for random access ~ half a revolution (7.5 ms).
  EXPECT_NEAR(rot.mean(), 7.5, 2.5);
}

TEST(DiskModelTest, StatReportListsActivity) {
  DiskFixture f;
  f.RunOne(IoOp::kRead, 512, 8);
  const std::string report = f.disk->StatReport(true);
  EXPECT_NE(report.find("model=HP97560"), std::string::npos);
  EXPECT_NE(report.find("reads=1"), std::string::npos);
  EXPECT_EQ(f.disk->stat_name(), "disk.d0");
}

TEST(DiskModelTest, SyntheticDiskIsDeterministic) {
  DiskFixture f(DiskParams::SyntheticTest());
  const Duration first = f.RunOne(IoOp::kRead, 512, 8);

  DiskFixture g(DiskParams::SyntheticTest());
  const Duration second = g.RunOne(IoOp::kRead, 512, 8);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace pfs
