// Unit tests for src/core: Status/Result, serialization, RNG, intrusive list.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/intrusive_list.h"
#include "core/random.h"
#include "core/result.h"
#include "core/serializer.h"
#include "core/status.h"
#include "core/units.h"

namespace pfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "/a/b missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not-found: /a/b missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kAborted); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

Status FailIfNegative(int v) {
  if (v < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative");
  }
  return OkStatus();
}

Status Passthrough(int v) {
  PFS_RETURN_IF_ERROR(FailIfNegative(v));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(1).ok());
  EXPECT_EQ(Passthrough(-1).code(), ErrorCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status(ErrorCode::kNoSpace, "full"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ErrorCodeConstructor) {
  Result<int> r(ErrorCode::kBusy);
  EXPECT_EQ(r.status().code(), ErrorCode::kBusy);
}

Result<int> Half(int v) {
  if (v % 2 != 0) {
    return Status(ErrorCode::kInvalidArgument, "odd");
  }
  return v / 2;
}

Result<int> Quarter(int v) {
  PFS_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_EQ(Quarter(6).code(), ErrorCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(SerializerTest, RoundTripScalars) {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutU8(0xab);
  s.PutU16(0xbeef);
  s.PutU32(0xdeadbeef);
  s.PutU64(0x0123456789abcdefULL);
  s.PutI64(-42);

  Deserializer d(buf);
  EXPECT_EQ(d.TakeU8().value(), 0xab);
  EXPECT_EQ(d.TakeU16().value(), 0xbeef);
  EXPECT_EQ(d.TakeU32().value(), 0xdeadbeefu);
  EXPECT_EQ(d.TakeU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(d.TakeI64().value(), -42);
  EXPECT_TRUE(d.exhausted());
}

TEST(SerializerTest, RoundTripString) {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutString("hello");
  s.PutString("");
  Deserializer d(buf);
  EXPECT_EQ(d.TakeString().value(), "hello");
  EXPECT_EQ(d.TakeString().value(), "");
}

TEST(SerializerTest, ShortBufferIsCorrupt) {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutU16(7);
  Deserializer d(buf);
  EXPECT_TRUE(d.TakeU32().code() == ErrorCode::kCorrupt);
}

TEST(SerializerTest, TruncatedStringIsCorrupt) {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutU16(100);  // claims 100 bytes, provides none
  Deserializer d(buf);
  EXPECT_EQ(d.TakeString().code(), ErrorCode::kCorrupt);
}

TEST(SerializerTest, LittleEndianLayout) {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutU32(0x11223344);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x44);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x11);
}

TEST(SerializerTest, SkipAndBytes) {
  std::vector<std::byte> buf;
  Serializer s(&buf);
  s.PutU32(1);
  s.PutU32(2);
  Deserializer d(buf);
  ASSERT_TRUE(d.Skip(4).ok());
  EXPECT_EQ(d.TakeU32().value(), 2u);
  EXPECT_FALSE(d.Skip(1).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLogNormal(2.0, 1.0), 0.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Child stream should not simply replay the parent stream.
  Rng parent2(42);
  parent2.Fork();
  EXPECT_EQ(parent.NextU64(), parent2.NextU64());
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(1);
  ZipfDistribution zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 must dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 5);
  // All samples in range (implicitly by indexing) and rank0 is the mode.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(2);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

struct ListItem {
  explicit ListItem(int v) : value(v) {}
  int value;
  IntrusiveListNode node;
};

TEST(IntrusiveListTest, PushPopOrder) {
  ListItem a(1);
  ListItem b(2);
  ListItem c(3);
  IntrusiveList<ListItem, &ListItem::node> list;
  EXPECT_TRUE(list.empty());
  list.PushBack(a);
  list.PushBack(b);
  list.PushFront(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Front()->value, 3);
  EXPECT_EQ(list.Back()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, RemoveMiddle) {
  ListItem a(1);
  ListItem b(2);
  ListItem c(3);
  IntrusiveList<ListItem, &ListItem::node> list;
  list.PushBack(a);
  list.PushBack(b);
  list.PushBack(c);
  list.Remove(b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Front()->value, 1);
  EXPECT_EQ(list.Back()->value, 3);
  EXPECT_FALSE(b.node.linked());
  // Reinsertion after removal is allowed.
  list.PushBack(b);
  EXPECT_EQ(list.Back()->value, 2);
}

TEST(IntrusiveListTest, MoveToBackIsMruOperation) {
  ListItem a(1);
  ListItem b(2);
  ListItem c(3);
  IntrusiveList<ListItem, &ListItem::node> list;
  list.PushBack(a);
  list.PushBack(b);
  list.PushBack(c);
  list.MoveToBack(a);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
}

TEST(IntrusiveListTest, Iteration) {
  ListItem a(1);
  ListItem b(2);
  ListItem c(3);
  IntrusiveList<ListItem, &ListItem::node> list;
  list.PushBack(a);
  list.PushBack(b);
  list.PushBack(c);
  std::vector<int> seen;
  for (ListItem& item : list) {
    seen.push_back(item.value);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(UnitsTest, Arithmetic) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(RoundUp(10, 4), 12u);
  EXPECT_EQ(RoundUp(8, 4), 8u);
}

}  // namespace
}  // namespace pfs
